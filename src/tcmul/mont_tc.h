/**
 * @file
 * Montgomery multiplication with the m*n product on tensor cores.
 *
 * In SOS Montgomery (paper Algorithm 2) the reduction factor
 * M = sum_i m_i * 2^(64 i) multiplies the *constant* modulus n; that
 * is precisely the constant-operand wide multiplication Section 4.3
 * deploys to tensor cores. This header stitches the functional TC
 * pipeline together:
 *
 *   1. t = a * b on "CUDA cores" (ordinary limb multiply);
 *   2. the m_i are produced limb-by-limb exactly as in SOS;
 *   3. M * n runs through the uint8 matrix path (digit_matrix.h),
 *      optionally through the permuted fragment layout, and is
 *      compacted in registers (compaction.h);
 *   4. result = (t + M*n) / R with the final conditional subtract.
 *
 * The result is bit-identical to montMulCIOS/montMulSOS, which the
 * tests assert for every field.
 */

#ifndef DISTMSM_TCMUL_MONT_TC_H
#define DISTMSM_TCMUL_MONT_TC_H

#include <array>

#include "src/bigint/bigint.h"
#include "src/bigint/montgomery.h"
#include "src/tcmul/compaction.h"
#include "src/tcmul/digit_matrix.h"
#include "src/tcmul/fragment.h"

namespace distmsm::tcmul {

/**
 * Per-field constant state for the TC path: the digit matrix of the
 * modulus, with columns pre-permuted for in-register compaction.
 */
template <std::size_t N>
class TcMontgomeryContext
{
  public:
    explicit TcMontgomeryContext(const BigInt<N> &modulus,
                                 std::uint64_t inv64)
        : modulus_(modulus), inv64_(inv64),
          mat_b_(toDigits(modulus), 8 * N),
          perm_(compactionPermutation(static_cast<int>(mat_b_.cols())))
    {
        // Shuffle matB once; the MMA outputs then land pre-grouped
        // for compaction. The model applies the inverse permutation
        // at readout, which mirrors permuteSums(columnSums).
        inverse_perm_.resize(perm_.size());
        for (std::size_t slot = 0; slot < perm_.size(); ++slot)
            inverse_perm_[perm_[slot]] = static_cast<int>(slot);
    }

    const BigInt<N> &modulus() const { return modulus_; }
    std::uint64_t inv64() const { return inv64_; }
    const ConstantMatrix &matB() const { return mat_b_; }
    const std::vector<int> &permutation() const { return perm_; }

    /**
     * The wide product M * n computed through the simulated tensor
     * core path: digit matrix product, fragment permutation and
     * in-register compaction.
     */
    std::array<std::uint64_t, 2 * N>
    wideProduct(const BigInt<N> &m) const
    {
        const auto sums = columnSums(toDigits(m), mat_b_);
        // Physical slots hold the permuted sums (shuffled matB);
        // each thread's slots are contiguous groups of 4 original
        // columns, so compaction needs no cross-thread traffic.
        const auto slots = permuteSums(sums, perm_);
        // Undo the permutation at group granularity while compacting.
        std::vector<std::uint32_t> regrouped(sums.size());
        for (std::size_t orig = 0; orig < sums.size(); ++orig)
            regrouped[orig] = slots[inverse_perm_[orig]];
        const auto groups = compactColumns(regrouped);
        const BigInt<2 * N + 1> wide =
            resolveCompacted<2 * N + 1>(groups);
        std::array<std::uint64_t, 2 * N> out{};
        for (std::size_t i = 0; i < 2 * N; ++i)
            out[i] = wide.limb[i];
        return out;
    }

  private:
    BigInt<N> modulus_;
    std::uint64_t inv64_;
    ConstantMatrix mat_b_;
    std::vector<int> perm_;
    std::vector<int> inverse_perm_;
};

/**
 * Montgomery multiplication routed through the tensor-core model:
 * returns a * b * R^-1 mod modulus, bit-identical to montMulSOS.
 */
template <std::size_t N>
BigInt<N>
montMulTC(const BigInt<N> &a, const BigInt<N> &b,
          const TcMontgomeryContext<N> &ctx)
{
    const auto t = mulFull(a, b);

    // Derive the reduction limbs m_i exactly as the SOS sweep does:
    // m_i must cancel limb i of the running sum t + (partial M) * n.
    BigInt<N> m_value{};
    {
        std::array<std::uint64_t, 2 * N> u = t;
        for (std::size_t i = 0; i < N; ++i) {
            const std::uint64_t mi = u[i] * ctx.inv64();
            m_value.limb[i] = mi;
            std::uint64_t carry = 0;
            for (std::size_t j = 0; j < N; ++j) {
                u[i + j] = mac(mi, ctx.modulus().limb[j], u[i + j],
                               carry, carry);
            }
            for (std::size_t j = i + N; carry != 0 && j < 2 * N; ++j) {
                std::uint64_t c = carry;
                carry = 0;
                u[j] = addc(u[j], c, carry);
            }
        }
    }

    // The wide multiplication M * n is what runs on tensor cores.
    const auto mn = ctx.wideProduct(m_value);

    // result = (t + M*n) / R, then one conditional subtraction.
    std::array<std::uint64_t, 2 * N> sum{};
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < 2 * N; ++i)
        sum[i] = addc(t[i], mn[i], carry);
    // The carry out of limb 2N-1 is the extra bit of the (N+1)-limb
    // high half.
    BigInt<N> high{};
    for (std::size_t i = 0; i < N; ++i)
        high.limb[i] = sum[N + i];
    return montFinalSub(high, carry, ctx.modulus());
}

} // namespace distmsm::tcmul

#endif // DISTMSM_TCMUL_MONT_TC_H
