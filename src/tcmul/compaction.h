/**
 * @file
 * On-the-fly compaction of tensor-core column sums.
 *
 * The matrix product of digit_matrix.h leaves a 2N-bit product spread
 * over 2N/8 uint32 column sums whose bases are only 8 bits apart, so
 * three quarters of every uint32 lane is zero. Writing those raw
 * lanes to memory costs 4x the optimal traffic (Section 4.3). DistMSM
 * instead compacts groups of four neighbouring lanes inside
 * registers:
 *
 *     D_t = C_{4t} + C_{4t+1}*2^8 + C_{4t+2}*2^16 + C_{4t+3}*2^24
 *
 * which is a 45-bit value for 256-bit operands (23-bit lanes + 24),
 * and the final integer is sum_t D_t * 2^(32t) after one carry
 * propagation. This module implements the compaction and the traffic
 * accounting.
 */

#ifndef DISTMSM_TCMUL_COMPACTION_H
#define DISTMSM_TCMUL_COMPACTION_H

#include <cstdint>
#include <vector>

#include "src/bigint/bigint.h"

namespace distmsm::tcmul {

/**
 * Compact column sums in groups of four: out[t] = sum of 4 lanes with
 * 8-bit stagger. The input length is padded (with zeros) to a
 * multiple of 4.
 */
std::vector<std::uint64_t>
compactColumns(const std::vector<std::uint32_t> &sums);

/** Worst-case bit width of a compacted group for @p rows byte rows. */
unsigned compactedBits(std::size_t rows);

/**
 * Resolve compacted groups into a full integer:
 * sum_t groups[t] * 2^(32t), with carry propagation.
 */
template <std::size_t W>
BigInt<W>
resolveCompacted(const std::vector<std::uint64_t> &groups)
{
    BigInt<W> acc{};
    for (std::size_t t = 0; t < groups.size(); ++t) {
        BigInt<W> term{};
        term.limb[0] = groups[t];
        acc.addInPlace(term.shl(32 * t));
    }
    return acc;
}

/** Bytes written to memory when storing raw uint32 column sums. */
std::size_t rawTrafficBytes(std::size_t cols);

/**
 * Bytes written when the product is compacted on the fly: the 2N-bit
 * value needs only cols/4 uint32 of payload (the paper's "N/16
 * uint32 for a 2N-bit integer", a 4x saving).
 */
std::size_t compactedTrafficBytes(std::size_t cols);

} // namespace distmsm::tcmul

#endif // DISTMSM_TCMUL_COMPACTION_H
