#include "src/tcmul/digit_matrix.h"

#include "src/support/check.h"

namespace distmsm::tcmul {

std::vector<std::uint32_t>
columnSums(const std::vector<std::uint8_t> &x_digits,
           const ConstantMatrix &mat_b)
{
    DISTMSM_REQUIRE(x_digits.size() == mat_b.rows(),
                    "digit count must match matrix rows");
    std::vector<std::uint32_t> out(mat_b.cols(), 0);
    for (std::size_t j = 0; j < mat_b.rows(); ++j) {
        const std::uint32_t xj = x_digits[j];
        if (xj == 0)
            continue;
        for (std::size_t i = 0; i < mat_b.cols(); ++i) {
            out[i] += xj * mat_b.entry(j, i);
        }
    }
    return out;
}

unsigned
columnSumBits(std::size_t rows)
{
    // Each product is < 2^16; `rows` of them accumulate.
    std::uint64_t max_value = static_cast<std::uint64_t>(rows) * 255 *
                              255;
    unsigned bits = 0;
    while (max_value != 0) {
        max_value >>= 1;
        ++bits;
    }
    return bits;
}

} // namespace distmsm::tcmul
