/**
 * @file
 * Warp-level layout of tensor-core accumulator fragments.
 *
 * Section 4.3 / Figure 7: an `mma` instruction produces an 8x8 int32
 * accumulator tile whose elements live in the registers of the 32
 * threads of a warp — thread t holds, in row t/4, the two columns
 * 2*(t mod 4) and 2*(t mod 4) + 1. Eight consecutive column sums of
 * one product row are therefore spread across four threads, which
 * would force cross-thread shuffles before compaction.
 *
 * DistMSM sidesteps the shuffles by permuting the *columns of matB*
 * (free: matB is constant and built once) so that after the MMA each
 * thread owns two runs of four consecutive column sums — exactly the
 * groups compaction.h combines. The paper illustrates the swap pairs
 * {2,3}<->{8,9} and {18,19}<->{24,25}; the full permutation applies
 * the pattern {4l+2, 4l+3} <-> {8+4l, 8+4l+1} for l in {0, 1} inside
 * every 16-column group.
 */

#ifndef DISTMSM_TCMUL_FRAGMENT_H
#define DISTMSM_TCMUL_FRAGMENT_H

#include <cstdint>
#include <vector>

namespace distmsm::tcmul {

/** Threads per warp and MMA tile geometry. */
inline constexpr int kWarpSize = 32;
inline constexpr int kTileRows = 8;
inline constexpr int kTileCols = 8;
/** Accumulator elements held by one thread per tile. */
inline constexpr int kFragmentElems = 2;

/**
 * Warp thread that owns accumulator slot (row, slot_col) of a
 * multi-tile output row (standard mma.m8n8 fragment layout).
 */
int owningThread(int row, int slot_col);

/**
 * The matB column permutation: perm[slot] = original column whose
 * sums should land in physical slot @p slot. @p cols must be a
 * multiple of 16.
 */
std::vector<int> compactionPermutation(int cols);

/**
 * The column sums each thread ends up holding for one product row,
 * given the permuted matB: result[t] lists the (original) column
 * indices owned by warp thread t, in slot order.
 */
std::vector<std::vector<int>>
ownedColumns(int row, int cols, const std::vector<int> &perm);

/**
 * Apply the permutation to physical storage: out[slot] =
 * sums[perm[slot]]. Models running the MMA with the shuffled matB.
 */
std::vector<std::uint32_t>
permuteSums(const std::vector<std::uint32_t> &sums,
            const std::vector<int> &perm);

} // namespace distmsm::tcmul

#endif // DISTMSM_TCMUL_FRAGMENT_H
