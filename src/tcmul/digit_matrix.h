/**
 * @file
 * Big-integer multiplication as uint8 matrix multiplication.
 *
 * Section 4.3 of the paper: tensor cores multiply int8 matrices with
 * int32 accumulation at 8x the int32 throughput of CUDA cores, but
 * only as matrix-matrix products. A big integer x can be written in
 * base 2^8 as digits x_j; the product with a *constant* integer n is
 * then
 *
 *     x * n = sum_i C_i * 2^(8i),   C_i = sum_j x_j * n_(i-j),
 *
 * i.e. each column sum C_i is one dot product of the digit vector of
 * x with a shifted copy of the digits of n. Arranging those shifted
 * copies as the columns of a constant matrix matB turns the whole
 * multiplication into one matrix product (Figure 6) whose outputs are
 * carry-free column sums. For all curves in the paper, each C_i
 * accumulates at most ceil(753/8) = 95 byte products and therefore
 * has at most 23 significant bits, which is what makes the
 * compaction of Section 4.3 (and compaction.h here) possible.
 *
 * This module is the bit-exact functional model of that data path:
 * digit decomposition, matB construction, and the column-sum product.
 */

#ifndef DISTMSM_TCMUL_DIGIT_MATRIX_H
#define DISTMSM_TCMUL_DIGIT_MATRIX_H

#include <cstdint>
#include <vector>

#include "src/bigint/bigint.h"

namespace distmsm::tcmul {

/** Base-2^8 digits of a big integer, least significant first. */
template <std::size_t N>
std::vector<std::uint8_t>
toDigits(const BigInt<N> &v)
{
    std::vector<std::uint8_t> digits(8 * N);
    for (std::size_t i = 0; i < 8 * N; ++i)
        digits[i] = static_cast<std::uint8_t>(v.limb[i / 8] >>
                                              (8 * (i % 8)));
    return digits;
}

/** Reassemble base-2^8 digits into a big integer (must fit). */
template <std::size_t N>
BigInt<N>
fromDigits(const std::vector<std::uint8_t> &digits)
{
    BigInt<N> v{};
    for (std::size_t i = 0; i < digits.size() && i < 8 * N; ++i)
        v.limb[i / 8] |= static_cast<std::uint64_t>(digits[i])
                         << (8 * (i % 8));
    return v;
}

/**
 * The constant matrix matB of Figure 6 for multiplier digits of
 * length @p k_digits and the constant @p n_digits: column i holds the
 * digits of n shifted so that row j contributes n_(i-j).
 *
 * Stored row-major: entry(j, i) = b[j * cols + i].
 */
class ConstantMatrix
{
  public:
    ConstantMatrix(const std::vector<std::uint8_t> &n_digits,
                   std::size_t k_digits)
        : rows_(k_digits), cols_(k_digits + n_digits.size()),
          b_(rows_ * cols_, 0)
    {
        for (std::size_t j = 0; j < rows_; ++j) {
            for (std::size_t d = 0; d < n_digits.size(); ++d)
                b_[j * cols_ + (j + d)] = n_digits[d];
        }
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    std::uint8_t
    entry(std::size_t row, std::size_t col) const
    {
        return b_[row * cols_ + col];
    }

    /** Swap two columns (the layout trick of Section 4.3). */
    void
    swapColumns(std::size_t a, std::size_t b)
    {
        for (std::size_t j = 0; j < rows_; ++j)
            std::swap(b_[j * cols_ + a], b_[j * cols_ + b]);
    }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<std::uint8_t> b_;
};

/**
 * Column sums of x * n via the matrix product of Figure 6:
 * out[i] = sum_j x_j * B(j, i). Every element fits well inside
 * uint32 (at most 23 significant bits for <= 95 rows).
 */
std::vector<std::uint32_t>
columnSums(const std::vector<std::uint8_t> &x_digits,
           const ConstantMatrix &mat_b);

/**
 * Number of significant bits needed by any column sum of a product
 * with @p rows byte rows (the paper's 23-bit bound at rows = 95).
 */
unsigned columnSumBits(std::size_t rows);

/** Exact value of sum_i out[i] * 2^(8i) as a wide limb vector. */
template <std::size_t W>
BigInt<W>
accumulateColumns(const std::vector<std::uint32_t> &sums)
{
    BigInt<W> acc{};
    for (std::size_t i = 0; i < sums.size(); ++i) {
        BigInt<W> term{};
        term.limb[0] = sums[i];
        acc.addInPlace(term.shl(8 * i));
    }
    return acc;
}

} // namespace distmsm::tcmul

#endif // DISTMSM_TCMUL_DIGIT_MATRIX_H
