#include "src/tcmul/fragment.h"

#include "src/support/check.h"

namespace distmsm::tcmul {

int
owningThread(int row, int slot_col)
{
    const int lane_group = (slot_col % kTileCols) / kFragmentElems;
    return (row % kTileRows) * 4 + lane_group;
}

std::vector<int>
compactionPermutation(int cols)
{
    DISTMSM_REQUIRE(cols % 16 == 0,
                    "permutation defined on 16-column groups");
    std::vector<int> perm(cols);
    for (int i = 0; i < cols; ++i)
        perm[i] = i;
    for (int group = 0; group < cols; group += 16) {
        for (int l = 0; l < 2; ++l) {
            for (int k = 0; k < 2; ++k) {
                std::swap(perm[group + 4 * l + 2 + k],
                          perm[group + 8 + 4 * l + k]);
            }
        }
    }
    return perm;
}

std::vector<std::vector<int>>
ownedColumns(int row, int cols, const std::vector<int> &perm)
{
    DISTMSM_REQUIRE(static_cast<int>(perm.size()) == cols,
                    "permutation size mismatch");
    std::vector<std::vector<int>> owned(kWarpSize);
    for (int slot = 0; slot < cols; ++slot)
        owned[owningThread(row, slot)].push_back(perm[slot]);
    return owned;
}

std::vector<std::uint32_t>
permuteSums(const std::vector<std::uint32_t> &sums,
            const std::vector<int> &perm)
{
    DISTMSM_REQUIRE(perm.size() == sums.size(), "size mismatch");
    std::vector<std::uint32_t> out(sums.size());
    for (std::size_t slot = 0; slot < perm.size(); ++slot)
        out[slot] = sums[perm[slot]];
    return out;
}

} // namespace distmsm::tcmul
