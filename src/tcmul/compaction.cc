#include "src/tcmul/compaction.h"

#include "src/tcmul/digit_matrix.h"

namespace distmsm::tcmul {

std::vector<std::uint64_t>
compactColumns(const std::vector<std::uint32_t> &sums)
{
    std::vector<std::uint64_t> out((sums.size() + 3) / 4, 0);
    for (std::size_t i = 0; i < sums.size(); ++i) {
        out[i / 4] += static_cast<std::uint64_t>(sums[i])
                      << (8 * (i % 4));
    }
    return out;
}

unsigned
compactedBits(std::size_t rows)
{
    // Highest lane is shifted by 24 bits; lower lanes add at most
    // one more bit.
    return columnSumBits(rows) + 24 + 1;
}

std::size_t
rawTrafficBytes(std::size_t cols)
{
    return 4 * cols;
}

std::size_t
compactedTrafficBytes(std::size_t cols)
{
    return 4 * (cols / 4);
}

} // namespace distmsm::tcmul
