/**
 * @file
 * Simulated time breakdown of one MSM execution.
 */

#ifndef DISTMSM_MSM_TIMELINE_H
#define DISTMSM_MSM_TIMELINE_H

#include "src/gpusim/collectives.h"
#include "src/gpusim/cost_model.h"

namespace distmsm::msm {

/** Per-step simulated times (ns) for one MSM. */
struct MsmTimeline
{
    double scatterNs = 0.0;
    double bucketSumNs = 0.0;
    /** Bucket-reduce on its executor (GPU or host, see cpuReduce). */
    double bucketReduceNs = 0.0;
    double windowReduceNs = 0.0;
    double transferNs = 0.0;
    /**
     * Checksum verification (Section "fault model"): each device
     * folds its per-window partial sums into one RLC digest before
     * the gather, and the host re-derives the digest from the
     * received points. Host-side cost; overlaps the GPU stage like
     * the CPU bucket-reduce does. Zero when verification is off, so
     * every pre-existing timeline is unchanged.
     */
    double verifyNs = 0.0;
    /**
     * One-time fixed-base table construction (plan.precompute).
     * Excluded from totalNs(): the tables depend only on the bases,
     * so a proving service amortizes the build across every proof
     * sharing the proving key (BaseTableCache); steady-state MSM
     * latency is what totalNs() reports. Cold-start cost is this
     * field, surfaced separately in traces and benchmarks.
     */
    double tableBuildNs = 0.0;
    /**
     * Straggler penalty on the critical path (gpusim/faults.h
     * degrade/hang clauses): with the watchdog on, the worst
     * device's wait until its window's speculative copy (or the
     * straggling original, whichever is priced earlier) completes;
     * with it off, the full stall behind the slowest device — for a
     * hang, the transfer timeout. Zero on fault-free runs, so every
     * pre-existing timeline is unchanged.
     */
    double stragglerNs = 0.0;
    /**
     * Expected exponential-backoff wait ahead of transfer retries
     * (flaky / persistently corrupt devices). Zero without such
     * faults.
     */
    double backoffNs = 0.0;
    /** True when bucket-reduce runs on the host CPU. */
    bool cpuReduce = false;
    /**
     * The merge strategy transferNs was priced with (the plan's
     * tuner-resolved collective), plus the per-strategy predictions
     * for the same merge so traces and benches can show the
     * gather-vs-ring-vs-tree-vs-reduce-scatter spread. Gather with
     * all-zero costs before the estimator runs.
     */
    gpusim::CollectiveAlgo collective = gpusim::CollectiveAlgo::Gather;
    gpusim::CollectiveCosts mergeCosts;
    /**
     * The field-arithmetic backend every EC kernel above was priced
     * under (the plan's resolved MsmOptions::fieldBackend). CudaCore
     * until an estimator stamps it.
     */
    gpusim::FieldBackend fieldBackend = gpusim::FieldBackend::CudaCore;
    /**
     * True when the CPU reduce overlaps GPU work (Section 3.2.3:
     * proof generation pipelines several MSMs, so the host reduce of
     * one window hides behind the GPU work of the next).
     */
    bool reduceOverlapped = false;

    /** GPU compute time (kernels only, no transfers). */
    double
    gpuNs() const
    {
        return scatterNs + bucketSumNs +
               (cpuReduce ? 0.0 : bucketReduceNs);
    }

    /**
     * The overlappable GPU stage: kernels plus the device-to-host
     * transfer. Section 3.2.3 models transfers as overlapping the
     * *host* reduce (the sums of window w stream out while the GPU
     * scatters window w+1), so the transfer belongs to the GPU stage
     * that the host reduce can hide behind — the same stage the
     * pipeline estimator treats as one MSM's GPU occupancy.
     */
    double
    gpuStageNs() const
    {
        return gpuNs() + transferNs;
    }

    /**
     * Host-side work, ignoring overlap: the CPU bucket-reduce (when
     * placed on the host) plus the final window reduce.
     */
    double
    hostStageNs() const
    {
        return (cpuReduce ? bucketReduceNs : 0.0) + verifyNs +
               windowReduceNs;
    }

    /**
     * End-to-end simulated time with the overlap rules applied.
     *
     * The host bucket-reduce hides behind the GPU stage —
     * gpuStageNs(), *including* the transfer — except for its
     * non-overlappable tail; the window reduce always serializes at
     * the end. This is the same decomposition
     * estimateProvingPipeline uses (gpu stage + exposed host tail),
     * so a one-task pipeline's makespan equals totalNs() exactly.
     */
    double
    totalNs() const
    {
        double host = windowReduceNs;
        // Digest verification joins the CPU bucket-reduce in the
        // overlappable host stage: both run while the GPUs work on
        // the next pipelined MSM, so only their combined tail beyond
        // gpuStageNs() is exposed.
        const double overlappable =
            verifyNs + (cpuReduce ? bucketReduceNs : 0.0);
        if (reduceOverlapped) {
            host += overlappable > gpuStageNs()
                        ? overlappable - gpuStageNs()
                        : 0.0;
        } else {
            host += overlappable;
        }
        // Straggler and backoff penalties serialize: the merge
        // cannot finish before the slowest window's adopted copy,
        // and backoff is dead wire time. They live outside
        // gpuStageNs() so the fault-free pipeline equality
        // (1-task pipelinedNs == totalNs) is untouched.
        return gpuStageNs() + host + stragglerNs + backoffNs;
    }

    double totalMs() const { return totalNs() / 1e6; }
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_TIMELINE_H
