/**
 * @file
 * Simulated time breakdown of one MSM execution.
 */

#ifndef DISTMSM_MSM_TIMELINE_H
#define DISTMSM_MSM_TIMELINE_H

namespace distmsm::msm {

/** Per-step simulated times (ns) for one MSM. */
struct MsmTimeline
{
    double scatterNs = 0.0;
    double bucketSumNs = 0.0;
    /** Bucket-reduce on its executor (GPU or host, see cpuReduce). */
    double bucketReduceNs = 0.0;
    double windowReduceNs = 0.0;
    double transferNs = 0.0;
    /** True when bucket-reduce runs on the host CPU. */
    bool cpuReduce = false;
    /**
     * True when the CPU reduce overlaps GPU work (Section 3.2.3:
     * proof generation pipelines several MSMs, so the host reduce of
     * one window hides behind the GPU work of the next).
     */
    bool reduceOverlapped = false;

    /** GPU-side time. */
    double
    gpuNs() const
    {
        return scatterNs + bucketSumNs +
               (cpuReduce ? 0.0 : bucketReduceNs);
    }

    /** End-to-end simulated time with the overlap rules applied. */
    double
    totalNs() const
    {
        double host = windowReduceNs;
        if (cpuReduce) {
            if (reduceOverlapped) {
                // The host reduce hides behind GPU work except for
                // its non-overlappable tail after the last window.
                host += bucketReduceNs > gpuNs()
                            ? bucketReduceNs - gpuNs()
                            : 0.0;
            } else {
                host += bucketReduceNs;
            }
        }
        return gpuNs() + host + transferNs;
    }

    double totalMs() const { return totalNs() / 1e6; }
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_TIMELINE_H
