/**
 * @file
 * Bucket-reduce implementations (paper Sections 2.3 and 3.2.3).
 *
 * Bucket-reduce turns per-bucket sums B_1 .. B_(M-1) into the window
 * result sum_i i * B_i. Three implementations:
 *
 *  - bucketReduceSerial: the textbook two-running-sums pass
 *    (2 (M-1) PADDs); what the host CPU executes when DistMSM
 *    offloads the step (Section 3.2.3).
 *  - bucketReduceChunked: the parallel form production GPU
 *    libraries use — T chunks reduced independently with local
 *    running sums, each chunk's total weighted by its base index,
 *    then combined; functional model of the GPU-resident reduce.
 *  - bucketReduceWeighted: the paper's "compute 2^i B_i prior to
 *    parallel reduction" formulation, which scales every bucket
 *    independently (s PADD + s PDBL each) — embarrassingly parallel
 *    but much more total work; this inefficiency is why Section
 *    3.2.3 moves the step to the CPU.
 *
 * All three return identical points (asserted by the tests).
 */

#ifndef DISTMSM_MSM_BUCKET_REDUCE_H
#define DISTMSM_MSM_BUCKET_REDUCE_H

#include <vector>

#include "src/ec/point.h"
#include "src/field/backend.h"
#include "src/support/check.h"

namespace distmsm::msm {

/** Op tallies of one reduce execution. */
struct ReduceStats
{
    std::uint64_t padds = 0;
    std::uint64_t pdbls = 0;
};

/**
 * Serial running sums: for i from M-1 down to 1,
 * running += B_i; acc += running. Returns sum_i i * B_i.
 *
 * Field-backend attribution: this is the CPU-offloaded step, so its
 * field arithmetic always executes CIOS even when the calling thread
 * holds a tensor-core field::TcBackendScope — the host has no tensor
 * cores. The device-resident forms below (chunked / weighted) model
 * GPU kernels and inherit the caller's scope instead.
 */
template <typename Curve>
XYZZPoint<Curve>
bucketReduceSerial(const std::vector<XYZZPoint<Curve>> &buckets,
                   ReduceStats *stats = nullptr)
{
    using Xyzz = XYZZPoint<Curve>;
    const field::TcBackendScope host_scope(false);
    Xyzz running = Xyzz::identity();
    Xyzz acc = Xyzz::identity();
    for (std::size_t b = buckets.size(); b-- > 1;) {
        running = padd(running, buckets[b]);
        acc = padd(acc, running);
        if (stats)
            stats->padds += 2;
    }
    return acc;
}

/** k * P for a small non-negative integer k (double-and-add). */
template <typename Curve>
XYZZPoint<Curve>
smallMultiple(const XYZZPoint<Curve> &p, std::uint64_t k,
              ReduceStats *stats = nullptr)
{
    using Xyzz = XYZZPoint<Curve>;
    Xyzz acc = Xyzz::identity();
    for (int bit = 63; bit >= 0; --bit) {
        if (!acc.isIdentity()) {
            acc = pdbl(acc);
            if (stats)
                ++stats->pdbls;
        }
        if ((k >> bit) & 1) {
            acc = padd(acc, p);
            if (stats)
                ++stats->padds;
        }
    }
    return acc;
}

/**
 * Chunked parallel reduce with @p num_chunks workers:
 * sum_{i in chunk} i*B_i = (local running sums relative to the
 * chunk base) + base * (chunk bucket total); chunk results are
 * combined pairwise.
 */
template <typename Curve>
XYZZPoint<Curve>
bucketReduceChunked(const std::vector<XYZZPoint<Curve>> &buckets,
                    std::size_t num_chunks,
                    ReduceStats *stats = nullptr)
{
    using Xyzz = XYZZPoint<Curve>;
    DISTMSM_REQUIRE(num_chunks >= 1, "need at least one chunk");
    const std::size_t m = buckets.size();
    std::vector<Xyzz> partials;
    for (std::size_t c = 0; c < num_chunks; ++c) {
        // Chunk over buckets [lo, hi), skipping bucket 0.
        const std::size_t lo =
            std::max<std::size_t>(1, 1 + (m - 1) * c / num_chunks);
        const std::size_t hi = 1 + (m - 1) * (c + 1) / num_chunks;
        if (lo >= hi)
            continue;
        Xyzz running = Xyzz::identity();
        Xyzz local = Xyzz::identity();
        Xyzz total = Xyzz::identity();
        for (std::size_t b = hi; b-- > lo;) {
            running = padd(running, buckets[b]);
            local = padd(local, running);
            if (stats)
                stats->padds += 2;
        }
        total = running; // sum of the chunk's buckets
        // local = sum (i - lo + 1) * B_i, so
        // sum_{i in [lo,hi)} i * B_i = local + (lo - 1) * total.
        Xyzz weighted = smallMultiple(total, lo - 1, stats);
        partials.push_back(padd(local, weighted));
        if (stats)
            ++stats->padds;
    }
    // Pairwise combine (the log2 tree of Section 3.1's tail).
    while (partials.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(padd(partials[i], partials[i + 1]));
            if (stats)
                ++stats->padds;
        }
        if (partials.size() % 2 == 1)
            next.push_back(partials.back());
        partials = std::move(next);
    }
    return partials.empty() ? Xyzz::identity() : partials.front();
}

/**
 * The paper's weighted form: scale every bucket to i * B_i
 * independently, then tree-reduce. Correct but work-inflated —
 * the motivation for the CPU offload.
 */
template <typename Curve>
XYZZPoint<Curve>
bucketReduceWeighted(const std::vector<XYZZPoint<Curve>> &buckets,
                     ReduceStats *stats = nullptr)
{
    using Xyzz = XYZZPoint<Curve>;
    std::vector<Xyzz> weighted;
    weighted.reserve(buckets.size());
    for (std::size_t i = 1; i < buckets.size(); ++i) {
        if (buckets[i].isIdentity())
            continue;
        weighted.push_back(smallMultiple(buckets[i], i, stats));
    }
    while (weighted.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < weighted.size(); i += 2) {
            next.push_back(padd(weighted[i], weighted[i + 1]));
            if (stats)
                ++stats->padds;
        }
        if (weighted.size() % 2 == 1)
            next.push_back(weighted.back());
        weighted = std::move(next);
    }
    return weighted.empty() ? Xyzz::identity() : weighted.front();
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_BUCKET_REDUCE_H
