#include "src/msm/autoplan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/msm/pipeline.h"
#include "src/sched/schedule_search.h"
#include "src/support/trace.h"

namespace distmsm::msm {
namespace {

using gpusim::CollectiveAlgo;
using gpusim::CollectivePolicy;
using gpusim::CurveProfile;
using gpusim::FieldBackend;

/** One point of the search space: the searchable MsmOptions knobs.
 *  windowBits 0 defers to the workload model, exactly like
 *  MsmOptions::windowBitsOverride. */
struct Candidate
{
    unsigned windowBits = 0;
    bool signedDigits = false;
    bool glv = false;
    bool batchAffine = false;
    bool precompute = false;
    bool cpuBucketReduce = true;
    FieldBackend fieldBackend = FieldBackend::Auto;
    CollectivePolicy collective = CollectivePolicy::Gather;
    int threadsPerBucket = 1;
    /** Pricing knobs (MsmOptions::pipelineDepth/devicePartitions):
     *  0 passes the search sentinel through, which planMsmHeuristic
     *  resolves to 1 — identical to an explicit 1. */
    int pipelineDepth = 1;
    int devicePartitions = 1;
};

/** The caller's own knobs as a candidate — the search's seed. */
Candidate
seedCandidate(const MsmOptions &base)
{
    Candidate c;
    c.windowBits = base.windowBitsOverride;
    c.signedDigits = base.signedDigits;
    c.glv = base.glv;
    c.batchAffine = base.batchAffine;
    c.precompute = base.precompute;
    c.cpuBucketReduce = base.cpuBucketReduce;
    c.fieldBackend = base.fieldBackend;
    c.collective = base.collective;
    c.threadsPerBucket = base.threadsPerBucket;
    c.pipelineDepth = base.pipelineDepth;
    c.devicePartitions = base.devicePartitions;
    return c;
}

/**
 * Scoring probe: the caller's options with the candidate's knobs
 * applied. Planner pinned to Heuristic (the probe flows through
 * planMsmHeuristic / estimateDistMsmWithPlan, never back into the
 * search) and the trace detached (thousands of probes must not spam
 * the caller's timeline).
 */
MsmOptions
realize(const MsmOptions &base, const Candidate &c)
{
    MsmOptions o = base;
    o.planner = PlannerMode::Heuristic;
    o.trace = nullptr;
    o.windowBitsOverride = c.windowBits;
    o.signedDigits = c.signedDigits;
    o.glv = c.glv;
    o.batchAffine = c.batchAffine;
    o.precompute = c.precompute;
    o.cpuBucketReduce = c.cpuBucketReduce;
    o.fieldBackend = c.fieldBackend;
    o.collective = c.collective;
    o.threadsPerBucket = c.threadsPerBucket;
    o.pipelineDepth = c.pipelineDepth;
    o.devicePartitions = c.devicePartitions;
    return o;
}

/**
 * DISTMSM_AUTOPLAN_BEAM: a positive width turns the exhaustive
 * enumeration into a staged beam search (see searchPlans); unset,
 * empty, or <= 0 keeps the exhaustive default.
 */
int
beamWidthFromEnv()
{
    const char *v = std::getenv("DISTMSM_AUTOPLAN_BEAM");
    if (v == nullptr || *v == '\0')
        return 0;
    return std::atoi(v);
}

/** Deterministic 64-bit FNV-1a over the fingerprint string. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Cache key: everything the search's answer depends on — curve, N,
 * topology fingerprint, device spec, host spec, cost params, and the
 * full option mask (each searchable knob's *starting* value pins or
 * seeds a dimension, and the fixed knobs shape every score).
 */
std::uint64_t
cacheKey(const CurveProfile &curve, std::uint64_t n,
         const gpusim::Cluster &cluster, const MsmOptions &o)
{
    std::ostringstream s;
    s.precision(17);
    s << "v2|" << curve.name << '|' << curve.fieldBits << '|'
      << curve.scalarBits << '|' << curve.aIsZero << '|'
      << curve.glvScalarBits << '|' << n << '|'
      << cluster.topology().describe() << '|';
    const auto &d = cluster.device();
    s << d.name << '|' << d.smCount << '|' << d.maxThreadsPerSm << '|'
      << d.registersPerSm << '|' << d.maxRegistersPerThread << '|'
      << d.sharedMemPerSm << '|' << d.globalMemBytes << '|'
      << d.clockGhz << '|' << d.int32Tops << '|' << d.tensorInt8Tops
      << '|' << d.fp32Tflops << '|' << d.memBandwidthGBs << '|'
      << d.sharedBandwidthRatio << '|' << d.globalAtomicNs << '|'
      << d.globalAtomicConflictNs << '|' << d.sharedAtomicNs << '|'
      << d.sharedAtomicConflictNs << '|' << d.transferBandwidthGBs
      << '|' << d.transferLatencyUs << '|';
    const auto &h = cluster.host();
    s << h.name << '|' << h.cores << '|' << h.gpuToCpuEcRatio << '|';
    const auto &p = cluster.model().params();
    s << p.opsPerMac << '|' << p.opsPerAdd << '|' << p.auxRegisters
      << '|' << p.saturationThreadsPerSm << '|' << p.tcOpsPerByteMac
      << '|' << p.tcMarshalOpsPerOffloadedMac << '|'
      << p.compactWideMarshalFactor << '|' << p.scatterOpsPerElement
      << '|' << p.kernelLaunchUs << '|' << p.tcRawStoreOpsPerLimb
      << '|';
    s << o.windowBitsOverride << '|' << o.hierarchicalScatter << '|'
      << o.cpuBucketReduce << '|' << o.overlapReduce << '|'
      << o.threadsPerBucket << '|' << o.signedDigits << '|'
      << o.precompute << '|' << o.glv << '|' << o.batchAffine << '|'
      << static_cast<int>(o.collective) << '|'
      << o.kernel.dedicatedPacc << o.kernel.optimalOrder
      << o.kernel.explicitSpill << o.kernel.tensorCoreMont
      << o.kernel.onTheFlyCompact << '|'
      << static_cast<int>(o.fieldBackend) << '|'
      << o.scatter.blockDim << '|' << o.scatter.gridDim << '|'
      << o.scatter.sharedBytesPerBlock << '|'
      << o.scatter.localIdBytes << '|' << o.scatter.globalIdBytes
      << '|' << o.scatter.uncoalescedWriteFactor << '|'
      << o.verifyChecksums << '|' << o.pipelineDepth << '|'
      << o.devicePartitions << '|' << beamWidthFromEnv();
    return fnv1a(s.str());
}

/** Everything a cache hit must reproduce without re-searching. */
struct CacheEntry
{
    MsmPlan plan;
    Candidate winner;
    double searchedNs = 0.0;
    double heuristicNs = 0.0;
};

/** One TSV record, every field an exact integer except the two
 *  timings (%.17g round-trips doubles). */
std::string
formatEntry(std::uint64_t key, const CacheEntry &e)
{
    char ns[64];
    std::snprintf(ns, sizeof ns, "%.17g\t%.17g", e.searchedNs,
                  e.heuristicNs);
    std::ostringstream s;
    const MsmPlan &p = e.plan;
    const Candidate &c = e.winner;
    s << key << '\t' << p.windowBits << '\t' << p.numWindows << '\t'
      << p.scalarBits << '\t' << p.glv << '\t' << p.numBuckets << '\t'
      << p.signedDigits << '\t' << p.gpusPerWindow << '\t'
      << p.windowsPerGpu << '\t' << p.threadsPerBucket << '\t'
      << p.bucketsSplitAcrossGpus << '\t' << p.precompute << '\t'
      << p.tableBytes << '\t' << static_cast<int>(p.collective)
      << '\t' << p.mergeBytesPerGpu << '\t'
      << static_cast<int>(p.fieldBackend) << '\t'
      << p.fieldBackendAuto << '\t' << p.pipelineDepth << '\t'
      << p.devicePartitions << '\t' << c.windowBits << '\t'
      << c.signedDigits << '\t' << c.glv << '\t' << c.batchAffine
      << '\t' << c.precompute << '\t' << c.cpuBucketReduce << '\t'
      << static_cast<int>(c.fieldBackend) << '\t'
      << static_cast<int>(c.collective) << '\t'
      << c.threadsPerBucket << '\t' << c.pipelineDepth << '\t'
      << c.devicePartitions << '\t' << ns;
    return s.str();
}

bool
parseEntry(const std::string &line, std::uint64_t &key, CacheEntry &e)
{
    std::istringstream s(line);
    long long pi[18];
    long long ci[11];
    double ns[2];
    if (!(s >> key))
        return false;
    for (long long &v : pi)
        if (!(s >> v))
            return false;
    for (long long &v : ci)
        if (!(s >> v))
            return false;
    for (double &v : ns)
        if (!(s >> v))
            return false;
    MsmPlan &p = e.plan;
    p.windowBits = static_cast<unsigned>(pi[0]);
    p.numWindows = static_cast<unsigned>(pi[1]);
    p.scalarBits = static_cast<unsigned>(pi[2]);
    p.glv = pi[3] != 0;
    p.numBuckets = static_cast<std::uint64_t>(pi[4]);
    p.signedDigits = pi[5] != 0;
    p.gpusPerWindow = static_cast<int>(pi[6]);
    p.windowsPerGpu = static_cast<unsigned>(pi[7]);
    p.threadsPerBucket = static_cast<int>(pi[8]);
    p.bucketsSplitAcrossGpus = pi[9] != 0;
    p.precompute = pi[10] != 0;
    p.tableBytes = static_cast<std::uint64_t>(pi[11]);
    p.collective = static_cast<CollectiveAlgo>(pi[12]);
    p.mergeBytesPerGpu = static_cast<std::uint64_t>(pi[13]);
    p.fieldBackend = static_cast<FieldBackend>(pi[14]);
    p.fieldBackendAuto = pi[15] != 0;
    p.pipelineDepth = static_cast<int>(pi[16]);
    p.devicePartitions = static_cast<int>(pi[17]);
    Candidate &c = e.winner;
    c.windowBits = static_cast<unsigned>(ci[0]);
    c.signedDigits = ci[1] != 0;
    c.glv = ci[2] != 0;
    c.batchAffine = ci[3] != 0;
    c.precompute = ci[4] != 0;
    c.cpuBucketReduce = ci[5] != 0;
    c.fieldBackend = static_cast<FieldBackend>(ci[6]);
    c.collective = static_cast<CollectivePolicy>(ci[7]);
    c.threadsPerBucket = static_cast<int>(ci[8]);
    c.pipelineDepth = static_cast<int>(ci[9]);
    c.devicePartitions = static_cast<int>(ci[10]);
    e.searchedNs = ns[0];
    e.heuristicNs = ns[1];
    return true;
}

/**
 * In-process view of the persisted plan cache: a map loaded lazily
 * from the cache file, with misses appended back. The file lives at
 * DISTMSM_PLAN_CACHE, else $XDG_CACHE_HOME/distmsm/plans.tsv, else
 * $HOME/.cache/distmsm/plans.tsv; with none of the three variables
 * set the cache degrades to in-memory only.
 */
class PlanCache
{
  public:
    static PlanCache &
    instance()
    {
        static PlanCache cache;
        return cache;
    }

    bool
    lookup(std::uint64_t key, CacheEntry &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        loadLocked();
        auto it = entries_.find(key);
        if (it == entries_.end())
            return false;
        out = it->second;
        return true;
    }

    void
    store(std::uint64_t key, const CacheEntry &entry)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        loadLocked();
        if (!entries_.emplace(key, entry).second)
            return;
        if (path_.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path_).parent_path(), ec);
        std::ofstream os(path_, std::ios::app);
        if (os)
            os << formatEntry(key, entry) << '\n';
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
        loaded_ = false;
    }

  private:
    PlanCache() = default;

    static std::string
    defaultPath()
    {
        if (const char *p = std::getenv("DISTMSM_PLAN_CACHE"))
            return p;
        if (const char *xdg = std::getenv("XDG_CACHE_HOME"))
            return std::string(xdg) + "/distmsm/plans.tsv";
        if (const char *home = std::getenv("HOME"))
            return std::string(home) + "/.cache/distmsm/plans.tsv";
        return {};
    }

    void
    loadLocked()
    {
        if (loaded_)
            return;
        loaded_ = true;
        path_ = defaultPath();
        if (path_.empty())
            return;
        std::ifstream is(path_);
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t key = 0;
            CacheEntry e;
            if (parseEntry(line, key, e))
                entries_.emplace(key, e);
        }
    }

    std::mutex mutex_;
    bool loaded_ = false;
    std::string path_;
    std::unordered_map<std::uint64_t, CacheEntry> entries_;
};

/** Window-bits dimension: the caller's pin, or the model's pick (0)
 *  bracketed two bits each way within the planner's [4, 24] range. */
std::vector<unsigned>
windowCandidates(const MsmOptions &base, unsigned heuristic_bits)
{
    if (base.windowBitsOverride != 0)
        return {base.windowBitsOverride};
    std::vector<unsigned> out{0};
    for (int d = -2; d <= 2; ++d) {
        const int s = static_cast<int>(heuristic_bits) + d;
        if (s >= 4 && s <= 24)
            out.push_back(static_cast<unsigned>(s));
    }
    return out;
}

/**
 * Score one realized candidate: heuristic plan + analytic timeline.
 *
 * At pipelineDepth 1 x devicePartitions 1 (the default, and what the
 * heuristic seed resolves to) the score is exactly totalNs() — the
 * pre-existing objective, so the search-never-loses contract holds
 * bit-exactly. Deeper candidates are scored as a two-stage flow shop
 * (pipeline.h): depth d keeps d MSMs in flight per partition, and
 * splitting the cluster into k partitions runs k independent streams
 * whose GPU stages each take ~k times longer (1/k of the devices);
 * the objective is the amortized per-MSM makespan, which rewards
 * depth exactly when the exposed host tail can hide behind another
 * MSM's GPU stage.
 */
double
scoreCandidate(const CurveProfile &curve, std::uint64_t n,
               const gpusim::Cluster &cluster,
               const MsmOptions &probe, MsmPlan &plan_out)
{
    plan_out = planMsmHeuristic(curve, n, cluster, probe);
    const MsmTimeline t =
        estimateDistMsmWithPlan(curve, n, cluster, probe, plan_out);
    const int d = plan_out.pipelineDepth;
    const int k = plan_out.devicePartitions;
    if (d <= 1 && k <= 1)
        return t.totalNs();
    const PipelineTask task{t.gpuStageNs() * k,
                            t.totalNs() - t.gpuStageNs()};
    const std::vector<PipelineTask> tasks(
        static_cast<std::size_t>(d) * static_cast<std::size_t>(k),
        task);
    return pipelineMakespanNs(tasks) / static_cast<double>(d * k);
}

/** The knob value lists one search enumerates (fixed order; a
 *  pinned option collapses its dimension to a singleton). */
struct SearchDims
{
    std::vector<unsigned> windows;
    std::vector<bool> toggles{false, true};
    std::vector<bool> glvs;
    std::vector<bool> cpuReduce;
    std::vector<FieldBackend> backends;
    std::vector<CollectivePolicy> collectives;
    std::vector<int> tpbs;
    std::vector<int> depths;
    std::vector<int> partitions;

    std::uint64_t
    space() const
    {
        return static_cast<std::uint64_t>(windows.size()) *
               toggles.size() * glvs.size() * toggles.size() *
               toggles.size() * cpuReduce.size() * backends.size() *
               collectives.size() * tpbs.size() * depths.size() *
               partitions.size();
    }
};

SearchDims
buildDims(const CurveProfile &curve, const gpusim::Cluster &cluster,
          const MsmOptions &base, const MsmPlan &seed_plan)
{
    SearchDims d;
    d.windows = windowCandidates(base, seed_plan.windowBits);
    d.glvs = curve.glvScalarBits == 0 ? std::vector<bool>{false}
                                      : std::vector<bool>{false, true};
    d.tpbs = {base.threadsPerBucket};
    if (2 * seed_plan.threadsPerBucket != base.threadsPerBucket)
        d.tpbs.push_back(2 * seed_plan.threadsPerBucket);
    if (base.fieldBackend != FieldBackend::Auto) {
        d.backends = {base.fieldBackend};
    } else if (!base.kernel.tensorCoreMont) {
        // Auto must not resurrect an explicitly stripped variant.
        d.backends = {FieldBackend::CudaCore};
    } else {
        d.backends = {FieldBackend::CudaCore,
                      FieldBackend::TensorCore};
    }
    if (base.collective == CollectivePolicy::Ring ||
        base.collective == CollectivePolicy::Tree ||
        base.collective == CollectivePolicy::ReduceScatter) {
        d.collectives = {base.collective};
    } else {
        // Gather (the legacy default) and Auto both mean "merge
        // strategy not pinned": search the four concrete
        // strategies against the full timeline, which sees overlap
        // effects the link tuner's local argmin cannot.
        d.collectives = {CollectivePolicy::Gather,
                         CollectivePolicy::Ring,
                         CollectivePolicy::Tree,
                         CollectivePolicy::ReduceScatter};
    }
    d.cpuReduce = base.cpuBucketReduce ? std::vector<bool>{false, true}
                                       : std::vector<bool>{false};
    // Pipeline depth / device partitions: 0 opts the dimension into
    // the search; any explicit value pins it. Partitions must divide
    // the cluster evenly (the heuristic falls back to 1 otherwise).
    if (base.pipelineDepth == 0)
        d.depths = {1, 2, 4};
    else
        d.depths = {std::max(1, base.pipelineDepth)};
    if (base.devicePartitions == 0) {
        for (const int k : {1, 2, 4})
            if (k <= cluster.numGpus() && cluster.numGpus() % k == 0)
                d.partitions.push_back(k);
    } else {
        d.partitions = {std::max(1, base.devicePartitions)};
    }
    return d;
}

/** The search proper (no cache involvement). */
AutoPlanResult
searchPlans(const CurveProfile &curve, std::uint64_t n,
            const gpusim::Cluster &cluster, const MsmOptions &base)
{
    // The driver tracks the winning *candidate*; plans are cheap to
    // re-derive, and keying on the candidate keeps the tie-break
    // story identical to the kernel scheduler's.
    sched::SearchDriver<Candidate, double> driver;

    const Candidate seed = seedCandidate(base);
    MsmPlan seed_plan;
    const double seed_ns =
        scoreCandidate(curve, n, cluster, realize(base, seed),
                       seed_plan);
    driver.seed(seed, seed_ns);

    const SearchDims dims = buildDims(curve, cluster, base, seed_plan);
    const auto score = [&](const Candidate &c) {
        MsmPlan plan;
        return scoreCandidate(curve, n, cluster, realize(base, c),
                              plan);
    };

    const int beam = beamWidthFromEnv();
    if (beam > 0) {
        // Staged beam: fix one knob per stage, keeping the `beam`
        // best partially-refined candidates (every unfixed knob holds
        // its stem's value, so each stem is always a complete,
        // scoreable candidate). Every scored candidate also feeds
        // the driver, and the driver was seeded first — so however
        // narrow the beam, the result never loses to the heuristic
        // seed. Stems carry their scores forward between stages
        // (offered to the next pool unscored); only genuinely new
        // knob values cost an evaluation.
        using Setter = std::function<std::vector<Candidate>(
            const Candidate &)>;
        const std::vector<Setter> stages{
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const unsigned v : dims.windows)
                    if (v != s.windowBits) {
                        out.push_back(s);
                        out.back().windowBits = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const bool v : dims.toggles)
                    if (v != s.signedDigits) {
                        out.push_back(s);
                        out.back().signedDigits = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const bool v : dims.glvs)
                    if (v != s.glv) {
                        out.push_back(s);
                        out.back().glv = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const bool v : dims.toggles)
                    if (v != s.batchAffine) {
                        out.push_back(s);
                        out.back().batchAffine = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const bool v : dims.toggles)
                    if (v != s.precompute) {
                        out.push_back(s);
                        out.back().precompute = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const bool v : dims.cpuReduce)
                    if (v != s.cpuBucketReduce) {
                        out.push_back(s);
                        out.back().cpuBucketReduce = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const FieldBackend v : dims.backends)
                    if (v != s.fieldBackend) {
                        out.push_back(s);
                        out.back().fieldBackend = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const CollectivePolicy v : dims.collectives)
                    if (v != s.collective) {
                        out.push_back(s);
                        out.back().collective = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const int v : dims.tpbs)
                    if (v != s.threadsPerBucket) {
                        out.push_back(s);
                        out.back().threadsPerBucket = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const int v : dims.depths)
                    if (v != s.pipelineDepth) {
                        out.push_back(s);
                        out.back().pipelineDepth = v;
                    }
                return out;
            },
            [&](const Candidate &s) {
                std::vector<Candidate> out;
                for (const int v : dims.partitions)
                    if (v != s.devicePartitions) {
                        out.push_back(s);
                        out.back().devicePartitions = v;
                    }
                return out;
            },
        };
        std::vector<sched::BeamPool<Candidate, double>::Entry> stems{
            {seed, seed_ns}};
        for (const Setter &stage : stages) {
            sched::BeamPool<Candidate, double> pool(beam);
            for (const auto &stem : stems) {
                pool.offer(stem.candidate, stem.score);
                for (const Candidate &c : stage(stem.candidate)) {
                    const double ns = score(c);
                    driver.consider(c, ns);
                    pool.offer(c, ns);
                }
            }
            stems = pool.entries();
        }
        // Everything the narrowed beam never reached counts as
        // pruned — the exhaustive space minus what was scored.
        const std::uint64_t space = dims.space();
        if (space > driver.stats().evaluated)
            driver.prune(space - driver.stats().evaluated);
    } else {
        for (const unsigned w : dims.windows)
            for (const bool sd : dims.toggles)
                for (const bool glv : dims.glvs)
                    for (const bool ba : dims.toggles)
                        for (const bool pre : dims.toggles)
                            for (const bool cpu : dims.cpuReduce)
                                for (const FieldBackend fb :
                                     dims.backends)
                                    for (const CollectivePolicy cp :
                                         dims.collectives)
                                        for (const int tpb : dims.tpbs)
                                            for (const int dep :
                                                 dims.depths)
                                                for (const int par :
                                                     dims.partitions) {
                                                    Candidate c;
                                                    c.windowBits = w;
                                                    c.signedDigits =
                                                        sd;
                                                    c.glv = glv;
                                                    c.batchAffine = ba;
                                                    c.precompute = pre;
                                                    c.cpuBucketReduce =
                                                        cpu;
                                                    c.fieldBackend =
                                                        fb;
                                                    c.collective = cp;
                                                    c.threadsPerBucket =
                                                        tpb;
                                                    c.pipelineDepth =
                                                        dep;
                                                    c.devicePartitions =
                                                        par;
                                                    driver.consider(
                                                        c, score(c));
                                                }
    }

    AutoPlanResult r;
    r.options = realize(base, driver.best());
    r.plan = planMsmHeuristic(curve, n, cluster, r.options);
    // The caller asked Auto (or pinned a backend); whether *this*
    // search or the heuristic's local rule resolved it, the plan's
    // provenance bit reports the caller's contract.
    r.plan.fieldBackendAuto = base.fieldBackend == FieldBackend::Auto;
    r.searchedNs = driver.bestScore();
    r.heuristicNs = seed_ns;
    r.evaluated = driver.stats().evaluated;
    r.pruned = driver.stats().pruned;
    return r;
}

void
recordMetrics(const MsmOptions &base, const AutoPlanResult &r,
              bool cached_mode)
{
    if (base.trace == nullptr)
        return;
    auto &m = base.trace->metrics();
    if (cached_mode)
        m.add(r.cacheHit ? "plan_cache/hits" : "plan_cache/misses",
              1.0);
    m.set("autoplan/evaluated", static_cast<double>(r.evaluated));
    m.set("autoplan/pruned", static_cast<double>(r.pruned));
    m.set("autoplan/cost_model_evals",
          static_cast<double>(r.costModelEvals));
    m.set("autoplan/searched_ns", r.searchedNs);
    m.set("autoplan/heuristic_ns", r.heuristicNs);
    m.set("autoplan/cache_hit", r.cacheHit ? 1.0 : 0.0);
}

} // namespace

AutoPlanResult
autoplanMsm(const CurveProfile &curve, std::uint64_t n,
            const gpusim::Cluster &full_cluster, const MsmOptions &base)
{
    // Quarantined devices shrink the planning fleet before anything
    // is keyed or scored: the cache key covers the topology, so a
    // shrunken fleet gets its own entry (idempotent when planMsm
    // already shrank).
    const gpusim::Cluster cluster =
        planningCluster(full_cluster, base.health);
    const std::uint64_t evals_before =
        gpusim::CostModel::evaluations();
    const bool cached_mode = base.planner == PlannerMode::Cached;

    if (cached_mode) {
        const std::uint64_t key = cacheKey(curve, n, cluster, base);
        CacheEntry entry;
        if (PlanCache::instance().lookup(key, entry)) {
            AutoPlanResult r;
            r.plan = entry.plan;
            r.options = realize(base, entry.winner);
            r.options.trace = base.trace;
            r.searchedNs = entry.searchedNs;
            r.heuristicNs = entry.heuristicNs;
            r.cacheHit = true;
            r.costModelEvals =
                gpusim::CostModel::evaluations() - evals_before;
            recordMetrics(base, r, cached_mode);
            return r;
        }
        AutoPlanResult r = searchPlans(curve, n, cluster, base);
        CacheEntry fresh;
        fresh.plan = r.plan;
        fresh.winner = seedCandidate(r.options);
        fresh.searchedNs = r.searchedNs;
        fresh.heuristicNs = r.heuristicNs;
        PlanCache::instance().store(key, fresh);
        r.options.trace = base.trace;
        r.costModelEvals =
            gpusim::CostModel::evaluations() - evals_before;
        recordMetrics(base, r, cached_mode);
        return r;
    }

    AutoPlanResult r = searchPlans(curve, n, cluster, base);
    r.options.trace = base.trace;
    r.costModelEvals =
        gpusim::CostModel::evaluations() - evals_before;
    recordMetrics(base, r, cached_mode);
    return r;
}

void
resetPlanCacheForTesting()
{
    PlanCache::instance().reset();
}

} // namespace distmsm::msm
