#include "src/msm/autoplan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sched/schedule_search.h"
#include "src/support/trace.h"

namespace distmsm::msm {
namespace {

using gpusim::CollectiveAlgo;
using gpusim::CollectivePolicy;
using gpusim::CurveProfile;
using gpusim::FieldBackend;

/** One point of the search space: the searchable MsmOptions knobs.
 *  windowBits 0 defers to the workload model, exactly like
 *  MsmOptions::windowBitsOverride. */
struct Candidate
{
    unsigned windowBits = 0;
    bool signedDigits = false;
    bool glv = false;
    bool batchAffine = false;
    bool precompute = false;
    bool cpuBucketReduce = true;
    FieldBackend fieldBackend = FieldBackend::Auto;
    CollectivePolicy collective = CollectivePolicy::Gather;
    int threadsPerBucket = 1;
};

/** The caller's own knobs as a candidate — the search's seed. */
Candidate
seedCandidate(const MsmOptions &base)
{
    Candidate c;
    c.windowBits = base.windowBitsOverride;
    c.signedDigits = base.signedDigits;
    c.glv = base.glv;
    c.batchAffine = base.batchAffine;
    c.precompute = base.precompute;
    c.cpuBucketReduce = base.cpuBucketReduce;
    c.fieldBackend = base.fieldBackend;
    c.collective = base.collective;
    c.threadsPerBucket = base.threadsPerBucket;
    return c;
}

/**
 * Scoring probe: the caller's options with the candidate's knobs
 * applied. Planner pinned to Heuristic (the probe flows through
 * planMsmHeuristic / estimateDistMsmWithPlan, never back into the
 * search) and the trace detached (thousands of probes must not spam
 * the caller's timeline).
 */
MsmOptions
realize(const MsmOptions &base, const Candidate &c)
{
    MsmOptions o = base;
    o.planner = PlannerMode::Heuristic;
    o.trace = nullptr;
    o.windowBitsOverride = c.windowBits;
    o.signedDigits = c.signedDigits;
    o.glv = c.glv;
    o.batchAffine = c.batchAffine;
    o.precompute = c.precompute;
    o.cpuBucketReduce = c.cpuBucketReduce;
    o.fieldBackend = c.fieldBackend;
    o.collective = c.collective;
    o.threadsPerBucket = c.threadsPerBucket;
    return o;
}

/** Deterministic 64-bit FNV-1a over the fingerprint string. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Cache key: everything the search's answer depends on — curve, N,
 * topology fingerprint, device spec, host spec, cost params, and the
 * full option mask (each searchable knob's *starting* value pins or
 * seeds a dimension, and the fixed knobs shape every score).
 */
std::uint64_t
cacheKey(const CurveProfile &curve, std::uint64_t n,
         const gpusim::Cluster &cluster, const MsmOptions &o)
{
    std::ostringstream s;
    s.precision(17);
    s << "v1|" << curve.name << '|' << curve.fieldBits << '|'
      << curve.scalarBits << '|' << curve.aIsZero << '|'
      << curve.glvScalarBits << '|' << n << '|'
      << cluster.topology().describe() << '|';
    const auto &d = cluster.device();
    s << d.name << '|' << d.smCount << '|' << d.maxThreadsPerSm << '|'
      << d.registersPerSm << '|' << d.maxRegistersPerThread << '|'
      << d.sharedMemPerSm << '|' << d.globalMemBytes << '|'
      << d.clockGhz << '|' << d.int32Tops << '|' << d.tensorInt8Tops
      << '|' << d.fp32Tflops << '|' << d.memBandwidthGBs << '|'
      << d.sharedBandwidthRatio << '|' << d.globalAtomicNs << '|'
      << d.globalAtomicConflictNs << '|' << d.sharedAtomicNs << '|'
      << d.sharedAtomicConflictNs << '|' << d.transferBandwidthGBs
      << '|' << d.transferLatencyUs << '|';
    const auto &h = cluster.host();
    s << h.name << '|' << h.cores << '|' << h.gpuToCpuEcRatio << '|';
    const auto &p = cluster.model().params();
    s << p.opsPerMac << '|' << p.opsPerAdd << '|' << p.auxRegisters
      << '|' << p.saturationThreadsPerSm << '|' << p.tcOpsPerByteMac
      << '|' << p.tcMarshalOpsPerOffloadedMac << '|'
      << p.compactWideMarshalFactor << '|' << p.scatterOpsPerElement
      << '|' << p.kernelLaunchUs << '|' << p.tcRawStoreOpsPerLimb
      << '|';
    s << o.windowBitsOverride << '|' << o.hierarchicalScatter << '|'
      << o.cpuBucketReduce << '|' << o.overlapReduce << '|'
      << o.threadsPerBucket << '|' << o.signedDigits << '|'
      << o.precompute << '|' << o.glv << '|' << o.batchAffine << '|'
      << static_cast<int>(o.collective) << '|'
      << o.kernel.dedicatedPacc << o.kernel.optimalOrder
      << o.kernel.explicitSpill << o.kernel.tensorCoreMont
      << o.kernel.onTheFlyCompact << '|'
      << static_cast<int>(o.fieldBackend) << '|'
      << o.scatter.blockDim << '|' << o.scatter.gridDim << '|'
      << o.scatter.sharedBytesPerBlock << '|'
      << o.scatter.localIdBytes << '|' << o.scatter.globalIdBytes
      << '|' << o.scatter.uncoalescedWriteFactor << '|'
      << o.verifyChecksums;
    return fnv1a(s.str());
}

/** Everything a cache hit must reproduce without re-searching. */
struct CacheEntry
{
    MsmPlan plan;
    Candidate winner;
    double searchedNs = 0.0;
    double heuristicNs = 0.0;
};

/** One TSV record, every field an exact integer except the two
 *  timings (%.17g round-trips doubles). */
std::string
formatEntry(std::uint64_t key, const CacheEntry &e)
{
    char ns[64];
    std::snprintf(ns, sizeof ns, "%.17g\t%.17g", e.searchedNs,
                  e.heuristicNs);
    std::ostringstream s;
    const MsmPlan &p = e.plan;
    const Candidate &c = e.winner;
    s << key << '\t' << p.windowBits << '\t' << p.numWindows << '\t'
      << p.scalarBits << '\t' << p.glv << '\t' << p.numBuckets << '\t'
      << p.signedDigits << '\t' << p.gpusPerWindow << '\t'
      << p.windowsPerGpu << '\t' << p.threadsPerBucket << '\t'
      << p.bucketsSplitAcrossGpus << '\t' << p.precompute << '\t'
      << p.tableBytes << '\t' << static_cast<int>(p.collective)
      << '\t' << p.mergeBytesPerGpu << '\t'
      << static_cast<int>(p.fieldBackend) << '\t'
      << p.fieldBackendAuto << '\t' << c.windowBits << '\t'
      << c.signedDigits << '\t' << c.glv << '\t' << c.batchAffine
      << '\t' << c.precompute << '\t' << c.cpuBucketReduce << '\t'
      << static_cast<int>(c.fieldBackend) << '\t'
      << static_cast<int>(c.collective) << '\t'
      << c.threadsPerBucket << '\t' << ns;
    return s.str();
}

bool
parseEntry(const std::string &line, std::uint64_t &key, CacheEntry &e)
{
    std::istringstream s(line);
    long long pi[16];
    long long ci[9];
    double ns[2];
    if (!(s >> key))
        return false;
    for (long long &v : pi)
        if (!(s >> v))
            return false;
    for (long long &v : ci)
        if (!(s >> v))
            return false;
    for (double &v : ns)
        if (!(s >> v))
            return false;
    MsmPlan &p = e.plan;
    p.windowBits = static_cast<unsigned>(pi[0]);
    p.numWindows = static_cast<unsigned>(pi[1]);
    p.scalarBits = static_cast<unsigned>(pi[2]);
    p.glv = pi[3] != 0;
    p.numBuckets = static_cast<std::uint64_t>(pi[4]);
    p.signedDigits = pi[5] != 0;
    p.gpusPerWindow = static_cast<int>(pi[6]);
    p.windowsPerGpu = static_cast<unsigned>(pi[7]);
    p.threadsPerBucket = static_cast<int>(pi[8]);
    p.bucketsSplitAcrossGpus = pi[9] != 0;
    p.precompute = pi[10] != 0;
    p.tableBytes = static_cast<std::uint64_t>(pi[11]);
    p.collective = static_cast<CollectiveAlgo>(pi[12]);
    p.mergeBytesPerGpu = static_cast<std::uint64_t>(pi[13]);
    p.fieldBackend = static_cast<FieldBackend>(pi[14]);
    p.fieldBackendAuto = pi[15] != 0;
    Candidate &c = e.winner;
    c.windowBits = static_cast<unsigned>(ci[0]);
    c.signedDigits = ci[1] != 0;
    c.glv = ci[2] != 0;
    c.batchAffine = ci[3] != 0;
    c.precompute = ci[4] != 0;
    c.cpuBucketReduce = ci[5] != 0;
    c.fieldBackend = static_cast<FieldBackend>(ci[6]);
    c.collective = static_cast<CollectivePolicy>(ci[7]);
    c.threadsPerBucket = static_cast<int>(ci[8]);
    e.searchedNs = ns[0];
    e.heuristicNs = ns[1];
    return true;
}

/**
 * In-process view of the persisted plan cache: a map loaded lazily
 * from the cache file, with misses appended back. The file lives at
 * DISTMSM_PLAN_CACHE, else $XDG_CACHE_HOME/distmsm/plans.tsv, else
 * $HOME/.cache/distmsm/plans.tsv; with none of the three variables
 * set the cache degrades to in-memory only.
 */
class PlanCache
{
  public:
    static PlanCache &
    instance()
    {
        static PlanCache cache;
        return cache;
    }

    bool
    lookup(std::uint64_t key, CacheEntry &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        loadLocked();
        auto it = entries_.find(key);
        if (it == entries_.end())
            return false;
        out = it->second;
        return true;
    }

    void
    store(std::uint64_t key, const CacheEntry &entry)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        loadLocked();
        if (!entries_.emplace(key, entry).second)
            return;
        if (path_.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path_).parent_path(), ec);
        std::ofstream os(path_, std::ios::app);
        if (os)
            os << formatEntry(key, entry) << '\n';
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
        loaded_ = false;
    }

  private:
    PlanCache() = default;

    static std::string
    defaultPath()
    {
        if (const char *p = std::getenv("DISTMSM_PLAN_CACHE"))
            return p;
        if (const char *xdg = std::getenv("XDG_CACHE_HOME"))
            return std::string(xdg) + "/distmsm/plans.tsv";
        if (const char *home = std::getenv("HOME"))
            return std::string(home) + "/.cache/distmsm/plans.tsv";
        return {};
    }

    void
    loadLocked()
    {
        if (loaded_)
            return;
        loaded_ = true;
        path_ = defaultPath();
        if (path_.empty())
            return;
        std::ifstream is(path_);
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t key = 0;
            CacheEntry e;
            if (parseEntry(line, key, e))
                entries_.emplace(key, e);
        }
    }

    std::mutex mutex_;
    bool loaded_ = false;
    std::string path_;
    std::unordered_map<std::uint64_t, CacheEntry> entries_;
};

/** Window-bits dimension: the caller's pin, or the model's pick (0)
 *  bracketed two bits each way within the planner's [4, 24] range. */
std::vector<unsigned>
windowCandidates(const MsmOptions &base, unsigned heuristic_bits)
{
    if (base.windowBitsOverride != 0)
        return {base.windowBitsOverride};
    std::vector<unsigned> out{0};
    for (int d = -2; d <= 2; ++d) {
        const int s = static_cast<int>(heuristic_bits) + d;
        if (s >= 4 && s <= 24)
            out.push_back(static_cast<unsigned>(s));
    }
    return out;
}

/** Score one realized candidate: heuristic plan + analytic total. */
double
scoreCandidate(const CurveProfile &curve, std::uint64_t n,
               const gpusim::Cluster &cluster,
               const MsmOptions &probe, MsmPlan &plan_out)
{
    plan_out = planMsmHeuristic(curve, n, cluster, probe);
    return estimateDistMsmWithPlan(curve, n, cluster, probe, plan_out)
        .totalNs();
}

/** The search proper (no cache involvement). */
AutoPlanResult
searchPlans(const CurveProfile &curve, std::uint64_t n,
            const gpusim::Cluster &cluster, const MsmOptions &base)
{
    // The driver tracks the winning *candidate*; plans are cheap to
    // re-derive, and keying on the candidate keeps the tie-break
    // story identical to the kernel scheduler's.
    sched::SearchDriver<Candidate, double> driver;

    const Candidate seed = seedCandidate(base);
    MsmPlan seed_plan;
    const double seed_ns =
        scoreCandidate(curve, n, cluster, realize(base, seed),
                       seed_plan);
    driver.seed(seed, seed_ns);

    const std::vector<unsigned> windows =
        windowCandidates(base, seed_plan.windowBits);
    std::vector<int> tpbs{base.threadsPerBucket};
    if (2 * seed_plan.threadsPerBucket != base.threadsPerBucket)
        tpbs.push_back(2 * seed_plan.threadsPerBucket);
    std::vector<FieldBackend> backends;
    if (base.fieldBackend != FieldBackend::Auto) {
        backends = {base.fieldBackend};
    } else if (!base.kernel.tensorCoreMont) {
        // Auto must not resurrect an explicitly stripped variant.
        backends = {FieldBackend::CudaCore};
    } else {
        backends = {FieldBackend::CudaCore, FieldBackend::TensorCore};
    }
    std::vector<CollectivePolicy> collectives;
    if (base.collective == CollectivePolicy::Ring ||
        base.collective == CollectivePolicy::Tree) {
        collectives = {base.collective};
    } else {
        // Gather (the legacy default) and Auto both mean "merge
        // strategy not pinned": search the three concrete
        // strategies against the full timeline, which sees overlap
        // effects the link tuner's local argmin cannot.
        collectives = {CollectivePolicy::Gather,
                       CollectivePolicy::Ring,
                       CollectivePolicy::Tree};
    }
    const std::vector<bool> toggles{false, true};
    std::vector<bool> cpu_reduce{false, true};
    if (!base.cpuBucketReduce)
        cpu_reduce = {false};

    for (const unsigned w : windows) {
        for (const bool sd : toggles) {
            for (const bool glv : toggles) {
                if (glv && curve.glvScalarBits == 0) {
                    driver.prune();
                    continue;
                }
                for (const bool ba : toggles)
                    for (const bool pre : toggles)
                        for (const bool cpu : cpu_reduce)
                            for (const FieldBackend fb : backends)
                                for (const CollectivePolicy cp :
                                     collectives)
                                    for (const int tpb : tpbs) {
                                        Candidate c;
                                        c.windowBits = w;
                                        c.signedDigits = sd;
                                        c.glv = glv;
                                        c.batchAffine = ba;
                                        c.precompute = pre;
                                        c.cpuBucketReduce = cpu;
                                        c.fieldBackend = fb;
                                        c.collective = cp;
                                        c.threadsPerBucket = tpb;
                                        MsmPlan plan;
                                        driver.consider(
                                            c,
                                            scoreCandidate(
                                                curve, n, cluster,
                                                realize(base, c),
                                                plan));
                                    }
            }
        }
    }

    AutoPlanResult r;
    r.options = realize(base, driver.best());
    r.plan = planMsmHeuristic(curve, n, cluster, r.options);
    // The caller asked Auto (or pinned a backend); whether *this*
    // search or the heuristic's local rule resolved it, the plan's
    // provenance bit reports the caller's contract.
    r.plan.fieldBackendAuto = base.fieldBackend == FieldBackend::Auto;
    r.searchedNs = driver.bestScore();
    r.heuristicNs = seed_ns;
    r.evaluated = driver.stats().evaluated;
    r.pruned = driver.stats().pruned;
    return r;
}

void
recordMetrics(const MsmOptions &base, const AutoPlanResult &r,
              bool cached_mode)
{
    if (base.trace == nullptr)
        return;
    auto &m = base.trace->metrics();
    if (cached_mode)
        m.add(r.cacheHit ? "plan_cache/hits" : "plan_cache/misses",
              1.0);
    m.set("autoplan/evaluated", static_cast<double>(r.evaluated));
    m.set("autoplan/pruned", static_cast<double>(r.pruned));
    m.set("autoplan/cost_model_evals",
          static_cast<double>(r.costModelEvals));
    m.set("autoplan/searched_ns", r.searchedNs);
    m.set("autoplan/heuristic_ns", r.heuristicNs);
    m.set("autoplan/cache_hit", r.cacheHit ? 1.0 : 0.0);
}

} // namespace

AutoPlanResult
autoplanMsm(const CurveProfile &curve, std::uint64_t n,
            const gpusim::Cluster &cluster, const MsmOptions &base)
{
    const std::uint64_t evals_before =
        gpusim::CostModel::evaluations();
    const bool cached_mode = base.planner == PlannerMode::Cached;

    if (cached_mode) {
        const std::uint64_t key = cacheKey(curve, n, cluster, base);
        CacheEntry entry;
        if (PlanCache::instance().lookup(key, entry)) {
            AutoPlanResult r;
            r.plan = entry.plan;
            r.options = realize(base, entry.winner);
            r.options.trace = base.trace;
            r.searchedNs = entry.searchedNs;
            r.heuristicNs = entry.heuristicNs;
            r.cacheHit = true;
            r.costModelEvals =
                gpusim::CostModel::evaluations() - evals_before;
            recordMetrics(base, r, cached_mode);
            return r;
        }
        AutoPlanResult r = searchPlans(curve, n, cluster, base);
        CacheEntry fresh;
        fresh.plan = r.plan;
        fresh.winner = seedCandidate(r.options);
        fresh.searchedNs = r.searchedNs;
        fresh.heuristicNs = r.heuristicNs;
        PlanCache::instance().store(key, fresh);
        r.options.trace = base.trace;
        r.costModelEvals =
            gpusim::CostModel::evaluations() - evals_before;
        recordMetrics(base, r, cached_mode);
        return r;
    }

    AutoPlanResult r = searchPlans(curve, n, cluster, base);
    r.options.trace = base.trace;
    r.costModelEvals =
        gpusim::CostModel::evaluations() - evals_before;
    recordMetrics(base, r, cached_mode);
    return r;
}

void
resetPlanCacheForTesting()
{
    PlanCache::instance().reset();
}

} // namespace distmsm::msm
