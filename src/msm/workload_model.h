/**
 * @file
 * Per-thread workload model of paper Section 3.1.
 *
 * The paper's key analytical device: parallel execution time is set
 * by the workload of each *thread*, not the total workload. For an
 * MSM with N points and lambda-bit scalars on N_gpu GPUs with N_T
 * threads each, using s-bit windows, the per-thread cost in EC
 * operations is (with N_win = ceil(lambda / s)):
 *
 *   ceil(N_win/N_gpu) * ceil((N + 2^s)/N_T)
 *     + ceil(2^s/N_T) * 2s
 *     + min(ceil(2^s/N_T) + log2(N_T), s)
 *
 * when every GPU owns whole windows, and
 *
 *   (N + 2^s * 2s) / (floor(N_gpu/N_win) * N_T)
 *     + log2(2^s / floor(N_gpu/N_win))
 *
 * when windows are split across GPUs (Section 3.2.2). Figure 3 plots
 * these curves; the window-size autotuner minimizes them.
 */

#ifndef DISTMSM_MSM_WORKLOAD_MODEL_H
#define DISTMSM_MSM_WORKLOAD_MODEL_H

#include <cstdint>

namespace distmsm::msm {

/** Inputs of the per-thread workload formulas. */
struct WorkloadConfig
{
    std::uint64_t numPoints;     ///< N
    unsigned scalarBits;         ///< lambda
    int numGpus = 1;             ///< N_gpu
    std::uint64_t threadsPerGpu = 1ull << 16; ///< N_T
};

/** Number of windows for scalar width lambda and window size s. */
unsigned windowCount(unsigned scalar_bits, unsigned window_bits);

/**
 * Per-thread EC-operation estimate for window size @p s under
 * @p config (Section 3.1 summary formula; picks the whole-window or
 * split-window variant automatically).
 */
double perThreadWorkload(const WorkloadConfig &config, unsigned s);

/** The s in [min_s, max_s] minimizing perThreadWorkload. */
unsigned optimalWindowSize(const WorkloadConfig &config,
                           unsigned min_s = 4, unsigned max_s = 24);

} // namespace distmsm::msm

#endif // DISTMSM_MSM_WORKLOAD_MODEL_H
