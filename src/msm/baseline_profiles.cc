#include "src/msm/baseline_profiles.h"

#include <algorithm>

#include "src/support/check.h"

namespace distmsm::msm {

using gpusim::EcKernelVariant;

bool
BaselineProfile::supports(const gpusim::CurveProfile &curve) const
{
    return std::find(curves.begin(), curves.end(),
                     std::string(curve.name)) != curves.end();
}

namespace {

MsmTimeline
rawEstimate(const BaselineProfile &profile,
            const gpusim::CurveProfile &curve, std::uint64_t n,
            const gpusim::Cluster &cluster)
{
    MsmTimeline t;
    if (profile.strategy == MultiGpuStrategy::NdimSplit) {
        t = estimateNdimBaseline(curve, n, cluster, profile.kernel,
                                 profile.fixedWindowBits);
    } else {
        // Window-split: a DistMSM-like distribution but with the
        // naive scatter and GPU-resident bucket-reduce every
        // published baseline uses.
        MsmOptions options;
        options.hierarchicalScatter = false;
        options.cpuBucketReduce = false;
        options.kernel = profile.kernel;
        options.windowBitsOverride = profile.fixedWindowBits;
        t = estimateDistMsm(curve, n, cluster, options);
    }
    double eff = profile.efficiency;
    if (std::string(curve.name) == "MNT4753")
        eff *= profile.mnt4753Penalty;
    t.scatterNs *= eff;
    t.bucketSumNs *= eff;
    t.bucketReduceNs *= eff;
    t.windowReduceNs *= eff;
    return t;
}

} // namespace

MsmTimeline
BaselineProfile::estimate(const gpusim::CurveProfile &curve,
                          std::uint64_t n,
                          const gpusim::Cluster &cluster) const
{
    MsmTimeline t = rawEstimate(*this, curve, n, cluster);
    if (cluster.numGpus() > 1 && serialFraction > 0.0) {
        // Amdahl blend: a serialFraction share of the single-GPU
        // time refuses to parallelize.
        const gpusim::Cluster one(cluster.device(), 1,
                                  cluster.host());
        const MsmTimeline t1 = rawEstimate(*this, curve, n, one);
        const double f = serialFraction;
        t.scatterNs = (1 - f) * t.scatterNs + f * t1.scatterNs;
        t.bucketSumNs =
            (1 - f) * t.bucketSumNs + f * t1.bucketSumNs;
        t.bucketReduceNs =
            (1 - f) * t.bucketReduceNs + f * t1.bucketReduceNs;
        t.windowReduceNs =
            (1 - f) * t.windowReduceNs + f * t1.windowReduceNs;
        t.transferNs = (1 - f) * t.transferNs + f * t1.transferNs;
    }
    return t;
}

const std::vector<BaselineProfile> &
allBaselines()
{
    static const std::vector<BaselineProfile> baselines = [] {
        std::vector<BaselineProfile> v;

        // 1. Bellperson: OpenCL production prover, straightforward
        //    kernel, points split across GPUs.
        v.push_back(BaselineProfile{
            1, "Bellperson", MultiGpuStrategy::NdimSplit,
            EcKernelVariant::baseline(),
            {"BLS12-381"},
            8.5, 0, 0.06, 1.0, 0});

        // 2. cuZK: sparse-matrix parallel Pippenger with genuine
        //    multi-GPU subtask distribution (near-linear to 8 GPUs).
        v.push_back(BaselineProfile{
            2, "cuZK", MultiGpuStrategy::WindowSplit,
            EcKernelVariant{true, false, false, false, false},
            {"BLS12-377", "BLS12-381", "MNT4753"},
            1.50, 0, 0.02, 14.0, 0});

        // 3. Icicle: broad curve support, solid kernel, N-dim.
        v.push_back(BaselineProfile{
            3, "Icicle", MultiGpuStrategy::NdimSplit,
            EcKernelVariant{true, false, false, false, false},
            {"BN254", "BLS12-377", "BLS12-381"},
            1.45, 0, 0.05, 1.0, 0});

        // 4. Mina: the GPU Groth16 prover; older kernel design.
        v.push_back(BaselineProfile{
            4, "Mina", MultiGpuStrategy::NdimSplit,
            EcKernelVariant::baseline(),
            {"MNT4753"},
            6.5, 0, 0.01, 1.0, 0});

        // 5. Sppark: assembly-tuned template library; the strongest
        //    all-round kernel among the baselines.
        v.push_back(BaselineProfile{
            5, "Sppark", MultiGpuStrategy::NdimSplit,
            EcKernelVariant{true, true, false, false, false},
            {"BN254", "BLS12-377", "BLS12-381"},
            1.35, 0, 0.04, 1.0, 0});

        // 6. Yrrid: ZPrize winner; heavy precomputation and signed
        //    digits buy superb single-GPU throughput (efficiency
        //    < 1) but pin a large window whose bucket-reduce refuses
        //    to scale — the paper's least-scalable baseline.
        v.push_back(BaselineProfile{
            6, "Yrrid", MultiGpuStrategy::NdimSplit,
            EcKernelVariant{true, true, true, false, false},
            {"BLS12-377"},
            0.55, 0, 0.12, 1.0, 1ull << 27});

        return v;
    }();
    return baselines;
}

BestBaseline
bestBaseline(const gpusim::CurveProfile &curve, std::uint64_t n,
             const gpusim::Cluster &cluster)
{
    BestBaseline best;
    for (const auto &profile : allBaselines()) {
        if (!profile.supports(curve))
            continue;
        if (profile.maxPoints != 0 && n > profile.maxPoints)
            continue;
        const MsmTimeline t = profile.estimate(curve, n, cluster);
        if (best.profile == nullptr ||
            t.totalNs() < best.timeline.totalNs()) {
            best.profile = &profile;
            best.timeline = t;
        }
    }
    DISTMSM_REQUIRE(best.profile != nullptr,
                    "no baseline supports this curve");
    return best;
}

} // namespace distmsm::msm
