#include "src/msm/scatter.h"

#include <algorithm>
#include <utility>

#include "src/support/check.h"

namespace distmsm::msm {

using gpusim::KernelLaunch;
using gpusim::ThreadCtx;
using gpusim::WordArray;

namespace {

/** Elements each thread handles so the grid covers n elements. */
int
elemsPerThread(std::size_t n, const ScatterConfig &config)
{
    const std::size_t threads =
        static_cast<std::size_t>(config.blockDim) * config.gridDim;
    return static_cast<int>((n + threads - 1) / threads);
}

/**
 * Span label of a traced scatter launch: the configured (or default)
 * label suffixed with the resolved field backend, matching the
 * engine's backend-suffixed compute lanes. Purely an attribution
 * aid — the scatter kernels execute no field arithmetic.
 */
std::string
scatterTraceLabel(const ScatterConfig &config,
                  const char *default_label)
{
    const std::string base = config.traceLabel.empty()
                                 ? default_label
                                 : config.traceLabel;
    return base + " [" +
           gpusim::fieldBackendName(config.fieldBackend) + "]";
}

/**
 * Host-side landing zone for scattered (bucket, point-id) pairs.
 * Blocks of a phase may run on concurrent host threads, so each
 * block appends to its own staging vector; drain() empties them into
 * the result buckets in block index order, which reproduces exactly
 * the bid-major/tid-minor order of the sequential execution.
 */
class BlockStaging
{
  public:
    explicit BlockStaging(int grid_dim) : per_block_(grid_dim) {}

    void
    push(const ThreadCtx &ctx, std::uint32_t bucket,
         std::uint32_t addr)
    {
        per_block_[static_cast<std::size_t>(ctx.bid)].emplace_back(
            bucket, addr);
    }

    void
    drain(std::vector<std::vector<std::uint32_t>> &buckets)
    {
        for (auto &blk : per_block_) {
            for (const auto &[bucket, addr] : blk)
                buckets[bucket].push_back(addr);
            blk.clear();
        }
    }

  private:
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        per_block_;
};

} // namespace

std::size_t
hierarchicalSharedBytes(unsigned window_bits,
                        const ScatterConfig &config,
                        int elems_per_thread)
{
    const std::size_t n_buckets = std::size_t{1} << window_bits;
    // Counters + offsets (4 bytes each) and the point-id tile.
    return n_buckets * 4 * 2 +
           static_cast<std::size_t>(elems_per_thread) *
               config.blockDim * config.localIdBytes;
}

int
hierarchicalRegistersPerThread(int elems_per_thread)
{
    // K cached bucket ids at 16 bits each, packed into 32-bit
    // registers ("register usage per thread is 32" for K = 64).
    return elems_per_thread / 2;
}

ScatterResult
naiveScatter(const std::vector<std::uint32_t> &bucket_ids,
             unsigned window_bits, const ScatterConfig &config)
{
    const std::size_t n_buckets = std::size_t{1} << window_bits;
    ScatterResult result;
    result.status = KernelLaunch::validateLaunch(
        config.gridDim, config.blockDim, 0);
    if (!result.status.isOk())
        return result;
    result.ok = true;
    result.buckets.assign(n_buckets, {});

    KernelLaunch launch(config.gridDim, config.blockDim, 0,
                        config.hostThreads);
    if (config.trace != nullptr)
        launch.setTrace(config.trace,
                        scatterTraceLabel(config, "naive-scatter"),
                        config.traceLane);
    WordArray counters(n_buckets, WordArray::Space::Global);
    const int k = elemsPerThread(bucket_ids.size(), config);
    BlockStaging staging(config.gridDim);

    // One element per thread per phase: atomics within a phase are
    // the concurrent ones.
    for (int reg_idx = 0; reg_idx < k; ++reg_idx) {
        launch.phase([&](ThreadCtx &ctx) {
            const std::size_t addr =
                static_cast<std::size_t>(reg_idx) *
                    ctx.gridThreads() +
                ctx.gid();
            if (addr >= bucket_ids.size())
                return;
            const std::uint32_t bucket = bucket_ids[addr];
            if (bucket == 0)
                return; // zero chunk contributes nothing
            launch.atomicAdd(counters, bucket, 1, ctx);
            staging.push(ctx, bucket,
                         static_cast<std::uint32_t>(addr));
            launch.countGmemBytes(
                ctx,
                static_cast<std::uint64_t>(config.globalIdBytes) *
                    config.uncoalescedWriteFactor);
        });
        staging.drain(result.buckets);
    }
    result.stats = launch.stats();
    return result;
}

ScatterResult
hierarchicalScatter(const std::vector<std::uint32_t> &bucket_ids,
                    unsigned window_bits, const ScatterConfig &config)
{
    const std::size_t n_buckets = std::size_t{1} << window_bits;
    ScatterResult result;

    // Tile size: how many elements per thread fit in shared memory
    // next to the counters and offsets.
    const std::size_t fixed_bytes = n_buckets * 4 * 2;
    if (fixed_bytes + static_cast<std::size_t>(config.blockDim) *
                          config.localIdBytes >
        config.sharedBytesPerBlock) {
        // Not even a one-element tile fits beside the counters (the
        // s > 14 failures of Figure 11).
        result.ok = false;
        result.status = support::Status(
            support::StatusCode::KernelFault,
            "hierarchical scatter cannot run at window size " +
                std::to_string(window_bits) +
                ": 2^s counters leave no shared-memory tile "
                "(use naive scatter)");
        return result;
    }
    const int k_tile = static_cast<int>(
        (config.sharedBytesPerBlock - fixed_bytes) /
        (static_cast<std::size_t>(config.blockDim) *
         config.localIdBytes));

    // Shared layout per block: [0, B) counters, [B, 2B) offsets,
    // [2B, 2B + K*blockDim) point-id tile.
    const std::size_t tile_base = 2 * n_buckets;
    const std::size_t tile_words =
        static_cast<std::size_t>(k_tile) * config.blockDim;
    result.status = KernelLaunch::validateLaunch(
        config.gridDim, config.blockDim, tile_base + tile_words);
    if (!result.status.isOk())
        return result;
    result.ok = true;
    result.buckets.assign(n_buckets, {});

    KernelLaunch launch(config.gridDim, config.blockDim,
                        tile_base + tile_words, config.hostThreads);
    if (config.trace != nullptr)
        launch.setTrace(
            config.trace,
            scatterTraceLabel(config, "hierarchical-scatter"),
            config.traceLane);
    WordArray global_counters(n_buckets, WordArray::Space::Global);

    const int k_total = elemsPerThread(bucket_ids.size(), config);
    // Per-thread "register cache" of bucket ids (Algorithm 3 line 5),
    // refilled every tile.
    std::vector<std::uint32_t> reg_cache(
        static_cast<std::size_t>(k_tile) * launch.gridThreads());
    BlockStaging staging(config.gridDim);

    for (int tile = 0; tile * k_tile < k_total; ++tile) {
        const int reg_lo = tile * k_tile;
        const int reg_hi = std::min(k_total, reg_lo + k_tile);

        // Reset the block-local counters.
        launch.phase([&](ThreadCtx &ctx) {
            if (ctx.tid == 0)
                launch.shared(ctx.bid).fill(0);
        });

        // Level 1: count into shared per-bucket counters.
        for (int reg_idx = reg_lo; reg_idx < reg_hi; ++reg_idx) {
            launch.phase([&](ThreadCtx &ctx) {
                const std::size_t addr =
                    static_cast<std::size_t>(reg_idx) *
                        ctx.gridThreads() +
                    ctx.gid();
                const std::size_t slot =
                    static_cast<std::size_t>(reg_idx - reg_lo) *
                        launch.gridThreads() +
                    ctx.gid();
                if (addr >= bucket_ids.size()) {
                    reg_cache[slot] = ~std::uint32_t{0};
                    return;
                }
                const std::uint32_t bucket = bucket_ids[addr];
                reg_cache[slot] = bucket;
                if (bucket == 0)
                    return;
                launch.atomicAdd(launch.shared(ctx.bid), bucket, 1,
                                 ctx);
            });
        }

        // Level 2: per-block exclusive prefix sum of the counters
        // into the offsets region (Algorithm 3 line 7).
        launch.phase([&](ThreadCtx &ctx) {
            if (ctx.tid != 0)
                return;
            WordArray &shm = launch.shared(ctx.bid);
            std::uint64_t running = 0;
            for (std::size_t b = 0; b < n_buckets; ++b) {
                shm.write(n_buckets + b, running);
                running += shm.read(b);
                launch.countSharedAccess(ctx, 2);
            }
        });

        // Level 3: place point ids into the exactly-sized shared
        // buckets (lines 8-11). The stored id is reg_idx || tid.
        for (int reg_idx = reg_lo; reg_idx < reg_hi; ++reg_idx) {
            launch.phase([&](ThreadCtx &ctx) {
                const std::size_t slot =
                    static_cast<std::size_t>(reg_idx - reg_lo) *
                        launch.gridThreads() +
                    ctx.gid();
                const std::uint32_t bucket = reg_cache[slot];
                if (bucket == ~std::uint32_t{0} || bucket == 0)
                    return;
                WordArray &shm = launch.shared(ctx.bid);
                const std::uint64_t pos = launch.atomicAdd(
                    shm, n_buckets + bucket, 1, ctx);
                const std::uint64_t local_id =
                    (static_cast<std::uint64_t>(reg_idx) << 16) |
                    ctx.tid;
                shm.write(tile_base + pos, local_id);
                launch.countSharedAccess(ctx, 1);
            });
        }

        // Flush: one global atomic per (block, non-empty bucket)
        // reserves the output range, then the tile segment streams
        // out (lines 12-15). Thread b handles buckets b, b+dim, ...
        launch.phase([&](ThreadCtx &ctx) {
            WordArray &shm = launch.shared(ctx.bid);
            for (std::size_t b = ctx.tid; b < n_buckets;
                 b += ctx.blockDim) {
                const std::uint64_t count = shm.read(b);
                if (count == 0)
                    continue;
                launch.atomicAdd(global_counters, b, count, ctx);
                // Reconstruct global ids: reg_idx || bid || tid.
                const std::uint64_t end = shm.read(n_buckets + b);
                for (std::uint64_t p = end - count; p < end; ++p) {
                    const std::uint64_t local_id =
                        shm.read(tile_base + p);
                    const std::uint32_t reg_idx =
                        static_cast<std::uint32_t>(local_id >> 16);
                    const std::uint32_t tid =
                        static_cast<std::uint32_t>(local_id &
                                                   0xFFFF);
                    const std::size_t addr =
                        static_cast<std::size_t>(reg_idx) *
                            launch.gridThreads() +
                        static_cast<std::size_t>(ctx.bid) *
                            ctx.blockDim +
                        tid;
                    staging.push(
                        ctx, static_cast<std::uint32_t>(b),
                        static_cast<std::uint32_t>(addr));
                }
                launch.countGmemBytes(ctx,
                                      count * config.globalIdBytes);
            }
        });
        staging.drain(result.buckets);
    }

    result.stats = launch.stats();
    return result;
}

} // namespace distmsm::msm
