/**
 * @file
 * Fixed-base precomputation tables and the cross-proof base cache.
 *
 * In a proving service the MSM bases are fixed by the proving key
 * while the scalars change per proof (paper Section 2.2). The classic
 * fixed-base trick (Section 2.3.1, the sppark/PipeMSM-style layout)
 * precomputes the shifted copies
 *
 *   row j of the table:  [2^(j*s)] P_i   for every base P_i
 *
 * so the digit of *any* window lands in the *same* bucket array: the
 * per-window passes collapse into one combined bucket accumulation
 * and the serial inter-window double-and-add (Horner) reduction
 * disappears. Tables are stored affine — one shared zero-skipping
 * batch inversion per row — because every accumulation path (pacc and
 * the batched-affine adds) consumes affine operands.
 *
 * Cost shape: building costs (W-1) * s * n point doublings plus W-1
 * batch normalizations, and the table multiplies base storage by W
 * (bytes = W * n * 2 * fieldBytes). Both are scalar-independent, so
 * BaseTableCache amortizes them across proofs: tables are keyed by a
 * fingerprint of the base points plus the table geometry, and
 * repeated Groth16 proofs against the same proving key reuse the
 * tables across MsmEngine instances. The planner (planner.cc) owns
 * the memory-budget decision — shrink the window count (grow c) or
 * decline precompute when the device's global-memory model cannot
 * hold the table.
 */

#ifndef DISTMSM_MSM_PRECOMPUTE_H
#define DISTMSM_MSM_PRECOMPUTE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/support/check.h"
#include "src/support/thread_pool.h"

namespace distmsm::msm {

namespace detail {

/**
 * Batch-normalize XYZZ points to affine form. Identity points have
 * zz == zzz == 0, which the zero-skipping batch inversion routes
 * around; the corresponding outputs stay the affine identity.
 */
template <typename Curve>
std::vector<AffinePoint<Curve>>
toAffineBatch(const std::vector<XYZZPoint<Curve>> &points)
{
    using Fq = typename Curve::Fq;
    std::vector<Fq> denoms;
    denoms.reserve(2 * points.size());
    for (const auto &p : points) {
        denoms.push_back(p.zz);
        denoms.push_back(p.zzz);
    }
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    batchInverseSkipZero(denoms, scratch, skipped);
    std::vector<AffinePoint<Curve>> out(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!skipped[2 * i]) {
            out[i] = AffinePoint<Curve>::fromXY(
                points[i].x * denoms[2 * i],
                points[i].y * denoms[2 * i + 1]);
        }
    }
    return out;
}

/**
 * Precomputation table rows (Section 2.3.1): row j holds 2^(j*s) P_i
 * for every input point, so points of different windows sum directly.
 * The per-point doubling chains are independent, so each table row
 * is built with @p host_threads cooperating threads; point i's chain
 * only ever touches slot i, so the table is bit-identical to the
 * sequential construction.
 */
template <typename Curve>
std::vector<std::vector<AffinePoint<Curve>>>
precomputeWindowMultiples(
    const std::vector<AffinePoint<Curve>> &points, unsigned windows,
    unsigned window_bits, int host_threads = 1)
{
    using Xyzz = XYZZPoint<Curve>;
    std::vector<std::vector<AffinePoint<Curve>>> table;
    table.reserve(windows);
    table.push_back(points);
    std::vector<Xyzz> current;
    current.reserve(points.size());
    for (const auto &p : points)
        current.push_back(Xyzz::fromAffine(p));
    for (unsigned j = 1; j < windows; ++j) {
        support::ThreadPool::global().parallelFor(
            0, current.size(),
            [&](std::size_t i) {
                for (unsigned b = 0; b < window_bits; ++b)
                    current[i] = pdbl(current[i]);
            },
            host_threads);
        table.push_back(toAffineBatch<Curve>(current));
    }
    return table;
}

/**
 * Feed a field element's canonical limbs into a fingerprint mixer.
 * Base fields expose their Montgomery-form limbs directly (canonical
 * per value); extension fields (Fp2 of the G2 groups) recurse over
 * their coefficients.
 */
template <typename Mix, typename F>
void
mixFieldLimbs(Mix &&mix, const F &f)
{
    if constexpr (requires { f.montgomeryForm(); }) {
        for (const auto limb : f.montgomeryForm().limb)
            mix(limb);
    } else {
        mixFieldLimbs(mix, f.c0());
        mixFieldLimbs(mix, f.c1());
    }
}

} // namespace detail

/**
 * Table memory: W rows of n affine points, 2 field elements each.
 * This is the formula the planner holds against the device's
 * global-memory budget (DESIGN.md "Fixed-base precompute").
 */
inline std::uint64_t
precomputeTableBytes(std::uint64_t n_bases, unsigned num_windows,
                     unsigned field_bytes)
{
    return n_bases * num_windows * 2ull * field_bytes;
}

/** Doublings spent building a table (the amortized cost). */
inline std::uint64_t
precomputeBuildPdbls(std::uint64_t n_bases, unsigned num_windows,
                     unsigned window_bits)
{
    if (num_windows <= 1)
        return 0;
    return n_bases * (num_windows - 1) *
           static_cast<std::uint64_t>(window_bits);
}

/** One built table plus the facts needed to price and account it. */
template <typename Curve>
struct PrecomputeTable
{
    unsigned windowBits = 0;
    unsigned numWindows = 0;
    /** Bases included the GLV endomorphism images phi(P_i). */
    bool glv = false;
    std::uint64_t buildPdbls = 0;
    std::uint64_t bytes = 0;
    /** rows[j][i] = 2^(j * windowBits) * base_i, affine. */
    std::vector<std::vector<AffinePoint<Curve>>> rows;
};

/**
 * Deterministic FNV-1a fingerprint of a base-point vector: limbs of
 * both coordinates (Montgomery form — canonical per value) plus the
 * infinity flag, mixed per index. Order-sensitive by construction,
 * since MSM bases are positional.
 */
template <typename Curve>
std::uint64_t
fingerprintBases(const std::vector<AffinePoint<Curve>> &points)
{
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(points.size());
    for (const auto &p : points) {
        mix(p.infinity ? 1 : 0);
        if (p.infinity)
            continue;
        detail::mixFieldLimbs(mix, p.x);
        detail::mixFieldLimbs(mix, p.y);
    }
    return h;
}

/** Cache key: base-set fingerprint + the table geometry. */
struct TableCacheKey
{
    std::uint64_t fingerprint = 0;
    std::uint64_t numBases = 0;
    unsigned windowBits = 0;
    unsigned numWindows = 0;
    bool glv = false;

    bool
    operator<(const TableCacheKey &o) const
    {
        if (fingerprint != o.fingerprint)
            return fingerprint < o.fingerprint;
        if (numBases != o.numBases)
            return numBases < o.numBases;
        if (windowBits != o.windowBits)
            return windowBits < o.windowBits;
        if (numWindows != o.numWindows)
            return numWindows < o.numWindows;
        return glv < o.glv;
    }
};

/**
 * Process-wide cache of precompute tables, shared by every MsmEngine
 * of a curve. Entries are immutable (shared_ptr<const>), so a hit is
 * safe to use while another thread builds a different key. A small
 * LRU capacity bounds memory when many distinct base sets stream
 * through (randomized sweeps); a proving service touches a handful of
 * fixed keys and never evicts.
 */
template <typename Curve>
class BaseTableCache
{
  public:
    using TablePtr = std::shared_ptr<const PrecomputeTable<Curve>>;

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /** The per-curve process-wide instance. */
    static BaseTableCache &
    global()
    {
        static BaseTableCache cache;
        return cache;
    }

    /**
     * Return the table for @p key, building it via @p builder on a
     * miss. @p hit (optional) reports whether the table came from the
     * cache. The builder runs under the cache lock: concurrent
     * engines constructing the same key build once.
     */
    template <typename Builder>
    TablePtr
    findOrBuild(const TableCacheKey &key, Builder &&builder,
                bool *hit = nullptr)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++tick_;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            it->second.lastUse = tick_;
            if (hit != nullptr)
                *hit = true;
            return it->second.table;
        }
        ++stats_.misses;
        if (hit != nullptr)
            *hit = false;
        TablePtr table = builder();
        DISTMSM_REQUIRE(table != nullptr,
                        "table builder returned null");
        while (entries_.size() >= capacity_) {
            auto lru = entries_.begin();
            for (auto e = entries_.begin(); e != entries_.end(); ++e)
                if (e->second.lastUse < lru->second.lastUse)
                    lru = e;
            entries_.erase(lru);
            ++stats_.evictions;
        }
        entries_.emplace(key, Entry{table, tick_});
        return table;
    }

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    /** Drop every entry (cold-cache benchmarks; stats kept). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.clear();
    }

    /** Maximum retained tables (evicts down immediately). */
    void
    setCapacity(std::size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity == 0 ? 1 : capacity;
        while (entries_.size() > capacity_) {
            auto lru = entries_.begin();
            for (auto e = entries_.begin(); e != entries_.end(); ++e)
                if (e->second.lastUse < lru->second.lastUse)
                    lru = e;
            entries_.erase(lru);
            ++stats_.evictions;
        }
    }

  private:
    struct Entry
    {
        TablePtr table;
        std::uint64_t lastUse = 0;
    };

    mutable std::mutex mutex_;
    std::map<TableCacheKey, Entry> entries_;
    std::size_t capacity_ = 4;
    std::uint64_t tick_ = 0;
    Stats stats_;
};

/**
 * Build a PrecomputeTable for @p bases (points, plus the phi images
 * when the plan runs GLV — the endomorphism tables come free via the
 * same doubling chains).
 */
template <typename Curve>
std::shared_ptr<const PrecomputeTable<Curve>>
buildPrecomputeTable(const std::vector<AffinePoint<Curve>> &bases,
                     unsigned num_windows, unsigned window_bits,
                     bool glv, int host_threads)
{
    auto table = std::make_shared<PrecomputeTable<Curve>>();
    table->windowBits = window_bits;
    table->numWindows = num_windows;
    table->glv = glv;
    table->rows = detail::precomputeWindowMultiples<Curve>(
        bases, num_windows, window_bits, host_threads);
    table->buildPdbls =
        precomputeBuildPdbls(bases.size(), num_windows, window_bits);
    table->bytes = precomputeTableBytes(
        bases.size(), num_windows,
        (Curve::Fq::Params::kBits + 7) / 8);
    return table;
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_PRECOMPUTE_H
