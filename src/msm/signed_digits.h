/**
 * @file
 * Signed-digit window decomposition.
 *
 * The ZPrize-winning implementations the paper builds on (Section 6:
 * "techniques such as precomputation, signed digits, ... many of
 * which are also adopted by DistMSM") re-code each s-bit window into
 * a signed digit d in [-2^(s-1), 2^(s-1)]: a window m > 2^(s-1)
 * becomes m - 2^s with a carry into the next window. Because
 * negating a curve point is free (flip y), bucket |d| receives
 * either P or -P — halving the bucket count from 2^s - 1 to 2^(s-1)
 * and with it the bucket-sum tail and the reduce work.
 */

#ifndef DISTMSM_MSM_SIGNED_DIGITS_H
#define DISTMSM_MSM_SIGNED_DIGITS_H

#include <cstdint>
#include <vector>

#include "src/bigint/bigint.h"
#include "src/support/check.h"

namespace distmsm::msm {

/**
 * Signed s-bit window digits of @p k, least-significant window
 * first. Returns ceil(bits/s) + 1 digits (the last absorbs a final
 * carry); every digit lies in [-2^(s-1), 2^(s-1)].
 */
template <std::size_t N>
std::vector<std::int32_t>
signedWindowDigits(const BigInt<N> &k, unsigned scalar_bits,
                   unsigned window_bits)
{
    DISTMSM_REQUIRE(window_bits >= 2 && window_bits <= 30,
                    "window size out of range for signed digits");
    const unsigned n_windows =
        (scalar_bits + window_bits - 1) / window_bits;
    const std::int64_t half = std::int64_t{1} << (window_bits - 1);
    const std::int64_t full = std::int64_t{1} << window_bits;

    std::vector<std::int32_t> digits;
    digits.reserve(n_windows + 1);
    std::int64_t carry = 0;
    for (unsigned w = 0; w < n_windows; ++w) {
        std::int64_t m =
            static_cast<std::int64_t>(
                k.bits(std::size_t{w} * window_bits, window_bits)) +
            carry;
        if (m > half) {
            m -= full;
            carry = 1;
        } else {
            carry = 0;
        }
        digits.push_back(static_cast<std::int32_t>(m));
    }
    digits.push_back(static_cast<std::int32_t>(carry));
    return digits;
}

/**
 * Reassemble a signed-digit decomposition (for tests):
 * sum_j digits[j] * 2^(j*s) == k, computed in a wide accumulator.
 */
template <std::size_t N>
bool
signedDigitsReassemble(const std::vector<std::int32_t> &digits,
                       const BigInt<N> &k, unsigned window_bits)
{
    // Accumulate positive and negative parts separately, one extra
    // limb wide to absorb the top carry digit.
    BigInt<N + 1> pos{}, neg{};
    for (std::size_t j = 0; j < digits.size(); ++j) {
        const std::int64_t d = digits[j];
        if (d == 0)
            continue;
        BigInt<N + 1> term{};
        term.limb[0] =
            static_cast<std::uint64_t>(d < 0 ? -d : d);
        term = term.shl(j * window_bits);
        if (d < 0) {
            neg.addInPlace(term);
        } else {
            pos.addInPlace(term);
        }
    }
    if (pos.subInPlace(neg) != 0)
        return false; // went negative: not a decomposition of k
    BigInt<N + 1> wide{};
    for (std::size_t i = 0; i < N; ++i)
        wide.limb[i] = k.limb[i];
    return pos == wide;
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_SIGNED_DIGITS_H
