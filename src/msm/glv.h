/**
 * @file
 * GLV endomorphism scalar decomposition (Gallant-Lambert-Vanstone).
 *
 * The a == 0 curves carry the cube-root-of-unity endomorphism
 * phi(x, y) = (beta * x, y) with beta^3 = 1 in Fq; on the order-r
 * subgroup phi acts as multiplication by lambda, lambda^3 = 1 in Fr
 * (the constants are generated and cross-validated by
 * tools/gen_constants.py). Writing k = k1 + k2 * lambda (mod r) with
 * |k1|, |k2| < 2^128 turns k * P into k1 * P + k2 * phi(P): the MSM
 * doubles its point count but halves the scalar width, so the window
 * passes over the scalar — and with them the bucket-reduce tails and
 * the Horner doubling chain — halve for the same bucket count.
 *
 * The decomposition follows the classic lattice method (Guide to
 * ECC, Alg. 3.74): a short basis v1 = (a1, b1), v2 = (a2, b2) of
 * {(c, d) : c + d*lambda = 0 mod r} is precomputed, the rational
 * coordinates of (k, 0) in that basis are rounded using fixed-point
 * multipliers g_i = round(b_j * 2^384 / r) (one 512-bit multiply and
 * a shift, no division), and (k1, k2) = (k, 0) - c1*v1 - c2*v2 is
 * evaluated in wrapping two's-complement arithmetic mod 2^256 —
 * exact because the final magnitudes are far below 2^255.
 */

#ifndef DISTMSM_MSM_GLV_H
#define DISTMSM_MSM_GLV_H

#include <cstdint>

#include "src/bigint/bigint.h"
#include "src/ec/curves.h"
#include "src/ec/point.h"
#include "src/field/curve_constants.h"

namespace distmsm::msm::glv {

/** Bound (bits) on |k1|, |k2|; asserted by the generator script. */
inline constexpr unsigned kHalfScalarBits = 128;

/**
 * Per-curve GLV constants. The primary template marks a curve as
 * unsupported (MNT4753 has a != 0; BLS12-377 has no generated
 * constants yet); planMsm silently falls back to the plain path.
 */
template <typename Curve>
struct CurveGlv
{
    static constexpr bool kSupported = false;
};

#define DISTMSM_GLV_CURVE(CurveT, ns)                                   \
    template <>                                                         \
    struct CurveGlv<CurveT>                                             \
    {                                                                   \
        static constexpr bool kSupported = true;                        \
        static constexpr const std::uint64_t *kBeta =                   \
            constants::ns::kBeta;                                       \
        static constexpr const std::uint64_t *kLambda =                 \
            constants::ns::kLambda;                                     \
        static constexpr const std::uint64_t *kA1 =                     \
            constants::ns::kA1;                                         \
        static constexpr const std::uint64_t *kB1 =                     \
            constants::ns::kB1;                                         \
        static constexpr const std::uint64_t *kA2 =                     \
            constants::ns::kA2;                                         \
        static constexpr const std::uint64_t *kB2 =                     \
            constants::ns::kB2;                                         \
        static constexpr bool kA1Neg = constants::ns::kA1Neg;           \
        static constexpr bool kB1Neg = constants::ns::kB1Neg;           \
        static constexpr bool kA2Neg = constants::ns::kA2Neg;           \
        static constexpr bool kB2Neg = constants::ns::kB2Neg;           \
        static constexpr const std::uint64_t *kG1 =                     \
            constants::ns::kG1;                                         \
        static constexpr const std::uint64_t *kG2 =                     \
            constants::ns::kG2;                                         \
        static constexpr bool kG1Neg = constants::ns::kG1Neg;           \
        static constexpr bool kG2Neg = constants::ns::kG2Neg;           \
    }

DISTMSM_GLV_CURVE(Bn254, bn254_glv);
DISTMSM_GLV_CURVE(Bls381, bls381_glv);

#undef DISTMSM_GLV_CURVE

/** beta as an Fq element. */
template <typename Curve>
typename Curve::Fq
beta()
{
    using Fq = typename Curve::Fq;
    return Fq::fromRaw(Fq::Base::fromLimbs(CurveGlv<Curve>::kBeta));
}

/** lambda as a raw scalar (for k * P known-answer checks). */
template <typename Curve>
BigInt<Curve::Fr::kLimbs>
lambda()
{
    return BigInt<Curve::Fr::kLimbs>::fromLimbs(
        CurveGlv<Curve>::kLambda);
}

/** phi(P) = (beta * x, y): one field multiplication. */
template <typename Curve>
AffinePoint<Curve>
endomorphism(const AffinePoint<Curve> &p)
{
    if (p.infinity)
        return p;
    return AffinePoint<Curve>::fromXY(beta<Curve>() * p.x, p.y);
}

/**
 * phi(P) on supported curves, identity mapping otherwise — lets
 * generic code (the engine is instantiated for every curve) compile
 * without constants; callers only reach it when the plan enabled GLV,
 * which planMsm refuses for unsupported curves.
 */
template <typename Curve>
AffinePoint<Curve>
endomorphismIfSupported(const AffinePoint<Curve> &p)
{
    if constexpr (CurveGlv<Curve>::kSupported)
        return endomorphism<Curve>(p);
    else
        return p;
}

/** Signed half-width decomposition: k = s1*k1 + s2*k2*lambda mod r. */
template <typename Curve>
struct Split
{
    BigInt<Curve::Fr::kLimbs> k1, k2; ///< magnitudes, < 2^128
    bool neg1 = false, neg2 = false;
};

/**
 * Decompose @p scalar (any value < 2^256; reduced mod r first, so
 * the engine's truncated-but-unreduced scalars are accepted).
 */
template <typename Curve>
Split<Curve>
decompose(const BigInt<Curve::Fr::kLimbs> &scalar)
{
    using G = CurveGlv<Curve>;
    static_assert(G::kSupported, "curve has no GLV constants");
    constexpr std::size_t N = Curve::Fr::kLimbs;
    static_assert(N == 4, "GLV multipliers assume 4-limb scalars");

    const BigInt<N> r = Curve::Fr::modulus();
    BigInt<N> k = scalar;
    while (k >= r)
        k.subInPlace(r);

    // c_i = round(k * |g_i| / 2^384), sign from the multiplier. The
    // 4x8-limb product fits in 16 limbs; the rounding bit is bit 383.
    auto round_mul = [&k](const std::uint64_t *g) {
        BigInt<8> a{}, b = BigInt<8>::fromLimbs(g);
        for (std::size_t i = 0; i < N; ++i)
            a.limb[i] = k.limb[i];
        const auto t = mulFull<8>(a, b);
        BigInt<N> c{};
        std::uint64_t carry = (t[5] >> 63) & 1;
        for (std::size_t i = 0; i < N; ++i)
            c.limb[i] = addc(t[6 + i], 0, carry);
        return c;
    };
    const BigInt<N> c1 = round_mul(G::kG1);
    const BigInt<N> c2 = round_mul(G::kG2);

    // (k1, k2) = (k, 0) - c1*v1 - c2*v2 in two's complement mod
    // 2^256; |c_i|, |a_i|, |b_i| < 2^129 so intermediate wraps are
    // harmless and the final values decode by their top bit.
    auto acc_signed = [](BigInt<N> &acc, const BigInt<N> &c,
                         bool c_neg, const std::uint64_t *v,
                         bool v_neg) {
        const BigInt<N> term = mulLow(c, BigInt<N>::fromLimbs(v));
        if (c_neg != v_neg)
            acc.addInPlace(term);
        else
            acc.subInPlace(term);
    };
    Split<Curve> out;
    BigInt<N> k1 = k;
    acc_signed(k1, c1, G::kG1Neg, G::kA1, G::kA1Neg);
    acc_signed(k1, c2, G::kG2Neg, G::kA2, G::kA2Neg);
    BigInt<N> k2{};
    acc_signed(k2, c1, G::kG1Neg, G::kB1, G::kB1Neg);
    acc_signed(k2, c2, G::kG2Neg, G::kB2, G::kB2Neg);

    auto decode = [](BigInt<N> v, bool &neg) {
        if ((v.limb[N - 1] >> 63) != 0) {
            neg = true;
            BigInt<N> z{};
            z.subInPlace(v);
            return z;
        }
        neg = false;
        return v;
    };
    out.k1 = decode(k1, out.neg1);
    out.k2 = decode(k2, out.neg2);
    return out;
}

} // namespace distmsm::msm::glv

#endif // DISTMSM_MSM_GLV_H
