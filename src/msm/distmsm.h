/**
 * @file
 * One-shot functional execution of the DistMSM plan.
 *
 * Thin wrapper over MsmEngine (engine.h): plans, stages the points,
 * runs one MSM and returns the curve point together with the
 * measured simulator statistics. Provers that reuse a fixed point
 * vector should construct an MsmEngine directly so the plan and the
 * precomputation tables are built once.
 */

#ifndef DISTMSM_MSM_DISTMSM_H
#define DISTMSM_MSM_DISTMSM_H

#include "src/msm/engine.h"
#include "src/msm/reference.h"

namespace distmsm::msm {

/** Execute the full DistMSM algorithm functionally, once. */
template <typename Curve>
MsmResult<Curve>
computeDistMsm(const std::vector<AffinePoint<Curve>> &points,
               const std::vector<BigInt<Curve::Fr::kLimbs>> &scalars,
               const gpusim::Cluster &cluster,
               const MsmOptions &options = MsmOptions{})
{
    const MsmEngine<Curve> engine(points, cluster, options);
    return engine.compute(scalars);
}

/**
 * computeDistMsm with the fault layer's typed error channel: an
 * unrecoverable injected fault (see MsmEngine::tryCompute) comes
 * back as a Status instead of aborting the process.
 */
template <typename Curve>
support::StatusOr<MsmResult<Curve>>
tryComputeDistMsm(
    const std::vector<AffinePoint<Curve>> &points,
    const std::vector<BigInt<Curve::Fr::kLimbs>> &scalars,
    const gpusim::Cluster &cluster,
    const MsmOptions &options = MsmOptions{})
{
    const MsmEngine<Curve> engine(points, cluster, options);
    return engine.tryCompute(scalars);
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_DISTMSM_H
