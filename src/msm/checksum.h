/**
 * @file
 * Random-linear-combination transfer checksums.
 *
 * Each simulated device appends an RLC digest to the partial sums it
 * ships to the host: D = sum_k [rho_k] S_k, with the rho_k drawn as
 * small (kRhoBits-bit) scalars from a seeded PRNG keyed by the
 * payload's global indices. The host re-derives D from the received
 * points and compares the two digests limb-for-limb — a flipped byte
 * anywhere in the payload (a coordinate or the digest itself)
 * changes the comparison. This is the same aggregation trick
 * zksnark/batch_verify.h uses to collapse a batch of pairing checks,
 * shrunk to a per-transfer integrity check: one extra scalar
 * multiplication per shipped point, priced as MsmTimeline::verifyNs.
 *
 * The rho width trades soundness against verification cost. 17 bits
 * (top bit forced so the chain length is fixed and rho is never
 * zero) keeps the digest under ~26 EC ops per point, which is what
 * holds the fault-free overhead below the 3%-of-totalNs acceptance
 * gate at 2^18 while still detecting every byte flip the seeded
 * injection sweep produces.
 */

#ifndef DISTMSM_MSM_CHECKSUM_H
#define DISTMSM_MSM_CHECKSUM_H

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/bigint/bigint.h"
#include "src/ec/point.h"
#include "src/gpusim/faults.h"
#include "src/support/prng.h"

namespace distmsm::msm {

/** Width of the RLC coefficients (top bit forced). */
constexpr unsigned kRhoBits = 17;

/** EC ops (pdbl + expected padd) one [rho]P costs, for pricing. */
constexpr unsigned kRhoEcOps = kRhoBits + kRhoBits / 2;

/**
 * The RLC coefficient for payload index @p k under @p seed:
 * kRhoBits wide, top bit set, identical on the "device" (digest
 * before serialization) and the host (re-derivation after receipt).
 */
inline std::uint32_t
rlcRho(std::uint64_t seed, std::uint64_t k)
{
    Prng prng(seed ^ ((k + 1) * 0xD1B54A32D192ED03ull));
    const std::uint32_t low_mask = (1u << (kRhoBits - 1)) - 1;
    return (1u << (kRhoBits - 1)) |
           (static_cast<std::uint32_t>(prng()) & low_mask);
}

/**
 * D = sum_i [rho_{base_index + i}] points[i]. The digest's EC work
 * is tallied into @p report (verifyEcOps) — never into KernelStats,
 * so zero-fault simulator statistics stay bit-identical to a build
 * without checksums.
 */
template <typename Curve>
XYZZPoint<Curve>
rlcDigest(const std::vector<XYZZPoint<Curve>> &points,
          std::uint64_t seed, std::uint64_t base_index,
          gpusim::FaultReport *report = nullptr)
{
    using Scalar = BigInt<Curve::Fr::kLimbs>;
    XYZZPoint<Curve> digest = XYZZPoint<Curve>::identity();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Scalar rho =
            Scalar::fromU64(rlcRho(seed, base_index + i));
        digest = padd(digest, pmul(points[i], rho));
        if (report != nullptr)
            report->verifyEcOps += kRhoEcOps + 1;
    }
    if (report != nullptr)
        report->checksummed += points.size();
    return digest;
}

/**
 * Serialize XYZZ points into the simulated transfer payload.
 * XYZZPoint is trivially copyable (four field elements, no
 * indirection), so the wire format is the in-memory limb layout —
 * exactly what a real cudaMemcpy of a device result buffer moves.
 */
template <typename Curve>
std::vector<std::uint8_t>
serializePoints(const std::vector<XYZZPoint<Curve>> &points)
{
    static_assert(
        std::is_trivially_copyable_v<XYZZPoint<Curve>>,
        "XYZZ transfer payloads rely on the raw limb layout");
    std::vector<std::uint8_t> bytes(points.size() *
                                    sizeof(XYZZPoint<Curve>));
    if (!bytes.empty())
        std::memcpy(bytes.data(), points.data(), bytes.size());
    return bytes;
}

template <typename Curve>
std::vector<XYZZPoint<Curve>>
deserializePoints(const std::vector<std::uint8_t> &bytes)
{
    std::vector<XYZZPoint<Curve>> points(bytes.size() /
                                         sizeof(XYZZPoint<Curve>));
    if (!points.empty())
        std::memcpy(points.data(), bytes.data(),
                    points.size() * sizeof(XYZZPoint<Curve>));
    return points;
}

/** Limb-level equality (operator== is only group equality). */
template <typename Curve>
bool
bitEqual(const XYZZPoint<Curve> &a, const XYZZPoint<Curve> &b)
{
    return std::memcmp(&a, &b, sizeof(a)) == 0;
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_CHECKSUM_H
