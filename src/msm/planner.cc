#include "src/msm/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/gpusim/health.h"
#include "src/msm/autoplan.h"
#include "src/msm/checksum.h"
#include "src/msm/precompute.h"

#include "src/support/check.h"
#include "src/support/trace.h"

namespace distmsm::msm {

using gpusim::CostModel;
using gpusim::CurveProfile;
using gpusim::EcKernelVariant;
using gpusim::EcOp;
using gpusim::KernelStats;

namespace {

/** XYZZ point size in bytes for transfer accounting. */
std::uint64_t
xyzzBytes(const CurveProfile &curve)
{
    return 4ull * curve.limbs64() * 8;
}

/** Largest window the planner will grow to for precompute tables:
 *  past this, bucket storage and the reduce tail dwarf the saving. */
constexpr unsigned kMaxPrecomputeWindowBits = 24;

} // namespace

const char *
plannerModeName(PlannerMode mode)
{
    switch (mode) {
      case PlannerMode::Heuristic:
        return "heuristic";
      case PlannerMode::Search:
        return "search";
      case PlannerMode::Cached:
        return "cached";
    }
    return "?";
}

bool
parsePlannerMode(std::string_view text, PlannerMode *out)
{
    if (text == "heuristic") {
        *out = PlannerMode::Heuristic;
    } else if (text == "search") {
        *out = PlannerMode::Search;
    } else if (text == "cached") {
        *out = PlannerMode::Cached;
    } else {
        return false;
    }
    return true;
}

MsmPlan
planMsm(const CurveProfile &curve, std::uint64_t n,
        const gpusim::Cluster &cluster, const MsmOptions &options)
{
    const gpusim::Cluster planning =
        planningCluster(cluster, options.health);
    if (options.planner != PlannerMode::Heuristic)
        return autoplanMsm(curve, n, planning, options).plan;
    return planMsmHeuristic(curve, n, planning, options);
}

gpusim::Cluster
planningCluster(const gpusim::Cluster &cluster,
                const gpusim::HealthTracker *health)
{
    if (health == nullptr)
        return cluster;
    int schedulable = 0;
    for (int d = 0; d < cluster.numGpus(); ++d)
        if (d >= health->numDevices() || health->schedulable(d))
            ++schedulable;
    if (schedulable == cluster.numGpus() || schedulable == 0)
        return cluster;
    gpusim::Topology topo = cluster.topology();
    topo.totalGpus = schedulable;
    return gpusim::Cluster(cluster.device(), topo, cluster.host(),
                           cluster.model().params());
}

MsmPlan
planMsmHeuristic(const CurveProfile &curve, std::uint64_t n,
                 const gpusim::Cluster &cluster,
                 const MsmOptions &options)
{
    MsmPlan plan;
    // GLV rewrites the problem before planning: 2n points against
    // half-width scalars (silently off without curve constants).
    plan.glv = options.glv && curve.glvScalarBits != 0;
    plan.scalarBits =
        plan.glv ? curve.glvScalarBits : curve.scalarBits;
    const std::uint64_t n_eff = plan.glv ? 2 * n : n;

    WorkloadConfig wc;
    wc.numPoints = n_eff;
    wc.scalarBits = plan.scalarBits;
    wc.numGpus = cluster.numGpus();
    wc.threadsPerGpu = cluster.device().maxConcurrentThreads();

    plan.windowBits = options.windowBitsOverride != 0
                          ? options.windowBitsOverride
                          : optimalWindowSize(wc);

    // Fixed-base precompute tables: every device holds all W rows of
    // n_eff affine points, so the footprint is n_eff * W * 2 *
    // fieldBytes. Hold that against half the device's global memory
    // (the other half stays for scalars, bucket ids and bucket
    // state). A larger window shrinks W, so when the caller left the
    // window size to the planner, grow it until the table fits;
    // decline precompute when it cannot fit (pinned override, or no
    // reasonable window fits) rather than plan an impossible layout.
    if (options.precompute) {
        const std::uint64_t affine_bytes = 2ull * curve.limbs64() * 8;
        const std::uint64_t mem = cluster.device().globalMemBytes;
        const std::uint64_t budget =
            mem == 0 ? std::numeric_limits<std::uint64_t>::max()
                     : mem / 2;
        const auto table_bytes = [&](unsigned s) {
            const unsigned w =
                windowCount(plan.scalarBits, s) +
                (options.signedDigits ? 1u : 0u);
            return n_eff * w * affine_bytes;
        };
        unsigned s = plan.windowBits;
        if (options.windowBitsOverride == 0) {
            while (table_bytes(s) > budget && s < kMaxPrecomputeWindowBits)
                ++s;
        }
        if (table_bytes(s) <= budget) {
            plan.precompute = true;
            plan.windowBits = s;
            plan.tableBytes = table_bytes(s);
        }
    }

    plan.numWindows = windowCount(plan.scalarBits, plan.windowBits);
    plan.signedDigits = options.signedDigits;
    if (options.signedDigits) {
        // One extra window absorbs the final carry; buckets halve.
        ++plan.numWindows;
        plan.numBuckets = std::uint64_t{1} << (plan.windowBits - 1);
    } else {
        plan.numBuckets =
            (std::uint64_t{1} << plan.windowBits) - 1;
    }

    if (cluster.numGpus() >= 2 * static_cast<int>(plan.numWindows)) {
        plan.bucketsSplitAcrossGpus = true;
        plan.gpusPerWindow = cluster.numGpus() /
                             static_cast<int>(plan.numWindows);
        plan.windowsPerGpu = 1;
    } else {
        plan.gpusPerWindow = 1;
        plan.windowsPerGpu =
            (plan.numWindows + cluster.numGpus() - 1) /
            cluster.numGpus();
    }

    // Enough threads per bucket to occupy the device (Section 3.2.2),
    // rounded to a warp multiple so the hardware scheduler absorbs
    // bucket skew.
    const double buckets_per_gpu = std::max<double>(
        1.0, static_cast<double>(plan.numBuckets) /
                 plan.gpusPerWindow);
    const double want = static_cast<double>(wc.threadsPerGpu) /
                        buckets_per_gpu;
    // More threads than expected points per bucket would idle; one
    // thread per bucket suffices when buckets already cover the
    // device (the traditional large-window allocation).
    const double points_per_bucket =
        static_cast<double>(n_eff) /
        std::max<double>(1.0, static_cast<double>(plan.numBuckets));
    int tpb = 1;
    while (tpb < want && tpb < 1024 && tpb < 2 * points_per_bucket)
        tpb *= 2;
    // The override raises the floor but must respect the same
    // ceilings the grow loop does: the 1024-thread block cap and the
    // 2x-points-per-bucket idle guard (a forced 4096 comes back
    // capped, not blowing past what the device can co-schedule).
    int tpb_cap = static_cast<int>(std::min<double>(
        1024.0, 2 * points_per_bucket));
    tpb_cap = std::max(tpb_cap, 1);
    plan.threadsPerBucket =
        std::max(tpb, std::min(options.threadsPerBucket, tpb_cap));

    // Collective tuner: price the dominant merge payload (the
    // per-device bucket-sum share of the CPU-reduce placement, the
    // same message estimateDistMsm charges transferNs for) against
    // the topology's link model and resolve the policy to a
    // concrete strategy. A forced policy maps straight through;
    // Auto takes the argmin of the per-strategy predictions.
    const double windows_per_gpu_f =
        static_cast<double>(plan.numWindows) / cluster.numGpus();
    const double sums_per_gpu = std::min(
        static_cast<double>(plan.numBuckets),
        static_cast<double>(plan.numBuckets) * windows_per_gpu_f);
    plan.mergeBytesPerGpu = static_cast<std::uint64_t>(
        sums_per_gpu * xyzzBytes(curve));
    plan.collective =
        gpusim::CollectiveTimeEstimator(cluster.topology(),
                                        cluster.device())
            .pick(options.collective, cluster.numGpus(),
                  plan.mergeBytesPerGpu);

    // Pipeline depth and device partitions: the heuristic planner
    // resolves the searchable sentinel (0) to the legacy single-MSM
    // geometry; only the plan search enumerates deeper values. A
    // partition count that does not divide the cluster falls back to
    // the whole-cluster plan rather than a ragged split.
    plan.pipelineDepth = std::max(1, options.pipelineDepth);
    const int want_parts = std::max(1, options.devicePartitions);
    plan.devicePartitions =
        (want_parts <= cluster.numGpus() &&
         cluster.numGpus() % want_parts == 0)
            ? want_parts
            : 1;

    // Field-backend resolution: a forced choice maps straight
    // through; Auto prices the dominant accumulation kernel (the
    // bucket sum retiring one EC add per scattered point) under both
    // backends and takes the argmin. Kernels that never modeled
    // tensor cores (baseline(), --no-tc) stay on CUDA cores — Auto
    // must not silently upgrade an explicitly stripped variant.
    plan.fieldBackend = options.fieldBackend;
    plan.fieldBackendAuto =
        options.fieldBackend == gpusim::FieldBackend::Auto;
    if (plan.fieldBackendAuto) {
        if (!options.kernel.tensorCoreMont) {
            plan.fieldBackend = gpusim::FieldBackend::CudaCore;
        } else {
            const EcOp acc_op = options.batchAffine
                                    ? EcOp::AffineAdd
                                    : EcOp::Pacc;
            const std::uint64_t acc_ops = std::max<std::uint64_t>(
                1, n_eff * plan.numWindows / cluster.numGpus());
            const CostModel &model = cluster.model();
            const double tc_ns = model.ecThroughputNs(
                curve,
                applyFieldBackend(options.kernel,
                                  gpusim::FieldBackend::TensorCore),
                acc_op, acc_ops);
            const double cc_ns = model.ecThroughputNs(
                curve,
                applyFieldBackend(options.kernel,
                                  gpusim::FieldBackend::CudaCore),
                acc_op, acc_ops);
            plan.fieldBackend =
                tc_ns < cc_ns ? gpusim::FieldBackend::TensorCore
                              : gpusim::FieldBackend::CudaCore;
        }
    }
    return plan;
}

KernelStats
synthesizeScatterStats(bool hierarchical, std::uint64_t elements,
                       unsigned window_bits,
                       const ScatterConfig &config)
{
    KernelStats stats;
    const double buckets = std::ldexp(1.0, window_bits) - 1.0;
    const double inserted = elements * buckets / (buckets + 1.0);
    const std::uint64_t threads =
        static_cast<std::uint64_t>(config.blockDim) * config.gridDim;
    const std::uint64_t k =
        (elements + threads - 1) / std::max<std::uint64_t>(threads, 1);
    stats.phases = k;

    if (!hierarchical) {
        stats.globalAtomics = static_cast<std::uint64_t>(inserted);
        // Per phase, ~threads writes land on `buckets` addresses.
        const double c =
            std::max(1.0, static_cast<double>(threads) / buckets);
        stats.globalConflictWeight = static_cast<std::uint64_t>(
            inserted * c);
        stats.globalMaxConflict = static_cast<std::uint64_t>(c);
        stats.gmemBytes = static_cast<std::uint64_t>(
            inserted * config.globalIdBytes *
            config.uncoalescedWriteFactor);
        return stats;
    }

    // Hierarchical: two shared-atomic passes (count + place), block
    // prefix sums, and one global atomic per (block, tile, non-empty
    // local bucket).
    const double block_c = std::max(
        1.0, static_cast<double>(config.blockDim) / buckets);
    stats.sharedAtomics = static_cast<std::uint64_t>(2 * inserted);
    stats.sharedConflictWeight =
        static_cast<std::uint64_t>(2 * inserted * block_c);
    stats.sharedMaxConflict = static_cast<std::uint64_t>(block_c);

    const std::size_t fixed_bytes = (std::size_t{2} << window_bits) * 4;
    if (fixed_bytes + static_cast<std::size_t>(config.blockDim) *
                          config.localIdBytes >
        config.sharedBytesPerBlock) {
        return stats; // kernel would not run; callers check ok first
    }
    const double k_tile = std::floor(
        static_cast<double>(config.sharedBytesPerBlock - fixed_bytes) /
        (static_cast<double>(config.blockDim) * config.localIdBytes));
    const double tile_elems = k_tile * config.blockDim;
    const double tiles =
        std::ceil(static_cast<double>(elements) /
                  (tile_elems * config.gridDim));
    // Non-empty local buckets per (block, tile): balls-into-bins.
    const double nonempty =
        buckets * (1.0 - std::exp(-tile_elems / buckets));
    const double flushes = tiles * config.gridDim * nonempty;
    stats.globalAtomics = static_cast<std::uint64_t>(flushes);
    // Concurrent flushers of one bucket address: the grid's blocks.
    const double flush_c = std::max(
        1.0, config.gridDim * nonempty / buckets);
    stats.globalConflictWeight =
        static_cast<std::uint64_t>(flushes * flush_c);
    stats.globalMaxConflict = static_cast<std::uint64_t>(flush_c);
    stats.sharedAccesses = static_cast<std::uint64_t>(
        inserted + tiles * config.gridDim * 2 * (buckets + 1));
    stats.gmemBytes = static_cast<std::uint64_t>(
        inserted * config.globalIdBytes);
    return stats;
}

MsmTimeline
estimateDistMsm(const CurveProfile &curve, std::uint64_t n,
                const gpusim::Cluster &cluster,
                const MsmOptions &options)
{
    if (options.planner != PlannerMode::Heuristic) {
        // Price the timeline under the *realized* options (the
        // winning candidate's functional knobs), not the caller's
        // starting knobs — that is the configuration the search
        // scored and the engine will execute.
        const AutoPlanResult r =
            autoplanMsm(curve, n, cluster, options);
        return estimateDistMsmWithPlan(curve, n, cluster, r.options,
                                       r.plan);
    }
    return estimateDistMsmWithPlan(
        curve, n, cluster, options,
        planMsmHeuristic(curve, n, cluster, options));
}

MsmTimeline
estimateDistMsmWithPlan(const CurveProfile &curve, std::uint64_t n,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options, const MsmPlan &plan)
{
    const CostModel &model = cluster.model();
    const auto &spec = cluster.device();
    // Every EC kernel below is priced under the plan's resolved
    // field-arithmetic backend, so the timeline and the functional
    // engine attribute the same work to the same unit.
    const EcKernelVariant kernel =
        applyFieldBackend(options.kernel, plan.fieldBackend);
    const double buckets = static_cast<double>(plan.numBuckets);
    // GLV: twice the points flow through scatter and accumulation,
    // but the windows (computed by planMsm) already halved.
    const std::uint64_t n_eff = plan.glv ? 2 * n : n;

    // Flexible fractional distribution (Section 3.2.2): a GPU may
    // own whole windows, or a fraction of one window's buckets —
    // "this can be achieved simply by launching a different number
    // of thread blocks".
    const double windows_per_gpu =
        static_cast<double>(plan.numWindows) / cluster.numGpus();

    MsmTimeline t;
    t.reduceOverlapped = options.overlapReduce;
    t.fieldBackend = plan.fieldBackend;

    // --- Scatter (per GPU, concurrent across GPUs) ---
    // A GPU scans the N coefficients of every window it touches; in
    // the sub-window regime it inserts only its bucket slice.
    const double scanned = std::max(1.0, windows_per_gpu) * n_eff;
    const double inserted = windows_per_gpu * n_eff;
    // The hierarchical kernel needs 2^s counters plus a tile in
    // shared memory; above that (s > 14 on the A100) DistMSM falls
    // back to the naive scatter, which single-GPU window sizes
    // prefer anyway (Figure 11).
    const bool hierarchical =
        options.hierarchicalScatter &&
        hierarchicalSharedBytes(plan.windowBits, options.scatter, 1) <=
            options.scatter.sharedBytesPerBlock;
    const KernelStats scatter_stats = synthesizeScatterStats(
        hierarchical, static_cast<std::uint64_t>(inserted),
        plan.windowBits, options.scatter);
    const int scatter_threads = std::min<std::uint64_t>(
        spec.maxConcurrentThreads(),
        static_cast<std::uint64_t>(options.scatter.blockDim) *
            options.scatter.gridDim);
    t.scatterNs =
        model.scatterComputeNs(static_cast<std::uint64_t>(scanned),
                               scatter_threads) +
        model.atomicNs(scatter_stats, scatter_threads) +
        model.gmemNs(scatter_stats.gmemBytes);

    // --- Bucket sum (per GPU) ---
    // Each GPU sums the buckets it owns, then (precomputed points,
    // Section 2.3.1) merges its windows bucket-wise so at most one
    // 2^s-bucket set leaves each GPU.
    const std::uint64_t acc_ops =
        static_cast<std::uint64_t>(inserted);
    // Batched-affine accumulation replaces the 10-mul pacc with the
    // ~7-modmul amortized affine add.
    const EcOp acc_op =
        options.batchAffine ? EcOp::AffineAdd : EcOp::Pacc;
    const double buckets_per_gpu = buckets * windows_per_gpu;
    const std::uint64_t tree_padds = static_cast<std::uint64_t>(
        buckets_per_gpu * (plan.threadsPerBucket - 1));
    // Precomputed tables land every window's digit in the *same*
    // bucket set during scatter, so no bucket-wise window merge
    // remains on the device.
    const std::uint64_t merge_padds =
        plan.precompute
            ? 0
            : static_cast<std::uint64_t>(
                  buckets * std::max(0.0, windows_per_gpu - 1.0));
    t.bucketSumNs =
        model.ecThroughputNs(curve, kernel, acc_op,
                             acc_ops) +
        model.ecThroughputNs(curve, kernel, EcOp::Padd,
                             tree_padds + merge_padds);

    // --- Bucket reduce ---
    // The planner prices both placements (Section 3.2.3's CPU
    // offload vs the GPU-resident reduce, which must also merge the
    // per-GPU sets) and takes the cheaper one; the overlapped CPU
    // reduce is charged only for the part peeking past the GPU work.
    const double sums_per_gpu = std::min(buckets, buckets_per_gpu);
    const double incoming = cluster.numGpus() * sums_per_gpu;
    const std::uint64_t host_padds = static_cast<std::uint64_t>(
        std::max(0.0, incoming - buckets) + 2.0 * buckets);
    const double host_reduce_ns =
        model.hostEcNs(curve, host_padds, cluster.host());

    const double nt = spec.maxConcurrentThreads();
    const double gpu_reduce_ns =
        model.ecThroughputNs(
            curve, kernel, EcOp::Padd,
            static_cast<std::uint64_t>(
                std::max(0.0, incoming - buckets) / cluster.numGpus() +
                2.0 * (buckets + 1.0))) +
        model.ecSerialNs(curve, kernel, EcOp::Padd,
                         static_cast<std::uint64_t>(
                             plan.windowBits + std::log2(nt)));

    // Each placement implies its own transfer volume (the CPU reduce
    // pulls every bucket sum to the host; the GPU reduce ships one
    // partial result per GPU), so both are priced before the choice
    // — under the plan's merge strategy. Gather reproduces the
    // legacy cluster.gatherNs pricing bit-exactly; ring/tree route
    // the same disjoint payloads over the topology's NVLink/IB
    // links instead of all-to-host. Scalars and points are staged on
    // the devices before the timed region, as in the baselines' MSM
    // benchmarks, so their upload is not charged here.
    const gpusim::CollectiveTimeEstimator merge_est(
        cluster.topology(), cluster.device());
    const gpusim::CollectiveCosts cpu_merge_costs = merge_est.costs(
        cluster.numGpus(),
        static_cast<std::uint64_t>(sums_per_gpu * xyzzBytes(curve)));
    const gpusim::CollectiveCosts gpu_merge_costs = merge_est.costs(
        cluster.numGpus(), xyzzBytes(curve));
    // CollectivePolicy::Auto re-resolves per (topology, payload):
    // the CPU-reduce placement merges the full bucket-sum share, the
    // GPU-reduce placement ships one partial per GPU — two very
    // different payloads, so each gets its own congestion-priced
    // argmin instead of inheriting the plan-time pick (which was
    // made at the CPU placement's payload). Forced policies keep the
    // plan's resolved strategy for both, bit-compatible with every
    // earlier timeline.
    const bool auto_collective =
        options.collective == gpusim::CollectivePolicy::Auto;
    const gpusim::CollectiveAlgo cpu_algo =
        auto_collective ? cpu_merge_costs.best() : plan.collective;
    const gpusim::CollectiveAlgo gpu_algo =
        auto_collective ? gpu_merge_costs.best() : plan.collective;
    const double transfer_cpu_ns = cpu_merge_costs.ns(cpu_algo);
    const double transfer_gpu_ns = gpu_merge_costs.ns(gpu_algo);

    // The overlapped host reduce hides behind the GPU *stage* —
    // kernels plus the transfer streaming the sums out (Section
    // 3.2.3, mirrored by MsmTimeline::totalNs()).
    const double gpu_side_ns = t.scatterNs + t.bucketSumNs;
    const double effective_host_ns =
        options.overlapReduce
            ? std::max(0.0, host_reduce_ns -
                                (gpu_side_ns + transfer_cpu_ns))
            : host_reduce_ns;
    const bool cpu_reduce = options.cpuBucketReduce &&
                            effective_host_ns < gpu_reduce_ns;
    t.cpuReduce = cpu_reduce;
    t.bucketReduceNs = cpu_reduce ? host_reduce_ns : gpu_reduce_ns;
    t.transferNs = cpu_reduce ? transfer_cpu_ns : transfer_gpu_ns;
    t.collective = cpu_reduce ? cpu_algo : gpu_algo;
    t.mergeCosts = cpu_reduce ? cpu_merge_costs : gpu_merge_costs;

    // --- Transfer checksum verification (fault layer) ---
    // Each device folds its per-window partial sums into one RLC
    // digest ([rho]S is a kRhoBits-wide double-and-add) before the
    // gather; the host re-derives the digest over every received
    // point and compares. One short scalar-mul per window, so the
    // cost scales with the window count, not with N — which is what
    // keeps the fault-free overhead under the 3%-of-totalNs gate.
    if (options.verifyChecksums) {
        const double wpg = std::max(1.0, windows_per_gpu);
        const double device_digest_ns =
            model.ecThroughputNs(
                curve, kernel, EcOp::Pdbl,
                static_cast<std::uint64_t>(wpg * kRhoBits)) +
            model.ecThroughputNs(
                curve, kernel, EcOp::Padd,
                static_cast<std::uint64_t>(wpg * (kRhoBits / 2 + 1)));
        const double host_rederive_ns = model.hostEcNs(
            curve,
            static_cast<std::uint64_t>(plan.numWindows) *
                    (kRhoEcOps + 1) +
                cluster.numGpus(),
            cluster.host());
        t.verifyNs = device_digest_ns + host_rederive_ns;
    }

    // --- Window reduce (host; a handful of points per GPU) ---
    if (plan.precompute) {
        // One combined bucket pass: the host only folds the per-GPU
        // partials — the serial inter-window double-and-add chain
        // (s doublings per window) is gone, and so are the
        // per-window launch rounds.
        t.windowReduceNs =
            model.hostEcNs(curve, cluster.numGpus(), cluster.host()) +
            4.0 * model.params().kernelLaunchUs * 1e3;
        // One-time table construction, amortized across proofs via
        // the base cache; excluded from totalNs() (see MsmTimeline).
        t.tableBuildNs = model.ecThroughputNs(
            curve, kernel, EcOp::Pdbl,
            precomputeBuildPdbls(n_eff, plan.numWindows,
                                 plan.windowBits));
    } else {
        t.windowReduceNs = model.hostEcNs(
            curve, cluster.numGpus() + plan.numWindows,
            cluster.host());

        // Fixed pipeline overhead: the scatter / sum / merge /
        // reduce launches and their synchronization (the floor
        // visible at small N).
        t.windowReduceNs +=
            8.0 * model.params().kernelLaunchUs * 1e3;
    }

    // --- Straggler + backoff pricing (fault layer) ---
    // Degrade/hang clauses stall the lockstep merge behind the
    // slowest device. With the watchdog on, a window that blows its
    // slack x estimate deadline respawns on the fastest healthy
    // survivor, so the exposed penalty per device is
    // gpu_side x (min(F, slack + best) - 1) — the straggling
    // original (factor F) raced against waiting out the deadline
    // plus the survivor's copy (slack + best). Without the watchdog
    // the full (F - 1) stall lands on the critical path, and a hang
    // costs the transfer timeout. Backoff prices the expected
    // dead-wire wait of flaky / persistently corrupt devices'
    // retries. Fault-free plans leave both fields zero, so every
    // pre-existing timeline is unchanged.
    if (!options.faults.empty()) {
        const gpusim::FaultPlan &fplan = options.faults;
        double best = std::numeric_limits<double>::infinity();
        for (int d = 0; d < cluster.numGpus(); ++d)
            if (fplan.hangWindow(d) < 0)
                best = std::min(best, fplan.degradeFactor(d, 0));
        if (!std::isfinite(best))
            best = 1.0;
        double worst = 0.0;
        for (int d = 0; d < cluster.numGpus(); ++d) {
            const double f = fplan.degradeFactor(d, 0);
            const bool hang = fplan.hangWindow(d) >= 0;
            double pen;
            if (!options.watchdog) {
                pen = hang ? options.transferTimeoutNs
                           : (f - 1.0) * gpu_side_ns;
            } else {
                const double eff =
                    hang ? options.watchdogSlack + best
                         : std::min(f, options.watchdogSlack + best);
                pen = (eff - 1.0) * gpu_side_ns;
            }
            worst = std::max(worst, pen);
        }
        t.stragglerNs = worst;

        for (int d = 0; d < cluster.numGpus(); ++d) {
            double p = fplan.flakyProbability(d);
            for (const gpusim::FaultEvent &ev : fplan.events)
                if (ev.kind ==
                        gpusim::FaultKind::CorruptDeviceTransfers &&
                    ev.device == d)
                    p = 1.0;
            if (p <= 0.0)
                continue;
            double odds = 1.0;
            for (int a = 1; a <= options.maxRetries; ++a) {
                odds *= p;
                t.backoffNs +=
                    odds * std::min(options.backoffMaxNs,
                                    options.backoffBaseNs *
                                        static_cast<double>(1ull
                                                            << (a - 1)));
            }
        }
    }

    if (options.trace != nullptr)
        traceMsmTimeline(*options.trace, plan, t, cluster);
    return t;
}

namespace {

/** Deterministic 64-bit FNV-1a, used to salt flow-arrow ids. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

void
traceMsmTimeline(support::TraceRecorder &trace, const MsmPlan &plan,
                 const MsmTimeline &t,
                 const gpusim::Cluster &cluster,
                 const std::string &label, double start_ns)
{
    namespace lane = support::tracelane;
    const std::string prefix = label.empty() ? label : label + "/";

    trace.labelProcess(lane::kHostPid, "host cpu");
    trace.labelThread(lane::kHostPid, lane::kComputeTid, "reduce");
    for (int d = 0; d < cluster.numGpus(); ++d) {
        trace.labelProcess(lane::devicePid(d),
                           "gpu" + std::to_string(d));
        trace.labelThread(lane::devicePid(d), lane::kComputeTid,
                          "compute");
        trace.labelThread(lane::devicePid(d), lane::kTransferTid,
                          "transfer");
    }

    // Span layout mirrors MsmTimeline::totalNs() exactly: the last
    // span on any lane ends at start_ns + t.totalNs().
    const double scatter_end = start_ns + t.scatterNs;
    const double sum_end = scatter_end + t.bucketSumNs;
    const double gpu_end = start_ns + t.gpuNs();
    const double gpu_stage_end = start_ns + t.gpuStageNs();
    const double total_end = start_ns + t.totalNs();

    support::TraceArgs plan_args;
    plan_args.arg("window_bits", static_cast<double>(plan.windowBits))
        .arg("num_windows", static_cast<double>(plan.numWindows))
        .arg("num_buckets", static_cast<double>(plan.numBuckets))
        .arg("gpus_per_window",
             static_cast<double>(plan.gpusPerWindow));

    for (int d = 0; d < cluster.numGpus(); ++d) {
        const int pid = lane::devicePid(d);
        trace.span(prefix + "scatter", "phase", pid,
                   lane::kComputeTid, start_ns, t.scatterNs,
                   plan_args);
        trace.span(prefix + "bucket-sum", "phase", pid,
                   lane::kComputeTid, scatter_end, t.bucketSumNs);
        if (!t.cpuReduce)
            trace.span(prefix + "bucket-reduce", "phase", pid,
                       lane::kComputeTid, sum_end, t.bucketReduceNs);
        trace.span(prefix + "transfer", "transfer", pid,
                   lane::kTransferTid, gpu_end, t.transferNs);
        trace.flow(prefix + "sums", fnv1a(prefix) ^
                       static_cast<std::uint64_t>(d),
                   pid, lane::kTransferTid, gpu_stage_end,
                   lane::kHostPid, lane::kComputeTid, gpu_stage_end);
    }

    if (t.cpuReduce) {
        // Overlapped: the host reduce runs alongside the GPU stage
        // and the makespan is max(gpuStage, reduce) + windowReduce.
        const double reduce_start =
            t.reduceOverlapped ? start_ns : gpu_stage_end;
        trace.span(prefix + "bucket-reduce", "phase", lane::kHostPid,
                   lane::kComputeTid, reduce_start, t.bucketReduceNs);
    }
    if (t.verifyNs > 0.0) {
        // Digest verification follows the host bucket-reduce in the
        // overlappable host stage (MsmTimeline::totalNs()): together
        // they either hide behind the GPU stage or serialize after
        // it, and the window reduce always closes the timeline.
        const double verify_start =
            (t.reduceOverlapped ? start_ns : gpu_stage_end) +
            (t.cpuReduce ? t.bucketReduceNs : 0.0);
        trace.span(prefix + "verify", "phase", lane::kHostPid,
                   lane::kComputeTid, verify_start, t.verifyNs);
    }
    trace.span(prefix + "window-reduce", "phase", lane::kHostPid,
               lane::kComputeTid, total_end - t.windowReduceNs,
               t.windowReduceNs);

    auto &metrics = trace.metrics();
    const std::string mp = "timeline/" + prefix;
    metrics.set(mp + "scatter_ns", t.scatterNs);
    metrics.set(mp + "bucket_sum_ns", t.bucketSumNs);
    metrics.set(mp + "bucket_reduce_ns", t.bucketReduceNs);
    metrics.set(mp + "window_reduce_ns", t.windowReduceNs);
    metrics.set(mp + "transfer_ns", t.transferNs);
    metrics.set(mp + "verify_ns", t.verifyNs);
    metrics.set(mp + "total_ns", t.totalNs());
    metrics.set(mp + "cpu_reduce", t.cpuReduce ? 1.0 : 0.0);
    metrics.set(mp + "precompute", plan.precompute ? 1.0 : 0.0);
    // Amortized one-time cost; deliberately not part of total_ns
    // (trace_summary's overlap check reconciles spans vs total).
    metrics.set(mp + "table_build_ns", t.tableBuildNs);
    metrics.set(mp + "num_gpus",
                static_cast<double>(cluster.numGpus()));
    // Merge strategy and the tuner's per-strategy predictions for
    // the same payload (0 = gather, 1 = ring, 2 = tree, 3 = reduce-
    // scatter), so bench harnesses can read the gather-vs-collective
    // spread without re-deriving the link model.
    metrics.set(mp + "collective",
                static_cast<double>(static_cast<int>(t.collective)));
    metrics.set(mp + "merge_gather_ns", t.mergeCosts.gatherNs);
    metrics.set(mp + "merge_ring_ns", t.mergeCosts.ringNs);
    metrics.set(mp + "merge_tree_ns", t.mergeCosts.treeNs);
    metrics.set(mp + "merge_reduce_scatter_ns",
                t.mergeCosts.reduceScatterNs);
    // The plan's pipeline geometry (searchable knobs; 1/1 is the
    // legacy single-MSM objective).
    metrics.set(mp + "pipeline_depth",
                static_cast<double>(plan.pipelineDepth));
    metrics.set(mp + "device_partitions",
                static_cast<double>(plan.devicePartitions));
    // Resolved field-arithmetic backend the EC kernels were priced
    // under (gpusim::FieldBackend: 1 = cuda-core, 2 = tensor-core),
    // plus whether the planner's Auto resolution made the pick.
    metrics.set(mp + "field_backend",
                static_cast<double>(
                    static_cast<int>(plan.fieldBackend)));
    metrics.set(mp + "field_backend_auto",
                plan.fieldBackendAuto ? 1.0 : 0.0);
}

MsmTimeline
estimateNdimBaseline(const CurveProfile &curve, std::uint64_t n,
                     const gpusim::Cluster &cluster,
                     const EcKernelVariant &kernel,
                     unsigned window_bits_override,
                     bool rigid_single_gpu_design)
{
    const CostModel &model = cluster.model();
    const auto &spec = cluster.device();

    // The single-GPU design picks its window size for one GPU and
    // keeps it when scaled out (the rigidity the paper criticizes).
    WorkloadConfig wc;
    wc.numPoints = n;
    wc.scalarBits = curve.scalarBits;
    wc.numGpus = 1;
    wc.threadsPerGpu = spec.maxConcurrentThreads();
    // Production single-GPU libraries cap the window near 16 bits:
    // bucket storage and the reduce tail grow with 2^s while the
    // bucket-sum saving flattens. The rigid NO-OPT design of Section
    // 5.3 keeps its single-GPU-optimal (large) window instead.
    unsigned s = window_bits_override != 0 ? window_bits_override
                                           : optimalWindowSize(wc);
    if (window_bits_override == 0 && !rigid_single_gpu_design)
        s = std::min(16u, s);
    const unsigned n_win = windowCount(curve.scalarBits, s);
    const double buckets = std::ldexp(1.0, s) - 1.0;

    // Each GPU runs the whole Pippenger on its ceil(N / N_gpu) slice:
    // the makespan is the slowest GPU's share, and truncating here
    // would silently drop up to numGpus-1 points from the baseline's
    // scatter/bucket-sum charge at non-divisible N.
    const std::uint64_t slice =
        (n + cluster.numGpus() - 1) / cluster.numGpus();

    MsmTimeline t;
    t.cpuReduce = false;
    t.fieldBackend = kernel.tensorCoreMont
                         ? gpusim::FieldBackend::TensorCore
                         : gpusim::FieldBackend::CudaCore;

    ScatterConfig scatter_cfg;
    const std::uint64_t scanned =
        static_cast<std::uint64_t>(n_win) * slice;
    const KernelStats scatter_stats =
        synthesizeScatterStats(false, scanned, s, scatter_cfg);
    const int scatter_threads = std::min<std::uint64_t>(
        spec.maxConcurrentThreads(),
        static_cast<std::uint64_t>(scatter_cfg.blockDim) *
            scatter_cfg.gridDim);
    t.scatterNs = model.scatterComputeNs(scanned, scatter_threads) +
                  model.atomicNs(scatter_stats, scatter_threads) +
                  model.gmemNs(scatter_stats.gmemBytes);

    // Bucket sum: one thread per bucket per window (the traditional
    // allocation), plus nothing extra for trees.
    t.bucketSumNs = model.ecThroughputNs(curve, kernel, EcOp::Pacc,
                                         scanned);

    // Bucket reduce on the GPU, per window, not merged: chunked
    // running sums (2 PADDs per bucket) plus a serial combine tail
    // per window. The throughput part shrinks with s fixed, but the
    // per-window tails and the host merge below refuse to scale
    // with the GPU count (Section 3.1's criticism).
    const double nt = spec.maxConcurrentThreads();
    if (rigid_single_gpu_design) {
        // The paper's NO-OPT reduce: every bucket is scaled to
        // 2^i B_i (s PADD + s PDBL per bucket) before the parallel
        // reduction, per window, with the per-window combine chains
        // serialized — the "notably inefficient" parallel
        // bucket-reduce of Section 3.2.3.
        t.bucketReduceNs =
            model.ecThroughputNs(
                curve, kernel, EcOp::Padd,
                static_cast<std::uint64_t>(n_win * 2.0 * s *
                                           (buckets + 1.0))) +
            n_win * model.ecSerialNs(
                        curve, kernel, EcOp::Padd,
                        static_cast<std::uint64_t>(
                            s + std::log2(nt)));
    } else {
        // Chunked running sums (2 PADDs per bucket); the windows are
        // independent, so their serial combine chains overlap across
        // the device and one chain's latency remains.
        t.bucketReduceNs =
            model.ecThroughputNs(
                curve, kernel, EcOp::Padd,
                static_cast<std::uint64_t>(n_win * 2.0 *
                                           (buckets + 1.0))) +
            model.ecSerialNs(curve, kernel, EcOp::Padd,
                             static_cast<std::uint64_t>(
                                 s + std::log2(nt)));
    }

    // Host merges N_gpu partial results per window and combines
    // windows with s doublings each.
    t.windowReduceNs = model.hostEcNs(
        curve,
        static_cast<std::uint64_t>(n_win) *
            (cluster.numGpus() + s + 1),
        cluster.host());

    const std::uint64_t results_bytes =
        static_cast<std::uint64_t>(n_win) * xyzzBytes(curve);
    t.transferNs = cluster.gatherNs(results_bytes);
    return t;
}

} // namespace distmsm::msm
