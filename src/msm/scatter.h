/**
 * @file
 * Bucket-scatter kernels (paper Section 3.2.1).
 *
 * The scatter step distributes point indices into 2^s buckets keyed
 * by the window's scalar chunk. Two kernels are provided, both run on
 * the functional SIMT executor so their atomic behaviour is measured,
 * not assumed:
 *
 *  - naiveScatter: one global atomic reservation per element. Fine
 *    for the large windows a single GPU prefers; at the small
 *    windows of multi-GPU configurations the per-address contention
 *    (~ concurrent threads / 2^s) explodes (Figure 11).
 *
 *  - hierarchicalScatter: Algorithm 3. Each thread block scatters a
 *    K-element-per-thread tile into *shared memory* first — counting
 *    pass into per-bucket counters, block prefix sum to size each
 *    bucket exactly (Figure 4b), placement pass — and then flushes
 *    every local bucket with a single global atomic. Global atomics
 *    drop by ~K * blockDim / 2^s; the paper's configuration (1024
 *    threads, K = 64, 128 KB of 16-bit point ids) cuts them 64x at
 *    N_bucket = 1024. Requires 2^s counters plus the tile to fit in
 *    shared memory, which fails for s > 14 — visible in Figure 11.
 */

#ifndef DISTMSM_MSM_SCATTER_H
#define DISTMSM_MSM_SCATTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/cost_model.h"
#include "src/gpusim/executor.h"

namespace distmsm::msm {

/** Launch geometry for the scatter kernels. */
struct ScatterConfig
{
    int blockDim = 1024;
    int gridDim = 64; ///< 64 * 1024 = 2^16 threads (paper's N_T)
    /** Shared memory budget per block, bytes (paper example 128KB+). */
    std::size_t sharedBytesPerBlock = 160 * 1024;
    /** Bytes of one cached point id in shared memory (reg_idx||tid). */
    int localIdBytes = 2;
    /** Bytes of one flushed point id in device memory. */
    int globalIdBytes = 4;
    /**
     * Sector amplification of the naive kernel's scattered 4-byte
     * writes (random addresses touch a whole 32-byte sector); the
     * hierarchical flush streams coalesced ranges instead.
     */
    int uncoalescedWriteFactor = 10;
    /**
     * Host threads executing simulated blocks concurrently
     * (support::resolveHostThreads convention: 0 = auto from
     * DISTMSM_HOST_THREADS / hardware_concurrency, 1 = sequential).
     * Either way the scattered buckets and stats are bit-identical:
     * per-block output is staged locally and drained in block order.
     */
    int hostThreads = 0;
    /**
     * Structured tracing: when non-null, the scatter's KernelLaunch
     * emits a per-launch span named @ref traceLabel on the
     * kernel-launch lane @ref traceLane (see KernelLaunch::setTrace).
     * Null keeps the kernels untraced at zero cost.
     */
    support::TraceRecorder *trace = nullptr;
    std::string traceLabel;
    int traceLane = 0;
    /**
     * The field backend the surrounding MSM resolved
     * (MsmPlan::fieldBackend). The scatter kernels are integer-only —
     * they issue no field multiplications, so the backend never
     * changes their cost or output — but the knob is threaded through
     * so traced launches carry the backend in their span label and
     * the per-backend lanes line up across every kernel of a run.
     */
    gpusim::FieldBackend fieldBackend = gpusim::FieldBackend::CudaCore;
};

/** Output of a scatter: per-bucket point-id lists plus stats. */
struct ScatterResult
{
    bool ok = false; ///< false: see status for the typed reason
    /** Typed failure channel mirroring `ok` (KernelFault when the
     *  launch geometry or shared-memory configuration cannot run),
     *  consumed by MsmEngine's fault-tolerant path. */
    support::Status status{support::StatusCode::KernelFault,
                           "scatter not executed"};
    std::vector<std::vector<std::uint32_t>> buckets;
    gpusim::KernelStats stats;
};

/**
 * Scatter with one global atomic per element.
 *
 * @param bucket_ids bucket id of every element (already masked to s
 *        bits; id 0 means "skip": zero scalar chunks add nothing).
 * @param window_bits s.
 */
ScatterResult naiveScatter(const std::vector<std::uint32_t> &bucket_ids,
                           unsigned window_bits,
                           const ScatterConfig &config);

/** Three-level hierarchical scatter (Algorithm 3). */
ScatterResult
hierarchicalScatter(const std::vector<std::uint32_t> &bucket_ids,
                    unsigned window_bits, const ScatterConfig &config);

/**
 * Shared-memory demand of the hierarchical kernel: counters, offsets
 * and the point-id tile for K elements per thread.
 */
std::size_t hierarchicalSharedBytes(unsigned window_bits,
                                    const ScatterConfig &config,
                                    int elems_per_thread);

/** The paper's per-thread register estimate for the register cache. */
int hierarchicalRegistersPerThread(int elems_per_thread);

} // namespace distmsm::msm

#endif // DISTMSM_MSM_SCATTER_H
