/**
 * @file
 * The DistMSM execution planner and analytic time estimator.
 *
 * Given a curve, an input size and a cluster, the planner decides the
 * window size (per-thread workload model, Section 3.1), the work
 * distribution (whole windows per GPU, or buckets of a window split
 * across GPUs, Section 3.2.2), the scatter kernel and where
 * bucket-reduce runs (Section 3.2.3). The same plan drives both the
 * functional execution (distmsm.h) and the analytic timeline used at
 * paper-scale N, so the two cannot drift apart.
 */

#ifndef DISTMSM_MSM_PLANNER_H
#define DISTMSM_MSM_PLANNER_H

#include <cstdint>
#include <string>
#include <string_view>

#include "src/gpusim/cluster.h"
#include "src/gpusim/collectives.h"
#include "src/gpusim/cost_model.h"
#include "src/gpusim/faults.h"
#include "src/msm/scatter.h"
#include "src/msm/timeline.h"
#include "src/msm/workload_model.h"

namespace distmsm::support {
class TraceRecorder;
}

namespace distmsm::gpusim {
class HealthTracker;
}

namespace distmsm::msm {

/**
 * How planMsm arrives at the plan.
 *
 *  - `Heuristic` — the legacy hand-tuned rules (window model,
 *    precompute grow-or-decline, bucket-split threshold, ...);
 *    bit-compatible with every release before the autoscheduler.
 *  - `Search` — the cost-model-scored plan search of msm/autoplan.h,
 *    seeded with the heuristic plan so it can only tie or win.
 *  - `Cached` — `Search` behind the persisted plan cache
 *    (DISTMSM_PLAN_CACHE / ~/.cache/distmsm); a warm hit performs
 *    zero cost-model evaluations.
 */
enum class PlannerMode { Heuristic, Search, Cached };

const char *plannerModeName(PlannerMode mode);

/** Parses "heuristic" / "search" / "cached". Returns false and
 *  leaves @p out untouched on junk. */
bool parsePlannerMode(std::string_view text, PlannerMode *out);

/** User-facing knobs of a DistMSM run. */
struct MsmOptions
{
    /** 0 = choose s from the workload model. */
    unsigned windowBitsOverride = 0;
    /** Hierarchical (Algorithm 3) vs naive scatter. */
    bool hierarchicalScatter = true;
    /** Offload bucket-reduce to the host CPU (Section 3.2.3). */
    bool cpuBucketReduce = true;
    /** Overlap the host reduce with GPU work (pipelined proving). */
    bool overlapReduce = true;
    /** Minimum threads cooperating on one bucket; the planner grows
     *  this toward a warp multiple while the device has idle
     *  capacity (Section 3.2.2). */
    int threadsPerBucket = 1;
    /** Signed-digit windows: buckets halve to 2^(s-1) (Section 6's
     *  ZPrize technique, adopted by DistMSM). */
    bool signedDigits = false;
    /** Precompute 2^(js) P_i so windows merge before bucket-reduce
     *  (Section 2.3.1). */
    bool precompute = false;
    /** GLV endomorphism decomposition: each (scalar, point) pair
     *  becomes two half-width pairs (P and phi(P) = (beta*x, y)),
     *  halving the window passes for the same bucket count. Silently
     *  ignored on curves without generated GLV constants. */
    bool glv = false;
    /** Batched-affine bucket accumulation: per-bucket affine running
     *  sums whose addition slopes share one Montgomery batch
     *  inversion per round (~6 muls per accumulation vs pacc's 10). */
    bool batchAffine = false;
    /**
     * Merge strategy for the bucket/window merge (gpusim/
     * collectives.h): a forced gather/ring/tree/reduce-scatter, or
     * Auto to let the link-cost tuner pick per (topology, message
     * size, device count) — re-resolved at every merge point, not
     * once per plan, so congestion-priced winners are picked per
     * payload. Gather — the default — is the paper's all-to-host
     * baseline and reproduces the legacy execution exactly.
     */
    gpusim::CollectivePolicy collective =
        gpusim::CollectivePolicy::Gather;
    /**
     * MSMs kept in flight per partition in the two-stage proving
     * flow shop (msm/pipeline.h): the planner scores candidates by
     * the depth-amortized makespan instead of one MSM's latency.
     * 1 — the default — prices exactly the single-MSM totalNs (the
     * legacy objective); 0 lets the plan search choose the depth
     * from {1, 2, 4}. Values > 1 never change the functional result
     * — only the planner's objective and the plan's recorded
     * geometry.
     */
    int pipelineDepth = 1;
    /**
     * Independent device partitions serving concurrent MSMs: the
     * cluster splits into this many equal groups, each running its
     * own proof stream while the single host serializes the reduce
     * tails. 1 — the default — is the whole-cluster plan; 0 lets the
     * search choose from the divisors of the device count in
     * {1, 2, 4}. Like pipelineDepth, a pricing/geometry knob only.
     */
    int devicePartitions = 1;
    /** EC kernel optimization set (Section 4). */
    gpusim::EcKernelVariant kernel = gpusim::EcKernelVariant::full();
    /**
     * Field-arithmetic backend for the simulated kernels' Montgomery
     * multiplications (Section 4.3). `Auto` — the default — lets the
     * planner price both backends with the cost model and pick the
     * cheaper one per (curve, N, window bits); a forced `CudaCore` /
     * `TensorCore` overrides both the pricing and, for TensorCore,
     * routes the functional engine's field muls through the
     * tcmul::montMulTC differential path (bit-identical to CIOS,
     * ~10-60x slower to simulate). Auto never engages the
     * differential path: it prices TC but executes CIOS.
     */
    gpusim::FieldBackend fieldBackend = gpusim::FieldBackend::Auto;
    /** Scatter launch geometry. */
    ScatterConfig scatter;
    /**
     * Host threads driving the functional execution (simulated
     * devices, kernel blocks, windows, bucket groups). Follows
     * support::resolveHostThreads: 0 = DISTMSM_HOST_THREADS env or
     * hardware_concurrency, 1 = the exact legacy sequential path,
     * n = at most n threads. Results are bit-identical either way.
     */
    int hostThreads = 0;
    /**
     * Fault injection plan (gpusim/faults.h). Empty (the default)
     * falls back to the DISTMSM_FAULT_SPEC environment variable; an
     * explicit plan wins over the environment.
     */
    gpusim::FaultPlan faults;
    /**
     * Transfer attempts repeated after a detected corruption or
     * timeout before the engine gives up and returns the typed
     * Status. 2 tolerates every transient (one-shot) fault while a
     * persistent fault still terminates promptly.
     */
    int maxRetries = 2;
    /**
     * RLC-checksum every simulated device->host transfer (msm/
     * checksum.h). Costs one short scalar-mul per shipped point,
     * priced as MsmTimeline::verifyNs (< 3% of totalNs at 2^18); off
     * reproduces the pre-fault-layer timelines exactly. Corruption
     * can only be *detected* while this is on.
     */
    bool verifyChecksums = true;
    /** Transfer attempts slower than this (injected delay) time out. */
    double transferTimeoutNs = 1e8;
    /**
     * Cost-model-derived straggler watchdog. Every window gets a
     * deadline of watchdogSlack x the calibrated per-window
     * estimate; a window that blows it (degrade beyond the slack, or
     * a hang) is speculatively re-dispatched onto the fastest
     * healthy survivor. The adopted copy is chosen by priced
     * completion with a fixed canonical tie-break (the original
     * wins ties), so results stay bit-identical at every
     * hostThreads setting. Off: a hang is a typed error and a
     * degrade merely stalls the merge.
     */
    bool watchdog = true;
    /** Deadline multiplier over the per-window estimate (>= 1). */
    double watchdogSlack = 2.0;
    /**
     * Transfer retries back off exponentially instead of retrying
     * immediately: attempt a waits backoffBaseNs x 2^(a-1) plus
     * deterministic seeded jitter, capped at backoffMaxNs. Priced
     * into FaultReport::backoffNs and MsmTimeline::backoffNs; the
     * retry *count* and results are unchanged.
     */
    double backoffBaseNs = 2e5;
    double backoffMaxNs = 5e6;
    /**
     * Optional per-device health ladder (gpusim/health.h). When set,
     * the engine records timeouts / checksum failures / stragglers /
     * hangs into it, excludes quarantined devices from scheduling
     * and resharding, fails transfers over to healthy survivors
     * after retry exhaustion, and re-plans when the tracker's
     * generation changes. Null (the default) keeps the legacy
     * fail-fast behavior. Borrowed, not owned; must outlive the
     * engine.
     */
    gpusim::HealthTracker *health = nullptr;
    /** Seeds the RLC coefficients (device and host must agree). */
    std::uint64_t checksumSeed = 0xC0FFEEull;
    /**
     * Structured tracing sink (support/trace.h). When non-null, the
     * analytic estimators emit per-device timeline lanes and the
     * functional engine emits kernel-launch and simulated-phase
     * spans plus flat metrics. Null (the default) keeps every
     * instrumentation site zero-cost; MsmEngine additionally falls
     * back to the DISTMSM_TRACE environment toggle.
     */
    support::TraceRecorder *trace = nullptr;
    /**
     * Plan selection strategy (see PlannerMode). The default keeps
     * the legacy heuristics; Search/Cached route planMsm through the
     * autoscheduler in msm/autoplan.h.
     */
    PlannerMode planner = PlannerMode::Heuristic;
};

/** A concrete execution plan. */
struct MsmPlan
{
    unsigned windowBits = 0;
    unsigned numWindows = 0;
    /** Effective scalar width the windows cover: the curve's scalar
     *  bits, or the GLV half-scalar width when glv is active. */
    unsigned scalarBits = 0;
    /** GLV active: 2n half-width (scalar, point) pairs. */
    bool glv = false;
    /** Buckets per window excluding bucket 0 (halved when signed). */
    std::uint64_t numBuckets = 0;
    bool signedDigits = false;
    /** GPUs cooperating on each window (1 = whole windows per GPU). */
    int gpusPerWindow = 1;
    /** Windows handled by the busiest GPU. */
    unsigned windowsPerGpu = 0;
    /** Threads summing each bucket. */
    int threadsPerBucket = 32;
    bool bucketsSplitAcrossGpus = false;
    /**
     * Fixed-base precompute tables active. Requested via
     * MsmOptions::precompute but *owned by the planner*: the tables
     * multiply base storage by the window count, so the planner
     * grows the window size until the table fits the device's
     * global-memory budget, or declines (false) when it cannot
     * (pinned windowBitsOverride, or no window size fits). The
     * engine and the analytic estimator both key off this field.
     */
    bool precompute = false;
    /** Bytes of the per-device precompute table (0 when declined). */
    std::uint64_t tableBytes = 0;
    /**
     * The concrete merge strategy: MsmOptions::collective resolved
     * by the link-cost tuner (Auto), or the forced choice. Drives
     * both the functional engine's merge path and the analytic
     * transfer pricing.
     */
    gpusim::CollectiveAlgo collective = gpusim::CollectiveAlgo::Gather;
    /** Per-device payload bytes the tuner priced the merge at. */
    std::uint64_t mergeBytesPerGpu = 0;
    /**
     * The resolved field-arithmetic backend: MsmOptions::fieldBackend
     * with Auto replaced by the cost model's per-(curve, N, s) pick.
     * Never Auto in a built plan. Drives the kernel variant every
     * cost-model call prices (via gpusim::applyFieldBackend) and the
     * engine's per-backend op attribution.
     */
    gpusim::FieldBackend fieldBackend = gpusim::FieldBackend::CudaCore;
    /** True when the planner's Auto resolution chose the backend (vs
     *  a forced MsmOptions::fieldBackend). */
    bool fieldBackendAuto = false;
    /** Resolved MsmOptions::pipelineDepth (search picks when the
     *  option was 0); >= 1 in a built plan. */
    int pipelineDepth = 1;
    /** Resolved MsmOptions::devicePartitions; >= 1 and dividing the
     *  device count in a built plan. */
    int devicePartitions = 1;
};

/**
 * Build the plan for @p n points on @p cluster, honoring
 * MsmOptions::planner: the legacy heuristics, or the cost-model
 * search (optionally behind the persisted plan cache).
 */
MsmPlan planMsm(const gpusim::CurveProfile &curve, std::uint64_t n,
                const gpusim::Cluster &cluster,
                const MsmOptions &options);

/**
 * The legacy hand-tuned planner, ignoring MsmOptions::planner. This
 * is both `PlannerMode::Heuristic`'s implementation and the search's
 * seed/pruning oracle: autoplan realizes every candidate through
 * these rules so searched plans stay inside the space the engine can
 * execute.
 */
MsmPlan planMsmHeuristic(const gpusim::CurveProfile &curve,
                         std::uint64_t n,
                         const gpusim::Cluster &cluster,
                         const MsmOptions &options);

/**
 * The cluster the planner should plan against once quarantined
 * devices are removed: @p cluster itself when @p health is null or
 * nothing is quarantined (or everything is — an empty cluster cannot
 * be planned; the engine reports the error instead), otherwise a
 * copy whose topology holds only the schedulable device count. Both
 * planMsm and autoplanMsm route through this, so the plan-cache key
 * (which covers the topology) distinguishes shrunken fleets
 * automatically.
 */
gpusim::Cluster planningCluster(const gpusim::Cluster &cluster,
                                const gpusim::HealthTracker *health);

/**
 * Analytically synthesized scatter statistics for @p elements
 * uniformly random bucket ids into 2^s buckets, matching what the
 * functional kernels measure (validated by tests).
 */
gpusim::KernelStats
synthesizeScatterStats(bool hierarchical, std::uint64_t elements,
                       unsigned window_bits,
                       const ScatterConfig &config);

/**
 * Analytic end-to-end timeline of DistMSM under @p options
 * (paper-scale N allowed; nothing is executed).
 */
MsmTimeline estimateDistMsm(const gpusim::CurveProfile &curve,
                            std::uint64_t n,
                            const gpusim::Cluster &cluster,
                            const MsmOptions &options);

/**
 * estimateDistMsm against an explicit @p plan instead of re-running
 * planMsm. The plan search scores candidates through this entry so a
 * Search-mode options struct cannot recurse back into the search.
 */
MsmTimeline estimateDistMsmWithPlan(const gpusim::CurveProfile &curve,
                                    std::uint64_t n,
                                    const gpusim::Cluster &cluster,
                                    const MsmOptions &options,
                                    const MsmPlan &plan);

/**
 * Analytic timeline of a single-GPU-design Pippenger scaled to
 * multiple GPUs by splitting the points (N-dim), the way the paper
 * augments baselines without native multi-GPU support. The kernel
 * variant models the baseline's arithmetic maturity.
 */
/**
 * Emit the analytic timeline of one MSM as trace spans: per-device
 * compute/transfer lanes plus the host-CPU lane, laid out on the
 * simulated-time axis exactly as totalNs() accounts them (scatter,
 * bucket-sum, reduce, transfer, window-reduce; overlap rules
 * applied). The last span ends at @p timeline .totalNs(). @p label
 * prefixes the span names ("msm0/scatter"), letting pipelined MSMs
 * share the device lanes.
 */
void traceMsmTimeline(support::TraceRecorder &trace,
                      const MsmPlan &plan,
                      const MsmTimeline &timeline,
                      const gpusim::Cluster &cluster,
                      const std::string &label = {},
                      double start_ns = 0.0);

MsmTimeline
estimateNdimBaseline(const gpusim::CurveProfile &curve,
                     std::uint64_t n, const gpusim::Cluster &cluster,
                     const gpusim::EcKernelVariant &kernel,
                     unsigned window_bits_override = 0,
                     bool rigid_single_gpu_design = false);

} // namespace distmsm::msm

#endif // DISTMSM_MSM_PLANNER_H
