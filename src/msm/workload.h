/**
 * @file
 * MSM workload generation: pseudo-random point and scalar vectors.
 *
 * In the paper's setting the point vector is fixed (it comes from the
 * trusted setup) while scalars vary per proof. Points are generated
 * as the walk G, (k+1)G, (k+2)G, ... (one PACC each) and normalized
 * to affine with a single batched inversion, which scales to millions
 * of points; distribution does not matter for MSM correctness or
 * cost, only distinctness and curve membership do.
 */

#ifndef DISTMSM_MSM_WORKLOAD_H
#define DISTMSM_MSM_WORKLOAD_H

#include <vector>

#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/support/prng.h"

namespace distmsm::msm {

/** @return n distinct affine points on @p Curve. */
template <typename Curve>
std::vector<AffinePoint<Curve>>
generatePoints(std::size_t n, Prng &prng)
{
    using Xyzz = XYZZPoint<Curve>;
    const AffinePoint<Curve> g = Curve::generator();

    // Random starting multiple, then a +G walk.
    auto start = BigInt<Curve::Fr::kLimbs>::random(prng);
    start.truncateToBits(Curve::kScalarBits - 1);
    start.setBit(1); // keep it >= 2 so the walk never hits G or O

    std::vector<Xyzz> walk;
    walk.reserve(n);
    Xyzz current = pmul(Xyzz::fromAffine(g), start);
    for (std::size_t i = 0; i < n; ++i) {
        walk.push_back(current);
        current = pacc(current, g);
    }

    // Batch-normalize: invert all ZZ and ZZZ in one pass.
    using Fq = typename Curve::Fq;
    std::vector<Fq> denoms;
    denoms.reserve(2 * n);
    for (const auto &p : walk) {
        denoms.push_back(p.zz);
        denoms.push_back(p.zzz);
    }
    batchInverse(denoms);

    std::vector<AffinePoint<Curve>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(AffinePoint<Curve>::fromXY(
            walk[i].x * denoms[2 * i],
            walk[i].y * denoms[2 * i + 1]));
    }
    return out;
}

/** @return n uniformly random scalars of Curve::kScalarBits bits. */
template <typename Curve>
std::vector<BigInt<Curve::Fr::kLimbs>>
generateScalars(std::size_t n, Prng &prng)
{
    using Scalar = BigInt<Curve::Fr::kLimbs>;
    std::vector<Scalar> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Scalar k = Scalar::random(prng);
        k.truncateToBits(Curve::kScalarBits);
        out.push_back(k);
    }
    return out;
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_WORKLOAD_H
