/**
 * @file
 * MSM pipelining across a proof (paper Section 3.2.3).
 *
 * "Proof generation involves several MSM calculations and other GPU
 * tasks, which means that bucket-reduce can be efficiently
 * pipelined": while the GPUs run MSM k+1's scatter and bucket sums,
 * the host CPU reduces MSM k's buckets. This module models that
 * two-stage pipeline (GPU stage, host stage) and exposes the
 * makespan computation the Table 4 composition relies on.
 */

#ifndef DISTMSM_MSM_PIPELINE_H
#define DISTMSM_MSM_PIPELINE_H

#include <cstdint>
#include <vector>

#include "src/msm/planner.h"

namespace distmsm::msm {

/**
 * One pipelined task: GPU work followed by dependent host work.
 *
 * For MSM tasks built by estimateProvingPipeline, gpuNs is the
 * timeline's overlappable GPU stage (kernels + transfer,
 * MsmTimeline::gpuStageNs()) and hostNs is the *exposed* host tail
 * totalNs() - gpuStageNs(): the intra-MSM overlap of the host reduce
 * behind its own GPU stage is already consumed, so the flow-shop
 * recurrence only stacks the parts that genuinely serialize. A
 * one-task pipeline's makespan therefore equals totalNs() exactly.
 */
struct PipelineTask
{
    double gpuNs = 0.0;
    double hostNs = 0.0;
};

/**
 * Makespan of a two-stage pipeline: the GPU processes tasks back to
 * back; each task's host stage starts when both its GPU stage and
 * the previous host stage are done (the classic two-machine flow
 * shop recurrence).
 */
double pipelineMakespanNs(const std::vector<PipelineTask> &tasks);

/** Total time with no overlap, for comparison. */
double serialMakespanNs(const std::vector<PipelineTask> &tasks);

/** Scheduled interval of one task on each pipeline stage. */
struct PipelineSlot
{
    double gpuStartNs = 0.0;
    double gpuEndNs = 0.0;
    double hostStartNs = 0.0;
    double hostEndNs = 0.0;
};

/**
 * The per-task schedule realizing pipelineMakespanNs: slot i's GPU
 * interval is back to back after slot i-1's, and its host interval
 * starts at max(own GPU end, previous host end). The last slot's
 * hostEndNs is the makespan. Used by the trace emission to draw the
 * task lanes, and useful for tools that visualize overlap.
 */
std::vector<PipelineSlot>
pipelineSchedule(const std::vector<PipelineTask> &tasks);

/** Simulated timing of a pipelined proof generation. */
struct ProvingPipelineEstimate
{
    std::vector<PipelineTask> tasks;
    double pipelinedNs = 0.0;
    /**
     * The no-overlap baseline: every MSM's full GPU stage plus its
     * full host stage (MsmTimeline::hostStageNs()), with no hiding
     * anywhere — the denominator of hiddenFraction(). Note this is
     * *not* serialMakespanNs(tasks), whose hostNs is already the
     * exposed tail.
     */
    double serialNs = 0.0;

    double hiddenFraction() const
    {
        return serialNs > 0 ? 1.0 - pipelinedNs / serialNs : 0.0;
    }
};

/**
 * Estimate the @p num_msms MSMs of one proof (Groth16 runs four) on
 * @p cluster with the host bucket-reduce pipelined behind the GPU
 * stages of subsequent MSMs.
 */
ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        std::uint64_t n,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options, int num_msms);

/**
 * Heterogeneous form: one pipelined task per entry of @p msm_sizes
 * (real proofs mix MSM lengths — e.g. Groth16's A/B1/B2/C differ
 * once the QAP is pruned). The per-size timelines are independent,
 * so they are estimated concurrently on the host thread pool
 * (options.hostThreads convention) and assembled in input order;
 * the returned estimate is deterministic.
 */
ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        const std::vector<std::uint64_t> &msm_sizes,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options);

} // namespace distmsm::msm

#endif // DISTMSM_MSM_PIPELINE_H
