/**
 * @file
 * Reference MSM implementations.
 *
 * Two obviously-correct baselines used to validate every optimized
 * path and to stand in for the CPU provers of Table 4:
 *
 *  - msmNaive: sum of independent double-and-add scalar multiplies,
 *    O(N * lambda) point operations; the ground truth for tests.
 *  - msmSerialPippenger: the textbook serial Pippenger of Section
 *    2.3 (scatter, per-bucket sums, running-sum bucket reduce,
 *    window shift-and-add), the libsnark-style CPU algorithm.
 */

#ifndef DISTMSM_MSM_REFERENCE_H
#define DISTMSM_MSM_REFERENCE_H

#include <vector>

#include "src/ec/point.h"
#include "src/msm/signed_digits.h"
#include "src/support/check.h"

namespace distmsm::msm {

/** Ground-truth MSM: sum k_i * P_i by double-and-add. */
template <typename Curve, typename Scalar>
XYZZPoint<Curve>
msmNaive(const std::vector<AffinePoint<Curve>> &points,
         const std::vector<Scalar> &scalars)
{
    DISTMSM_REQUIRE(points.size() == scalars.size(),
                    "points/scalars size mismatch");
    using Xyzz = XYZZPoint<Curve>;
    Xyzz acc = Xyzz::identity();
    for (std::size_t i = 0; i < points.size(); ++i) {
        acc = padd(acc,
                   pmul(Xyzz::fromAffine(points[i]), scalars[i]));
    }
    return acc;
}

/**
 * Serial Pippenger (Section 2.3). @p window_bits = s; the scalars
 * are split into ceil(lambda / s) windows of s bits.
 */
template <typename Curve, typename Scalar>
XYZZPoint<Curve>
msmSerialPippenger(const std::vector<AffinePoint<Curve>> &points,
                   const std::vector<Scalar> &scalars,
                   unsigned window_bits)
{
    DISTMSM_REQUIRE(points.size() == scalars.size(),
                    "points/scalars size mismatch");
    DISTMSM_REQUIRE(window_bits >= 1 && window_bits <= 24,
                    "window size out of range");
    using Xyzz = XYZZPoint<Curve>;
    const unsigned lambda = Curve::kScalarBits;
    const unsigned n_windows = (lambda + window_bits - 1) / window_bits;
    const std::size_t n_buckets = std::size_t{1} << window_bits;

    Xyzz result = Xyzz::identity();
    for (unsigned w = n_windows; w-- > 0;) {
        // Shift the running result by s doublings (window-reduce by
        // Horner's rule, high window first).
        if (!(result.isIdentity())) {
            for (unsigned b = 0; b < window_bits; ++b)
                result = pdbl(result);
        }

        // Bucket scatter + sum for this window.
        std::vector<Xyzz> buckets(n_buckets, Xyzz::identity());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::uint64_t m =
                scalars[i].bits(std::size_t{w} * window_bits,
                                window_bits);
            if (m != 0)
                buckets[m] = pacc(buckets[m], points[i]);
        }

        // Bucket reduce: sum_i i * B_i with two running sums.
        Xyzz running = Xyzz::identity();
        Xyzz window_sum = Xyzz::identity();
        for (std::size_t b = n_buckets - 1; b >= 1; --b) {
            running = padd(running, buckets[b]);
            window_sum = padd(window_sum, running);
        }
        result = padd(result, window_sum);
    }
    return result;
}

/**
 * Serial Pippenger over signed window digits: 2^(s-1) buckets per
 * window, negative digits contribute -P.
 */
template <typename Curve, typename Scalar>
XYZZPoint<Curve>
msmSerialPippengerSigned(const std::vector<AffinePoint<Curve>> &points,
                         const std::vector<Scalar> &scalars,
                         unsigned window_bits)
{
    DISTMSM_REQUIRE(points.size() == scalars.size(),
                    "points/scalars size mismatch");
    using Xyzz = XYZZPoint<Curve>;
    const unsigned lambda = Curve::kScalarBits;
    const unsigned n_windows =
        (lambda + window_bits - 1) / window_bits + 1;
    const std::size_t n_buckets =
        (std::size_t{1} << (window_bits - 1)) + 1;

    std::vector<std::vector<std::int32_t>> digits;
    digits.reserve(scalars.size());
    for (const auto &k : scalars)
        digits.push_back(signedWindowDigits(k, lambda, window_bits));

    Xyzz result = Xyzz::identity();
    for (unsigned w = n_windows; w-- > 0;) {
        if (!result.isIdentity()) {
            for (unsigned b = 0; b < window_bits; ++b)
                result = pdbl(result);
        }
        std::vector<Xyzz> buckets(n_buckets, Xyzz::identity());
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::int32_t d = digits[i][w];
            if (d == 0)
                continue;
            const std::size_t m =
                static_cast<std::size_t>(d < 0 ? -d : d);
            buckets[m] = pacc(buckets[m],
                              d < 0 ? points[i].negated()
                                    : points[i]);
        }
        Xyzz running = Xyzz::identity();
        Xyzz window_sum = Xyzz::identity();
        for (std::size_t b = n_buckets - 1; b >= 1; --b) {
            running = padd(running, buckets[b]);
            window_sum = padd(window_sum, running);
        }
        result = padd(result, window_sum);
    }
    return result;
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_REFERENCE_H
