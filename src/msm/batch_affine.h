/**
 * @file
 * Batched-affine bucket accumulation.
 *
 * The legacy bucket sum pays one 10-mul XYZZ pacc per scattered
 * point (plus a 14-mul padd tree merging the cooperating threads'
 * partial chains). Production MSM libraries (gnark, sppark, cuZK)
 * instead sum each bucket with *affine* additions whose slope
 * denominators share one Montgomery batch inversion:
 *
 *   lambda = (y2 - y1) / (x2 - x1)
 *   x3 = lambda^2 - x1 - x2,  y3 = lambda * (x1 - x3) - y1
 *
 * i.e. 3 multiplications plus a share of the batch inversion
 * (3 muls per element amortized, epsilon inversions) — ~6 muls per
 * accumulated point against pacc's 10.
 *
 * Batches are built by *pairwise tree reduction*: every bucket's
 * pending points are paired up (all pairs are independent additions,
 * so one round can batch every pair of every bucket of the device
 * group into a single inversion) and each round halves every bucket
 * until one point remains. A bucket of c points still costs exactly
 * c - 1 additions, but the group needs only ceil(log2(max bucket))
 * inversions in total, and both the gather and the completion walk
 * the bucket arena sequentially.
 *
 * The x2 == x1 edge cases (doubling when y2 == y1, cancellation when
 * y2 == -y1) cannot use the shared slope; such a pair is routed out
 * of the batch into a per-bucket XYZZ spill point via the
 * identity-tolerant pacc, exactly like the fallback kernels real
 * batched-affine implementations keep for these rare collisions.
 *
 * Everything is sequential per device group and the groups merge in
 * fixed order, so results are bit-identical for every host-thread
 * count (the engine's determinism contract).
 */

#ifndef DISTMSM_MSM_BATCH_AFFINE_H
#define DISTMSM_MSM_BATCH_AFFINE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/ec/op_counters.h"
#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/gpusim/stats.h"

namespace distmsm::msm {

/** Reusable per-call scratch of batchAffineAccumulate. */
template <typename Curve>
struct BatchAffineScratch
{
    std::vector<typename Curve::Fq> denoms;
    std::vector<typename Curve::Fq> prefix;
    /** Flat per-bucket segments of pending affine points; each
     *  round compacts every segment in place. */
    std::vector<AffinePoint<Curve>> arena;
    std::vector<std::size_t> segOff;
    std::vector<std::size_t> segLen;
    /** Arena index of each batched pair's first input / its output. */
    std::vector<std::size_t> pairIn;
    std::vector<std::size_t> pairOut;
    /** Odd leftovers moved after the completion pass consumed their
     *  round's pair inputs (from/to arena indices). */
    std::vector<std::size_t> carryFrom;
    std::vector<std::size_t> carryTo;
    /** Buckets still holding more than one point. */
    std::vector<std::size_t> active;
    /** Per-bucket XYZZ spill for the equal-x edge cases. */
    std::vector<XYZZPoint<Curve>> spill;
};

/**
 * Accumulate the scattered points of buckets [@p lo, @p hi) into
 * @p sums (indexed by absolute bucket id) using batched-affine
 * additions. @p point_of maps a scattered id to the (possibly
 * negated or precomputed) affine point it contributes, exactly as in
 * bucketSumTree. EC work is charged to @p stats (affineAddOps /
 * batchInvOps / paccOps for the spilled edge cases) and to
 * ec::opCounters() in field-op units.
 */
template <typename Curve, typename PointOf>
void
batchAffineAccumulate(
    const std::vector<std::vector<std::uint32_t>> &buckets,
    std::size_t lo, std::size_t hi, PointOf &&point_of,
    std::vector<XYZZPoint<Curve>> &sums,
    gpusim::KernelStats &stats, BatchAffineScratch<Curve> &scratch)
{
    using Fq = typename Curve::Fq;
    using Affine = AffinePoint<Curve>;
    using Xyzz = XYZZPoint<Curve>;
    hi = std::min(hi, buckets.size());
    if (lo >= hi)
        return;
    const std::size_t width = hi - lo;
    auto &ops = ec::opCounters();

    // Materialize every bucket's points once (point_of builds a
    // fresh, possibly negated copy) into contiguous segments;
    // identity contributions drop here.
    scratch.arena.clear();
    scratch.segOff.resize(width);
    scratch.segLen.resize(width);
    scratch.active.clear();
    scratch.spill.assign(width, Xyzz::identity());
    auto &spill = scratch.spill;
    for (std::size_t i = 0; i < width; ++i) {
        scratch.segOff[i] = scratch.arena.size();
        for (const std::uint32_t id : buckets[lo + i]) {
            const Affine p = point_of(id);
            if (!p.infinity)
                scratch.arena.push_back(p);
        }
        scratch.segLen[i] =
            scratch.arena.size() - scratch.segOff[i];
        if (scratch.segLen[i] > 1)
            scratch.active.push_back(i);
    }

    while (!scratch.active.empty()) {
        scratch.denoms.clear();
        scratch.pairIn.clear();
        scratch.pairOut.clear();
        scratch.carryFrom.clear();
        scratch.carryTo.clear();

        // Pair up each active bucket; all pairs are independent, so
        // the whole round shares one inversion.
        for (const std::size_t i : scratch.active) {
            const std::size_t off = scratch.segOff[i];
            const std::size_t len = scratch.segLen[i];
            std::size_t kept = 0;
            for (std::size_t j = 0; j + 1 < len; j += 2) {
                const Affine &a = scratch.arena[off + j];
                const Affine &b = scratch.arena[off + j + 1];
                if (a.x == b.x) {
                    // Doubling or cancellation: no shared slope.
                    // Route the pair through the tolerant pacc.
                    spill[i] = pacc(spill[i], a);
                    spill[i] = pacc(spill[i], b);
                    stats.paccOps += 2;
                    continue;
                }
                scratch.denoms.push_back(b.x - a.x);
                scratch.pairIn.push_back(off + j);
                scratch.pairOut.push_back(off + kept);
                ++kept;
            }
            if ((len & 1) != 0) {
                // The odd leftover moves only after the completion
                // pass has read this round's pair inputs.
                scratch.carryFrom.push_back(off + len - 1);
                scratch.carryTo.push_back(off + kept);
                ++kept;
            }
            scratch.segLen[i] = kept;
        }

        if (!scratch.denoms.empty()) {
            batchInverse(scratch.denoms, scratch.prefix);
            ++stats.batchInvOps;
            ++ops.inv;
            if (scratch.denoms.size() > 1)
                ops.mul += 3 * (scratch.denoms.size() - 1);

            // Complete every pair. Each output index is at most its
            // pair's first input index, and pairs complete in gather
            // order, so in-place compaction never clobbers an unread
            // input.
            for (std::size_t k = 0; k < scratch.denoms.size(); ++k) {
                const Affine &a = scratch.arena[scratch.pairIn[k]];
                const Affine &b =
                    scratch.arena[scratch.pairIn[k] + 1];
                const Fq lambda = (b.y - a.y) * scratch.denoms[k];
                const Fq x3 = lambda.sqr() - a.x - b.x;
                const Fq y3 = lambda * (a.x - x3) - a.y;
                scratch.arena[scratch.pairOut[k]] =
                    Affine::fromXY(x3, y3);
                ops.mul += 3;
                ops.sqr += 1; // lambda^2
                ops.add += 6;
                ++stats.affineAddOps;
            }
        }

        for (std::size_t k = 0; k < scratch.carryFrom.size(); ++k)
            scratch.arena[scratch.carryTo[k]] =
                scratch.arena[scratch.carryFrom[k]];

        std::size_t n_active = 0;
        for (const std::size_t i : scratch.active) {
            if (scratch.segLen[i] > 1)
                scratch.active[n_active++] = i;
        }
        scratch.active.resize(n_active);
    }

    // Fold spill and the surviving point into the output slot.
    for (std::size_t i = 0; i < width; ++i) {
        const Affine root =
            scratch.segLen[i] > 0
                ? scratch.arena[scratch.segOff[i]]
                : Affine::identity();
        if (spill[i].isIdentity()) {
            sums[lo + i] = Xyzz::fromAffine(root);
        } else if (root.infinity) {
            sums[lo + i] = spill[i];
        } else {
            sums[lo + i] = pacc(spill[i], root);
            ++stats.paccOps;
        }
    }
}

} // namespace distmsm::msm

#endif // DISTMSM_MSM_BATCH_AFFINE_H
