/**
 * @file
 * Cost-model-scored MSM plan search (the autoscheduler).
 *
 * The hand-tuned planner (msm/planner.cc) fixes each knob with a
 * local rule: the window size from the per-thread workload model, the
 * backend from one kernel comparison, the collective from the link
 * tuner, everything else from the caller's flags. This module instead
 * searches the joint space — window bits, signed digits, GLV,
 * batch-affine, precompute, CPU-vs-GPU reduce placement, field
 * backend, collective strategy (gather/ring/tree/reduce-scatter),
 * threads per bucket, pipeline depth, and device partitions — and
 * scores every candidate end to end with the calibrated analytic
 * timeline (estimateDistMsmWithPlan; candidates with pipeline depth
 * or partitions > 1 score the amortized two-stage flow-shop makespan
 * instead), in the spirit of Halide's autoschedulers.
 *
 * DISTMSM_AUTOPLAN_BEAM=<width> replaces the exhaustive enumeration
 * with a staged beam search: one knob is fixed per stage and only
 * the `width` best partial refinements survive to the next stage.
 * The heuristic seed is always scored first, so even width 1 never
 * returns a plan scoring worse than the heuristic's. Unset or <= 0
 * keeps the exhaustive default.
 *
 * Guarantees:
 *  - The heuristic plan is the search's seed: candidates displace it
 *    only on a *strictly* smaller totalNs (sched::SearchDriver), so
 *    the searched plan never scores worse than the heuristic one and
 *    ties return the heuristic's exact plan (bit-compatibility).
 *  - Candidates are realized through planMsmHeuristic, so every
 *    searched plan stays inside the space the functional engine can
 *    execute, and scoring probes pin PlannerMode::Heuristic — the
 *    search cannot recurse into itself.
 *  - The search is deterministic: a fixed enumeration order and
 *    first-seen tie-breaks make repeated calls agree bit-exactly.
 *
 * `PlannerMode::Cached` puts the search behind a persisted plan
 * cache keyed by (curve, N, topology fingerprint, device spec,
 * option mask). A warm hit returns the stored plan bit-identically
 * and performs zero cost-model evaluations
 * (CostModel::evaluations()); entries persist across processes in
 * DISTMSM_PLAN_CACHE (or ~/.cache/distmsm/plans.tsv).
 */

#ifndef DISTMSM_MSM_AUTOPLAN_H
#define DISTMSM_MSM_AUTOPLAN_H

#include <cstdint>

#include "src/gpusim/cluster.h"
#include "src/gpusim/cost_model.h"
#include "src/msm/planner.h"

namespace distmsm::msm {

/** Outcome of one plan search (or cache hit). */
struct AutoPlanResult
{
    /** The argmin plan (the heuristic plan when nothing beat it). */
    MsmPlan plan;
    /**
     * The winning candidate's realized options: the caller's options
     * with the searched functional knobs (signedDigits, batchAffine,
     * glv, precompute, cpuBucketReduce, ...) applied and planner
     * reset to Heuristic. The engine adopts these so execution
     * matches what the score priced.
     */
    MsmOptions options;
    /** Analytic totalNs of the searched / heuristic plans. */
    double searchedNs = 0.0;
    double heuristicNs = 0.0;
    /** Candidates scored (seed included) / discarded unscored. */
    std::uint64_t evaluated = 0;
    std::uint64_t pruned = 0;
    /** CostModel::evaluations() delta across the search — exactly 0
     *  on a warm cache hit. */
    std::uint64_t costModelEvals = 0;
    /** True when the plan came from the persisted cache. */
    bool cacheHit = false;
};

/**
 * Search the plan space for @p n points of @p curve on @p cluster.
 * @p base supplies the starting knobs and constraints: forced
 * choices (windowBitsOverride, a non-Auto fieldBackend, a forced
 * ring/tree collective) pin the corresponding dimension rather than
 * being second-guessed. PlannerMode::Cached consults the plan cache
 * first and persists the result on a miss; Search (and Heuristic,
 * for symmetry) always runs the search.
 *
 * Metrics (when base.trace is attached): plan_cache/{hits,misses}
 * accumulate, autoplan/{evaluated,pruned,cost_model_evals,
 * searched_ns,heuristic_ns,cache_hit} describe the last search.
 */
AutoPlanResult autoplanMsm(const gpusim::CurveProfile &curve,
                           std::uint64_t n,
                           const gpusim::Cluster &cluster,
                           const MsmOptions &base);

/** Drop the in-process plan cache (tests; the persisted file is
 *  untouched, so a reload exercises the disk round-trip). */
void resetPlanCacheForTesting();

} // namespace distmsm::msm

#endif // DISTMSM_MSM_AUTOPLAN_H
