/**
 * @file
 * Stateful MSM engine.
 *
 * In zkSNARK proving the point vector is fixed by the trusted setup
 * while the scalars change per proof (paper Section 2.2). MsmEngine
 * captures that usage: construct it once with the points, the
 * cluster and the options — it plans the execution and obtains the
 * fixed-base precomputation tables (built, or reused from the
 * process-wide BaseTableCache when another engine already built them
 * for the same bases and geometry) — then call compute() per scalar
 * vector. computeDistMsm() in distmsm.h is the one-shot convenience
 * wrapper.
 *
 * Execution shapes
 * ----------------
 * Without precompute, each window scatters and sums its own bucket
 * set and the window points merge through the serial Horner
 * recurrence (s doublings per window). With precompute
 * (plan.precompute), the table rows 2^(js) P_i realign every
 * window's digit into ONE shared bucket set: a single combined
 * scatter over numWindows * n elements, a single bucket-sum pass
 * across all devices, and a single bucket-reduce — no per-window
 * passes and no final doubling chain.
 */

#ifndef DISTMSM_MSM_ENGINE_H
#define DISTMSM_MSM_ENGINE_H

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/ec/point.h"
#include "src/field/backend.h"
#include "src/field/batch_inverse.h"
#include "src/gpusim/faults.h"
#include "src/gpusim/health.h"
#include "src/msm/autoplan.h"
#include "src/msm/batch_affine.h"
#include "src/msm/bucket_reduce.h"
#include "src/msm/checksum.h"
#include "src/msm/glv.h"
#include "src/msm/planner.h"
#include "src/msm/precompute.h"
#include "src/msm/scatter.h"
#include "src/msm/signed_digits.h"
#include "src/support/check.h"
#include "src/support/prng.h"
#include "src/support/status.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace distmsm::msm {

/** Output of a functional DistMSM run. */
template <typename Curve>
struct MsmResult
{
    XYZZPoint<Curve> value;
    MsmPlan plan;
    /** Aggregated simulator statistics across all GPUs/windows. */
    gpusim::KernelStats stats;
    /** EC additions executed by the host (reduce steps). */
    std::uint64_t hostOps = 0;
    /**
     * What the fault layer injected, detected and recovered during
     * this run (gpusim/faults.h). All zero on a fault-free run; the
     * digest EC work (verifyEcOps) is deliberately kept out of both
     * `stats` and `hostOps` so a zero-fault run's counters are
     * bit-identical to a build without the fault layer.
     */
    gpusim::FaultReport fault;
};

/**
 * Sum one bucket with @p threads_per_bucket cooperating threads:
 * independent partial chains followed by a pairwise tree reduction
 * (Section 3.2.2). @p point_of maps a scattered id to the (possibly
 * negated or precomputed) affine point it contributes.
 */
template <typename Curve, typename PointOf>
XYZZPoint<Curve>
bucketSumTree(const std::vector<std::uint32_t> &ids,
              PointOf &&point_of, int threads_per_bucket,
              gpusim::KernelStats &stats)
{
    using Xyzz = XYZZPoint<Curve>;
    const std::size_t m = ids.size();
    const int t = threads_per_bucket;
    std::vector<Xyzz> partials;
    partials.reserve(t);
    for (int lane = 0; lane < t; ++lane) {
        Xyzz acc = Xyzz::identity();
        for (std::size_t i = lane; i < m;
             i += static_cast<std::size_t>(t)) {
            acc = pacc(acc, point_of(ids[i]));
            ++stats.paccOps;
        }
        partials.push_back(acc);
    }
    // Pairwise tree reduction: log2(t) SIMD steps.
    while (partials.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(padd(partials[i], partials[i + 1]));
            ++stats.paddOps;
        }
        if (partials.size() % 2 == 1)
            next.push_back(partials.back());
        partials = std::move(next);
    }
    return partials.front();
}

/** Reusable MSM executor over a fixed point vector. */
template <typename Curve>
class MsmEngine
{
  public:
    using Scalar = BigInt<Curve::Fr::kLimbs>;

    MsmEngine(std::vector<AffinePoint<Curve>> points,
              const gpusim::Cluster &cluster,
              const MsmOptions &options = MsmOptions{})
        : points_(std::move(points)), cluster_(cluster),
          options_(options)
    {
        // The engine-level knob governs every layer below it: the
        // scatter kernels inherit the same host-thread budget.
        options_.scatter.hostThreads = options_.hostThreads;
        // DISTMSM_TRACE=path.json turns tracing on without touching
        // call sites; an explicit MsmOptions::trace wins.
        if (options_.trace == nullptr)
            options_.trace = support::globalTraceFromEnv();
        curve_profile_ = gpusim::CurveProfile{
            Curve::kName, Curve::Fq::Params::kBits,
            Curve::kScalarBits, Curve::kAIsZero,
            glv::CurveGlv<Curve>::kSupported ? glv::kHalfScalarBits
                                             : 0};
        // Whether the *user* forced the tensor-core backend must be
        // read off the original options before the autoscheduler
        // swaps in the realized candidate: the search may force
        // TensorCore purely for pricing, and that must not engage
        // the slow differential execution below.
        const bool user_forced_tc =
            options_.fieldBackend ==
            gpusim::FieldBackend::TensorCore;
        // The autoscheduler's realized options carry
        // planner=Heuristic; remember the caller's mode so a health
        // re-plan can re-enter the search over the shrunken fleet.
        original_planner_ = options_.planner;
        if (options_.planner != PlannerMode::Heuristic) {
            // The autoscheduler returns the argmin plan *and* the
            // winning candidate's realized options (signed digits,
            // batch-affine, GLV, ... — the functional knobs the
            // score priced). Adopt both so execution matches the
            // plan; the realized options carry planner=Heuristic, so
            // nothing below re-enters the search.
            AutoPlanResult searched = autoplanMsm(
                curve_profile_, points_.size(), cluster_, options_);
            options_ = searched.options;
            plan_ = searched.plan;
        } else {
            plan_ = planMsm(curve_profile_, points_.size(), cluster_,
                            options_);
        }
        // Every cost-model price below uses the kernel variant as
        // the plan's resolved field backend executes it; the
        // differential tcmul execution engages only on a *forced*
        // TensorCore (the planner's Auto pick prices TC while the
        // functional path stays on CIOS — bit-identical either way).
        eff_kernel_ =
            gpusim::applyFieldBackend(options_.kernel,
                                      plan_.fieldBackend);
        tc_exec_ = user_forced_tc;
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        if (plan_.glv) {
            // The endomorphism images phi(P_i) = (beta * x_i, y_i)
            // are scalar-independent: staged once, like the points.
            phi_points_.resize(points_.size());
            support::ThreadPool::global().parallelFor(
                0, points_.size(),
                [&](std::size_t i) {
                    phi_points_[i] =
                        glv::endomorphismIfSupported<Curve>(
                            points_[i]);
                },
                host_threads);
        }
        // plan_.precompute, not options_.precompute: the planner may
        // have declined (device memory budget) or grown the window.
        if (plan_.precompute)
            acquireTable(host_threads);
        if (options_.health != nullptr)
            planned_generation_ = options_.health->generation();
        refreshWindowEstimate();
    }

    const MsmPlan &plan() const { return plan_; }
    std::size_t numPoints() const { return points_.size(); }
    /** The precompute table came from the cross-proof cache. */
    bool tableCacheHit() const { return table_cache_hit_; }

    /**
     * Run one MSM against the staged points.
     *
     * Host parallelism (options.hostThreads): the signed-digit
     * decomposition, the windows, the per-device bucket groups of a
     * window and the simulated scatter blocks all run concurrently
     * on the support::ThreadPool. Every parallel unit writes only
     * its own slot and the slots are merged in the exact order of
     * the sequential algorithm (windows high-to-low, buckets
     * ascending, devices ascending), so the returned point, the
     * KernelStats and hostOps are bit-identical for every thread
     * count — hostThreads == 1 is the legacy serial execution.
     */
    MsmResult<Curve>
    compute(const std::vector<Scalar> &scalars) const
    {
        support::StatusOr<MsmResult<Curve>> result =
            tryCompute(scalars);
        DISTMSM_REQUIRE(result.isOk(),
                        result.status().toString().c_str());
        return std::move(*result);
    }

    /**
     * compute() with a typed error channel. Faults the recovery
     * layer absorbs (a killed device whose windows reshard onto
     * survivors, a corrupted or delayed transfer that succeeds
     * within MsmOptions::maxRetries) still return a value — bit
     * identical to the fault-free run — with the injections and
     * recoveries tallied in MsmResult::fault. Unrecoverable faults
     * (every device lost, a persistently corrupt link exhausting its
     * retries) return the typed Status instead; a wrong answer is
     * never returned, because every accepted transfer passed its RLC
     * digest check (when MsmOptions::verifyChecksums is on).
     */
    support::StatusOr<MsmResult<Curve>>
    tryCompute(const std::vector<Scalar> &scalars) const
    {
        if (scalars.size() != points_.size())
            return support::Status(
                support::StatusCode::InvalidArgument,
                "points/scalars size mismatch");
        // A stale health generation (a quarantine, parole or
        // reintegration since planning) invalidates the plan:
        // re-plan — through the caller's original planner mode, so
        // Search/Cached re-search — over the changed schedulable
        // fleet before reading any plan field. Not thread-safe
        // against concurrent tryCompute calls on one engine; health
        // tracking is a sequential-coordinator feature.
        if (options_.health != nullptr &&
            options_.health->generation() != planned_generation_)
            replanForHealth();
        using Xyzz = XYZZPoint<Curve>;
        MsmResult<Curve> result;
        result.plan = plan_;
        const unsigned s = plan_.windowBits;
        const std::size_t n_buckets =
            options_.signedDigits
                ? (std::size_t{1} << (s - 1)) + 1
                : std::size_t{1} << s;
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        auto &pool = support::ThreadPool::global();
        const std::size_t n_base = points_.size();

        // GLV: rewrite the n full-width scalars as 2n half-width
        // magnitudes with per-half sign flags; half i drives P_i,
        // half n + i drives phi(P_i). Scalar i only writes its own
        // two slots.
        std::vector<Scalar> half_scalars;
        std::vector<std::uint8_t> glv_neg;
        if constexpr (glv::CurveGlv<Curve>::kSupported) {
            if (plan_.glv) {
                half_scalars.resize(2 * n_base);
                glv_neg.assign(2 * n_base, 0);
                pool.parallelFor(
                    0, n_base,
                    [&](std::size_t i) {
                        const auto split =
                            glv::decompose<Curve>(scalars[i]);
                        half_scalars[i] = split.k1;
                        half_scalars[n_base + i] = split.k2;
                        glv_neg[i] = split.neg1;
                        glv_neg[n_base + i] = split.neg2;
                    },
                    host_threads);
            }
        }
        const std::vector<Scalar> &eff_scalars =
            plan_.glv ? half_scalars : scalars;
        const std::size_t n_eff = eff_scalars.size();

        // Signed-digit decomposition up front; scalar i only writes
        // digits[i]. The window passes cover plan_.scalarBits — the
        // GLV half width when active.
        std::vector<std::vector<std::int32_t>> digits;
        if (options_.signedDigits) {
            digits.resize(n_eff);
            pool.parallelFor(
                0, n_eff,
                [&](std::size_t i) {
                    digits[i] = signedWindowDigits(
                        eff_scalars[i], plan_.scalarBits, s);
                },
                host_threads);
        }

        // Digit of window w for effective scalar i, as (magnitude,
        // negate) against the bucket array.
        auto digit_of = [&](unsigned w, std::size_t i,
                            std::uint32_t &id, std::uint8_t &neg) {
            if (options_.signedDigits) {
                const std::int32_t d = digits[i][w];
                id = static_cast<std::uint32_t>(d < 0 ? -d : d);
                neg = d < 0;
            } else {
                id = static_cast<std::uint32_t>(
                    eff_scalars[i].bits(
                        static_cast<std::size_t>(w) * s, s));
                neg = 0;
            }
            // A negative half-scalar flips its contribution;
            // composes with the signed-digit flip.
            if (plan_.glv)
                neg ^= glv_neg[i];
        };

        const std::uint64_t msm_idx =
            options_.trace != nullptr
                ? msm_counter_.fetch_add(1,
                                         std::memory_order_relaxed)
                : 0;
        const std::string trace_prefix =
            "msm" + std::to_string(msm_idx) + "/";

        const support::StatusOr<const gpusim::FaultPlan *> fplan_or =
            activeFaultPlan();
        if (!fplan_or.isOk())
            return fplan_or.status();
        const gpusim::FaultPlan &fplan = **fplan_or;
        support::TraceRecorder *const trace = options_.trace;
        /** Injections/detections in their deterministic order, for
         *  the fault trace track. */
        std::vector<std::string> fault_log;

        if (plan_.precompute) {
            const support::Status combined = computeCombined(
                result, n_eff, n_buckets, digit_of, trace_prefix,
                host_threads, fplan, fault_log);
            if (!combined.isOk())
                return combined;
            if (trace != nullptr)
                emitFaultTrace(*trace, result.fault, fault_log);
            return result;
        }

        auto window_ids = [&](unsigned w,
                              std::vector<std::uint32_t> &ids,
                              std::vector<std::uint8_t> &negs) {
            ids.resize(n_eff);
            negs.assign(n_eff, 0);
            for (std::size_t i = 0; i < n_eff; ++i)
                digit_of(w, i, ids[i], negs[i]);
        };

        // Scatter + bucket sums of one window, fully independent of
        // every other window. Bucket groups map to the simulated
        // devices of the bucket-split distribution (Section 3.2.2)
        // and run as one task per device.
        struct WindowPartial
        {
            bool scatterOk = false;
            support::Status status{support::StatusCode::KernelFault,
                                   "window not executed"};
            gpusim::KernelStats scatterStats;
            gpusim::KernelStats ecStats;
            std::vector<Xyzz> bucketSums;
            Xyzz windowPoint = Xyzz::identity();
            ReduceStats reduceStats;
        };

        auto run_window = [&](unsigned w, WindowPartial &wp) {
            // Simulated-kernel field muls of this window (bucket
            // sums, window reduce) execute on the forced backend;
            // entered per worker thread, so the pool-distributed
            // bucket groups below re-enter it themselves.
            const field::TcBackendScope tc_scope(tc_exec_);
            std::vector<std::uint32_t> ids;
            std::vector<std::uint8_t> negs;
            window_ids(w, ids, negs);

            ScatterConfig scatter_cfg = options_.scatter;
            scatter_cfg.fieldBackend = plan_.fieldBackend;
            if (options_.trace != nullptr) {
                // One kernel-launch lane per window: the launch span
                // (emitted by ~KernelLaunch) carries the measured
                // contention of exactly this window's scatter.
                scatter_cfg.trace = options_.trace;
                scatter_cfg.traceLabel = trace_prefix + "w" +
                                         std::to_string(w) +
                                         "/scatter";
                scatter_cfg.traceLane = static_cast<int>(w);
            }
            ScatterResult scattered =
                options_.hierarchicalScatter
                    ? hierarchicalScatter(ids, s, scatter_cfg)
                    : naiveScatter(ids, s, scatter_cfg);
            wp.scatterOk = scattered.ok;
            wp.status = scattered.status;
            if (!scattered.ok)
                return;
            wp.scatterStats = scattered.stats;

            auto point_of = [&](std::uint32_t idx) {
                const auto &base =
                    idx < n_base ? points_[idx]
                                 : phi_points_[idx - n_base];
                return negs[idx] ? base.negated() : base;
            };

            wp.bucketSums.assign(n_buckets, Xyzz::identity());
            const int groups = plan_.bucketsSplitAcrossGpus
                                   ? plan_.gpusPerWindow
                                   : 1;
            std::vector<gpusim::KernelStats> group_stats(groups);
            cluster_.forEachDevice(
                groups,
                [&](int g) {
                    const field::TcBackendScope group_scope(
                        tc_exec_);
                    const std::size_t lo =
                        1 + (n_buckets - 1) * g / groups;
                    const std::size_t hi =
                        1 + (n_buckets - 1) * (g + 1) / groups;
                    if (options_.batchAffine) {
                        BatchAffineScratch<Curve> scratch;
                        batchAffineAccumulate<Curve>(
                            scattered.buckets, lo, hi, point_of,
                            wp.bucketSums, group_stats[g], scratch);
                        return;
                    }
                    for (std::size_t b = lo;
                         b < hi && b < scattered.buckets.size();
                         ++b) {
                        if (scattered.buckets[b].empty())
                            continue;
                        wp.bucketSums[b] = bucketSumTree<Curve>(
                            scattered.buckets[b], point_of,
                            plan_.threadsPerBucket, group_stats[g]);
                    }
                },
                options_.hostThreads);
            // The bucket groups are one launch running on
            // plan_.gpusPerWindow devices in lockstep: work counts
            // sum, the shared phase structure does not (see
            // KernelStats::mergeLockstep; pinned by the 1-vs-4
            // device stats test).
            for (const auto &gs : group_stats)
                wp.ecStats.mergeLockstep(gs);

            wp.windowPoint = bucketReduceSerial<Curve>(
                wp.bucketSums, &wp.reduceStats);
            wp.bucketSums.clear();
            wp.bucketSums.shrink_to_fit();
        };

        // Tracing: the serial merge loop below visits windows in a
        // fixed order regardless of hostThreads, so the measured
        // stats are mapped onto simulated time (via the cost model)
        // and emitted from here — the spans are deterministic even
        // though the windows executed concurrently. Each window
        // lands on the device lane of the round-robin distribution.
        std::vector<double> dev_cursor;
        double host_cursor = 0.0;
        const auto &cost_model = cluster_.model();
        const int scatter_threads = scatterThreads();
        if (trace != nullptr) {
            namespace lane = support::tracelane;
            dev_cursor.assign(
                static_cast<std::size_t>(cluster_.numGpus()), 0.0);
            labelEngineLanes(*trace);
        }
        auto emit_window = [&](unsigned w, const WindowPartial &wp,
                               int d) {
            namespace lane = support::tracelane;
            const int pid = lane::engineDevicePid(d);
            const double scatter_ns =
                cost_model.scatterComputeNs(n_eff,
                                            scatter_threads) +
                cost_model.atomicNs(wp.scatterStats,
                                    scatter_threads) +
                cost_model.gmemNs(wp.scatterStats.gmemBytes);
            const double sum_ns = bucketSumNs(wp.ecStats);
            const std::string wl =
                trace_prefix + "w" + std::to_string(w) + "/";
            support::TraceArgs scatter_args;
            scatter_args
                .arg("global_atomics",
                     static_cast<double>(
                         wp.scatterStats.globalAtomics))
                .arg("global_conflict_weight",
                     static_cast<double>(
                         wp.scatterStats.globalConflictWeight))
                .arg("global_max_conflict",
                     static_cast<double>(
                         wp.scatterStats.globalMaxConflict));
            trace->span(wl + "scatter", "phase", pid,
                        lane::kComputeTid, dev_cursor[d],
                        scatter_ns, std::move(scatter_args));
            trace->span(wl + "bucket-sum", "phase", pid,
                        lane::kComputeTid,
                        dev_cursor[d] + scatter_ns, sum_ns);
            dev_cursor[d] += scatter_ns + sum_ns;
            const double reduce_ns = cost_model.hostEcNs(
                curve_profile_,
                wp.reduceStats.padds + wp.reduceStats.pdbls,
                cluster_.host());
            if (reduce_ns > 0.0) {
                trace->span(wl + "bucket-reduce", "phase",
                            lane::kEngineHostPid, lane::kComputeTid,
                            host_cursor, reduce_ns);
                host_cursor += reduce_ns;
            }
            auto &metrics = trace->metrics();
            const std::string mp = "engine/" + trace_prefix + "dev" +
                                   std::to_string(d) + "/w" +
                                   std::to_string(w) + "/";
            wp.scatterStats.recordMetrics(metrics, mp + "scatter/");
            wp.ecStats.recordMetrics(metrics, mp + "ec/");
            metrics.add(mp + "scatter_ns", scatter_ns);
            metrics.add(mp + "bucket_sum_ns", sum_ns);
            metrics.add(mp + "bucket_reduce_ns", reduce_ns);
        };

        // --- Device loss (fault plan) ---
        // Window w runs on device w % numGpus — the round-robin
        // distribution the trace lanes already use; the ordinal of w
        // on its device is (w - d) / numGpus. A device killed at its
        // j-th window loses every window of ordinal >= j (results of
        // earlier ordinals were already streamed out). Lost windows
        // reshard round-robin across the survivors after the healthy
        // pass; a window recomputes from the same scattered input on
        // any device, so recovery is bit-identical by construction.
        //
        // Collective merges (plan_.collective != Gather) tighten the
        // kill: a dead device can neither source nor relay reduce
        // steps, so *every* window it owned reshards — nothing was
        // streamed out before the merge.
        const bool collective_merge =
            plan_.collective != gpusim::CollectiveAlgo::Gather;
        const int num_gpus = cluster_.numGpus();
        gpusim::HealthTracker *const health = options_.health;

        // Windows round-robin over the *schedulable* devices:
        // quarantined ones sit out entirely. Without a tracker that
        // is every device, reproducing the legacy w % numGpus
        // layout bit-for-bit.
        std::vector<int> sched_devs;
        for (int d = 0; d < num_gpus; ++d)
            if (health == nullptr || d >= health->numDevices() ||
                health->schedulable(d))
                sched_devs.push_back(d);
        if (sched_devs.empty())
            return support::Status(
                support::StatusCode::DeviceLost,
                "all " + std::to_string(num_gpus) +
                    " devices quarantined; nothing schedulable");
        const int n_sched = static_cast<int>(sched_devs.size());
        std::vector<std::uint8_t> dev_sched(
            static_cast<std::size_t>(num_gpus), 0);
        for (const int d : sched_devs)
            dev_sched[static_cast<std::size_t>(d)] = 1;

        std::vector<int> exec_dev(plan_.numWindows);
        std::vector<std::uint8_t> lost_window(plan_.numWindows, 0);
        /** Devices that showed any fault this run — the complement
         *  earns clean windows on the health ladder. */
        std::vector<std::uint8_t> dev_faulted(
            static_cast<std::size_t>(num_gpus), 0);
        std::vector<int> survivors;
        for (unsigned w = 0; w < plan_.numWindows; ++w)
            exec_dev[w] =
                sched_devs[static_cast<int>(w) % n_sched];
        // Ordinal of window w on its device under the round-robin
        // layout — the operand the fault grammar's win= names.
        const auto window_ordinal = [n_sched](unsigned w) {
            return static_cast<int>(w) / n_sched;
        };
        for (int d = 0; d < num_gpus; ++d) {
            const int kw = fplan.killWindow(d);
            if (kw < 0) {
                // Hung devices cannot receive resharded windows
                // either; with the watchdog off a hang is rejected
                // below before any reshard happens.
                if (dev_sched[d] && fplan.hangWindow(d) < 0)
                    survivors.push_back(d);
                continue;
            }
            ++result.fault.devicesLost;
            ++result.fault.faultsInjected;
            dev_faulted[d] = 1;
            fault_log.push_back("kill/dev" + std::to_string(d) +
                                "@win" + std::to_string(kw));
        }
        for (unsigned w = 0; w < plan_.numWindows; ++w) {
            const int kw = fplan.killWindow(exec_dev[w]);
            if (kw >= 0 &&
                (collective_merge || window_ordinal(w) >= kw))
                lost_window[w] = 1;
        }

        // --- Watchdog: stragglers and hangs (fault plan) ---
        // Sequential pre-pass, windows ascending, so detection,
        // health escalation and target choice are identical at every
        // hostThreads setting. A window whose projected completion
        // blows its deadline — watchdogSlack x the calibrated
        // per-window estimate — is speculatively re-dispatched onto
        // the fastest healthy candidate. The adopted copy is the one
        // with the earlier *priced* completion, the original
        // canonical on ties; both copies execute the same
        // deterministic window function, so the adopted point is
        // bit-identical either way (the dual-execution pass below
        // asserts it).
        std::vector<std::uint8_t> hang_window(plan_.numWindows, 0);
        std::vector<std::uint8_t> spec_window(plan_.numWindows, 0);
        if (fplan.hasStragglerFaults()) {
            const double est = window_estimate_ns_;
            const double slack =
                std::max(1.0, options_.watchdogSlack);
            for (int d = 0; d < num_gpus; ++d) {
                if (fplan.degraded(d)) {
                    ++result.fault.faultsInjected;
                    dev_faulted[d] = 1;
                    fault_log.push_back("degrade/dev" +
                                        std::to_string(d));
                }
                const int hw = fplan.hangWindow(d);
                if (hw >= 0) {
                    ++result.fault.hangs;
                    ++result.fault.faultsInjected;
                    dev_faulted[d] = 1;
                    if (health != nullptr)
                        health->recordHang(d);
                    fault_log.push_back("hang/dev" +
                                        std::to_string(d) + "@win" +
                                        std::to_string(hw));
                }
            }
            for (unsigned w = 0; w < plan_.numWindows; ++w) {
                if (lost_window[w])
                    continue;
                const int d = exec_dev[w];
                const int ord = window_ordinal(w);
                const double f = fplan.degradeFactor(d, ord);
                const int hw = fplan.hangWindow(d);
                // A collective merge loses every window of a hung
                // device (nothing streams out before the merge),
                // exactly like the kill path.
                const bool hang =
                    hw >= 0 && (collective_merge || ord >= hw);
                if (!hang && f <= slack) {
                    // Within the deadline: the window stretches but
                    // no respawn fires.
                    result.fault.stragglerWaitNs += (f - 1.0) * est;
                    result.fault.stragglerStallNs += (f - 1.0) * est;
                    continue;
                }
                if (hang && !options_.watchdog)
                    return support::Status(
                        support::StatusCode::TransferTimeout,
                        "device " + std::to_string(d) +
                            " hung at window " + std::to_string(w) +
                            " and the watchdog is off");
                if (!options_.watchdog) {
                    // Degrade past the slack, watchdog off: the
                    // merge stalls the full factor behind the
                    // straggler.
                    result.fault.stragglerWaitNs += (f - 1.0) * est;
                    result.fault.stragglerStallNs += (f - 1.0) * est;
                    continue;
                }
                ++result.fault.stragglersDetected;
                if (health != nullptr && !hang)
                    health->recordStraggler(d);
                // Fastest healthy candidate: schedulable, alive, not
                // hung, not the straggler itself; the lowest index
                // breaks factor ties (deterministic).
                int target = -1;
                double target_f =
                    std::numeric_limits<double>::infinity();
                for (const int c : sched_devs) {
                    if (c == d || fplan.killWindow(c) >= 0 ||
                        fplan.hangWindow(c) >= 0)
                        continue;
                    const double cf = fplan.degradeFactor(c, 0);
                    if (cf < target_f) {
                        target_f = cf;
                        target = c;
                    }
                }
                if (target < 0) {
                    if (hang)
                        return support::Status(
                            support::StatusCode::DeviceLost,
                            "device " + std::to_string(d) +
                                " hung and no healthy candidate "
                                "remains to respawn onto");
                    result.fault.stragglerWaitNs += (f - 1.0) * est;
                    result.fault.stragglerStallNs += (f - 1.0) * est;
                    continue;
                }
                ++result.fault.stragglerRespawns;
                spec_window[w] = 1;
                fault_log.push_back(
                    "respawn/w" + std::to_string(w) + "/dev" +
                    std::to_string(d) + "->dev" +
                    std::to_string(target));
                // Priced completions: the straggling original runs
                // f x the estimate (a hang never completes); the
                // speculative copy starts when the deadline fires
                // and runs at the target's speed.
                const double orig_ns =
                    hang ? std::numeric_limits<double>::infinity()
                         : f * est;
                const double spec_ns = slack * est + target_f * est;
                const bool adopt = spec_ns < orig_ns;
                if (hang)
                    hang_window[w] = 1;
                if (adopt) {
                    ++result.fault.speculativeWins;
                    exec_dev[w] = target;
                } else {
                    ++result.fault.speculativeLosses;
                }
                result.fault.stragglerWaitNs +=
                    std::min(orig_ns, spec_ns) - est;
                result.fault.stragglerStallNs +=
                    hang ? options_.transferTimeoutNs
                         : (f - 1.0) * est;
            }
        }

        std::vector<WindowPartial> partials(plan_.numWindows);
        pool.parallelFor(
            0, plan_.numWindows,
            [&](std::size_t w) {
                if (!lost_window[w] && !hang_window[w])
                    run_window(static_cast<unsigned>(w),
                               partials[w]);
            },
            host_threads);

        // --- Recovery: reshard lost windows onto the survivors ---
        std::vector<unsigned> resharded;
        for (unsigned w = 0; w < plan_.numWindows; ++w)
            if (lost_window[w])
                resharded.push_back(w);
        if (!resharded.empty()) {
            if (survivors.empty())
                return support::Status(
                    support::StatusCode::DeviceLost,
                    "all " + std::to_string(num_gpus) +
                        " devices lost; no survivor to reshard "
                        "onto");
            for (std::size_t i = 0; i < resharded.size(); ++i)
                exec_dev[resharded[i]] = pickSurvivor(
                    survivors, exec_dev[resharded[i]], i,
                    result.fault);
            pool.parallelFor(
                0, resharded.size(),
                [&](std::size_t i) {
                    run_window(resharded[i],
                               partials[resharded[i]]);
                },
                host_threads);
            result.fault.windowsResharded += resharded.size();
        }

        // --- Speculative execution (watchdog respawns) ---
        // A hung original never completes, so only the respawned
        // copy runs. A slow-but-alive original still finishes, so
        // its respawn is a genuine dual execution: the scratch copy
        // must agree bit-for-bit with the original, and its stats
        // are discarded so KernelStats stay identical to the
        // fault-free run.
        std::vector<unsigned> hung_windows, dual_windows;
        for (unsigned w = 0; w < plan_.numWindows; ++w) {
            if (hang_window[w])
                hung_windows.push_back(w);
            else if (spec_window[w])
                dual_windows.push_back(w);
        }
        if (!hung_windows.empty())
            pool.parallelFor(
                0, hung_windows.size(),
                [&](std::size_t i) {
                    run_window(hung_windows[i],
                               partials[hung_windows[i]]);
                },
                host_threads);
        if (!dual_windows.empty())
            pool.parallelFor(
                0, dual_windows.size(),
                [&](std::size_t i) {
                    WindowPartial scratch;
                    run_window(dual_windows[i], scratch);
                    DISTMSM_ASSERT(bitEqual(
                        scratch.windowPoint,
                        partials[dual_windows[i]].windowPoint));
                },
                host_threads);

        for (unsigned w = 0; w < plan_.numWindows; ++w)
            if (!partials[w].scatterOk)
                return partials[w].status;

        // --- Transfer: ship each device's window results ---
        // Sequential, devices ascending, one canonical index per
        // attempt — exactly the counter the fault plan's
        // corrupt:xfer clause names, so injection, detection and
        // retry are identical at every hostThreads setting.
        //
        // Gather ships every device straight to the host (the legacy
        // path, untouched). Ring/tree route the same disjoint
        // payloads device-to-device along the collective schedule
        // first — every key still has exactly one contributor, so
        // the merged points reaching the host are bit-identical to
        // the gather's.
        std::uint64_t xfer_counter = 0;
        if (!collective_merge) {
            for (int d = 0; d < num_gpus; ++d) {
                std::vector<unsigned> wins;
                for (unsigned w = 0; w < plan_.numWindows; ++w)
                    if (exec_dev[w] == d)
                        wins.push_back(w);
                if (wins.empty())
                    continue;
                std::vector<Xyzz> payload;
                std::vector<std::uint64_t> keys;
                payload.reserve(wins.size());
                keys.reserve(wins.size());
                for (const unsigned w : wins) {
                    payload.push_back(partials[w].windowPoint);
                    keys.push_back(w);
                }
                std::vector<Xyzz> received;
                const support::Status shipped = shipPayloadResilient(
                    d, payload, keys, fplan, xfer_counter,
                    result.fault, fault_log, dev_faulted, received);
                if (!shipped.isOk())
                    return shipped;
                for (std::size_t i = 0; i < wins.size(); ++i)
                    partials[wins[i]].windowPoint = received[i];
            }
        } else {
            std::vector<std::vector<Xyzz>> dev_payload(num_gpus);
            std::vector<std::vector<std::uint64_t>> dev_keys(
                num_gpus);
            for (unsigned w = 0; w < plan_.numWindows; ++w) {
                dev_payload[exec_dev[w]].push_back(
                    partials[w].windowPoint);
                dev_keys[exec_dev[w]].push_back(w);
            }
            std::vector<Xyzz> merged;
            std::vector<std::uint64_t> merged_keys;
            const support::Status shipped = mergeViaCollective(
                dev_payload, dev_keys, fplan, xfer_counter,
                result.fault, fault_log, dev_faulted, trace_prefix,
                merged, merged_keys);
            if (!shipped.isOk())
                return shipped;
            for (std::size_t i = 0; i < merged.size(); ++i)
                partials[static_cast<std::size_t>(merged_keys[i])]
                    .windowPoint = merged[i];
        }

        // Merge strictly high-to-low exactly like the serial Horner
        // recurrence (same stats/trace order as before the fault
        // layer: windows descending).
        Xyzz total = Xyzz::identity();
        for (unsigned w = plan_.numWindows; w-- > 0;) {
            WindowPartial &wp = partials[w];
            result.stats.merge(wp.scatterStats);
            result.stats.merge(wp.ecStats);
            if (trace != nullptr)
                emit_window(w, wp, exec_dev[w]);

            if (!total.isIdentity()) {
                for (unsigned b = 0; b < s; ++b) {
                    total = pdbl(total);
                    ++result.hostOps;
                }
            }
            total = padd(total, wp.windowPoint);
            result.hostOps += wp.reduceStats.padds + 1;
        }

        // Clean windows feed the ladder: every window whose
        // executing device showed no fault this run counts toward
        // probation reintegration (sequential, windows ascending —
        // deterministic streak growth).
        if (health != nullptr)
            for (unsigned w = 0; w < plan_.numWindows; ++w)
                if (!dev_faulted[static_cast<std::size_t>(
                        exec_dev[w])])
                    health->recordCleanWindow(exec_dev[w]);

        result.value = total;
        if (trace != nullptr) {
            emitFieldBackendMetrics(*trace, result.stats);
            emitFaultTrace(*trace, result.fault, fault_log);
        }
        return result;
    }

  private:
    /**
     * Obtain the precompute table: a BaseTableCache lookup keyed by
     * the base fingerprint and the plan geometry, building on a
     * miss. A proving loop constructing one engine per proof against
     * the same proving key pays the build once.
     */
    void
    acquireTable(int host_threads) const
    {
        TableCacheKey key;
        // The phi images are derived deterministically from the
        // points, so fingerprinting the points alone identifies the
        // GLV-folded table too (glv is part of the key).
        key.fingerprint = fingerprintBases<Curve>(points_);
        key.numBases = points_.size();
        key.windowBits = plan_.windowBits;
        key.numWindows = plan_.numWindows;
        key.glv = plan_.glv;
        table_ = BaseTableCache<Curve>::global().findOrBuild(
            key,
            [&] {
                std::vector<AffinePoint<Curve>> bases = points_;
                bases.insert(bases.end(), phi_points_.begin(),
                             phi_points_.end());
                return buildPrecomputeTable<Curve>(
                    bases, plan_.numWindows, plan_.windowBits,
                    plan_.glv, host_threads);
            },
            &table_cache_hit_);

        support::TraceRecorder *const trace = options_.trace;
        if (trace == nullptr)
            return;
        namespace lane = support::tracelane;
        auto &metrics = trace->metrics();
        metrics.add("engine/precompute/cache_hits",
                    table_cache_hit_ ? 1.0 : 0.0);
        metrics.add("engine/precompute/cache_misses",
                    table_cache_hit_ ? 0.0 : 1.0);
        metrics.set("engine/precompute/table_bytes",
                    static_cast<double>(table_->bytes));
        trace->labelProcess(lane::kEngineHostPid, "engine host");
        trace->labelThread(lane::kEngineHostPid, kPrecomputeTid,
                           "precompute");
        support::TraceArgs args;
        args.arg("table_bytes",
                 static_cast<double>(table_->bytes))
            .arg("rows", static_cast<double>(plan_.numWindows))
            .arg("bases", static_cast<double>(key.numBases));
        if (table_cache_hit_) {
            // Cached-hit lane: the amortized path is an instant, not
            // a span — no simulated time is spent.
            trace->instant("precompute/table-cache-hit", "phase",
                           lane::kEngineHostPid, kPrecomputeTid, 0.0,
                           std::move(args));
        } else {
            // Priced from the op count (deterministic), never wall
            // clock: (W-1) * s doublings per base at GPU throughput.
            const double build_ns = cluster_.model().ecThroughputNs(
                curve_profile_, eff_kernel_, gpusim::EcOp::Pdbl,
                table_->buildPdbls);
            trace->span("precompute/table-build", "phase",
                        lane::kEngineHostPid, kPrecomputeTid, 0.0,
                        build_ns, std::move(args));
        }
    }

    /**
     * The combined precompute execution (plan_.precompute): one
     * scatter over numWindows * n_eff table-indexed elements, one
     * bucket-sum pass with every device taking a bucket slice, one
     * serial bucket-reduce. Digit (w, i) addresses table row w at
     * index i, so all windows share the single bucket array and the
     * inter-window doubling chain never happens.
     */
    template <typename DigitOf>
    support::Status
    computeCombined(MsmResult<Curve> &result, std::size_t n_eff,
                    std::size_t n_buckets, DigitOf &&digit_of,
                    const std::string &trace_prefix,
                    int host_threads,
                    const gpusim::FaultPlan &fplan,
                    std::vector<std::string> &fault_log) const
    {
        using Xyzz = XYZZPoint<Curve>;
        auto &pool = support::ThreadPool::global();
        const unsigned s = plan_.windowBits;
        const unsigned n_windows = plan_.numWindows;
        const std::uint64_t total64 =
            static_cast<std::uint64_t>(n_windows) * n_eff;
        DISTMSM_REQUIRE(
            total64 <=
                std::numeric_limits<std::uint32_t>::max(),
            "combined precompute pass exceeds 32-bit element ids");
        const std::size_t total =
            static_cast<std::size_t>(total64);

        // Element e = w * n_eff + i contributes table row w of base
        // i to the bucket of digit (w, i). Each scalar writes only
        // its own numWindows slots.
        std::vector<std::uint32_t> ids(total);
        std::vector<std::uint8_t> negs(total);
        pool.parallelFor(
            0, n_eff,
            [&](std::size_t i) {
                for (unsigned w = 0; w < n_windows; ++w) {
                    const std::size_t e =
                        static_cast<std::size_t>(w) * n_eff + i;
                    digit_of(w, i, ids[e], negs[e]);
                }
            },
            host_threads);

        ScatterConfig scatter_cfg = options_.scatter;
        scatter_cfg.fieldBackend = plan_.fieldBackend;
        if (options_.trace != nullptr) {
            scatter_cfg.trace = options_.trace;
            scatter_cfg.traceLabel =
                trace_prefix + "combined/scatter";
            scatter_cfg.traceLane = 0;
        }
        ScatterResult scattered =
            options_.hierarchicalScatter
                ? hierarchicalScatter(ids, s, scatter_cfg)
                : naiveScatter(ids, s, scatter_cfg);
        if (!scattered.ok)
            return scattered.status;
        result.stats.merge(scattered.stats);

        auto point_of = [&](std::uint32_t idx) {
            const std::size_t w = idx / n_eff;
            const std::size_t i = idx % n_eff;
            const auto &base = table_->rows[w][i];
            return negs[idx] ? base.negated() : base;
        };

        // One bucket-sum launch over the whole cluster: every device
        // owns a contiguous slice of the single bucket array.
        std::vector<Xyzz> bucket_sums(n_buckets, Xyzz::identity());
        const int groups = cluster_.numGpus();
        std::vector<gpusim::KernelStats> group_stats(groups);
        auto sum_slice = [&](int g) {
            const field::TcBackendScope tc_scope(tc_exec_);
            const std::size_t lo = 1 + (n_buckets - 1) * g / groups;
            const std::size_t hi =
                1 + (n_buckets - 1) * (g + 1) / groups;
            if (options_.batchAffine) {
                BatchAffineScratch<Curve> scratch;
                batchAffineAccumulate<Curve>(
                    scattered.buckets, lo, hi, point_of,
                    bucket_sums, group_stats[g], scratch);
                return;
            }
            for (std::size_t b = lo;
                 b < hi && b < scattered.buckets.size(); ++b) {
                if (scattered.buckets[b].empty())
                    continue;
                bucket_sums[b] = bucketSumTree<Curve>(
                    scattered.buckets[b], point_of,
                    plan_.threadsPerBucket, group_stats[g]);
            }
        };

        // Device loss: the combined pass has no window boundaries,
        // so a kill clause (at any ordinal) takes the device's whole
        // bucket slice with it — and so do a hang (with the watchdog
        // on: the slice is speculatively respawned on a survivor, a
        // guaranteed win because the original never finishes) and a
        // quarantine (the tracker excluded the device up front).
        // Survivors recompute the dead slices afterwards — the
        // slices are disjoint bucket ranges, so the recomputation is
        // bit-identical — and the survivor that recomputed a slice
        // also ships it. A degrade clause only slows its device; at
        // slice granularity there is no per-window deadline to blow,
        // so it is logged and priced (timeline stragglerNs) but
        // never respawned here.
        gpusim::HealthTracker *const health = options_.health;
        std::vector<std::uint8_t> dev_faulted(
            static_cast<std::size_t>(groups), 0);
        std::vector<int> survivors, dead;
        std::vector<int> ship_dev(groups);
        for (int g = 0; g < groups; ++g) {
            ship_dev[g] = g;
            const bool quarantined =
                health != nullptr && g < health->numDevices() &&
                !health->schedulable(g);
            const bool hung = fplan.hangWindow(g) >= 0;
            if (hung && !options_.watchdog)
                return support::Status(
                    support::StatusCode::TransferTimeout,
                    "device " + std::to_string(g) +
                        " hung in the combined pass and the "
                        "watchdog is off");
            if (fplan.killWindow(g) >= 0) {
                dead.push_back(g);
                dev_faulted[static_cast<std::size_t>(g)] = 1;
                result.fault.devicesLost += 1;
                result.fault.faultsInjected += 1;
                fault_log.push_back("kill/dev" + std::to_string(g));
            } else if (hung) {
                dead.push_back(g);
                dev_faulted[static_cast<std::size_t>(g)] = 1;
                result.fault.hangs += 1;
                result.fault.faultsInjected += 1;
                result.fault.stragglersDetected += 1;
                result.fault.stragglerRespawns += 1;
                result.fault.speculativeWins += 1;
                fault_log.push_back("hang/dev" + std::to_string(g));
                if (health != nullptr)
                    health->recordHang(g);
            } else if (quarantined) {
                // Not a new fault — the tracker already counted
                // whatever quarantined it; the slice just needs a
                // healthy recompute-and-ship owner.
                dead.push_back(g);
                dev_faulted[static_cast<std::size_t>(g)] = 1;
            } else {
                survivors.push_back(g);
                const double f = fplan.degradeFactor(g, 0);
                if (f > 1.0) {
                    result.fault.faultsInjected += 1;
                    dev_faulted[static_cast<std::size_t>(g)] = 1;
                    fault_log.push_back("degrade/dev" +
                                        std::to_string(g));
                }
            }
        }
        if (!dead.empty()) {
            if (survivors.empty())
                return support::Status(
                    support::StatusCode::DeviceLost,
                    "all " + std::to_string(groups) +
                        " devices lost; no survivor to reshard "
                        "onto");
            for (std::size_t i = 0; i < dead.size(); ++i)
                ship_dev[dead[i]] = pickSurvivor(
                    survivors, dead[i], i, result.fault);
        }

        std::vector<std::uint8_t> is_dead(
            static_cast<std::size_t>(groups), 0);
        for (const int g : dead)
            is_dead[static_cast<std::size_t>(g)] = 1;
        cluster_.forEachDevice(
            groups,
            [&](int g) {
                if (!is_dead[static_cast<std::size_t>(g)])
                    sum_slice(g);
            },
            options_.hostThreads);
        if (!dead.empty()) {
            pool.parallelFor(
                0, dead.size(),
                [&](std::size_t i) { sum_slice(dead[i]); },
                host_threads);
            result.fault.windowsResharded += dead.size();
        }

        gpusim::KernelStats ec_stats;
        for (const auto &gs : group_stats)
            ec_stats.mergeLockstep(gs);
        result.stats.merge(ec_stats);

        // Ship each slice through the checksummed transfer layer
        // (sequential, slices ascending; see the window path for the
        // canonical-attempt-index contract). The RLC coefficients
        // are keyed by global bucket index, so resharding never
        // changes the digest a slice must match. Under a collective
        // merge the slices route device-to-device along the schedule
        // before one root->host hop; the slices are disjoint bucket
        // ranges, so the merged array is bit-identical either way.
        std::uint64_t xfer_counter = 0;
        if (plan_.collective == gpusim::CollectiveAlgo::Gather) {
            for (int g = 0; g < groups; ++g) {
                const std::size_t lo =
                    1 + (n_buckets - 1) * g / groups;
                const std::size_t hi =
                    1 + (n_buckets - 1) * (g + 1) / groups;
                if (lo >= hi)
                    continue;
                std::vector<Xyzz> payload(
                    bucket_sums.begin() +
                        static_cast<std::ptrdiff_t>(lo),
                    bucket_sums.begin() +
                        static_cast<std::ptrdiff_t>(hi));
                std::vector<std::uint64_t> keys(hi - lo);
                for (std::size_t b = lo; b < hi; ++b)
                    keys[b - lo] = b;
                std::vector<Xyzz> received;
                const support::Status shipped = shipPayloadResilient(
                    ship_dev[g], payload, keys, fplan, xfer_counter,
                    result.fault, fault_log, dev_faulted, received);
                if (!shipped.isOk())
                    return shipped;
                std::copy(received.begin(), received.end(),
                          bucket_sums.begin() +
                              static_cast<std::ptrdiff_t>(lo));
            }
        } else {
            const int n_dev = cluster_.numGpus();
            std::vector<std::vector<Xyzz>> dev_payload(n_dev);
            std::vector<std::vector<std::uint64_t>> dev_keys(n_dev);
            for (int g = 0; g < groups; ++g) {
                const std::size_t lo =
                    1 + (n_buckets - 1) * g / groups;
                const std::size_t hi =
                    1 + (n_buckets - 1) * (g + 1) / groups;
                for (std::size_t b = lo; b < hi; ++b) {
                    dev_payload[ship_dev[g]].push_back(
                        bucket_sums[b]);
                    dev_keys[ship_dev[g]].push_back(b);
                }
            }
            std::vector<Xyzz> merged;
            std::vector<std::uint64_t> merged_keys;
            const support::Status shipped = mergeViaCollective(
                dev_payload, dev_keys, fplan, xfer_counter,
                result.fault, fault_log, dev_faulted, trace_prefix,
                merged, merged_keys);
            if (!shipped.isOk())
                return shipped;
            for (std::size_t i = 0; i < merged.size(); ++i)
                bucket_sums[static_cast<std::size_t>(
                    merged_keys[i])] = merged[i];
        }

        // Every slice owner that saw no fault end-to-end earns a
        // clean window toward probation reintegration.
        if (health != nullptr)
            for (int g = 0;
                 g < std::min(groups, health->numDevices()); ++g)
                if (!dev_faulted[static_cast<std::size_t>(g)] &&
                    health->schedulable(g))
                    health->recordCleanWindow(g);

        ReduceStats reduce_stats;
        result.value =
            bucketReduceSerial<Curve>(bucket_sums, &reduce_stats);
        result.hostOps +=
            reduce_stats.padds + reduce_stats.pdbls;

        support::TraceRecorder *const trace = options_.trace;
        if (trace == nullptr)
            return support::Status::ok();
        namespace lane = support::tracelane;
        labelEngineLanes(*trace);
        const auto &cost_model = cluster_.model();
        const int scatter_threads = scatterThreads();
        const double scatter_ns =
            cost_model.scatterComputeNs(total, scatter_threads) +
            cost_model.atomicNs(scattered.stats, scatter_threads) +
            cost_model.gmemNs(scattered.stats.gmemBytes);
        const std::string cl = trace_prefix + "combined/";
        support::TraceArgs scatter_args;
        scatter_args
            .arg("elements", static_cast<double>(total))
            .arg("global_atomics",
                 static_cast<double>(
                     scattered.stats.globalAtomics));
        // The combined scatter is one bulk-synchronous kernel across
        // the cluster; its span sits on device 0's lane, the bucket
        // sums start after it on every device.
        trace->span(cl + "scatter", "phase",
                    lane::engineDevicePid(0), lane::kComputeTid, 0.0,
                    scatter_ns, std::move(scatter_args));
        auto &metrics = trace->metrics();
        for (int g = 0; g < groups; ++g) {
            const double sum_ns = bucketSumNs(group_stats[g]);
            trace->span(cl + "bucket-sum", "phase",
                        lane::engineDevicePid(g), lane::kComputeTid,
                        scatter_ns, sum_ns);
            const std::string mp = "engine/" + trace_prefix + "dev" +
                                   std::to_string(g) + "/combined/";
            group_stats[g].recordMetrics(metrics, mp + "ec/");
            metrics.add(mp + "bucket_sum_ns", sum_ns);
        }
        const double reduce_ns = cost_model.hostEcNs(
            curve_profile_,
            reduce_stats.padds + reduce_stats.pdbls,
            cluster_.host());
        trace->span(cl + "bucket-reduce", "phase",
                    lane::kEngineHostPid, lane::kComputeTid, 0.0,
                    reduce_ns);
        const std::string mp0 =
            "engine/" + trace_prefix + "dev0/combined/";
        scattered.stats.recordMetrics(metrics, mp0 + "scatter/");
        metrics.add(mp0 + "scatter_ns", scatter_ns);
        metrics.add("engine/" + trace_prefix +
                        "combined/bucket_reduce_ns",
                    reduce_ns);
        emitFieldBackendMetrics(*trace, ec_stats);
        return support::Status::ok();
    }

    /**
     * Resolve the active fault plan: an explicit MsmOptions::faults
     * wins, then the DISTMSM_FAULT_SPEC environment variable, then
     * no faults. A malformed environment spec surfaces as the typed
     * parse Status — tryCompute propagates it instead of exiting.
     */
    support::StatusOr<const gpusim::FaultPlan *>
    activeFaultPlan() const
    {
        static const gpusim::FaultPlan kNoFaults;
        if (!options_.faults.empty())
            return &options_.faults;
        support::StatusOr<const gpusim::FaultPlan *> env =
            gpusim::globalFaultPlanFromEnv();
        if (!env.isOk())
            return env;
        if (*env != nullptr)
            return *env;
        return &kNoFaults;
    }

    /**
     * Re-plan after a health-generation change: route through the
     * caller's original planner mode (Search/Cached re-search — over
     * the quarantine-shrunken cluster via planningCluster) and
     * re-stage whatever the new plan needs. Only called from
     * tryCompute when MsmOptions::health is set; mutates the
     * mutable planning state, so concurrent tryCompute calls on one
     * engine are not supported with a tracker attached.
     */
    void
    replanForHealth() const
    {
        MsmOptions replan_opts = options_;
        replan_opts.planner = original_planner_;
        if (original_planner_ != PlannerMode::Heuristic) {
            AutoPlanResult searched = autoplanMsm(
                curve_profile_, points_.size(), cluster_,
                replan_opts);
            options_ = searched.options;
            plan_ = searched.plan;
        } else {
            plan_ = planMsm(curve_profile_, points_.size(), cluster_,
                            replan_opts);
        }
        eff_kernel_ = gpusim::applyFieldBackend(options_.kernel,
                                                plan_.fieldBackend);
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        if (plan_.glv && phi_points_.empty()) {
            phi_points_.resize(points_.size());
            support::ThreadPool::global().parallelFor(
                0, points_.size(),
                [&](std::size_t i) {
                    phi_points_[i] =
                        glv::endomorphismIfSupported<Curve>(
                            points_[i]);
                },
                host_threads);
        }
        if (plan_.precompute)
            acquireTable(host_threads);
        planned_generation_ = options_.health->generation();
        refreshWindowEstimate();
    }

    /**
     * Calibrated fault-free per-window GPU time — the base of the
     * watchdog deadline (slack x this) and of the straggler
     * pricing. Computed only when a tracker is attached or the
     * fault plan contains degrade/hang clauses, so fault-free
     * engines skip the cost-model call entirely (zero overhead).
     */
    void
    refreshWindowEstimate() const
    {
        window_estimate_ns_ = 0.0;
        bool need = options_.health != nullptr;
        if (!need) {
            if (!options_.faults.empty()) {
                need = options_.faults.hasStragglerFaults();
            } else {
                const support::StatusOr<const gpusim::FaultPlan *>
                    env = gpusim::globalFaultPlanFromEnv();
                need = env.isOk() && *env != nullptr &&
                       (*env)->hasStragglerFaults();
            }
        }
        if (!need)
            return;
        MsmOptions est_opts = options_;
        // The estimate prices the *healthy* window (the deadline
        // base), silently: no trace spans, no fault penalties.
        est_opts.trace = nullptr;
        est_opts.faults = gpusim::FaultPlan{};
        const MsmTimeline t = estimateDistMsmWithPlan(
            curve_profile_, points_.size(), cluster_, est_opts,
            plan_);
        const double wpg =
            std::max(1.0, static_cast<double>(plan_.numWindows) /
                              cluster_.numGpus());
        window_estimate_ns_ = (t.scatterNs + t.bucketSumNs) / wpg;
    }

  public:
    /**
     * Probe each quarantined device with one out-of-band verified
     * transfer (a single attempt through the same serialize /
     * inject / digest path, at a transfer index far above any real
     * counter so it cannot collide with corrupt:xfer clauses). A
     * clean probe paroles the device to Probation
     * (HealthTracker::recordCleanProbe); a corrupted one records
     * another checksum failure. Returns the number paroled. No-op
     * without a tracker.
     */
    int
    probeQuarantinedDevices() const
    {
        gpusim::HealthTracker *const health = options_.health;
        if (health == nullptr)
            return 0;
        const support::StatusOr<const gpusim::FaultPlan *> fp =
            activeFaultPlan();
        if (!fp.isOk())
            return 0;
        const gpusim::FaultPlan &fplan = **fp;
        using Xyzz = XYZZPoint<Curve>;
        int paroled = 0;
        const int n_dev =
            std::min(cluster_.numGpus(), health->numDevices());
        for (int d = 0; d < n_dev; ++d) {
            if (health->schedulable(d))
                continue;
            const std::uint64_t xfer =
                kProbeXferBase + probe_counter_++;
            const std::vector<Xyzz> pts(1, Xyzz::identity());
            const std::vector<std::uint64_t> keys(1, 0);
            std::vector<Xyzz> wire = pts;
            wire.push_back(rlcKeyedDigest(pts, keys, nullptr));
            std::vector<std::uint8_t> bytes =
                serializePoints<Curve>(wire);
            if (fplan.transferFault(xfer, d) !=
                gpusim::TransferFault::None)
                gpusim::corruptBytes(bytes, fplan.seed, xfer);
            std::vector<Xyzz> got =
                deserializePoints<Curve>(bytes);
            const Xyzz device_digest = got.back();
            got.pop_back();
            const Xyzz host_digest =
                rlcKeyedDigest(got, keys, nullptr);
            if (bitEqual(host_digest, device_digest)) {
                health->recordCleanProbe(d);
                ++paroled;
            } else {
                health->recordChecksumFailure(d);
            }
        }
        return paroled;
    }

  private:

    /**
     * RLC digest with explicit coefficient keys: transfer payloads
     * are keyed by global window (or bucket) index rather than a
     * contiguous range, so the host re-derives the same rho for each
     * point no matter which device shipped it after a reshard. The
     * digest's EC work is tallied only into @p report (verifyEcOps)
     * — never KernelStats or hostOps — keeping zero-fault counters
     * bit-identical to a build without the fault layer.
     */
    XYZZPoint<Curve>
    rlcKeyedDigest(const std::vector<XYZZPoint<Curve>> &points,
                   const std::vector<std::uint64_t> &keys,
                   gpusim::FaultReport *report) const
    {
        using Xyzz = XYZZPoint<Curve>;
        Xyzz digest = Xyzz::identity();
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Scalar rho = Scalar::fromU64(
                rlcRho(options_.checksumSeed, keys[i]));
            digest = padd(digest, pmul(points[i], rho));
        }
        if (report != nullptr) {
            report->verifyEcOps +=
                points.size() * (kRhoEcOps + 1);
            report->checksummed += points.size();
        }
        return digest;
    }

    /**
     * One simulated device->host transfer under the fault plan:
     * append the device-side RLC digest, serialize, apply any
     * injected delay or byte corruption, deserialize, re-derive the
     * digest host-side and compare limb-for-limb — retrying (with a
     * fresh canonical attempt index) up to MsmOptions::maxRetries
     * times. Every retry waits out an exponential backoff
     * (backoffBaseNs doubling per attempt, capped at backoffMaxNs)
     * plus a deterministic seeded jitter — simulated time, priced
     * into FaultReport::backoffNs, never wall clock. On success
     * @p received holds the accepted points, bit-identical to
     * @p points whenever nothing corrupted the wire. On exhaustion,
     * returns the typed Status of the final failed attempt. Each
     * observed fault marks the device in @p dev_faulted (it forfeits
     * its clean window) and feeds the health tracker when one is
     * attached.
     */
    support::Status
    shipPayload(int device,
                const std::vector<XYZZPoint<Curve>> &points,
                const std::vector<std::uint64_t> &rho_keys,
                const gpusim::FaultPlan &fplan,
                std::uint64_t &xfer_counter,
                gpusim::FaultReport &report,
                std::vector<std::string> &fault_log,
                std::vector<std::uint8_t> &dev_faulted,
                std::vector<XYZZPoint<Curve>> &received) const
    {
        using Xyzz = XYZZPoint<Curve>;
        gpusim::HealthTracker *const health =
            (options_.health != nullptr &&
             device < options_.health->numDevices())
                ? options_.health
                : nullptr;
        const auto mark_faulted = [&] {
            if (static_cast<std::size_t>(device) <
                dev_faulted.size())
                dev_faulted[static_cast<std::size_t>(device)] = 1;
        };
        support::Status last(support::StatusCode::TransferTimeout,
                             "transfer never attempted");
        for (int attempt = 0; attempt <= options_.maxRetries;
             ++attempt) {
            const std::uint64_t xfer = xfer_counter++;
            ++report.transfers;
            if (attempt > 0) {
                ++report.retries;
                // Exponential backoff with seeded jitter: dead wire
                // time in the simulated timeline. The jitter PRNG is
                // keyed by (plan seed, attempt's transfer index), so
                // the wait is bit-identical at every hostThreads.
                const double backoff = std::min(
                    options_.backoffMaxNs,
                    options_.backoffBaseNs *
                        static_cast<double>(
                            1ull << (attempt - 1)));
                Prng jitter_rng(fplan.seed ^
                                (xfer * 0x9E3779B97F4A7C15ull) ^
                                0xBACC0FFull);
                const double jitter =
                    backoff * 0.25 *
                    (static_cast<double>(jitter_rng() >> 11) *
                     0x1.0p-53);
                report.backoffNs += backoff + jitter;
            }
            const double delay =
                fplan.transferDelayNs(device, attempt);
            if (delay > 0.0) {
                report.delayNs += delay;
                ++report.faultsInjected;
                fault_log.push_back("delay/dev" +
                                    std::to_string(device) +
                                    "/xfer" + std::to_string(xfer));
                if (delay > options_.transferTimeoutNs) {
                    ++report.timeouts;
                    mark_faulted();
                    if (health != nullptr)
                        health->recordTimeout(device);
                    last = support::Status(
                        support::StatusCode::TransferTimeout,
                        "device " + std::to_string(device) +
                            " transfer attempt " +
                            std::to_string(attempt) +
                            " exceeded the timeout");
                    continue;
                }
            }
            std::vector<Xyzz> wire = points;
            if (options_.verifyChecksums)
                wire.push_back(
                    rlcKeyedDigest(points, rho_keys, &report));
            std::vector<std::uint8_t> bytes =
                serializePoints<Curve>(wire);
            const gpusim::TransferFault tf =
                fplan.transferFault(xfer, device);
            if (tf != gpusim::TransferFault::None) {
                gpusim::corruptBytes(bytes, fplan.seed, xfer);
                ++report.corruptInjected;
                ++report.faultsInjected;
                mark_faulted();
                fault_log.push_back(
                    (tf == gpusim::TransferFault::Flaky
                         ? "flaky/dev"
                         : "corrupt/dev") +
                    std::to_string(device) + "/xfer" +
                    std::to_string(xfer));
            }
            std::vector<Xyzz> got =
                deserializePoints<Curve>(bytes);
            if (got.size() != wire.size())
                return support::Status(
                    support::StatusCode::ResultMismatch,
                    "device " + std::to_string(device) +
                        " transfer payload size mismatch");
            if (options_.verifyChecksums) {
                const Xyzz device_digest = got.back();
                got.pop_back();
                const Xyzz host_digest =
                    rlcKeyedDigest(got, rho_keys, &report);
                if (!bitEqual(host_digest, device_digest)) {
                    ++report.corruptDetected;
                    if (health != nullptr)
                        health->recordChecksumFailure(device);
                    fault_log.push_back(
                        "detect/dev" + std::to_string(device) +
                        "/xfer" + std::to_string(xfer));
                    last = support::Status(
                        support::StatusCode::TransferCorrupt,
                        "device " + std::to_string(device) +
                            " transfer digest mismatch (attempt " +
                            std::to_string(attempt) + ")");
                    continue;
                }
            }
            received = std::move(got);
            return support::Status::ok();
        }
        return last;
    }

    /**
     * shipPayload with one health-gated failover: when every retry
     * from @p device fails AND a health tracker is attached, the
     * payload is re-shipped once from the healthiest-preferred
     * survivor (same node first, ascending — the pickSurvivor
     * ordering, round-robined by the failover ordinal). In the
     * simulation the payload bytes live host-side either way, so
     * the redirect is purely a routing decision; the RLC digests are
     * keyed by global index, so the new sender must match the same
     * digest. Without a tracker this is exactly shipPayload — the
     * persistent-corruption error paths are untouched.
     */
    support::Status
    shipPayloadResilient(
        int device, const std::vector<XYZZPoint<Curve>> &points,
        const std::vector<std::uint64_t> &rho_keys,
        const gpusim::FaultPlan &fplan,
        std::uint64_t &xfer_counter, gpusim::FaultReport &report,
        std::vector<std::string> &fault_log,
        std::vector<std::uint8_t> &dev_faulted,
        std::vector<XYZZPoint<Curve>> &received) const
    {
        const support::Status first =
            shipPayload(device, points, rho_keys, fplan,
                        xfer_counter, report, fault_log, dev_faulted,
                        received);
        gpusim::HealthTracker *const health = options_.health;
        if (first.isOk() || health == nullptr)
            return first;
        if (first.code() != support::StatusCode::TransferCorrupt &&
            first.code() != support::StatusCode::TransferTimeout)
            return first;
        const gpusim::Topology &topo = cluster_.topology();
        std::vector<int> pref;
        for (const int pass : {0, 1})
            for (int c = 0; c < cluster_.numGpus(); ++c) {
                if (c == device || fplan.killWindow(c) >= 0 ||
                    fplan.hangWindow(c) >= 0)
                    continue;
                if (c < health->numDevices() &&
                    !health->schedulable(c))
                    continue;
                if (topo.sameNode(c, device) == (pass == 0))
                    pref.push_back(c);
            }
        if (pref.empty())
            return first;
        const int target = pref[static_cast<std::size_t>(
            report.transferFailovers % pref.size())];
        ++report.transferFailovers;
        fault_log.push_back("failover/dev" +
                            std::to_string(device) + "->dev" +
                            std::to_string(target));
        return shipPayload(target, points, rho_keys, fplan,
                           xfer_counter, report, fault_log,
                           dev_faulted, received);
    }

    /**
     * Topology-aware reshard target: the preference list puts the
     * dead device's same-node survivors first (NVLink-local
     * recovery), then cross-node survivors, both ascending; the
     * global reshard ordinal round-robins over it. On a single-node
     * cluster the preference list IS the ascending survivor list, so
     * the assignment is bit-for-bit the legacy
     * survivors[i % survivors.size()].
     */
    int
    pickSurvivor(const std::vector<int> &survivors, int original,
                 std::size_t ordinal,
                 gpusim::FaultReport &report) const
    {
        const gpusim::Topology &topo = cluster_.topology();
        std::vector<int> pref;
        pref.reserve(survivors.size());
        for (int s : survivors)
            if (topo.sameNode(s, original))
                pref.push_back(s);
        for (int s : survivors)
            if (!topo.sameNode(s, original))
                pref.push_back(s);
        const int target = pref[ordinal % pref.size()];
        if (topo.sameNode(target, original))
            ++report.reshardsIntraNode;
        else
            ++report.reshardsCrossNode;
        return target;
    }

    /**
     * Functional ring/tree/reduce-scatter merge: route the
     * per-device (points, keys) payloads device-to-device along the
     * collective schedule — each hop a checksummed shipPayload,
     * receivers concatenating — then one root->host hop carrying the
     * union. A sharded step (reduce-scatter rounds) moves only the
     * keys k with k % shardCount == step.shard, leaving the rest on
     * the sender. The keys are disjoint (each window/bucket has
     * exactly one contributor), so no point is ever combined
     * in-flight and the union reaching the host is bit-identical to
     * the all-to-host gather; the RLC digests are keyed by global
     * index, so re-routing never changes the digest a payload must
     * match. Steps execute sequentially in schedule order — one
     * deterministic transfer-counter stream, so injected faults hit
     * the same hop at every hostThreads setting.
     *
     * Under CollectivePolicy::Auto the strategy is re-resolved here
     * against the merge's *actual* payload size (the plan resolved
     * it once, at the planning-time estimate): the congestion-priced
     * winner executes at each merge point. When the per-payload pick
     * is Gather, every member ships its payload straight to the host
     * (the schedule has no steps and no root).
     *
     * On success @p out_points / @p out_keys hold the union;
     * @p payloads / @p keys are consumed.
     */
    support::Status
    mergeViaCollective(
        std::vector<std::vector<XYZZPoint<Curve>>> &payloads,
        std::vector<std::vector<std::uint64_t>> &keys,
        const gpusim::FaultPlan &fplan,
        std::uint64_t &xfer_counter, gpusim::FaultReport &report,
        std::vector<std::string> &fault_log,
        std::vector<std::uint8_t> &dev_faulted,
        const std::string &trace_prefix,
        std::vector<XYZZPoint<Curve>> &out_points,
        std::vector<std::uint64_t> &out_keys) const
    {
        using Xyzz = XYZZPoint<Curve>;
        out_points.clear();
        out_keys.clear();
        std::vector<int> members;
        for (int d = 0; d < cluster_.numGpus(); ++d)
            if (!payloads[static_cast<std::size_t>(d)].empty())
                members.push_back(d);
        if (members.empty())
            return support::Status::ok();
        const gpusim::Topology &topo = cluster_.topology();
        gpusim::CollectiveAlgo algo = plan_.collective;
        if (options_.collective ==
            gpusim::CollectivePolicy::Auto) {
            // Deterministic payload size for the re-resolution: the
            // busiest member's bytes (identical at every hostThreads
            // — the payload partition is fixed by the plan).
            std::uint64_t max_bytes = 0;
            for (const int m : members)
                max_bytes = std::max<std::uint64_t>(
                    max_bytes,
                    payloads[static_cast<std::size_t>(m)].size() *
                        sizeof(Xyzz));
            algo = gpusim::CollectiveTimeEstimator(
                       topo, cluster_.device())
                       .pick(gpusim::CollectivePolicy::Auto,
                             static_cast<int>(members.size()),
                             max_bytes);
        }
        const gpusim::CollectiveSchedule sched =
            gpusim::buildCollectiveSchedule(algo, topo, members);
        namespace lane = support::tracelane;
        support::TraceRecorder *trace = options_.trace;
        const std::uint64_t digest_pts =
            options_.verifyChecksums ? 1 : 0;
        if (sched.root < 0) {
            // The per-payload pick degenerated to Gather: each
            // member ships straight to the host, ascending.
            for (const int m : members) {
                auto &m_pts =
                    payloads[static_cast<std::size_t>(m)];
                auto &m_keys = keys[static_cast<std::size_t>(m)];
                std::vector<Xyzz> received;
                const support::Status shipped = shipPayloadResilient(
                    m, m_pts, m_keys, fplan, xfer_counter, report,
                    fault_log, dev_faulted, received);
                if (!shipped.isOk())
                    return shipped;
                out_points.insert(out_points.end(),
                                  received.begin(), received.end());
                out_keys.insert(out_keys.end(), m_keys.begin(),
                                m_keys.end());
                m_pts.clear();
                m_keys.clear();
            }
            return support::Status::ok();
        }
        double cursor = 0.0;
        std::uint64_t bytes_intra = 0;
        std::uint64_t bytes_inter = 0;
        std::vector<Xyzz> ship_pts;
        std::vector<std::uint64_t> ship_keys;
        for (const gpusim::CollectiveStep &step : sched.steps) {
            auto &src_pts = payloads[
                static_cast<std::size_t>(step.src)];
            auto &src_keys = keys[
                static_cast<std::size_t>(step.src)];
            if (step.shard < 0) {
                ship_pts = std::move(src_pts);
                ship_keys = std::move(src_keys);
            } else {
                // Sharded step: split the sender's payload into the
                // forwarded shard and the rest, preserving order on
                // both sides (deterministic at every hostThreads).
                ship_pts.clear();
                ship_keys.clear();
                std::vector<Xyzz> stay_pts;
                std::vector<std::uint64_t> stay_keys;
                for (std::size_t i = 0; i < src_keys.size(); ++i) {
                    if (static_cast<int>(
                            src_keys[i] %
                            static_cast<std::uint64_t>(
                                sched.shardCount)) == step.shard) {
                        ship_pts.push_back(src_pts[i]);
                        ship_keys.push_back(src_keys[i]);
                    } else {
                        stay_pts.push_back(src_pts[i]);
                        stay_keys.push_back(src_keys[i]);
                    }
                }
                src_pts = std::move(stay_pts);
                src_keys = std::move(stay_keys);
            }
            std::vector<Xyzz> received;
            const support::Status shipped = shipPayloadResilient(
                step.src, ship_pts, ship_keys, fplan, xfer_counter,
                report, fault_log, dev_faulted, received);
            if (!shipped.isOk())
                return shipped;
            const std::uint64_t wire_bytes =
                (received.size() + digest_pts) * sizeof(Xyzz);
            if (topo.sameNode(step.src, step.dst))
                bytes_intra += wire_bytes;
            else
                bytes_inter += wire_bytes;
            if (trace != nullptr) {
                const double dur =
                    topo.linkNs(step.src, step.dst, wire_bytes);
                trace->labelThread(
                    lane::engineDevicePid(step.src),
                    lane::kTransferTid, "transfer");
                trace->span(
                    "collective/" + trace_prefix +
                        std::string(
                            gpusim::collectiveAlgoName(algo)),
                    "transfer", lane::engineDevicePid(step.src),
                    lane::kTransferTid, cursor, dur,
                    support::TraceArgs()
                        .arg("dst", std::to_string(step.dst))
                        .arg("points", static_cast<double>(
                                           received.size())));
                cursor += dur;
            }
            auto &dst_pts = payloads[
                static_cast<std::size_t>(step.dst)];
            auto &dst_keys = keys[
                static_cast<std::size_t>(step.dst)];
            dst_pts.insert(dst_pts.end(), received.begin(),
                           received.end());
            dst_keys.insert(dst_keys.end(), ship_keys.begin(),
                            ship_keys.end());
            ship_pts.clear();
            ship_keys.clear();
        }
        auto &root_pts = payloads[
            static_cast<std::size_t>(sched.root)];
        auto &root_keys = keys[
            static_cast<std::size_t>(sched.root)];
        std::vector<Xyzz> received;
        const support::Status shipped = shipPayloadResilient(
            sched.root, root_pts, root_keys, fplan, xfer_counter,
            report, fault_log, dev_faulted, received);
        if (!shipped.isOk())
            return shipped;
        out_points = std::move(received);
        out_keys = root_keys;
        if (trace != nullptr) {
            auto &metrics = trace->metrics();
            const std::string cp = "collective/" + trace_prefix;
            metrics.add(cp + "steps",
                        static_cast<double>(sched.steps.size()));
            metrics.add(cp + "bytes_intra",
                        static_cast<double>(bytes_intra));
            metrics.add(cp + "bytes_inter",
                        static_cast<double>(bytes_inter));
            metrics.add(
                cp + "bytes_host",
                static_cast<double>(
                    (out_points.size() + digest_pts) *
                    sizeof(Xyzz)));
        }
        return support::Status::ok();
    }

    /**
     * The fault layer's trace track: one instant per injection or
     * detection (deterministic ordinals as the logical time axis) on
     * the engine-host process, plus the flat "fault/" counters.
     */
    void
    emitFaultTrace(support::TraceRecorder &trace,
                   const gpusim::FaultReport &report,
                   const std::vector<std::string> &log) const
    {
        namespace lane = support::tracelane;
        trace.labelProcess(lane::kEngineHostPid, "engine host");
        trace.labelThread(lane::kEngineHostPid, kFaultTid, "faults");
        for (std::size_t i = 0; i < log.size(); ++i)
            trace.instant("fault/" + log[i], "fault",
                          lane::kEngineHostPid, kFaultTid,
                          static_cast<double>(i) * 1000.0);
        auto &metrics = trace.metrics();
        metrics.add("fault/faults_injected",
                    static_cast<double>(report.faultsInjected));
        metrics.add("fault/corrupt_injected",
                    static_cast<double>(report.corruptInjected));
        metrics.add("fault/corrupt_detected",
                    static_cast<double>(report.corruptDetected));
        metrics.add("fault/timeouts",
                    static_cast<double>(report.timeouts));
        metrics.add("fault/retries",
                    static_cast<double>(report.retries));
        metrics.add("fault/windows_resharded",
                    static_cast<double>(report.windowsResharded));
        metrics.add("fault/reshards_intra_node",
                    static_cast<double>(report.reshardsIntraNode));
        metrics.add("fault/reshards_cross_node",
                    static_cast<double>(report.reshardsCrossNode));
        metrics.add("fault/devices_lost",
                    static_cast<double>(report.devicesLost));
        metrics.add("fault/transfers",
                    static_cast<double>(report.transfers));
        metrics.add("fault/checksums",
                    static_cast<double>(report.checksummed));
        metrics.add("fault/verify_ec_ops",
                    static_cast<double>(report.verifyEcOps));
        metrics.add("fault/delay_ns", report.delayNs);
        metrics.add("fault/stragglers_detected",
                    static_cast<double>(report.stragglersDetected));
        metrics.add("fault/straggler_respawns",
                    static_cast<double>(report.stragglerRespawns));
        metrics.add("fault/speculative_wins",
                    static_cast<double>(report.speculativeWins));
        metrics.add("fault/speculative_losses",
                    static_cast<double>(report.speculativeLosses));
        metrics.add("fault/hangs",
                    static_cast<double>(report.hangs));
        metrics.add("fault/transfer_failovers",
                    static_cast<double>(report.transferFailovers));
        metrics.add("fault/backoff_ns",
                    static_cast<double>(report.backoffNs));
        metrics.add("fault/straggler_wait_ns",
                    static_cast<double>(report.stragglerWaitNs));
        metrics.add("fault/straggler_stall_ns",
                    static_cast<double>(report.stragglerStallNs));
        if (options_.health != nullptr)
            options_.health->recordMetrics(trace.metrics());
    }

    /** Simulated threads executing one scatter launch. */
    int
    scatterThreads() const
    {
        return static_cast<int>(std::min<std::uint64_t>(
            cluster_.device().maxConcurrentThreads(),
            static_cast<std::uint64_t>(options_.scatter.blockDim) *
                options_.scatter.gridDim));
    }

    /** Cost-model time of one bucket-sum launch's EC work. */
    double
    bucketSumNs(const gpusim::KernelStats &ec) const
    {
        const auto &m = cluster_.model();
        return m.ecThroughputNs(curve_profile_, eff_kernel_,
                                gpusim::EcOp::Pacc, ec.paccOps) +
               m.ecThroughputNs(curve_profile_, eff_kernel_,
                                gpusim::EcOp::Padd, ec.paddOps) +
               m.ecThroughputNs(curve_profile_, eff_kernel_,
                                gpusim::EcOp::Pdbl, ec.pdblOps) +
               m.ecThroughputNs(curve_profile_, eff_kernel_,
                                gpusim::EcOp::AffineAdd,
                                ec.affineAddOps);
    }

    /**
     * Modular multiplications the measured EC work retired, in the
     * cost model's per-op units — the denomination of the
     * per-backend attribution metrics.
     */
    double
    kernelModmuls(const gpusim::KernelStats &ec) const
    {
        const bool az = curve_profile_.aIsZero;
        return static_cast<double>(ec.paccOps) *
                   gpusim::ecOpModmuls(eff_kernel_,
                                       gpusim::EcOp::Pacc, az) +
               static_cast<double>(ec.paddOps) *
                   gpusim::ecOpModmuls(eff_kernel_,
                                       gpusim::EcOp::Padd, az) +
               static_cast<double>(ec.pdblOps) *
                   gpusim::ecOpModmuls(eff_kernel_,
                                       gpusim::EcOp::Pdbl, az) +
               static_cast<double>(ec.affineAddOps) *
                   gpusim::ecOpModmuls(eff_kernel_,
                                       gpusim::EcOp::AffineAdd, az);
    }

    /**
     * Flat per-backend attribution for one compute(): which backend
     * the run's kernel modmuls belong to, derived deterministically
     * from the merged KernelStats (identical at every hostThreads).
     */
    void
    emitFieldBackendMetrics(support::TraceRecorder &trace,
                            const gpusim::KernelStats &stats) const
    {
        auto &metrics = trace.metrics();
        const bool tc = plan_.fieldBackend ==
                        gpusim::FieldBackend::TensorCore;
        metrics.set("engine/field_backend",
                    static_cast<double>(
                        static_cast<int>(plan_.fieldBackend)));
        metrics.set("engine/field_backend_auto",
                    plan_.fieldBackendAuto ? 1.0 : 0.0);
        const double modmuls = kernelModmuls(stats);
        metrics.add(tc ? "engine/field_backend_tc_modmuls"
                       : "engine/field_backend_cuda_modmuls",
                    modmuls);
        // The differential tcmul execution only runs on a forced
        // TensorCore; an Auto-resolved TC prices the offload but
        // executes CIOS (bit-identical), so the flag is separate.
        metrics.set("engine/field_backend_tc_executed",
                    tc_exec_ ? 1.0 : 0.0);
    }

    void
    labelEngineLanes(support::TraceRecorder &trace) const
    {
        namespace lane = support::tracelane;
        // Suffix the compute lane with the resolved backend so a
        // trace viewer shows per-backend lanes without a metric
        // lookup.
        const std::string compute_label =
            std::string("windows [") +
            gpusim::fieldBackendName(plan_.fieldBackend) + "]";
        for (int d = 0; d < cluster_.numGpus(); ++d) {
            trace.labelProcess(lane::engineDevicePid(d),
                               "engine gpu" + std::to_string(d));
            trace.labelThread(lane::engineDevicePid(d),
                              lane::kComputeTid, compute_label);
        }
        trace.labelProcess(lane::kEngineHostPid, "engine host");
        trace.labelThread(lane::kEngineHostPid, lane::kComputeTid,
                          "reduce");
    }

    /** Engine-host track carrying table-build / cache-hit events. */
    static constexpr int kPrecomputeTid = 2;
    /** Engine-host track carrying fault injection/detection events. */
    static constexpr int kFaultTid = 3;
    /**
     * Quarantine probes draw transfer indices from here upward — far
     * above any real transfer counter, so a probe can never collide
     * with a corrupt:xfer=N clause aimed at the compute path.
     */
    static constexpr std::uint64_t kProbeXferBase = 1ull << 62;

    std::vector<AffinePoint<Curve>> points_;
    // The planning state below is mutable: a health-generation
    // change re-plans from inside the const tryCompute (see
    // replanForHealth). Engines with a tracker attached must not
    // run concurrent tryCompute calls; without one, nothing here
    // ever changes after construction.
    /** phi(P_i) images when the plan enabled GLV (else empty). */
    mutable std::vector<AffinePoint<Curve>> phi_points_;
    gpusim::Cluster cluster_;
    mutable MsmOptions options_;
    gpusim::CurveProfile curve_profile_;
    mutable MsmPlan plan_;
    /**
     * options_.kernel with the plan's resolved field backend applied
     * (gpusim::applyFieldBackend) — the variant every cost-model
     * query in the engine prices against.
     */
    mutable gpusim::EcKernelVariant eff_kernel_;
    /** Forced-TensorCore runs execute the tcmul differential path. */
    bool tc_exec_ = false;
    /** Shared precompute table (plan_.precompute; else null). */
    mutable std::shared_ptr<const PrecomputeTable<Curve>> table_;
    mutable bool table_cache_hit_ = false;
    /**
     * The caller's requested planner mode, captured before the
     * constructor folded an autoplan result into options_ — the mode
     * replanForHealth re-searches with after a quarantine shrinks
     * the fleet.
     */
    PlannerMode original_planner_ = PlannerMode::Heuristic;
    /** Health generation plan_ was computed against. */
    mutable std::uint64_t planned_generation_ = 0;
    /**
     * Calibrated fault-free per-window GPU time (ns): the watchdog
     * deadline base. Zero when neither a tracker nor straggler
     * clauses are present.
     */
    mutable double window_estimate_ns_ = 0.0;
    /** Monotone probe ordinal (offsets kProbeXferBase). */
    mutable std::uint64_t probe_counter_ = 0;
    /** Orders trace labels of successive compute() calls. */
    mutable std::atomic<std::uint64_t> msm_counter_{0};
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_ENGINE_H
