/**
 * @file
 * Stateful MSM engine.
 *
 * In zkSNARK proving the point vector is fixed by the trusted setup
 * while the scalars change per proof (paper Section 2.2). MsmEngine
 * captures that usage: construct it once with the points, the
 * cluster and the options — it plans the execution and obtains the
 * fixed-base precomputation tables (built, or reused from the
 * process-wide BaseTableCache when another engine already built them
 * for the same bases and geometry) — then call compute() per scalar
 * vector. computeDistMsm() in distmsm.h is the one-shot convenience
 * wrapper.
 *
 * Execution shapes
 * ----------------
 * Without precompute, each window scatters and sums its own bucket
 * set and the window points merge through the serial Horner
 * recurrence (s doublings per window). With precompute
 * (plan.precompute), the table rows 2^(js) P_i realign every
 * window's digit into ONE shared bucket set: a single combined
 * scatter over numWindows * n elements, a single bucket-sum pass
 * across all devices, and a single bucket-reduce — no per-window
 * passes and no final doubling chain.
 */

#ifndef DISTMSM_MSM_ENGINE_H
#define DISTMSM_MSM_ENGINE_H

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/msm/batch_affine.h"
#include "src/msm/bucket_reduce.h"
#include "src/msm/glv.h"
#include "src/msm/planner.h"
#include "src/msm/precompute.h"
#include "src/msm/scatter.h"
#include "src/msm/signed_digits.h"
#include "src/support/check.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace distmsm::msm {

/** Output of a functional DistMSM run. */
template <typename Curve>
struct MsmResult
{
    XYZZPoint<Curve> value;
    MsmPlan plan;
    /** Aggregated simulator statistics across all GPUs/windows. */
    gpusim::KernelStats stats;
    /** EC additions executed by the host (reduce steps). */
    std::uint64_t hostOps = 0;
};

/**
 * Sum one bucket with @p threads_per_bucket cooperating threads:
 * independent partial chains followed by a pairwise tree reduction
 * (Section 3.2.2). @p point_of maps a scattered id to the (possibly
 * negated or precomputed) affine point it contributes.
 */
template <typename Curve, typename PointOf>
XYZZPoint<Curve>
bucketSumTree(const std::vector<std::uint32_t> &ids,
              PointOf &&point_of, int threads_per_bucket,
              gpusim::KernelStats &stats)
{
    using Xyzz = XYZZPoint<Curve>;
    const std::size_t m = ids.size();
    const int t = threads_per_bucket;
    std::vector<Xyzz> partials;
    partials.reserve(t);
    for (int lane = 0; lane < t; ++lane) {
        Xyzz acc = Xyzz::identity();
        for (std::size_t i = lane; i < m;
             i += static_cast<std::size_t>(t)) {
            acc = pacc(acc, point_of(ids[i]));
            ++stats.paccOps;
        }
        partials.push_back(acc);
    }
    // Pairwise tree reduction: log2(t) SIMD steps.
    while (partials.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(padd(partials[i], partials[i + 1]));
            ++stats.paddOps;
        }
        if (partials.size() % 2 == 1)
            next.push_back(partials.back());
        partials = std::move(next);
    }
    return partials.front();
}

/** Reusable MSM executor over a fixed point vector. */
template <typename Curve>
class MsmEngine
{
  public:
    using Scalar = BigInt<Curve::Fr::kLimbs>;

    MsmEngine(std::vector<AffinePoint<Curve>> points,
              const gpusim::Cluster &cluster,
              const MsmOptions &options = MsmOptions{})
        : points_(std::move(points)), cluster_(cluster),
          options_(options)
    {
        // The engine-level knob governs every layer below it: the
        // scatter kernels inherit the same host-thread budget.
        options_.scatter.hostThreads = options_.hostThreads;
        // DISTMSM_TRACE=path.json turns tracing on without touching
        // call sites; an explicit MsmOptions::trace wins.
        if (options_.trace == nullptr)
            options_.trace = support::globalTraceFromEnv();
        curve_profile_ = gpusim::CurveProfile{
            Curve::kName, Curve::Fq::Params::kBits,
            Curve::kScalarBits, Curve::kAIsZero,
            glv::CurveGlv<Curve>::kSupported ? glv::kHalfScalarBits
                                             : 0};
        plan_ = planMsm(curve_profile_, points_.size(), cluster_,
                        options_);
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        if (plan_.glv) {
            // The endomorphism images phi(P_i) = (beta * x_i, y_i)
            // are scalar-independent: staged once, like the points.
            phi_points_.resize(points_.size());
            support::ThreadPool::global().parallelFor(
                0, points_.size(),
                [&](std::size_t i) {
                    phi_points_[i] =
                        glv::endomorphismIfSupported<Curve>(
                            points_[i]);
                },
                host_threads);
        }
        // plan_.precompute, not options_.precompute: the planner may
        // have declined (device memory budget) or grown the window.
        if (plan_.precompute)
            acquireTable(host_threads);
    }

    const MsmPlan &plan() const { return plan_; }
    std::size_t numPoints() const { return points_.size(); }
    /** The precompute table came from the cross-proof cache. */
    bool tableCacheHit() const { return table_cache_hit_; }

    /**
     * Run one MSM against the staged points.
     *
     * Host parallelism (options.hostThreads): the signed-digit
     * decomposition, the windows, the per-device bucket groups of a
     * window and the simulated scatter blocks all run concurrently
     * on the support::ThreadPool. Every parallel unit writes only
     * its own slot and the slots are merged in the exact order of
     * the sequential algorithm (windows high-to-low, buckets
     * ascending, devices ascending), so the returned point, the
     * KernelStats and hostOps are bit-identical for every thread
     * count — hostThreads == 1 is the legacy serial execution.
     */
    MsmResult<Curve>
    compute(const std::vector<Scalar> &scalars) const
    {
        DISTMSM_REQUIRE(scalars.size() == points_.size(),
                        "points/scalars size mismatch");
        using Xyzz = XYZZPoint<Curve>;
        MsmResult<Curve> result;
        result.plan = plan_;
        const unsigned s = plan_.windowBits;
        const std::size_t n_buckets =
            options_.signedDigits
                ? (std::size_t{1} << (s - 1)) + 1
                : std::size_t{1} << s;
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        auto &pool = support::ThreadPool::global();
        const std::size_t n_base = points_.size();

        // GLV: rewrite the n full-width scalars as 2n half-width
        // magnitudes with per-half sign flags; half i drives P_i,
        // half n + i drives phi(P_i). Scalar i only writes its own
        // two slots.
        std::vector<Scalar> half_scalars;
        std::vector<std::uint8_t> glv_neg;
        if constexpr (glv::CurveGlv<Curve>::kSupported) {
            if (plan_.glv) {
                half_scalars.resize(2 * n_base);
                glv_neg.assign(2 * n_base, 0);
                pool.parallelFor(
                    0, n_base,
                    [&](std::size_t i) {
                        const auto split =
                            glv::decompose<Curve>(scalars[i]);
                        half_scalars[i] = split.k1;
                        half_scalars[n_base + i] = split.k2;
                        glv_neg[i] = split.neg1;
                        glv_neg[n_base + i] = split.neg2;
                    },
                    host_threads);
            }
        }
        const std::vector<Scalar> &eff_scalars =
            plan_.glv ? half_scalars : scalars;
        const std::size_t n_eff = eff_scalars.size();

        // Signed-digit decomposition up front; scalar i only writes
        // digits[i]. The window passes cover plan_.scalarBits — the
        // GLV half width when active.
        std::vector<std::vector<std::int32_t>> digits;
        if (options_.signedDigits) {
            digits.resize(n_eff);
            pool.parallelFor(
                0, n_eff,
                [&](std::size_t i) {
                    digits[i] = signedWindowDigits(
                        eff_scalars[i], plan_.scalarBits, s);
                },
                host_threads);
        }

        // Digit of window w for effective scalar i, as (magnitude,
        // negate) against the bucket array.
        auto digit_of = [&](unsigned w, std::size_t i,
                            std::uint32_t &id, std::uint8_t &neg) {
            if (options_.signedDigits) {
                const std::int32_t d = digits[i][w];
                id = static_cast<std::uint32_t>(d < 0 ? -d : d);
                neg = d < 0;
            } else {
                id = static_cast<std::uint32_t>(
                    eff_scalars[i].bits(
                        static_cast<std::size_t>(w) * s, s));
                neg = 0;
            }
            // A negative half-scalar flips its contribution;
            // composes with the signed-digit flip.
            if (plan_.glv)
                neg ^= glv_neg[i];
        };

        const std::uint64_t msm_idx =
            options_.trace != nullptr
                ? msm_counter_.fetch_add(1,
                                         std::memory_order_relaxed)
                : 0;
        const std::string trace_prefix =
            "msm" + std::to_string(msm_idx) + "/";

        if (plan_.precompute) {
            computeCombined(result, n_eff, n_buckets, digit_of,
                            trace_prefix, host_threads);
            return result;
        }

        auto window_ids = [&](unsigned w,
                              std::vector<std::uint32_t> &ids,
                              std::vector<std::uint8_t> &negs) {
            ids.resize(n_eff);
            negs.assign(n_eff, 0);
            for (std::size_t i = 0; i < n_eff; ++i)
                digit_of(w, i, ids[i], negs[i]);
        };

        // Scatter + bucket sums of one window, fully independent of
        // every other window. Bucket groups map to the simulated
        // devices of the bucket-split distribution (Section 3.2.2)
        // and run as one task per device.
        struct WindowPartial
        {
            bool scatterOk = false;
            gpusim::KernelStats scatterStats;
            gpusim::KernelStats ecStats;
            std::vector<Xyzz> bucketSums;
            Xyzz windowPoint = Xyzz::identity();
            ReduceStats reduceStats;
        };

        auto run_window = [&](unsigned w, WindowPartial &wp) {
            std::vector<std::uint32_t> ids;
            std::vector<std::uint8_t> negs;
            window_ids(w, ids, negs);

            ScatterConfig scatter_cfg = options_.scatter;
            if (options_.trace != nullptr) {
                // One kernel-launch lane per window: the launch span
                // (emitted by ~KernelLaunch) carries the measured
                // contention of exactly this window's scatter.
                scatter_cfg.trace = options_.trace;
                scatter_cfg.traceLabel = trace_prefix + "w" +
                                         std::to_string(w) +
                                         "/scatter";
                scatter_cfg.traceLane = static_cast<int>(w);
            }
            ScatterResult scattered =
                options_.hierarchicalScatter
                    ? hierarchicalScatter(ids, s, scatter_cfg)
                    : naiveScatter(ids, s, scatter_cfg);
            wp.scatterOk = scattered.ok;
            if (!scattered.ok)
                return;
            wp.scatterStats = scattered.stats;

            auto point_of = [&](std::uint32_t idx) {
                const auto &base =
                    idx < n_base ? points_[idx]
                                 : phi_points_[idx - n_base];
                return negs[idx] ? base.negated() : base;
            };

            wp.bucketSums.assign(n_buckets, Xyzz::identity());
            const int groups = plan_.bucketsSplitAcrossGpus
                                   ? plan_.gpusPerWindow
                                   : 1;
            std::vector<gpusim::KernelStats> group_stats(groups);
            cluster_.forEachDevice(
                groups,
                [&](int g) {
                    const std::size_t lo =
                        1 + (n_buckets - 1) * g / groups;
                    const std::size_t hi =
                        1 + (n_buckets - 1) * (g + 1) / groups;
                    if (options_.batchAffine) {
                        BatchAffineScratch<Curve> scratch;
                        batchAffineAccumulate<Curve>(
                            scattered.buckets, lo, hi, point_of,
                            wp.bucketSums, group_stats[g], scratch);
                        return;
                    }
                    for (std::size_t b = lo;
                         b < hi && b < scattered.buckets.size();
                         ++b) {
                        if (scattered.buckets[b].empty())
                            continue;
                        wp.bucketSums[b] = bucketSumTree<Curve>(
                            scattered.buckets[b], point_of,
                            plan_.threadsPerBucket, group_stats[g]);
                    }
                },
                options_.hostThreads);
            // The bucket groups are one launch running on
            // plan_.gpusPerWindow devices in lockstep: work counts
            // sum, the shared phase structure does not (see
            // KernelStats::mergeLockstep; pinned by the 1-vs-4
            // device stats test).
            for (const auto &gs : group_stats)
                wp.ecStats.mergeLockstep(gs);

            wp.windowPoint = bucketReduceSerial<Curve>(
                wp.bucketSums, &wp.reduceStats);
            wp.bucketSums.clear();
            wp.bucketSums.shrink_to_fit();
        };

        // Tracing: the serial merge loop below visits windows in a
        // fixed order regardless of hostThreads, so the measured
        // stats are mapped onto simulated time (via the cost model)
        // and emitted from here — the spans are deterministic even
        // though the windows executed concurrently. Each window
        // lands on the device lane of the round-robin distribution.
        support::TraceRecorder *const trace = options_.trace;
        std::vector<double> dev_cursor;
        double host_cursor = 0.0;
        const auto &cost_model = cluster_.model();
        const int scatter_threads = scatterThreads();
        if (trace != nullptr) {
            namespace lane = support::tracelane;
            dev_cursor.assign(
                static_cast<std::size_t>(cluster_.numGpus()), 0.0);
            labelEngineLanes(*trace);
        }
        auto emit_window = [&](unsigned w, const WindowPartial &wp) {
            namespace lane = support::tracelane;
            const int d =
                static_cast<int>(w) % cluster_.numGpus();
            const int pid = lane::engineDevicePid(d);
            const double scatter_ns =
                cost_model.scatterComputeNs(n_eff,
                                            scatter_threads) +
                cost_model.atomicNs(wp.scatterStats,
                                    scatter_threads) +
                cost_model.gmemNs(wp.scatterStats.gmemBytes);
            const double sum_ns = bucketSumNs(wp.ecStats);
            const std::string wl =
                trace_prefix + "w" + std::to_string(w) + "/";
            support::TraceArgs scatter_args;
            scatter_args
                .arg("global_atomics",
                     static_cast<double>(
                         wp.scatterStats.globalAtomics))
                .arg("global_conflict_weight",
                     static_cast<double>(
                         wp.scatterStats.globalConflictWeight))
                .arg("global_max_conflict",
                     static_cast<double>(
                         wp.scatterStats.globalMaxConflict));
            trace->span(wl + "scatter", "phase", pid,
                        lane::kComputeTid, dev_cursor[d],
                        scatter_ns, std::move(scatter_args));
            trace->span(wl + "bucket-sum", "phase", pid,
                        lane::kComputeTid,
                        dev_cursor[d] + scatter_ns, sum_ns);
            dev_cursor[d] += scatter_ns + sum_ns;
            const double reduce_ns = cost_model.hostEcNs(
                curve_profile_,
                wp.reduceStats.padds + wp.reduceStats.pdbls,
                cluster_.host());
            if (reduce_ns > 0.0) {
                trace->span(wl + "bucket-reduce", "phase",
                            lane::kEngineHostPid, lane::kComputeTid,
                            host_cursor, reduce_ns);
                host_cursor += reduce_ns;
            }
            auto &metrics = trace->metrics();
            const std::string mp = "engine/" + trace_prefix + "dev" +
                                   std::to_string(d) + "/w" +
                                   std::to_string(w) + "/";
            wp.scatterStats.recordMetrics(metrics, mp + "scatter/");
            wp.ecStats.recordMetrics(metrics, mp + "ec/");
            metrics.add(mp + "scatter_ns", scatter_ns);
            metrics.add(mp + "bucket_sum_ns", sum_ns);
            metrics.add(mp + "bucket_reduce_ns", reduce_ns);
        };

        Xyzz total = Xyzz::identity();

        // Windows execute concurrently in descending stripes (the
        // stripe bounds live per-window state), then merge strictly
        // high-to-low exactly like the serial Horner recurrence.
        const unsigned stripe = static_cast<unsigned>(std::max(
            1, std::min<int>(static_cast<int>(plan_.numWindows),
                             4 * host_threads)));
        for (unsigned win_hi = plan_.numWindows; win_hi > 0;) {
            const unsigned win_lo =
                win_hi > stripe ? win_hi - stripe : 0;
            std::vector<WindowPartial> partials(win_hi - win_lo);
            pool.parallelFor(
                win_lo, win_hi,
                [&](std::size_t w) {
                    run_window(static_cast<unsigned>(w),
                               partials[w - win_lo]);
                },
                host_threads);

            for (unsigned w = win_hi; w-- > win_lo;) {
                WindowPartial &wp = partials[w - win_lo];
                DISTMSM_REQUIRE(wp.scatterOk,
                                "scatter kernel cannot run at this "
                                "window size; use naive scatter");
                result.stats.merge(wp.scatterStats);
                result.stats.merge(wp.ecStats);
                if (trace != nullptr)
                    emit_window(w, wp);

                if (!total.isIdentity()) {
                    for (unsigned b = 0; b < s; ++b) {
                        total = pdbl(total);
                        ++result.hostOps;
                    }
                }
                total = padd(total, wp.windowPoint);
                result.hostOps += wp.reduceStats.padds + 1;
            }
            win_hi = win_lo;
        }

        result.value = total;
        return result;
    }

  private:
    /**
     * Obtain the precompute table: a BaseTableCache lookup keyed by
     * the base fingerprint and the plan geometry, building on a
     * miss. A proving loop constructing one engine per proof against
     * the same proving key pays the build once.
     */
    void
    acquireTable(int host_threads)
    {
        TableCacheKey key;
        // The phi images are derived deterministically from the
        // points, so fingerprinting the points alone identifies the
        // GLV-folded table too (glv is part of the key).
        key.fingerprint = fingerprintBases<Curve>(points_);
        key.numBases = points_.size();
        key.windowBits = plan_.windowBits;
        key.numWindows = plan_.numWindows;
        key.glv = plan_.glv;
        table_ = BaseTableCache<Curve>::global().findOrBuild(
            key,
            [&] {
                std::vector<AffinePoint<Curve>> bases = points_;
                bases.insert(bases.end(), phi_points_.begin(),
                             phi_points_.end());
                return buildPrecomputeTable<Curve>(
                    bases, plan_.numWindows, plan_.windowBits,
                    plan_.glv, host_threads);
            },
            &table_cache_hit_);

        support::TraceRecorder *const trace = options_.trace;
        if (trace == nullptr)
            return;
        namespace lane = support::tracelane;
        auto &metrics = trace->metrics();
        metrics.add("engine/precompute/cache_hits",
                    table_cache_hit_ ? 1.0 : 0.0);
        metrics.add("engine/precompute/cache_misses",
                    table_cache_hit_ ? 0.0 : 1.0);
        metrics.set("engine/precompute/table_bytes",
                    static_cast<double>(table_->bytes));
        trace->labelProcess(lane::kEngineHostPid, "engine host");
        trace->labelThread(lane::kEngineHostPid, kPrecomputeTid,
                           "precompute");
        support::TraceArgs args;
        args.arg("table_bytes",
                 static_cast<double>(table_->bytes))
            .arg("rows", static_cast<double>(plan_.numWindows))
            .arg("bases", static_cast<double>(key.numBases));
        if (table_cache_hit_) {
            // Cached-hit lane: the amortized path is an instant, not
            // a span — no simulated time is spent.
            trace->instant("precompute/table-cache-hit", "phase",
                           lane::kEngineHostPid, kPrecomputeTid, 0.0,
                           std::move(args));
        } else {
            // Priced from the op count (deterministic), never wall
            // clock: (W-1) * s doublings per base at GPU throughput.
            const double build_ns = cluster_.model().ecThroughputNs(
                curve_profile_, options_.kernel, gpusim::EcOp::Pdbl,
                table_->buildPdbls);
            trace->span("precompute/table-build", "phase",
                        lane::kEngineHostPid, kPrecomputeTid, 0.0,
                        build_ns, std::move(args));
        }
    }

    /**
     * The combined precompute execution (plan_.precompute): one
     * scatter over numWindows * n_eff table-indexed elements, one
     * bucket-sum pass with every device taking a bucket slice, one
     * serial bucket-reduce. Digit (w, i) addresses table row w at
     * index i, so all windows share the single bucket array and the
     * inter-window doubling chain never happens.
     */
    template <typename DigitOf>
    void
    computeCombined(MsmResult<Curve> &result, std::size_t n_eff,
                    std::size_t n_buckets, DigitOf &&digit_of,
                    const std::string &trace_prefix,
                    int host_threads) const
    {
        using Xyzz = XYZZPoint<Curve>;
        auto &pool = support::ThreadPool::global();
        const unsigned s = plan_.windowBits;
        const unsigned n_windows = plan_.numWindows;
        const std::uint64_t total64 =
            static_cast<std::uint64_t>(n_windows) * n_eff;
        DISTMSM_REQUIRE(
            total64 <=
                std::numeric_limits<std::uint32_t>::max(),
            "combined precompute pass exceeds 32-bit element ids");
        const std::size_t total =
            static_cast<std::size_t>(total64);

        // Element e = w * n_eff + i contributes table row w of base
        // i to the bucket of digit (w, i). Each scalar writes only
        // its own numWindows slots.
        std::vector<std::uint32_t> ids(total);
        std::vector<std::uint8_t> negs(total);
        pool.parallelFor(
            0, n_eff,
            [&](std::size_t i) {
                for (unsigned w = 0; w < n_windows; ++w) {
                    const std::size_t e =
                        static_cast<std::size_t>(w) * n_eff + i;
                    digit_of(w, i, ids[e], negs[e]);
                }
            },
            host_threads);

        ScatterConfig scatter_cfg = options_.scatter;
        if (options_.trace != nullptr) {
            scatter_cfg.trace = options_.trace;
            scatter_cfg.traceLabel =
                trace_prefix + "combined/scatter";
            scatter_cfg.traceLane = 0;
        }
        ScatterResult scattered =
            options_.hierarchicalScatter
                ? hierarchicalScatter(ids, s, scatter_cfg)
                : naiveScatter(ids, s, scatter_cfg);
        DISTMSM_REQUIRE(scattered.ok,
                        "scatter kernel cannot run at this window "
                        "size; use naive scatter");
        result.stats.merge(scattered.stats);

        auto point_of = [&](std::uint32_t idx) {
            const std::size_t w = idx / n_eff;
            const std::size_t i = idx % n_eff;
            const auto &base = table_->rows[w][i];
            return negs[idx] ? base.negated() : base;
        };

        // One bucket-sum launch over the whole cluster: every device
        // owns a contiguous slice of the single bucket array.
        std::vector<Xyzz> bucket_sums(n_buckets, Xyzz::identity());
        const int groups = cluster_.numGpus();
        std::vector<gpusim::KernelStats> group_stats(groups);
        cluster_.forEachDevice(
            groups,
            [&](int g) {
                const std::size_t lo =
                    1 + (n_buckets - 1) * g / groups;
                const std::size_t hi =
                    1 + (n_buckets - 1) * (g + 1) / groups;
                if (options_.batchAffine) {
                    BatchAffineScratch<Curve> scratch;
                    batchAffineAccumulate<Curve>(
                        scattered.buckets, lo, hi, point_of,
                        bucket_sums, group_stats[g], scratch);
                    return;
                }
                for (std::size_t b = lo;
                     b < hi && b < scattered.buckets.size(); ++b) {
                    if (scattered.buckets[b].empty())
                        continue;
                    bucket_sums[b] = bucketSumTree<Curve>(
                        scattered.buckets[b], point_of,
                        plan_.threadsPerBucket, group_stats[g]);
                }
            },
            options_.hostThreads);
        gpusim::KernelStats ec_stats;
        for (const auto &gs : group_stats)
            ec_stats.mergeLockstep(gs);
        result.stats.merge(ec_stats);

        ReduceStats reduce_stats;
        result.value =
            bucketReduceSerial<Curve>(bucket_sums, &reduce_stats);
        result.hostOps +=
            reduce_stats.padds + reduce_stats.pdbls;

        support::TraceRecorder *const trace = options_.trace;
        if (trace == nullptr)
            return;
        namespace lane = support::tracelane;
        labelEngineLanes(*trace);
        const auto &cost_model = cluster_.model();
        const int scatter_threads = scatterThreads();
        const double scatter_ns =
            cost_model.scatterComputeNs(total, scatter_threads) +
            cost_model.atomicNs(scattered.stats, scatter_threads) +
            cost_model.gmemNs(scattered.stats.gmemBytes);
        const std::string cl = trace_prefix + "combined/";
        support::TraceArgs scatter_args;
        scatter_args
            .arg("elements", static_cast<double>(total))
            .arg("global_atomics",
                 static_cast<double>(
                     scattered.stats.globalAtomics));
        // The combined scatter is one bulk-synchronous kernel across
        // the cluster; its span sits on device 0's lane, the bucket
        // sums start after it on every device.
        trace->span(cl + "scatter", "phase",
                    lane::engineDevicePid(0), lane::kComputeTid, 0.0,
                    scatter_ns, std::move(scatter_args));
        auto &metrics = trace->metrics();
        for (int g = 0; g < groups; ++g) {
            const double sum_ns = bucketSumNs(group_stats[g]);
            trace->span(cl + "bucket-sum", "phase",
                        lane::engineDevicePid(g), lane::kComputeTid,
                        scatter_ns, sum_ns);
            const std::string mp = "engine/" + trace_prefix + "dev" +
                                   std::to_string(g) + "/combined/";
            group_stats[g].recordMetrics(metrics, mp + "ec/");
            metrics.add(mp + "bucket_sum_ns", sum_ns);
        }
        const double reduce_ns = cost_model.hostEcNs(
            curve_profile_,
            reduce_stats.padds + reduce_stats.pdbls,
            cluster_.host());
        trace->span(cl + "bucket-reduce", "phase",
                    lane::kEngineHostPid, lane::kComputeTid, 0.0,
                    reduce_ns);
        const std::string mp0 =
            "engine/" + trace_prefix + "dev0/combined/";
        scattered.stats.recordMetrics(metrics, mp0 + "scatter/");
        metrics.add(mp0 + "scatter_ns", scatter_ns);
        metrics.add("engine/" + trace_prefix +
                        "combined/bucket_reduce_ns",
                    reduce_ns);
    }

    /** Simulated threads executing one scatter launch. */
    int
    scatterThreads() const
    {
        return static_cast<int>(std::min<std::uint64_t>(
            cluster_.device().maxConcurrentThreads(),
            static_cast<std::uint64_t>(options_.scatter.blockDim) *
                options_.scatter.gridDim));
    }

    /** Cost-model time of one bucket-sum launch's EC work. */
    double
    bucketSumNs(const gpusim::KernelStats &ec) const
    {
        const auto &m = cluster_.model();
        return m.ecThroughputNs(curve_profile_, options_.kernel,
                                gpusim::EcOp::Pacc, ec.paccOps) +
               m.ecThroughputNs(curve_profile_, options_.kernel,
                                gpusim::EcOp::Padd, ec.paddOps) +
               m.ecThroughputNs(curve_profile_, options_.kernel,
                                gpusim::EcOp::Pdbl, ec.pdblOps) +
               m.ecThroughputNs(curve_profile_, options_.kernel,
                                gpusim::EcOp::AffineAdd,
                                ec.affineAddOps);
    }

    void
    labelEngineLanes(support::TraceRecorder &trace) const
    {
        namespace lane = support::tracelane;
        for (int d = 0; d < cluster_.numGpus(); ++d) {
            trace.labelProcess(lane::engineDevicePid(d),
                               "engine gpu" + std::to_string(d));
            trace.labelThread(lane::engineDevicePid(d),
                              lane::kComputeTid, "windows");
        }
        trace.labelProcess(lane::kEngineHostPid, "engine host");
        trace.labelThread(lane::kEngineHostPid, lane::kComputeTid,
                          "reduce");
    }

    /** Engine-host track carrying table-build / cache-hit events. */
    static constexpr int kPrecomputeTid = 2;

    std::vector<AffinePoint<Curve>> points_;
    /** phi(P_i) images when the plan enabled GLV (else empty). */
    std::vector<AffinePoint<Curve>> phi_points_;
    gpusim::Cluster cluster_;
    MsmOptions options_;
    gpusim::CurveProfile curve_profile_;
    MsmPlan plan_;
    /** Shared precompute table (plan_.precompute; else null). */
    std::shared_ptr<const PrecomputeTable<Curve>> table_;
    bool table_cache_hit_ = false;
    /** Orders trace labels of successive compute() calls. */
    mutable std::atomic<std::uint64_t> msm_counter_{0};
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_ENGINE_H
