/**
 * @file
 * Stateful MSM engine.
 *
 * In zkSNARK proving the point vector is fixed by the trusted setup
 * while the scalars change per proof (paper Section 2.2). MsmEngine
 * captures that usage: construct it once with the points, the
 * cluster and the options — it plans the execution and builds the
 * precomputation tables — then call compute() per scalar vector.
 * computeDistMsm() in distmsm.h is the one-shot convenience wrapper.
 */

#ifndef DISTMSM_MSM_ENGINE_H
#define DISTMSM_MSM_ENGINE_H

#include <vector>

#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/msm/bucket_reduce.h"
#include "src/msm/planner.h"
#include "src/msm/scatter.h"
#include "src/msm/signed_digits.h"
#include "src/support/check.h"

namespace distmsm::msm {

/** Output of a functional DistMSM run. */
template <typename Curve>
struct MsmResult
{
    XYZZPoint<Curve> value;
    MsmPlan plan;
    /** Aggregated simulator statistics across all GPUs/windows. */
    gpusim::KernelStats stats;
    /** EC additions executed by the host (reduce steps). */
    std::uint64_t hostOps = 0;
};

/**
 * Sum one bucket with @p threads_per_bucket cooperating threads:
 * independent partial chains followed by a pairwise tree reduction
 * (Section 3.2.2). @p point_of maps a scattered id to the (possibly
 * negated or precomputed) affine point it contributes.
 */
template <typename Curve, typename PointOf>
XYZZPoint<Curve>
bucketSumTree(const std::vector<std::uint32_t> &ids,
              PointOf &&point_of, int threads_per_bucket,
              gpusim::KernelStats &stats)
{
    using Xyzz = XYZZPoint<Curve>;
    const std::size_t m = ids.size();
    const int t = threads_per_bucket;
    std::vector<Xyzz> partials;
    partials.reserve(t);
    for (int lane = 0; lane < t; ++lane) {
        Xyzz acc = Xyzz::identity();
        for (std::size_t i = lane; i < m;
             i += static_cast<std::size_t>(t)) {
            acc = pacc(acc, point_of(ids[i]));
            ++stats.paccOps;
        }
        partials.push_back(acc);
    }
    // Pairwise tree reduction: log2(t) SIMD steps.
    while (partials.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(padd(partials[i], partials[i + 1]));
            ++stats.paddOps;
        }
        if (partials.size() % 2 == 1)
            next.push_back(partials.back());
        partials = std::move(next);
    }
    return partials.front();
}

namespace detail {

/** Batch-normalize XYZZ points to affine form. */
template <typename Curve>
std::vector<AffinePoint<Curve>>
toAffineBatch(const std::vector<XYZZPoint<Curve>> &points)
{
    using Fq = typename Curve::Fq;
    std::vector<Fq> denoms;
    denoms.reserve(2 * points.size());
    for (const auto &p : points) {
        denoms.push_back(p.isIdentity() ? Fq::one() : p.zz);
        denoms.push_back(p.isIdentity() ? Fq::one() : p.zzz);
    }
    batchInverse(denoms);
    std::vector<AffinePoint<Curve>> out(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].isIdentity()) {
            out[i] = AffinePoint<Curve>::fromXY(
                points[i].x * denoms[2 * i],
                points[i].y * denoms[2 * i + 1]);
        }
    }
    return out;
}

/**
 * Precomputation table (Section 2.3.1): row j holds 2^(j*s) P_i for
 * every input point, so points of different windows sum directly.
 */
template <typename Curve>
std::vector<std::vector<AffinePoint<Curve>>>
precomputeWindowMultiples(
    const std::vector<AffinePoint<Curve>> &points, unsigned windows,
    unsigned window_bits)
{
    using Xyzz = XYZZPoint<Curve>;
    std::vector<std::vector<AffinePoint<Curve>>> table;
    table.reserve(windows);
    table.push_back(points);
    std::vector<Xyzz> current;
    current.reserve(points.size());
    for (const auto &p : points)
        current.push_back(Xyzz::fromAffine(p));
    for (unsigned j = 1; j < windows; ++j) {
        for (auto &p : current) {
            for (unsigned b = 0; b < window_bits; ++b)
                p = pdbl(p);
        }
        table.push_back(toAffineBatch<Curve>(current));
    }
    return table;
}

} // namespace detail

/** Reusable MSM executor over a fixed point vector. */
template <typename Curve>
class MsmEngine
{
  public:
    using Scalar = BigInt<Curve::Fr::kLimbs>;

    MsmEngine(std::vector<AffinePoint<Curve>> points,
              const gpusim::Cluster &cluster,
              const MsmOptions &options = MsmOptions{})
        : points_(std::move(points)), cluster_(cluster),
          options_(options)
    {
        const auto curve_profile = gpusim::CurveProfile{
            Curve::kName, Curve::Fq::Params::kBits,
            Curve::kScalarBits, Curve::kAIsZero};
        plan_ = planMsm(curve_profile, points_.size(), cluster_,
                        options_);
        if (options_.precompute) {
            table_ = detail::precomputeWindowMultiples<Curve>(
                points_, plan_.numWindows, plan_.windowBits);
        }
    }

    const MsmPlan &plan() const { return plan_; }
    std::size_t numPoints() const { return points_.size(); }

    /** Run one MSM against the staged points. */
    MsmResult<Curve>
    compute(const std::vector<Scalar> &scalars) const
    {
        DISTMSM_REQUIRE(scalars.size() == points_.size(),
                        "points/scalars size mismatch");
        using Xyzz = XYZZPoint<Curve>;
        MsmResult<Curve> result;
        result.plan = plan_;
        const unsigned s = plan_.windowBits;
        const std::size_t n_buckets =
            options_.signedDigits
                ? (std::size_t{1} << (s - 1)) + 1
                : std::size_t{1} << s;

        // Signed-digit decomposition up front.
        std::vector<std::vector<std::int32_t>> digits;
        if (options_.signedDigits) {
            digits.reserve(scalars.size());
            for (const auto &k : scalars) {
                digits.push_back(signedWindowDigits(
                    k, Curve::kScalarBits, s));
            }
        }

        auto window_ids = [&](unsigned w,
                              std::vector<std::uint32_t> &ids,
                              std::vector<std::uint8_t> &negs) {
            ids.resize(scalars.size());
            negs.assign(scalars.size(), 0);
            for (std::size_t i = 0; i < scalars.size(); ++i) {
                if (options_.signedDigits) {
                    const std::int32_t d = digits[i][w];
                    ids[i] =
                        static_cast<std::uint32_t>(d < 0 ? -d : d);
                    negs[i] = d < 0;
                } else {
                    ids[i] = static_cast<std::uint32_t>(
                        scalars[i].bits(
                            static_cast<std::size_t>(w) * s, s));
                }
            }
        };

        std::vector<Xyzz> merged(
            options_.precompute ? n_buckets : 0, Xyzz::identity());

        Xyzz total = Xyzz::identity();
        std::vector<std::uint32_t> ids;
        std::vector<std::uint8_t> negs;
        for (unsigned w = plan_.numWindows; w-- > 0;) {
            window_ids(w, ids, negs);

            ScatterResult scattered =
                options_.hierarchicalScatter
                    ? hierarchicalScatter(ids, s, options_.scatter)
                    : naiveScatter(ids, s, options_.scatter);
            DISTMSM_REQUIRE(scattered.ok,
                            "scatter kernel cannot run at this "
                            "window size; use naive scatter");
            result.stats.merge(scattered.stats);

            auto point_of = [&](std::uint32_t idx) {
                const auto &base = options_.precompute
                                       ? table_[w][idx]
                                       : points_[idx];
                return options_.signedDigits && negs[idx]
                           ? base.negated()
                           : base;
            };

            std::vector<Xyzz> bucket_sums(n_buckets,
                                          Xyzz::identity());
            const int groups = plan_.bucketsSplitAcrossGpus
                                   ? plan_.gpusPerWindow
                                   : 1;
            for (int g = 0; g < groups; ++g) {
                const std::size_t lo =
                    1 + (n_buckets - 1) * g / groups;
                const std::size_t hi =
                    1 + (n_buckets - 1) * (g + 1) / groups;
                for (std::size_t b = lo;
                     b < hi && b < scattered.buckets.size(); ++b) {
                    if (scattered.buckets[b].empty())
                        continue;
                    bucket_sums[b] = bucketSumTree<Curve>(
                        scattered.buckets[b], point_of,
                        plan_.threadsPerBucket, result.stats);
                }
            }

            if (options_.precompute) {
                for (std::size_t b = 1; b < n_buckets; ++b) {
                    if (bucket_sums[b].isIdentity())
                        continue;
                    merged[b] = padd(merged[b], bucket_sums[b]);
                    ++result.stats.paddOps;
                }
                continue;
            }

            if (!total.isIdentity()) {
                for (unsigned b = 0; b < s; ++b) {
                    total = pdbl(total);
                    ++result.hostOps;
                }
            }
            ReduceStats reduce_stats;
            total = padd(total, bucketReduceSerial<Curve>(
                                    bucket_sums, &reduce_stats));
            result.hostOps += reduce_stats.padds + 1;
        }

        if (options_.precompute) {
            ReduceStats reduce_stats;
            total = bucketReduceSerial<Curve>(merged, &reduce_stats);
            result.hostOps += reduce_stats.padds;
        }
        result.value = total;
        return result;
    }

  private:
    std::vector<AffinePoint<Curve>> points_;
    gpusim::Cluster cluster_;
    MsmOptions options_;
    MsmPlan plan_;
    std::vector<std::vector<AffinePoint<Curve>>> table_;
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_ENGINE_H
