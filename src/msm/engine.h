/**
 * @file
 * Stateful MSM engine.
 *
 * In zkSNARK proving the point vector is fixed by the trusted setup
 * while the scalars change per proof (paper Section 2.2). MsmEngine
 * captures that usage: construct it once with the points, the
 * cluster and the options — it plans the execution and builds the
 * precomputation tables — then call compute() per scalar vector.
 * computeDistMsm() in distmsm.h is the one-shot convenience wrapper.
 */

#ifndef DISTMSM_MSM_ENGINE_H
#define DISTMSM_MSM_ENGINE_H

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "src/ec/point.h"
#include "src/field/batch_inverse.h"
#include "src/msm/batch_affine.h"
#include "src/msm/bucket_reduce.h"
#include "src/msm/glv.h"
#include "src/msm/planner.h"
#include "src/msm/scatter.h"
#include "src/msm/signed_digits.h"
#include "src/support/check.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace distmsm::msm {

/** Output of a functional DistMSM run. */
template <typename Curve>
struct MsmResult
{
    XYZZPoint<Curve> value;
    MsmPlan plan;
    /** Aggregated simulator statistics across all GPUs/windows. */
    gpusim::KernelStats stats;
    /** EC additions executed by the host (reduce steps). */
    std::uint64_t hostOps = 0;
};

/**
 * Sum one bucket with @p threads_per_bucket cooperating threads:
 * independent partial chains followed by a pairwise tree reduction
 * (Section 3.2.2). @p point_of maps a scattered id to the (possibly
 * negated or precomputed) affine point it contributes.
 */
template <typename Curve, typename PointOf>
XYZZPoint<Curve>
bucketSumTree(const std::vector<std::uint32_t> &ids,
              PointOf &&point_of, int threads_per_bucket,
              gpusim::KernelStats &stats)
{
    using Xyzz = XYZZPoint<Curve>;
    const std::size_t m = ids.size();
    const int t = threads_per_bucket;
    std::vector<Xyzz> partials;
    partials.reserve(t);
    for (int lane = 0; lane < t; ++lane) {
        Xyzz acc = Xyzz::identity();
        for (std::size_t i = lane; i < m;
             i += static_cast<std::size_t>(t)) {
            acc = pacc(acc, point_of(ids[i]));
            ++stats.paccOps;
        }
        partials.push_back(acc);
    }
    // Pairwise tree reduction: log2(t) SIMD steps.
    while (partials.size() > 1) {
        std::vector<Xyzz> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(padd(partials[i], partials[i + 1]));
            ++stats.paddOps;
        }
        if (partials.size() % 2 == 1)
            next.push_back(partials.back());
        partials = std::move(next);
    }
    return partials.front();
}

namespace detail {

/**
 * Batch-normalize XYZZ points to affine form. Identity points have
 * zz == zzz == 0, which the zero-skipping batch inversion routes
 * around; the corresponding outputs stay the affine identity.
 */
template <typename Curve>
std::vector<AffinePoint<Curve>>
toAffineBatch(const std::vector<XYZZPoint<Curve>> &points)
{
    using Fq = typename Curve::Fq;
    std::vector<Fq> denoms;
    denoms.reserve(2 * points.size());
    for (const auto &p : points) {
        denoms.push_back(p.zz);
        denoms.push_back(p.zzz);
    }
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    batchInverseSkipZero(denoms, scratch, skipped);
    std::vector<AffinePoint<Curve>> out(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!skipped[2 * i]) {
            out[i] = AffinePoint<Curve>::fromXY(
                points[i].x * denoms[2 * i],
                points[i].y * denoms[2 * i + 1]);
        }
    }
    return out;
}

/**
 * Precomputation table (Section 2.3.1): row j holds 2^(j*s) P_i for
 * every input point, so points of different windows sum directly.
 * The per-point doubling chains are independent, so each table row
 * is built with @p host_threads cooperating threads; point i's chain
 * only ever touches slot i, so the table is bit-identical to the
 * sequential construction.
 */
template <typename Curve>
std::vector<std::vector<AffinePoint<Curve>>>
precomputeWindowMultiples(
    const std::vector<AffinePoint<Curve>> &points, unsigned windows,
    unsigned window_bits, int host_threads = 1)
{
    using Xyzz = XYZZPoint<Curve>;
    std::vector<std::vector<AffinePoint<Curve>>> table;
    table.reserve(windows);
    table.push_back(points);
    std::vector<Xyzz> current;
    current.reserve(points.size());
    for (const auto &p : points)
        current.push_back(Xyzz::fromAffine(p));
    for (unsigned j = 1; j < windows; ++j) {
        support::ThreadPool::global().parallelFor(
            0, current.size(),
            [&](std::size_t i) {
                for (unsigned b = 0; b < window_bits; ++b)
                    current[i] = pdbl(current[i]);
            },
            host_threads);
        table.push_back(toAffineBatch<Curve>(current));
    }
    return table;
}

} // namespace detail

/** Reusable MSM executor over a fixed point vector. */
template <typename Curve>
class MsmEngine
{
  public:
    using Scalar = BigInt<Curve::Fr::kLimbs>;

    MsmEngine(std::vector<AffinePoint<Curve>> points,
              const gpusim::Cluster &cluster,
              const MsmOptions &options = MsmOptions{})
        : points_(std::move(points)), cluster_(cluster),
          options_(options)
    {
        // The engine-level knob governs every layer below it: the
        // scatter kernels inherit the same host-thread budget.
        options_.scatter.hostThreads = options_.hostThreads;
        // DISTMSM_TRACE=path.json turns tracing on without touching
        // call sites; an explicit MsmOptions::trace wins.
        if (options_.trace == nullptr)
            options_.trace = support::globalTraceFromEnv();
        curve_profile_ = gpusim::CurveProfile{
            Curve::kName, Curve::Fq::Params::kBits,
            Curve::kScalarBits, Curve::kAIsZero,
            glv::CurveGlv<Curve>::kSupported ? glv::kHalfScalarBits
                                             : 0};
        plan_ = planMsm(curve_profile_, points_.size(), cluster_,
                        options_);
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        if (plan_.glv) {
            // The endomorphism images phi(P_i) = (beta * x_i, y_i)
            // are scalar-independent: staged once, like the points.
            phi_points_.resize(points_.size());
            support::ThreadPool::global().parallelFor(
                0, points_.size(),
                [&](std::size_t i) {
                    phi_points_[i] =
                        glv::endomorphismIfSupported<Curve>(
                            points_[i]);
                },
                host_threads);
        }
        if (options_.precompute) {
            std::vector<AffinePoint<Curve>> bases = points_;
            bases.insert(bases.end(), phi_points_.begin(),
                         phi_points_.end());
            table_ = detail::precomputeWindowMultiples<Curve>(
                bases, plan_.numWindows, plan_.windowBits,
                host_threads);
        }
    }

    const MsmPlan &plan() const { return plan_; }
    std::size_t numPoints() const { return points_.size(); }

    /**
     * Run one MSM against the staged points.
     *
     * Host parallelism (options.hostThreads): the signed-digit
     * decomposition, the windows, the per-device bucket groups of a
     * window and the simulated scatter blocks all run concurrently
     * on the support::ThreadPool. Every parallel unit writes only
     * its own slot and the slots are merged in the exact order of
     * the sequential algorithm (windows high-to-low, buckets
     * ascending, devices ascending), so the returned point, the
     * KernelStats and hostOps are bit-identical for every thread
     * count — hostThreads == 1 is the legacy serial execution.
     */
    MsmResult<Curve>
    compute(const std::vector<Scalar> &scalars) const
    {
        DISTMSM_REQUIRE(scalars.size() == points_.size(),
                        "points/scalars size mismatch");
        using Xyzz = XYZZPoint<Curve>;
        MsmResult<Curve> result;
        result.plan = plan_;
        const unsigned s = plan_.windowBits;
        const std::size_t n_buckets =
            options_.signedDigits
                ? (std::size_t{1} << (s - 1)) + 1
                : std::size_t{1} << s;
        const int host_threads =
            support::resolveHostThreads(options_.hostThreads);
        auto &pool = support::ThreadPool::global();
        const std::size_t n_base = points_.size();

        // GLV: rewrite the n full-width scalars as 2n half-width
        // magnitudes with per-half sign flags; half i drives P_i,
        // half n + i drives phi(P_i). Scalar i only writes its own
        // two slots.
        std::vector<Scalar> half_scalars;
        std::vector<std::uint8_t> glv_neg;
        if constexpr (glv::CurveGlv<Curve>::kSupported) {
            if (plan_.glv) {
                half_scalars.resize(2 * n_base);
                glv_neg.assign(2 * n_base, 0);
                pool.parallelFor(
                    0, n_base,
                    [&](std::size_t i) {
                        const auto split =
                            glv::decompose<Curve>(scalars[i]);
                        half_scalars[i] = split.k1;
                        half_scalars[n_base + i] = split.k2;
                        glv_neg[i] = split.neg1;
                        glv_neg[n_base + i] = split.neg2;
                    },
                    host_threads);
            }
        }
        const std::vector<Scalar> &eff_scalars =
            plan_.glv ? half_scalars : scalars;
        const std::size_t n_eff = eff_scalars.size();

        // Signed-digit decomposition up front; scalar i only writes
        // digits[i]. The window passes cover plan_.scalarBits — the
        // GLV half width when active.
        std::vector<std::vector<std::int32_t>> digits;
        if (options_.signedDigits) {
            digits.resize(n_eff);
            pool.parallelFor(
                0, n_eff,
                [&](std::size_t i) {
                    digits[i] = signedWindowDigits(
                        eff_scalars[i], plan_.scalarBits, s);
                },
                host_threads);
        }

        auto window_ids = [&](unsigned w,
                              std::vector<std::uint32_t> &ids,
                              std::vector<std::uint8_t> &negs) {
            ids.resize(n_eff);
            negs.assign(n_eff, 0);
            for (std::size_t i = 0; i < n_eff; ++i) {
                if (options_.signedDigits) {
                    const std::int32_t d = digits[i][w];
                    ids[i] =
                        static_cast<std::uint32_t>(d < 0 ? -d : d);
                    negs[i] = d < 0;
                } else {
                    ids[i] = static_cast<std::uint32_t>(
                        eff_scalars[i].bits(
                            static_cast<std::size_t>(w) * s, s));
                }
                // A negative half-scalar flips its contribution;
                // composes with the signed-digit flip.
                if (plan_.glv)
                    negs[i] ^= glv_neg[i];
            }
        };

        // Scatter + bucket sums of one window, fully independent of
        // every other window. Bucket groups map to the simulated
        // devices of the bucket-split distribution (Section 3.2.2)
        // and run as one task per device.
        struct WindowPartial
        {
            bool scatterOk = false;
            gpusim::KernelStats scatterStats;
            gpusim::KernelStats ecStats;
            std::vector<Xyzz> bucketSums;
            Xyzz windowPoint = Xyzz::identity();
            ReduceStats reduceStats;
        };
        const std::uint64_t msm_idx =
            options_.trace != nullptr
                ? msm_counter_.fetch_add(1,
                                         std::memory_order_relaxed)
                : 0;
        const std::string trace_prefix =
            "msm" + std::to_string(msm_idx) + "/";

        auto run_window = [&](unsigned w, WindowPartial &wp) {
            std::vector<std::uint32_t> ids;
            std::vector<std::uint8_t> negs;
            window_ids(w, ids, negs);

            ScatterConfig scatter_cfg = options_.scatter;
            if (options_.trace != nullptr) {
                // One kernel-launch lane per window: the launch span
                // (emitted by ~KernelLaunch) carries the measured
                // contention of exactly this window's scatter.
                scatter_cfg.trace = options_.trace;
                scatter_cfg.traceLabel = trace_prefix + "w" +
                                         std::to_string(w) +
                                         "/scatter";
                scatter_cfg.traceLane = static_cast<int>(w);
            }
            ScatterResult scattered =
                options_.hierarchicalScatter
                    ? hierarchicalScatter(ids, s, scatter_cfg)
                    : naiveScatter(ids, s, scatter_cfg);
            wp.scatterOk = scattered.ok;
            if (!scattered.ok)
                return;
            wp.scatterStats = scattered.stats;

            auto point_of = [&](std::uint32_t idx) {
                const auto &base =
                    options_.precompute
                        ? table_[w][idx]
                        : (idx < n_base
                               ? points_[idx]
                               : phi_points_[idx - n_base]);
                return negs[idx] ? base.negated() : base;
            };

            wp.bucketSums.assign(n_buckets, Xyzz::identity());
            const int groups = plan_.bucketsSplitAcrossGpus
                                   ? plan_.gpusPerWindow
                                   : 1;
            std::vector<gpusim::KernelStats> group_stats(groups);
            cluster_.forEachDevice(
                groups,
                [&](int g) {
                    const std::size_t lo =
                        1 + (n_buckets - 1) * g / groups;
                    const std::size_t hi =
                        1 + (n_buckets - 1) * (g + 1) / groups;
                    if (options_.batchAffine) {
                        BatchAffineScratch<Curve> scratch;
                        batchAffineAccumulate<Curve>(
                            scattered.buckets, lo, hi, point_of,
                            wp.bucketSums, group_stats[g], scratch);
                        return;
                    }
                    for (std::size_t b = lo;
                         b < hi && b < scattered.buckets.size();
                         ++b) {
                        if (scattered.buckets[b].empty())
                            continue;
                        wp.bucketSums[b] = bucketSumTree<Curve>(
                            scattered.buckets[b], point_of,
                            plan_.threadsPerBucket, group_stats[g]);
                    }
                },
                options_.hostThreads);
            // The bucket groups are one launch running on
            // plan_.gpusPerWindow devices in lockstep: work counts
            // sum, the shared phase structure does not (see
            // KernelStats::mergeLockstep; pinned by the 1-vs-4
            // device stats test).
            for (const auto &gs : group_stats)
                wp.ecStats.mergeLockstep(gs);

            if (!options_.precompute) {
                wp.windowPoint = bucketReduceSerial<Curve>(
                    wp.bucketSums, &wp.reduceStats);
                wp.bucketSums.clear();
                wp.bucketSums.shrink_to_fit();
            }
        };

        // Tracing: the serial merge loop below visits windows in a
        // fixed order regardless of hostThreads, so the measured
        // stats are mapped onto simulated time (via the cost model)
        // and emitted from here — the spans are deterministic even
        // though the windows executed concurrently. Each window
        // lands on the device lane of the round-robin distribution.
        support::TraceRecorder *const trace = options_.trace;
        std::vector<double> dev_cursor;
        double host_cursor = 0.0;
        const auto &cost_model = cluster_.model();
        const int scatter_threads =
            static_cast<int>(std::min<std::uint64_t>(
                cluster_.device().maxConcurrentThreads(),
                static_cast<std::uint64_t>(
                    options_.scatter.blockDim) *
                    options_.scatter.gridDim));
        if (trace != nullptr) {
            namespace lane = support::tracelane;
            dev_cursor.assign(
                static_cast<std::size_t>(cluster_.numGpus()), 0.0);
            for (int d = 0; d < cluster_.numGpus(); ++d) {
                trace->labelProcess(lane::engineDevicePid(d),
                                    "engine gpu" +
                                        std::to_string(d));
                trace->labelThread(lane::engineDevicePid(d),
                                   lane::kComputeTid, "windows");
            }
            trace->labelProcess(lane::kEngineHostPid, "engine host");
            trace->labelThread(lane::kEngineHostPid,
                               lane::kComputeTid, "reduce");
        }
        auto emit_window = [&](unsigned w, const WindowPartial &wp) {
            namespace lane = support::tracelane;
            const int d =
                static_cast<int>(w) % cluster_.numGpus();
            const int pid = lane::engineDevicePid(d);
            const double scatter_ns =
                cost_model.scatterComputeNs(n_eff,
                                            scatter_threads) +
                cost_model.atomicNs(wp.scatterStats,
                                    scatter_threads) +
                cost_model.gmemNs(wp.scatterStats.gmemBytes);
            const double sum_ns =
                cost_model.ecThroughputNs(
                    curve_profile_, options_.kernel,
                    gpusim::EcOp::Pacc, wp.ecStats.paccOps) +
                cost_model.ecThroughputNs(
                    curve_profile_, options_.kernel,
                    gpusim::EcOp::Padd, wp.ecStats.paddOps) +
                cost_model.ecThroughputNs(
                    curve_profile_, options_.kernel,
                    gpusim::EcOp::Pdbl, wp.ecStats.pdblOps) +
                cost_model.ecThroughputNs(
                    curve_profile_, options_.kernel,
                    gpusim::EcOp::AffineAdd,
                    wp.ecStats.affineAddOps);
            const std::string wl =
                trace_prefix + "w" + std::to_string(w) + "/";
            support::TraceArgs scatter_args;
            scatter_args
                .arg("global_atomics",
                     static_cast<double>(
                         wp.scatterStats.globalAtomics))
                .arg("global_conflict_weight",
                     static_cast<double>(
                         wp.scatterStats.globalConflictWeight))
                .arg("global_max_conflict",
                     static_cast<double>(
                         wp.scatterStats.globalMaxConflict));
            trace->span(wl + "scatter", "phase", pid,
                        lane::kComputeTid, dev_cursor[d],
                        scatter_ns, std::move(scatter_args));
            trace->span(wl + "bucket-sum", "phase", pid,
                        lane::kComputeTid,
                        dev_cursor[d] + scatter_ns, sum_ns);
            dev_cursor[d] += scatter_ns + sum_ns;
            const double reduce_ns = cost_model.hostEcNs(
                curve_profile_,
                wp.reduceStats.padds + wp.reduceStats.pdbls,
                cluster_.host());
            if (reduce_ns > 0.0) {
                trace->span(wl + "bucket-reduce", "phase",
                            lane::kEngineHostPid, lane::kComputeTid,
                            host_cursor, reduce_ns);
                host_cursor += reduce_ns;
            }
            auto &metrics = trace->metrics();
            const std::string mp = "engine/" + trace_prefix + "dev" +
                                   std::to_string(d) + "/w" +
                                   std::to_string(w) + "/";
            wp.scatterStats.recordMetrics(metrics, mp + "scatter/");
            wp.ecStats.recordMetrics(metrics, mp + "ec/");
            metrics.add(mp + "scatter_ns", scatter_ns);
            metrics.add(mp + "bucket_sum_ns", sum_ns);
            metrics.add(mp + "bucket_reduce_ns", reduce_ns);
        };

        std::vector<Xyzz> merged(
            options_.precompute ? n_buckets : 0, Xyzz::identity());
        Xyzz total = Xyzz::identity();

        // Windows execute concurrently in descending stripes (the
        // stripe bounds live per-window state), then merge strictly
        // high-to-low exactly like the serial Horner recurrence.
        const unsigned stripe = static_cast<unsigned>(std::max(
            1, std::min<int>(static_cast<int>(plan_.numWindows),
                             4 * host_threads)));
        for (unsigned win_hi = plan_.numWindows; win_hi > 0;) {
            const unsigned win_lo =
                win_hi > stripe ? win_hi - stripe : 0;
            std::vector<WindowPartial> partials(win_hi - win_lo);
            pool.parallelFor(
                win_lo, win_hi,
                [&](std::size_t w) {
                    run_window(static_cast<unsigned>(w),
                               partials[w - win_lo]);
                },
                host_threads);

            for (unsigned w = win_hi; w-- > win_lo;) {
                WindowPartial &wp = partials[w - win_lo];
                DISTMSM_REQUIRE(wp.scatterOk,
                                "scatter kernel cannot run at this "
                                "window size; use naive scatter");
                result.stats.merge(wp.scatterStats);
                result.stats.merge(wp.ecStats);
                if (trace != nullptr)
                    emit_window(w, wp);

                if (options_.precompute) {
                    for (std::size_t b = 1; b < n_buckets; ++b) {
                        if (wp.bucketSums[b].isIdentity())
                            continue;
                        merged[b] =
                            padd(merged[b], wp.bucketSums[b]);
                        ++result.stats.paddOps;
                    }
                    continue;
                }

                if (!total.isIdentity()) {
                    for (unsigned b = 0; b < s; ++b) {
                        total = pdbl(total);
                        ++result.hostOps;
                    }
                }
                total = padd(total, wp.windowPoint);
                result.hostOps += wp.reduceStats.padds + 1;
            }
            win_hi = win_lo;
        }

        if (options_.precompute) {
            ReduceStats reduce_stats;
            total = bucketReduceSerial<Curve>(merged, &reduce_stats);
            result.hostOps += reduce_stats.padds;
        }
        result.value = total;
        return result;
    }

  private:
    std::vector<AffinePoint<Curve>> points_;
    /** phi(P_i) images when the plan enabled GLV (else empty). */
    std::vector<AffinePoint<Curve>> phi_points_;
    gpusim::Cluster cluster_;
    MsmOptions options_;
    gpusim::CurveProfile curve_profile_;
    MsmPlan plan_;
    std::vector<std::vector<AffinePoint<Curve>>> table_;
    /** Orders trace labels of successive compute() calls. */
    mutable std::atomic<std::uint64_t> msm_counter_{0};
};

} // namespace distmsm::msm

#endif // DISTMSM_MSM_ENGINE_H
