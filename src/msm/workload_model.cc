#include "src/msm/workload_model.h"

#include <algorithm>
#include <cmath>

#include "src/support/check.h"

namespace distmsm::msm {
namespace {

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

} // namespace

unsigned
windowCount(unsigned scalar_bits, unsigned window_bits)
{
    DISTMSM_REQUIRE(window_bits >= 1, "window size must be positive");
    return (scalar_bits + window_bits - 1) / window_bits;
}

double
perThreadWorkload(const WorkloadConfig &config, unsigned s)
{
    const double n = static_cast<double>(config.numPoints);
    const double nt = static_cast<double>(config.threadsPerGpu);
    const double buckets = std::pow(2.0, s);
    const unsigned n_win = windowCount(config.scalarBits, s);
    const double log_nt = std::log2(nt);

    if (config.numGpus <= static_cast<int>(n_win)) {
        // Whole windows per GPU.
        const double scatter_sum =
            ceilDiv(n_win, config.numGpus) *
            ceilDiv(n + buckets, nt);
        const double reduce = ceilDiv(buckets, nt) * 2.0 * s;
        const double tail =
            std::min(ceilDiv(buckets, nt) + log_nt,
                     static_cast<double>(s));
        return scatter_sum + reduce + tail;
    }
    // Buckets of each window split across floor(N_gpu / N_win) GPUs.
    const double g = std::floor(static_cast<double>(config.numGpus) /
                                n_win);
    return (n + buckets * 2.0 * s) / (g * nt) +
           std::log2(buckets / g);
}

unsigned
optimalWindowSize(const WorkloadConfig &config, unsigned min_s,
                  unsigned max_s)
{
    DISTMSM_REQUIRE(min_s >= 1 && min_s <= max_s, "bad s range");
    unsigned best = min_s;
    double best_cost = perThreadWorkload(config, min_s);
    for (unsigned s = min_s + 1; s <= max_s; ++s) {
        const double cost = perThreadWorkload(config, s);
        if (cost < best_cost) {
            best_cost = cost;
            best = s;
        }
    }
    return best;
}

} // namespace distmsm::msm
