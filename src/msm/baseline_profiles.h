/**
 * @file
 * Models of the baseline GPU MSM implementations (paper Table 2).
 *
 * The binaries themselves are proprietary or CUDA-only; what Table 3
 * compares against is their *designs*: which kernel optimizations
 * they ship, how they scale to multiple GPUs (most were "augmented by
 * parallelizing along the N-dim"), and the window sizes they choose.
 * Each profile re-creates one design on the simulator; a per-profile
 * efficiency factor absorbs implementation maturity and is calibrated
 * once against the paper's single-GPU column (see EXPERIMENTS.md).
 * Everything else — scaling curves, crossovers — is predicted by the
 * model, not fitted.
 */

#ifndef DISTMSM_MSM_BASELINE_PROFILES_H
#define DISTMSM_MSM_BASELINE_PROFILES_H

#include <string>
#include <vector>

#include "src/msm/planner.h"

namespace distmsm::msm {

/** How a baseline was extended to multiple GPUs. */
enum class MultiGpuStrategy
{
    /** Points split N/N_gpu per GPU; windows/design unchanged. */
    NdimSplit,
    /** Windows distributed across GPUs (cuZK-style). */
    WindowSplit,
};

/** One baseline implementation model. */
struct BaselineProfile
{
    int id;           ///< Table 2 numbering (1..6)
    const char *name; ///< Table 2 name
    MultiGpuStrategy strategy;
    gpusim::EcKernelVariant kernel;
    /** Supported curves (Table 2), by CurveProfile::name. */
    std::vector<std::string> curves;
    /**
     * Implementation-maturity multiplier on simulated time
     * (< 1: faster than our modelled kernel would suggest, e.g.
     * Yrrid's assembly-level tuning; > 1: slower).
     */
    double efficiency = 1.0;
    /** Fixed window size the implementation hard-codes; 0 = auto. */
    unsigned fixedWindowBits = 0;
    /**
     * Amdahl serial fraction: share of the single-GPU time (driver
     * staging, pinned pipelines, host post-processing) that does not
     * parallelize when the implementation is spread across GPUs.
     * Yrrid's pipeline is the least scalable (Figure 8).
     */
    double serialFraction = 0.0;
    /**
     * Extra slowdown on MNT4753 (753-bit arithmetic blows up some
     * designs far more than others; the paper's Table 3 shows Mina
     * beating cuZK on MNT despite losing everywhere else).
     */
    double mnt4753Penalty = 1.0;
    /** Largest input the implementation handles (0 = unlimited);
     *  Yrrid's precomputation tables exceed device memory at 2^28. */
    std::uint64_t maxPoints = 0;

    bool supports(const gpusim::CurveProfile &curve) const;

    /** Simulated timeline on @p cluster. */
    MsmTimeline estimate(const gpusim::CurveProfile &curve,
                         std::uint64_t n,
                         const gpusim::Cluster &cluster) const;
};

/** All six baselines of Table 2. */
const std::vector<BaselineProfile> &allBaselines();

/** The best baseline for a configuration (the BG column). */
struct BestBaseline
{
    const BaselineProfile *profile = nullptr;
    MsmTimeline timeline;
};

BestBaseline bestBaseline(const gpusim::CurveProfile &curve,
                          std::uint64_t n,
                          const gpusim::Cluster &cluster);

} // namespace distmsm::msm

#endif // DISTMSM_MSM_BASELINE_PROFILES_H
