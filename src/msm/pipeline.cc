#include "src/msm/pipeline.h"

#include <algorithm>
#include <string>

#include "src/support/check.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace distmsm::msm {

double
pipelineMakespanNs(const std::vector<PipelineTask> &tasks)
{
    double gpu_done = 0.0;
    double host_done = 0.0;
    for (const auto &task : tasks) {
        gpu_done += task.gpuNs;
        host_done = std::max(host_done, gpu_done) + task.hostNs;
    }
    return host_done;
}

double
serialMakespanNs(const std::vector<PipelineTask> &tasks)
{
    double total = 0.0;
    for (const auto &task : tasks)
        total += task.gpuNs + task.hostNs;
    return total;
}

std::vector<PipelineSlot>
pipelineSchedule(const std::vector<PipelineTask> &tasks)
{
    std::vector<PipelineSlot> slots(tasks.size());
    double gpu_done = 0.0;
    double host_done = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        slots[i].gpuStartNs = gpu_done;
        gpu_done += tasks[i].gpuNs;
        slots[i].gpuEndNs = gpu_done;
        slots[i].hostStartNs = std::max(host_done, gpu_done);
        host_done = slots[i].hostStartNs + tasks[i].hostNs;
        slots[i].hostEndNs = host_done;
    }
    return slots;
}

namespace {

/** Decompose one timeline into its pipelined task (see PipelineTask). */
PipelineTask
taskFromTimeline(const MsmTimeline &t)
{
    PipelineTask task;
    task.gpuNs = t.gpuStageNs();
    task.hostNs = t.totalNs() - t.gpuStageNs();
    return task;
}

/**
 * Emit the pipeline's task lanes (tracelane::kPipelinePid, tid 0
 * GPU stage / tid 1 host stage) so the overlap between consecutive
 * MSMs is visible in Perfetto.
 */
void
tracePipeline(support::TraceRecorder &trace,
              const ProvingPipelineEstimate &estimate)
{
    namespace lane = support::tracelane;
    trace.labelProcess(lane::kPipelinePid, "proving pipeline");
    trace.labelThread(lane::kPipelinePid, lane::kComputeTid,
                      "gpu stage");
    trace.labelThread(lane::kPipelinePid, lane::kTransferTid,
                      "host stage");
    const std::vector<PipelineSlot> slots =
        pipelineSchedule(estimate.tasks);
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::string name = "msm" + std::to_string(i);
        support::TraceArgs args;
        args.arg("gpu_ns", estimate.tasks[i].gpuNs)
            .arg("host_ns", estimate.tasks[i].hostNs);
        trace.span(name + "/gpu", "pipeline", lane::kPipelinePid,
                   lane::kComputeTid, slots[i].gpuStartNs,
                   slots[i].gpuEndNs - slots[i].gpuStartNs, args);
        if (estimate.tasks[i].hostNs > 0.0)
            trace.span(name + "/host", "pipeline",
                       lane::kPipelinePid, lane::kTransferTid,
                       slots[i].hostStartNs,
                       slots[i].hostEndNs - slots[i].hostStartNs);
    }
    auto &metrics = trace.metrics();
    metrics.set("pipeline/tasks",
                static_cast<double>(estimate.tasks.size()));
    metrics.set("pipeline/pipelined_ns", estimate.pipelinedNs);
    metrics.set("pipeline/serial_ns", estimate.serialNs);
    metrics.set("pipeline/hidden_fraction",
                estimate.hiddenFraction());
}

} // namespace

ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        std::uint64_t n,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options, int num_msms)
{
    DISTMSM_REQUIRE(num_msms >= 1, "need at least one MSM");
    // The per-task estimate keeps the caller's overlapReduce: the
    // task already accounts its intra-MSM overlap, and the pipeline
    // only stacks the exposed host tails (see PipelineTask). The
    // task lanes are traced here, not per estimateDistMsm call.
    MsmOptions opts = options;
    opts.trace = nullptr;
    const MsmTimeline t = estimateDistMsm(curve, n, cluster, opts);

    ProvingPipelineEstimate estimate;
    estimate.tasks.assign(num_msms, taskFromTimeline(t));
    estimate.pipelinedNs = pipelineMakespanNs(estimate.tasks);
    estimate.serialNs =
        num_msms * (t.gpuStageNs() + t.hostStageNs());
    if (options.trace != nullptr)
        tracePipeline(*options.trace, estimate);
    return estimate;
}

ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        const std::vector<std::uint64_t> &msm_sizes,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options)
{
    DISTMSM_REQUIRE(!msm_sizes.empty(), "need at least one MSM");
    MsmOptions opts = options;
    opts.trace = nullptr; // task lanes traced below, once

    ProvingPipelineEstimate estimate;
    estimate.tasks.resize(msm_sizes.size());
    std::vector<double> serial(msm_sizes.size(), 0.0);
    // Each size's timeline is a pure function of (curve, n,
    // cluster, options): estimate them concurrently, one slot per
    // task, assembled in input order.
    support::ThreadPool::global().parallelFor(
        0, msm_sizes.size(),
        [&](std::size_t i) {
            const MsmTimeline t =
                estimateDistMsm(curve, msm_sizes[i], cluster, opts);
            estimate.tasks[i] = taskFromTimeline(t);
            serial[i] = t.gpuStageNs() + t.hostStageNs();
        },
        support::resolveHostThreads(options.hostThreads));
    estimate.pipelinedNs = pipelineMakespanNs(estimate.tasks);
    estimate.serialNs = 0.0;
    for (const double s : serial)
        estimate.serialNs += s;
    if (options.trace != nullptr)
        tracePipeline(*options.trace, estimate);
    return estimate;
}

} // namespace distmsm::msm
