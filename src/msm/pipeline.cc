#include "src/msm/pipeline.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/thread_pool.h"

namespace distmsm::msm {

double
pipelineMakespanNs(const std::vector<PipelineTask> &tasks)
{
    double gpu_done = 0.0;
    double host_done = 0.0;
    for (const auto &task : tasks) {
        gpu_done += task.gpuNs;
        host_done = std::max(host_done, gpu_done) + task.hostNs;
    }
    return host_done;
}

double
serialMakespanNs(const std::vector<PipelineTask> &tasks)
{
    double total = 0.0;
    for (const auto &task : tasks)
        total += task.gpuNs + task.hostNs;
    return total;
}

ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        std::uint64_t n,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options, int num_msms)
{
    DISTMSM_REQUIRE(num_msms >= 1, "need at least one MSM");
    MsmOptions opts = options;
    opts.overlapReduce = false; // overlap handled here, per task
    const MsmTimeline t = estimateDistMsm(curve, n, cluster, opts);

    PipelineTask task;
    task.gpuNs = t.gpuNs() + t.transferNs;
    task.hostNs =
        (t.cpuReduce ? t.bucketReduceNs : 0.0) + t.windowReduceNs;

    ProvingPipelineEstimate estimate;
    estimate.tasks.assign(num_msms, task);
    estimate.pipelinedNs = pipelineMakespanNs(estimate.tasks);
    estimate.serialNs = serialMakespanNs(estimate.tasks);
    return estimate;
}

ProvingPipelineEstimate
estimateProvingPipeline(const gpusim::CurveProfile &curve,
                        const std::vector<std::uint64_t> &msm_sizes,
                        const gpusim::Cluster &cluster,
                        const MsmOptions &options)
{
    DISTMSM_REQUIRE(!msm_sizes.empty(), "need at least one MSM");
    MsmOptions opts = options;
    opts.overlapReduce = false; // overlap handled here, per task

    ProvingPipelineEstimate estimate;
    estimate.tasks.resize(msm_sizes.size());
    // Each size's timeline is a pure function of (curve, n,
    // cluster, options): estimate them concurrently, one slot per
    // task, assembled in input order.
    support::ThreadPool::global().parallelFor(
        0, msm_sizes.size(),
        [&](std::size_t i) {
            const MsmTimeline t =
                estimateDistMsm(curve, msm_sizes[i], cluster, opts);
            estimate.tasks[i].gpuNs = t.gpuNs() + t.transferNs;
            estimate.tasks[i].hostNs =
                (t.cpuReduce ? t.bucketReduceNs : 0.0) +
                t.windowReduceNs;
        },
        support::resolveHostThreads(options.hostThreads));
    estimate.pipelinedNs = pipelineMakespanNs(estimate.tasks);
    estimate.serialNs = serialMakespanNs(estimate.tasks);
    return estimate;
}

} // namespace distmsm::msm
