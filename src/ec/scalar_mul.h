/**
 * @file
 * Optimized scalar multiplication.
 *
 * Two standard techniques from the ZPrize lineage the paper builds
 * on, used by the library outside the MSM hot path (setup, host-side
 * reductions, tests):
 *
 *  - pmulWnaf: width-w non-adjacent form. Recodes the scalar into
 *    signed odd digits so only 2^(w-2) odd multiples are tabled and
 *    the number of additions drops to ~bits/(w+1).
 *  - FixedBaseTable: for a base point used with many scalars (the
 *    generator during trusted setup), precompute all multiples of
 *    every s-bit window so each scalar costs only ceil(bits/s)
 *    additions and no doublings.
 */

#ifndef DISTMSM_EC_SCALAR_MUL_H
#define DISTMSM_EC_SCALAR_MUL_H

#include <vector>

#include "src/bigint/bigint.h"
#include "src/ec/point.h"
#include "src/support/check.h"

namespace distmsm {

/**
 * Width-w NAF digits of @p k, least significant first: each entry is
 * zero or an odd integer in [-(2^(w-1) - 1), 2^(w-1) - 1], and no
 * two adjacent non-zero digits occur within w positions.
 */
template <std::size_t N>
std::vector<std::int32_t>
wnafDigits(BigInt<N> k, unsigned w)
{
    DISTMSM_REQUIRE(w >= 2 && w <= 16, "wNAF width out of range");
    std::vector<std::int32_t> digits;
    const std::uint64_t window = std::uint64_t{1} << w;
    while (!k.isZero()) {
        if (k.bit(0)) {
            // Odd: take the centered remainder mod 2^w.
            std::int64_t d = static_cast<std::int64_t>(
                k.bits(0, w));
            if (d >= static_cast<std::int64_t>(window / 2))
                d -= static_cast<std::int64_t>(window);
            digits.push_back(static_cast<std::int32_t>(d));
            if (d > 0) {
                k.subInPlace(
                    BigInt<N>::fromU64(static_cast<std::uint64_t>(d)));
            } else {
                k.addInPlace(BigInt<N>::fromU64(
                    static_cast<std::uint64_t>(-d)));
            }
        } else {
            digits.push_back(0);
        }
        k = k.shr(1);
    }
    return digits;
}

/** Scalar multiplication via width-w NAF. */
template <typename Curve, std::size_t N>
XYZZPoint<Curve>
pmulWnaf(const XYZZPoint<Curve> &p, const BigInt<N> &k,
         unsigned w = 4)
{
    using Xyzz = XYZZPoint<Curve>;
    if (k.isZero() || p.isIdentity())
        return Xyzz::identity();

    // Odd multiples P, 3P, ..., (2^(w-1) - 1) P.
    std::vector<Xyzz> odd;
    odd.reserve(std::size_t{1} << (w - 2));
    odd.push_back(p);
    const Xyzz two_p = pdbl(p);
    for (std::size_t i = 1; i < (std::size_t{1} << (w - 2)); ++i)
        odd.push_back(padd(odd.back(), two_p));

    const auto digits = wnafDigits(k, w);
    Xyzz acc = Xyzz::identity();
    for (std::size_t i = digits.size(); i-- > 0;) {
        acc = pdbl(acc);
        const std::int32_t d = digits[i];
        if (d > 0) {
            acc = padd(acc, odd[(d - 1) / 2]);
        } else if (d < 0) {
            acc = padd(acc, odd[(-d - 1) / 2].negated());
        }
    }
    return acc;
}

/**
 * Fixed-base window table: multiples m * 2^(js) * B for every window
 * j and every m in [1, 2^s). One scalar multiplication then costs
 * one PADD per window and no doublings — the right trade when
 * thousands of scalars share one base (the trusted setup's
 * generator).
 */
template <typename Curve>
class FixedBaseTable
{
  public:
    using Xyzz = XYZZPoint<Curve>;

    /**
     * @param base the shared base point.
     * @param scalar_bits widest scalar that will be used.
     * @param window_bits table window size (memory is
     *        ceil(bits/s) * 2^s points).
     */
    FixedBaseTable(const Xyzz &base, unsigned scalar_bits,
                   unsigned window_bits = 8)
        : window_bits_(window_bits)
    {
        DISTMSM_REQUIRE(window_bits >= 1 && window_bits <= 16,
                        "window size out of range");
        const unsigned windows =
            (scalar_bits + window_bits - 1) / window_bits + 1;
        const std::size_t per_window = std::size_t{1}
                                       << window_bits;
        table_.reserve(windows);
        Xyzz window_base = base;
        for (unsigned j = 0; j < windows; ++j) {
            std::vector<Xyzz> row;
            row.reserve(per_window);
            row.push_back(Xyzz::identity());
            for (std::size_t m = 1; m < per_window; ++m)
                row.push_back(padd(row.back(), window_base));
            table_.push_back(std::move(row));
            for (unsigned b = 0; b < window_bits; ++b)
                window_base = pdbl(window_base);
        }
    }

    /** k * base with one PADD per window. */
    template <std::size_t N>
    Xyzz
    mul(const BigInt<N> &k) const
    {
        Xyzz acc = Xyzz::identity();
        const std::size_t top = k.bitLength();
        for (std::size_t j = 0;
             j * window_bits_ < std::max<std::size_t>(top, 1); ++j) {
            DISTMSM_REQUIRE(j < table_.size(),
                            "scalar wider than the table");
            const std::uint64_t m =
                k.bits(j * window_bits_, window_bits_);
            if (m != 0)
                acc = padd(acc, table_[j][m]);
        }
        return acc;
    }

    std::size_t
    pointCount() const
    {
        return table_.size() * table_.front().size();
    }

  private:
    unsigned window_bits_;
    std::vector<std::vector<Xyzz>> table_;
};

} // namespace distmsm

#endif // DISTMSM_EC_SCALAR_MUL_H
