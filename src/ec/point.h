/**
 * @file
 * Short-Weierstrass curve points in affine and XYZZ coordinates.
 *
 * The XYZZ system ("with ZZ" in the EFD; paper Section 2.2) represents
 * (x, y) as (X, Y, ZZ, ZZZ) with x = X/ZZ, y = Y/ZZZ and the
 * invariant ZZ^3 = ZZZ^2. A point with ZZ == 0 is the identity.
 *
 * Three operations drive MSM:
 *  - padd: full addition (paper Algorithm 1), 14 modular multiplies;
 *  - pacc: mixed accumulation of an affine point, the dedicated kernel
 *    of paper Algorithm 4, 10 modular multiplies;
 *  - pdbl: doubling.
 * Each handles the identity/equal/negative special cases that arise in
 * bucket accumulation.
 */

#ifndef DISTMSM_EC_POINT_H
#define DISTMSM_EC_POINT_H

#include "src/ec/op_counters.h"
#include "src/support/check.h"

namespace distmsm {

/** Affine point; infinity flag marks the identity. */
template <typename Curve>
struct AffinePoint
{
    using Fq = typename Curve::Fq;

    Fq x;
    Fq y;
    bool infinity = true;

    static constexpr AffinePoint
    identity()
    {
        return AffinePoint{};
    }

    static constexpr AffinePoint
    fromXY(const Fq &x, const Fq &y)
    {
        AffinePoint p;
        p.x = x;
        p.y = y;
        p.infinity = false;
        return p;
    }

    constexpr AffinePoint
    negated() const
    {
        AffinePoint p = *this;
        if (!p.infinity)
            p.y = -p.y;
        return p;
    }

    /** y^2 == x^3 + a*x + b (identity counts as on-curve). */
    bool
    isOnCurve() const
    {
        if (infinity)
            return true;
        const Fq rhs = x.sqr() * x + Curve::a() * x + Curve::b();
        return y.sqr() == rhs;
    }

    constexpr bool
    operator==(const AffinePoint &o) const
    {
        if (infinity || o.infinity)
            return infinity == o.infinity;
        return x == o.x && y == o.y;
    }
};

/** XYZZ-coordinate point; ZZ == 0 marks the identity. */
template <typename Curve>
struct XYZZPoint
{
    using Fq = typename Curve::Fq;

    Fq x;
    Fq y;
    Fq zz;
    Fq zzz;

    static constexpr XYZZPoint
    identity()
    {
        return XYZZPoint{};
    }

    static constexpr XYZZPoint
    fromAffine(const AffinePoint<Curve> &p)
    {
        XYZZPoint r{};
        if (!p.infinity) {
            r.x = p.x;
            r.y = p.y;
            r.zz = Fq::one();
            r.zzz = Fq::one();
        }
        return r;
    }

    constexpr bool isIdentity() const { return zz.isZero(); }

    constexpr XYZZPoint
    negated() const
    {
        XYZZPoint r = *this;
        r.y = -r.y;
        return r;
    }

    /** Normalize to affine (one field inversion). */
    AffinePoint<Curve>
    toAffine() const
    {
        if (isIdentity())
            return AffinePoint<Curve>::identity();
        const Fq zz_inv = zz.inverse();
        const Fq zzz_inv = zzz.inverse();
        return AffinePoint<Curve>::fromXY(x * zz_inv, y * zzz_inv);
    }

    /** Equality as curve points (cross-multiplied, no inversion). */
    bool
    operator==(const XYZZPoint &o) const
    {
        if (isIdentity() || o.isIdentity())
            return isIdentity() == o.isIdentity();
        return x * o.zz == o.x * zz && y * o.zzz == o.y * zzz;
    }
};

/** Point doubling (EFD dbl-2008-s-1 adapted for XYZZ). */
template <typename Curve>
XYZZPoint<Curve>
pdbl(const XYZZPoint<Curve> &p)
{
    using Fq = typename Curve::Fq;
    if (p.isIdentity())
        return p;
    if (p.y.isZero())
        return XYZZPoint<Curve>::identity();
    auto &ops = ec::opCounters();

    const Fq u = p.y.dbl();
    const Fq v = u.sqr();
    const Fq w = u * v;
    const Fq s = p.x * v;
    Fq m = p.x.sqr();
    m = m.dbl() + m; // 3 * X^2
    if constexpr (!Curve::kAIsZero)
        m += Curve::a() * p.zz.sqr();
    XYZZPoint<Curve> r;
    r.x = m.sqr() - s.dbl();
    r.y = m * (s - r.x) - w * p.y;
    r.zz = v * p.zz;
    r.zzz = w * p.zzz;
    ops.mul += Curve::kAIsZero ? 9 : 11;
    ops.sqr += Curve::kAIsZero ? 3 : 4; // V, M, X3 (+ ZZ^2 if a != 0)
    ops.add += 6;
    return r;
}

/**
 * Full point addition in XYZZ coordinates (paper Algorithm 1).
 * Handles identity operands, P + P (falls back to pdbl) and P + (-P).
 */
template <typename Curve>
XYZZPoint<Curve>
padd(const XYZZPoint<Curve> &p1, const XYZZPoint<Curve> &p2)
{
    using Fq = typename Curve::Fq;
    if (p1.isIdentity())
        return p2;
    if (p2.isIdentity())
        return p1;
    auto &ops = ec::opCounters();

    const Fq u1 = p1.x * p2.zz;
    const Fq u2 = p2.x * p1.zz;
    const Fq s1 = p1.y * p2.zzz;
    const Fq s2 = p2.y * p1.zzz;
    const Fq p = u2 - u1;
    const Fq r = s2 - s1;
    if (p.isZero()) {
        if (r.isZero())
            return pdbl(p1);
        return XYZZPoint<Curve>::identity();
    }
    const Fq pp = p.sqr();
    const Fq ppp = pp * p;
    const Fq q = u1 * pp;
    Fq v = r.sqr();
    v = v - ppp;
    v = v - q;
    XYZZPoint<Curve> out;
    out.x = v - q;
    const Fq t = q - out.x;
    out.y = r * t - s1 * ppp;
    const Fq zz = p1.zz * p2.zz;
    out.zz = zz * pp;
    const Fq zzz = p1.zzz * p2.zzz;
    out.zzz = zzz * ppp;
    ops.mul += 14;
    ops.sqr += 2; // PP and R^2
    ops.add += 7;
    return out;
}

/**
 * Dedicated point-accumulation kernel (paper Algorithm 4):
 * acc' = acc + P for an affine P (ZZ = ZZZ = 1), 10 modular
 * multiplies instead of 14.
 */
template <typename Curve>
XYZZPoint<Curve>
pacc(const XYZZPoint<Curve> &acc, const AffinePoint<Curve> &p)
{
    using Fq = typename Curve::Fq;
    if (p.infinity)
        return acc;
    if (acc.isIdentity())
        return XYZZPoint<Curve>::fromAffine(p);
    auto &ops = ec::opCounters();

    const Fq u2 = p.x * acc.zz;
    const Fq s2 = p.y * acc.zzz;
    const Fq pp_ = u2 - acc.x;
    const Fq r = s2 - acc.y;
    if (pp_.isZero()) {
        if (r.isZero())
            return pdbl(acc);
        return XYZZPoint<Curve>::identity();
    }
    const Fq pp = pp_.sqr();
    const Fq ppp = pp * pp_;
    const Fq q = acc.x * pp;
    Fq v = r.sqr();
    v = v - ppp;
    v = v - q;
    XYZZPoint<Curve> out;
    out.x = v - q;
    const Fq t = q - out.x;
    out.y = r * t - acc.y * ppp;
    out.zz = acc.zz * pp;
    out.zzz = acc.zzz * ppp;
    ops.mul += 10;
    ops.sqr += 2; // PP and R^2
    ops.add += 7;
    return out;
}

/** Scalar multiplication by a raw integer (double-and-add). */
template <typename Curve, typename Scalar>
XYZZPoint<Curve>
pmul(const XYZZPoint<Curve> &p, const Scalar &k)
{
    XYZZPoint<Curve> acc = XYZZPoint<Curve>::identity();
    for (std::size_t i = k.bitLength(); i-- > 0;) {
        acc = pdbl(acc);
        if (k.bit(i))
            acc = padd(acc, p);
    }
    return acc;
}

} // namespace distmsm

#endif // DISTMSM_EC_POINT_H
