/**
 * @file
 * The BN254 G2 group: the sextic twist E'(Fp2): y^2 = x^3 + 3/(9+u).
 *
 * Real Groth16 proofs carry one element of G2 (that is what brings
 * the paper's proofs to ~127 bytes), and provers run one of their
 * MSMs over G2 points. The library's EC and MSM layers are generic
 * in the coordinate field, so this traits struct plus Fp2 is all G2
 * takes.
 *
 * The generator is derived at first use: the smallest-x point on the
 * twist, cleared by the BN cofactor h2 = 2p - r (for BN curves
 * #E'(Fp2) = r * (2p - r)), which puts it in the r-torsion subgroup
 * — required so that mod-r scalar arithmetic and the group law
 * commute. A test multiplies the generator by r and checks the
 * identity, pinning both the twist choice and the cofactor identity.
 */

#ifndef DISTMSM_EC_BN254_G2_H
#define DISTMSM_EC_BN254_G2_H

#include "src/ec/curves.h"
#include "src/field/fp2.h"

namespace distmsm {

/** u^2 = -1 in BN254's Fp2. */
struct Bn254Fq2Beta
{
    static constexpr Bn254Fq
    value()
    {
        return -Bn254Fq::one();
    }
};

using Bn254Fq2 = Fp2<Bn254Fq, Bn254Fq2Beta>;

/** BN254 G2 curve traits (compatible with the EC/MSM templates). */
struct Bn254G2
{
    using Fq = Bn254Fq2;
    using Fr = Bn254Fr;
    static constexpr unsigned kScalarBits = 254;
    static constexpr bool kAIsZero = true;
    static constexpr const char *kName = "BN254-G2";

    static Fq
    a()
    {
        return Fq::zero();
    }

    /** b' = 3 / (9 + u), the D-type sextic twist coefficient. */
    static Fq
    b()
    {
        static const Fq b2 = [] {
            const Fq xi{Bn254Fq::fromU64(9), Bn254Fq::one()};
            return Fq::fromU64(3) * xi.inverse();
        }();
        return b2;
    }

    /** The BN G2 cofactor h2 = 2p - r. */
    static BigInt<5>
    cofactor()
    {
        BigInt<5> h{};
        for (std::size_t i = 0; i < 4; ++i)
            h.limb[i] = Bn254Fq::modulus().limb[i];
        BigInt<5> p_wide = h;
        h.addInPlace(p_wide); // 2p
        BigInt<5> r_wide{};
        for (std::size_t i = 0; i < 4; ++i)
            r_wide.limb[i] = Bn254Fr::modulus().limb[i];
        h.subInPlace(r_wide);
        return h;
    }

    /** An r-torsion generator (cofactor-cleared smallest-x point). */
    static AffinePoint<Bn254G2>
    generator()
    {
        static const AffinePoint<Bn254G2> g = [] {
            for (std::uint64_t n = 1;; ++n) {
                // Try x = n + u to engage both coordinates.
                const Fq x{Bn254Fq::fromU64(n), Bn254Fq::one()};
                const Fq rhs = x.sqr() * x + b();
                if (!rhs.isSquare() || rhs.isZero())
                    continue;
                const auto p = AffinePoint<Bn254G2>::fromXY(
                    x, rhs.sqrt());
                const auto cleared =
                    pmul(XYZZPoint<Bn254G2>::fromAffine(p),
                         cofactor());
                if (cleared.isIdentity())
                    continue;
                return cleared.toAffine();
            }
        }();
        return g;
    }
};

} // namespace distmsm

#endif // DISTMSM_EC_BN254_G2_H
