/**
 * @file
 * Field-operation counters for EC arithmetic.
 *
 * The paper's analysis is in units of modular multiplications (14 per
 * PADD, 10 per PACC); these counters let tests assert the formula
 * costs and let the simulator's cost model calibrate from real runs.
 */

#ifndef DISTMSM_EC_OP_COUNTERS_H
#define DISTMSM_EC_OP_COUNTERS_H

#include <cstdint>

namespace distmsm::ec {

/** Global tallies of field operations executed by the EC layer. */
struct OpCounters
{
    std::uint64_t mul = 0;
    /** Squarings among `mul` (sqr <= mul): the share the dedicated
     *  squaring path (bigint/squaring.h) serves at roughly half the
     *  cross-product work of a general product. Kept as a subset so
     *  the paper's modmul formulas (14/10 per PADD/PACC) still read
     *  directly off `mul`. */
    std::uint64_t sqr = 0;
    std::uint64_t add = 0; ///< additions and subtractions
    std::uint64_t inv = 0; ///< full modular inversions
    /**
     * Fp products this thread actually retired through the
     * tensor-core differential path (field/backend.h scope active).
     * Counted at the field-dispatch layer, one per executed
     * multiplication or squaring — unlike `mul`/`sqr`, which the EC
     * formulas charge at their nominal per-op constants — so tests
     * can assert both that the backend engaged (tcMul > 0) and that
     * it did all the work (tcMul covers every runtime product).
     */
    std::uint64_t tcMul = 0;

    void
    reset()
    {
        mul = 0;
        sqr = 0;
        add = 0;
        inv = 0;
        tcMul = 0;
    }
};

/**
 * The calling thread's counter instance. Thread-local so EC
 * arithmetic executed on support::ThreadPool workers never races:
 * calibration and tests reset/read the counters around serial code
 * on their own thread.
 */
inline OpCounters &
opCounters()
{
    static thread_local OpCounters counters;
    return counters;
}

} // namespace distmsm::ec

#endif // DISTMSM_EC_OP_COUNTERS_H
