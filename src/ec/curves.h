/**
 * @file
 * The four curves evaluated in the paper (Table 1): BN254, BLS12-377,
 * BLS12-381 and MNT4753 (stand-in coefficients; see DESIGN.md).
 *
 * Each traits struct provides the base field Fq, scalar field Fr,
 * curve coefficients and a verified generator point.
 */

#ifndef DISTMSM_EC_CURVES_H
#define DISTMSM_EC_CURVES_H

#include "src/ec/point.h"
#include "src/field/curve_constants.h"
#include "src/field/field_params.h"

namespace distmsm {

/** Expands one generated curve namespace into a traits struct. */
#define DISTMSM_CURVE(Name, ns, FqT, FrT, a_is_zero)                    \
    struct Name                                                         \
    {                                                                   \
        using Fq = FqT;                                                 \
        using Fr = FrT;                                                 \
        static constexpr unsigned kScalarBits =                         \
            constants::ns::kScalarBits;                                 \
        static constexpr bool kAIsZero = a_is_zero;                     \
        static constexpr const char *kName = #Name;                     \
        static constexpr Fq                                             \
        a()                                                             \
        {                                                               \
            return Fq::fromRaw(                                         \
                Fq::Base::fromLimbs(constants::ns::kA));                \
        }                                                               \
        static constexpr Fq                                             \
        b()                                                             \
        {                                                               \
            return Fq::fromRaw(                                         \
                Fq::Base::fromLimbs(constants::ns::kB));                \
        }                                                               \
        static AffinePoint<Name>                                        \
        generator()                                                     \
        {                                                               \
            return AffinePoint<Name>::fromXY(                           \
                Fq::fromRaw(Fq::Base::fromLimbs(constants::ns::kGx)),   \
                Fq::fromRaw(Fq::Base::fromLimbs(constants::ns::kGy)));  \
        }                                                               \
    }

DISTMSM_CURVE(Bn254, bn254, Bn254Fq, Bn254Fr, true);
DISTMSM_CURVE(Bls377, bls377, Bls377Fq, Bls377Fr, true);
DISTMSM_CURVE(Bls381, bls381, Bls381Fq, Bls381Fr, true);
DISTMSM_CURVE(Mnt4753, mnt4753, Mnt4753Fq, Mnt4753Fr, false);

#undef DISTMSM_CURVE

} // namespace distmsm

#endif // DISTMSM_EC_CURVES_H
