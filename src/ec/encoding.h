/**
 * @file
 * Compressed point encoding.
 *
 * zkSNARK deployments ship proofs over the wire ("proof sizes under
 * 1KB", 127 bytes in the paper's Table 4 setting), so points travel
 * compressed: the x coordinate in big-endian bytes plus one flag
 * byte carrying the identity marker and the parity of y. Decoding
 * recovers y as the square root of x^3 + ax + b with the recorded
 * parity.
 */

#ifndef DISTMSM_EC_ENCODING_H
#define DISTMSM_EC_ENCODING_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/ec/point.h"

namespace distmsm {

/** Encoded size in bytes for Curve: one flag byte + x coordinate. */
template <typename Curve>
constexpr std::size_t
encodedPointSize()
{
    return 1 + (Curve::Fq::Params::kBits + 7) / 8;
}

/** Flag-byte values. */
enum class PointFlag : std::uint8_t
{
    Identity = 0,
    EvenY = 2,
    OddY = 3,
};

/** Compress @p p to flag byte + big-endian x. */
template <typename Curve>
std::vector<std::uint8_t>
encodePoint(const AffinePoint<Curve> &p)
{
    std::vector<std::uint8_t> out(encodedPointSize<Curve>(), 0);
    if (p.infinity) {
        out[0] = static_cast<std::uint8_t>(PointFlag::Identity);
        return out;
    }
    out[0] = static_cast<std::uint8_t>(
        p.y.toRaw().bit(0) ? PointFlag::OddY : PointFlag::EvenY);
    const auto raw = p.x.toRaw();
    const std::size_t n_bytes = out.size() - 1;
    for (std::size_t i = 0; i < n_bytes; ++i) {
        const std::size_t byte = n_bytes - 1 - i;
        out[1 + i] = static_cast<std::uint8_t>(
            raw.limb[byte / 8] >> (8 * (byte % 8)));
    }
    return out;
}

/**
 * Decompress; returns nullopt for malformed input (bad flag, x not
 * on the curve, or x >= p).
 */
template <typename Curve>
std::optional<AffinePoint<Curve>>
decodePoint(const std::vector<std::uint8_t> &bytes)
{
    using Fq = typename Curve::Fq;
    if (bytes.size() != encodedPointSize<Curve>())
        return std::nullopt;
    if (bytes[0] == static_cast<std::uint8_t>(PointFlag::Identity)) {
        for (std::size_t i = 1; i < bytes.size(); ++i) {
            if (bytes[i] != 0)
                return std::nullopt;
        }
        return AffinePoint<Curve>::identity();
    }
    if (bytes[0] != static_cast<std::uint8_t>(PointFlag::EvenY) &&
        bytes[0] != static_cast<std::uint8_t>(PointFlag::OddY)) {
        return std::nullopt;
    }

    typename Fq::Base raw{};
    const std::size_t n_bytes = bytes.size() - 1;
    for (std::size_t i = 0; i < n_bytes; ++i) {
        const std::size_t byte = n_bytes - 1 - i;
        raw.limb[byte / 8] |= static_cast<std::uint64_t>(bytes[1 + i])
                              << (8 * (byte % 8));
    }
    if (!(raw < Fq::modulus()))
        return std::nullopt;

    const Fq x = Fq::fromRaw(raw);
    const Fq rhs = x.sqr() * x + Curve::a() * x + Curve::b();
    if (rhs.legendre() != 1) {
        if (rhs.isZero()) {
            // y = 0: a two-torsion point.
            return AffinePoint<Curve>::fromXY(x, Fq::zero());
        }
        return std::nullopt;
    }
    Fq y = rhs.sqrt();
    const bool want_odd =
        bytes[0] == static_cast<std::uint8_t>(PointFlag::OddY);
    if (y.toRaw().bit(0) != want_odd)
        y = -y;
    return AffinePoint<Curve>::fromXY(x, y);
}

} // namespace distmsm

#endif // DISTMSM_EC_ENCODING_H
