/**
 * @file
 * Dedicated big-integer squaring.
 *
 * Squaring computes each cross product a_i * a_j (i < j) once and
 * doubles it, cutting the multiplication count nearly in half
 * relative to a general product — one of the standard optimizations
 * the paper's baseline kernels ship ("integrating most best
 * practices"). The EC formulas use squarings in PP, R*R and the
 * doubling path, so Fp::sqr routes through here.
 */

#ifndef DISTMSM_BIGINT_SQUARING_H
#define DISTMSM_BIGINT_SQUARING_H

#include <array>

#include "src/bigint/bigint.h"

namespace distmsm {

/** Full 2N-limb square of an N-limb integer (cross products once). */
template <std::size_t N>
constexpr std::array<std::uint64_t, 2 * N>
sqrFull(const BigInt<N> &a)
{
    std::array<std::uint64_t, 2 * N> t{};

    // Cross products a_i * a_j for i < j.
    for (std::size_t i = 0; i < N; ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = i + 1; j < N; ++j)
            t[i + j] = mac(a.limb[i], a.limb[j], t[i + j], carry,
                           carry);
        t[i + N] = carry;
    }

    // Double the cross products (shift left by one bit).
    std::uint64_t msb = 0;
    for (std::size_t i = 0; i < 2 * N; ++i) {
        const std::uint64_t next_msb = t[i] >> 63;
        t[i] = (t[i] << 1) | msb;
        msb = next_msb;
    }

    // Add the diagonal squares a_i^2.
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < N; ++i) {
        const unsigned __int128 sq =
            static_cast<unsigned __int128>(a.limb[i]) * a.limb[i];
        unsigned __int128 lo =
            static_cast<unsigned __int128>(t[2 * i]) +
            static_cast<std::uint64_t>(sq) + carry;
        t[2 * i] = static_cast<std::uint64_t>(lo);
        unsigned __int128 hi =
            static_cast<unsigned __int128>(t[2 * i + 1]) +
            static_cast<std::uint64_t>(sq >> 64) +
            static_cast<std::uint64_t>(lo >> 64);
        t[2 * i + 1] = static_cast<std::uint64_t>(hi);
        carry = static_cast<std::uint64_t>(hi >> 64);
    }
    return t;
}

} // namespace distmsm

#endif // DISTMSM_BIGINT_SQUARING_H
