/**
 * @file
 * Fixed-width little-endian big integers.
 *
 * BigInt<N> is an N-limb (64-bit limbs) unsigned integer. It is the
 * storage type for field elements of every supported curve: N = 4
 * covers 254/255-bit values, N = 6 covers 377/381-bit values and
 * N = 12 covers 753-bit values.
 *
 * The type is a trivially copyable aggregate so arrays of points can
 * be memcpy'd into the simulated device memories.
 */

#ifndef DISTMSM_BIGINT_BIGINT_H
#define DISTMSM_BIGINT_BIGINT_H

#include <array>
#include <bit>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/support/hex.h"
#include "src/support/prng.h"

namespace distmsm {

/** Add with carry-in; returns sum and sets @p carry to the carry-out. */
inline std::uint64_t
addc(std::uint64_t a, std::uint64_t b, std::uint64_t &carry)
{
    const unsigned __int128 s =
        static_cast<unsigned __int128>(a) + b + carry;
    carry = static_cast<std::uint64_t>(s >> 64);
    return static_cast<std::uint64_t>(s);
}

/** Subtract with borrow-in; returns difference, sets @p borrow (0/1). */
inline std::uint64_t
subb(std::uint64_t a, std::uint64_t b, std::uint64_t &borrow)
{
    const unsigned __int128 d = static_cast<unsigned __int128>(a) - b -
                                borrow;
    borrow = static_cast<std::uint64_t>(d >> 64) & 1;
    return static_cast<std::uint64_t>(d);
}

/** a * b + c + d without overflow; returns low limb, sets @p hi. */
inline std::uint64_t
mac(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d,
    std::uint64_t &hi)
{
    const unsigned __int128 t =
        static_cast<unsigned __int128>(a) * b + c + d;
    hi = static_cast<std::uint64_t>(t >> 64);
    return static_cast<std::uint64_t>(t);
}

/**
 * Fixed-width unsigned integer with N 64-bit limbs, little-endian.
 */
template <std::size_t N>
struct BigInt
{
    static_assert(N >= 1);

    /** Number of limbs. */
    static constexpr std::size_t kLimbs = N;
    /** Width in bits. */
    static constexpr std::size_t kBits = 64 * N;

    std::uint64_t limb[N];

    /** The zero value. */
    static constexpr BigInt
    zero()
    {
        return BigInt{};
    }

    /** Value from a single 64-bit word. */
    static constexpr BigInt
    fromU64(std::uint64_t v)
    {
        BigInt r{};
        r.limb[0] = v;
        return r;
    }

    /** Value from a little-endian limb array. */
    static constexpr BigInt
    fromLimbs(const std::uint64_t *src)
    {
        BigInt r{};
        for (std::size_t i = 0; i < N; ++i)
            r.limb[i] = src[i];
        return r;
    }

    /** Parse from hex ("0x" optional); returns zero on failure. */
    static BigInt
    fromHex(std::string_view text)
    {
        BigInt r{};
        hexToLimbs(text, r.limb, N);
        return r;
    }

    /** Uniformly random value over the full 64*N-bit range. */
    static BigInt
    random(Prng &prng)
    {
        BigInt r{};
        for (std::size_t i = 0; i < N; ++i)
            r.limb[i] = prng();
        return r;
    }

    /** Uniformly random value strictly below @p bound (bound != 0). */
    static BigInt
    randomBelow(Prng &prng, const BigInt &bound)
    {
        // Rejection sampling from [0, 2^ceil(log2 bound)).
        const std::size_t bits = bound.bitLength();
        BigInt r;
        do {
            r = random(prng);
            r.truncateToBits(bits);
        } while (r >= bound);
        return r;
    }

    constexpr bool
    isZero() const
    {
        for (std::size_t i = 0; i < N; ++i) {
            if (limb[i] != 0)
                return false;
        }
        return true;
    }

    /** true when the value fits in 64 bits and equals @p v. */
    constexpr bool
    isU64(std::uint64_t v) const
    {
        if (limb[0] != v)
            return false;
        for (std::size_t i = 1; i < N; ++i) {
            if (limb[i] != 0)
                return false;
        }
        return true;
    }

    constexpr bool
    operator==(const BigInt &o) const
    {
        for (std::size_t i = 0; i < N; ++i) {
            if (limb[i] != o.limb[i])
                return false;
        }
        return true;
    }

    constexpr std::strong_ordering
    operator<=>(const BigInt &o) const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limb[i] != o.limb[i])
                return limb[i] <=> o.limb[i];
        }
        return std::strong_ordering::equal;
    }

    /** Bit @p i (0 = least significant). */
    constexpr bool
    bit(std::size_t i) const
    {
        return (limb[i / 64] >> (i % 64)) & 1;
    }

    /** Set bit @p i to 1. */
    constexpr void
    setBit(std::size_t i)
    {
        limb[i / 64] |= std::uint64_t{1} << (i % 64);
    }

    /** Position of the highest set bit plus one; 0 for the zero value. */
    constexpr std::size_t
    bitLength() const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limb[i] != 0)
                return 64 * i + 64 - std::countl_zero(limb[i]);
        }
        return 0;
    }

    /**
     * Extract @p width bits starting at bit @p offset (width <= 64).
     * Bits beyond the top are read as zero. This is the scalar-window
     * extraction used by Pippenger's algorithm.
     */
    constexpr std::uint64_t
    bits(std::size_t offset, std::size_t width) const
    {
        if (offset >= kBits || width == 0)
            return 0;
        const std::size_t li = offset / 64;
        const std::size_t sh = offset % 64;
        std::uint64_t v = limb[li] >> sh;
        if (sh != 0 && li + 1 < N)
            v |= limb[li + 1] << (64 - sh);
        if (width < 64)
            v &= (std::uint64_t{1} << width) - 1;
        return v;
    }

    /** Zero all bits at positions >= @p bits. */
    constexpr void
    truncateToBits(std::size_t bits)
    {
        for (std::size_t i = 0; i < N; ++i) {
            if (64 * i >= bits) {
                limb[i] = 0;
            } else if (64 * (i + 1) > bits) {
                limb[i] &= (std::uint64_t{1} << (bits % 64)) - 1;
            }
        }
    }

    /** this += o; returns the carry-out. */
    constexpr std::uint64_t
    addInPlace(const BigInt &o)
    {
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < N; ++i)
            limb[i] = addc(limb[i], o.limb[i], carry);
        return carry;
    }

    /** this -= o; returns the borrow-out (0 or 1). */
    constexpr std::uint64_t
    subInPlace(const BigInt &o)
    {
        std::uint64_t borrow = 0;
        for (std::size_t i = 0; i < N; ++i)
            limb[i] = subb(limb[i], o.limb[i], borrow);
        return borrow;
    }

    /** Logical right shift by @p k bits (k < 64*N). */
    constexpr BigInt
    shr(std::size_t k) const
    {
        BigInt r{};
        const std::size_t limb_shift = k / 64;
        const std::size_t bit_shift = k % 64;
        for (std::size_t i = 0; i + limb_shift < N; ++i) {
            r.limb[i] = limb[i + limb_shift] >> bit_shift;
            if (bit_shift != 0 && i + limb_shift + 1 < N)
                r.limb[i] |= limb[i + limb_shift + 1] << (64 - bit_shift);
        }
        return r;
    }

    /** Logical left shift by @p k bits (k < 64*N); high bits drop. */
    constexpr BigInt
    shl(std::size_t k) const
    {
        BigInt r{};
        const std::size_t limb_shift = k / 64;
        const std::size_t bit_shift = k % 64;
        for (std::size_t i = N; i-- > limb_shift;) {
            r.limb[i] = limb[i - limb_shift] << bit_shift;
            if (bit_shift != 0 && i > limb_shift) {
                r.limb[i] |=
                    limb[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        return r;
    }

    /** Render as 0x-prefixed hex. */
    std::string
    toHex() const
    {
        return hexFromLimbs(limb, N);
    }
};

/** Full 2N-limb product of two N-limb integers (schoolbook). */
template <std::size_t N>
constexpr std::array<std::uint64_t, 2 * N>
mulFull(const BigInt<N> &a, const BigInt<N> &b)
{
    std::array<std::uint64_t, 2 * N> t{};
    for (std::size_t i = 0; i < N; ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < N; ++j)
            t[i + j] = mac(a.limb[i], b.limb[j], t[i + j], carry, carry);
        t[i + N] = carry;
    }
    return t;
}

/**
 * Low N limbs of a * b (wrapping, i.e. the product mod 2^(64N)).
 * With values read as two's complement this is exact signed
 * arithmetic mod 2^(64N) — the representation the GLV decomposition
 * uses for its short lattice coordinates.
 */
template <std::size_t N>
constexpr BigInt<N>
mulLow(const BigInt<N> &a, const BigInt<N> &b)
{
    BigInt<N> t{};
    for (std::size_t i = 0; i < N; ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; i + j < N; ++j)
            t.limb[i + j] =
                mac(a.limb[i], b.limb[j], t.limb[i + j], carry,
                    carry);
    }
    return t;
}

/** (a + b) mod m, assuming a, b < m. */
template <std::size_t N>
constexpr BigInt<N>
addMod(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &m)
{
    BigInt<N> r = a;
    const std::uint64_t carry = r.addInPlace(b);
    if (carry != 0 || r >= m)
        r.subInPlace(m);
    return r;
}

/** (a - b) mod m, assuming a, b < m. */
template <std::size_t N>
constexpr BigInt<N>
subMod(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &m)
{
    BigInt<N> r = a;
    if (r.subInPlace(b) != 0)
        r.addInPlace(m);
    return r;
}

} // namespace distmsm

#endif // DISTMSM_BIGINT_BIGINT_H
