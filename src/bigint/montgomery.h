/**
 * @file
 * Montgomery modular multiplication.
 *
 * Implements the three operand-scanning strategies analysed by
 * Koc, Acar and Kaliski ("Analyzing and Comparing Montgomery
 * Multiplication Algorithms"), which the paper cites as the standard
 * implementation space (Section 2.2):
 *
 *  - SOS  (Separated Operand Scanning): full 2N-limb product first,
 *    then N reduction sweeps. This is Algorithm 2 in the paper and the
 *    variant whose second wide multiplication (m * n) DistMSM deploys
 *    to tensor cores (src/tcmul).
 *  - CIOS (Coarsely Integrated Operand Scanning): multiplication and
 *    reduction interleaved per outer limb; the default fast path.
 *  - FIOS (Finely Integrated Operand Scanning): both inner loops fused.
 *
 * All variants assume inputs < modulus and R = 2^(64N), and return a
 * value < modulus. n0' ("inv64") is -modulus^-1 mod 2^64, the
 * substitution the paper highlights for reducing C * n' work.
 */

#ifndef DISTMSM_BIGINT_MONTGOMERY_H
#define DISTMSM_BIGINT_MONTGOMERY_H

#include <array>
#include <cstdint>

#include "src/bigint/bigint.h"
#include "src/bigint/squaring.h"
#include "src/support/check.h"

namespace distmsm {

/**
 * Montgomery context: the modulus together with its precomputed
 * reduction constants. One static instance exists per field.
 */
template <std::size_t N>
struct MontgomeryParams
{
    BigInt<N> modulus;
    /** -modulus^-1 mod 2^64. */
    std::uint64_t inv64;
    /** R mod modulus (the Montgomery form of 1). */
    BigInt<N> r;
    /** R^2 mod modulus (for conversion into Montgomery form). */
    BigInt<N> r2;
};

/** Final conditional subtraction shared by all reduction variants. */
template <std::size_t N>
constexpr BigInt<N>
montFinalSub(BigInt<N> t, std::uint64_t extra_bit, const BigInt<N> &mod)
{
    if (extra_bit != 0 || t >= mod)
        t.subInPlace(mod);
    return t;
}

/**
 * Montgomery reduction of a 2N-limb value: returns t * R^-1 mod m.
 * @p t must be < m * R (always true for products of reduced inputs).
 */
template <std::size_t N>
constexpr BigInt<N>
montReduce(std::array<std::uint64_t, 2 * N> t,
           const BigInt<N> &mod, std::uint64_t inv64)
{
    std::uint64_t overflow = 0;
    for (std::size_t i = 0; i < N; ++i) {
        const std::uint64_t m = t[i] * inv64;
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < N; ++j) {
            t[i + j] = mac(m, mod.limb[j], t[i + j], carry, carry);
        }
        // Propagate the sweep's carry through the upper limbs.
        for (std::size_t j = i + N; carry != 0; ++j) {
            if (j == 2 * N) {
                overflow += carry;
                break;
            }
            std::uint64_t c = carry;
            carry = 0;
            t[j] = addc(t[j], c, carry);
            c = 0;
        }
    }
    BigInt<N> r{};
    for (std::size_t i = 0; i < N; ++i)
        r.limb[i] = t[N + i];
    return montFinalSub(r, overflow, mod);
}

/** SOS Montgomery multiplication (paper Algorithm 2). */
template <std::size_t N>
constexpr BigInt<N>
montMulSOS(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &mod,
           std::uint64_t inv64)
{
    return montReduce<N>(mulFull(a, b), mod, inv64);
}

/** CIOS Montgomery multiplication; the default fast path. */
template <std::size_t N>
constexpr BigInt<N>
montMulCIOS(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &mod,
            std::uint64_t inv64)
{
    std::uint64_t t[N + 2] = {};
    for (std::size_t i = 0; i < N; ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < N; ++j)
            t[j] = mac(a.limb[j], b.limb[i], t[j], carry, carry);
        std::uint64_t c2 = 0;
        t[N] = addc(t[N], carry, c2);
        t[N + 1] = c2;

        const std::uint64_t m = t[0] * inv64;
        carry = 0;
        mac(m, mod.limb[0], t[0], carry, carry);
        for (std::size_t j = 1; j < N; ++j)
            t[j - 1] = mac(m, mod.limb[j], t[j], carry, carry);
        c2 = 0;
        t[N - 1] = addc(t[N], carry, c2);
        t[N] = t[N + 1] + c2;
    }
    BigInt<N> r{};
    for (std::size_t i = 0; i < N; ++i)
        r.limb[i] = t[i];
    return montFinalSub(r, t[N], mod);
}

/** FIOS Montgomery multiplication; fused inner loops. */
template <std::size_t N>
constexpr BigInt<N>
montMulFIOS(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &mod,
            std::uint64_t inv64)
{
    using U128 = unsigned __int128;
    std::uint64_t t[N + 1] = {};
    for (std::size_t i = 0; i < N; ++i) {
        U128 sum = static_cast<U128>(a.limb[0]) * b.limb[i] + t[0];
        const std::uint64_t m = static_cast<std::uint64_t>(sum) * inv64;
        U128 red = static_cast<U128>(m) * mod.limb[0] +
                   static_cast<std::uint64_t>(sum);
        std::uint64_t c1 = static_cast<std::uint64_t>(sum >> 64);
        std::uint64_t c2 = static_cast<std::uint64_t>(red >> 64);
        for (std::size_t j = 1; j < N; ++j) {
            sum = static_cast<U128>(a.limb[j]) * b.limb[i] + t[j] + c1;
            c1 = static_cast<std::uint64_t>(sum >> 64);
            red = static_cast<U128>(m) * mod.limb[j] +
                  static_cast<std::uint64_t>(sum) + c2;
            c2 = static_cast<std::uint64_t>(red >> 64);
            t[j - 1] = static_cast<std::uint64_t>(red);
        }
        const U128 tail = static_cast<U128>(t[N]) + c1 + c2;
        t[N - 1] = static_cast<std::uint64_t>(tail);
        t[N] = static_cast<std::uint64_t>(tail >> 64);
    }
    BigInt<N> r{};
    for (std::size_t i = 0; i < N; ++i)
        r.limb[i] = t[i];
    return montFinalSub(r, t[N], mod);
}

/**
 * Montgomery squaring via the dedicated big-integer square (each
 * cross product computed once and doubled; see bigint/squaring.h)
 * followed by a full SOS-style reduction sweep.
 */
template <std::size_t N>
constexpr BigInt<N>
montSqr(const BigInt<N> &a, const BigInt<N> &mod, std::uint64_t inv64)
{
    return montReduce<N>(sqrFull(a), mod, inv64);
}

/** Historic alias for montSqr (both use the dedicated square). */
template <std::size_t N>
constexpr BigInt<N>
montSqrDedicated(const BigInt<N> &a, const BigInt<N> &mod,
                 std::uint64_t inv64)
{
    return montSqr(a, mod, inv64);
}

/**
 * Montgomery exponentiation: base (Montgomery form) raised to the raw
 * integer exponent @p e; returns Montgomery form.
 */
template <std::size_t N, std::size_t M>
constexpr BigInt<N>
montPow(const BigInt<N> &base, const BigInt<M> &e,
        const MontgomeryParams<N> &p)
{
    BigInt<N> acc = p.r; // Montgomery 1
    const std::size_t top = e.bitLength();
    for (std::size_t i = top; i-- > 0;) {
        acc = montSqr(acc, p.modulus, p.inv64);
        if (e.bit(i))
            acc = montMulCIOS(acc, base, p.modulus, p.inv64);
    }
    return acc;
}

/**
 * Modular inverse of @p a (raw form) modulo the odd prime @p mod via
 * the binary extended Euclidean algorithm. @p a must be non-zero.
 * Returns the raw-form inverse.
 */
template <std::size_t N>
BigInt<N>
modInverse(const BigInt<N> &a, const BigInt<N> &mod)
{
    DISTMSM_REQUIRE(!a.isZero(), "modInverse of zero");
    BigInt<N> u = a, v = mod;
    BigInt<N> x1 = BigInt<N>::fromU64(1), x2 = BigInt<N>::zero();

    auto halve_mod = [&](BigInt<N> &x) {
        // x = x/2 mod `mod` (mod odd): if x even shift, else (x+mod)/2
        // where the addition's carry becomes the result's top bit.
        std::uint64_t carry = 0;
        if (x.bit(0))
            carry = x.addInPlace(mod);
        x = x.shr(1);
        if (carry)
            x.limb[N - 1] |= std::uint64_t{1} << 63;
    };

    while (!u.isU64(1) && !v.isU64(1)) {
        while (!u.bit(0)) {
            u = u.shr(1);
            halve_mod(x1);
        }
        while (!v.bit(0)) {
            v = v.shr(1);
            halve_mod(x2);
        }
        if (u >= v) {
            u.subInPlace(v);
            x1 = subMod(x1, x2, mod);
        } else {
            v.subInPlace(u);
            x2 = subMod(x2, x1, mod);
        }
    }
    return u.isU64(1) ? x1 : x2;
}

} // namespace distmsm

#endif // DISTMSM_BIGINT_MONTGOMERY_H
