/**
 * @file
 * Quadratic extension fields Fp2 = Fp[u] / (u^2 - beta).
 *
 * Pairing-based zkSNARKs place half of every proof in G2, the curve
 * over Fp2 (the paper's 127-byte BN254 proofs are two G1 points plus
 * one G2 point), and real provers run one of their MSMs over G2.
 * Because this library's EC and MSM layers are generic in the
 * coordinate field, providing Fp2 with the same interface as Fp is
 * all it takes to light up G2 points, G2 MSM and G2 proof elements.
 *
 * beta is a quadratic non-residue of the base field (u^2 = beta).
 * For BN254, beta = -1.
 */

#ifndef DISTMSM_FIELD_FP2_H
#define DISTMSM_FIELD_FP2_H

#include <string>

#include "src/support/check.h"
#include "src/support/prng.h"

namespace distmsm {

/**
 * An element a0 + a1*u of Fp2 over @p F, with u^2 = -Beta... see
 * BetaTag: u^2 equals the tag's value() in F.
 */
template <typename F, typename BetaTag>
class Fp2
{
  public:
    using Base = F;
    static constexpr std::size_t kLimbs = F::kLimbs;

    /** Width descriptor used by the simulator layers. */
    struct Params
    {
        static constexpr unsigned kBits = 2 * F::Params::kBits;
    };

    constexpr Fp2() = default;
    constexpr Fp2(const F &c0, const F &c1) : c0_(c0), c1_(c1) {}

    static constexpr Fp2 zero() { return Fp2{}; }
    static constexpr Fp2 one() { return Fp2{F::one(), F::zero()}; }

    static constexpr Fp2
    fromU64(std::uint64_t v)
    {
        return Fp2{F::fromU64(v), F::zero()};
    }

    static Fp2
    random(Prng &prng)
    {
        return Fp2{F::random(prng), F::random(prng)};
    }

    /** u^2 as an element of F. */
    static constexpr F beta() { return BetaTag::value(); }

    const F &c0() const { return c0_; }
    const F &c1() const { return c1_; }

    constexpr bool
    isZero() const
    {
        return c0_.isZero() && c1_.isZero();
    }

    constexpr bool
    operator==(const Fp2 &o) const
    {
        return c0_ == o.c0_ && c1_ == o.c1_;
    }

    constexpr Fp2
    operator+(const Fp2 &o) const
    {
        return Fp2{c0_ + o.c0_, c1_ + o.c1_};
    }

    constexpr Fp2
    operator-(const Fp2 &o) const
    {
        return Fp2{c0_ - o.c0_, c1_ - o.c1_};
    }

    constexpr Fp2 operator-() const { return Fp2{-c0_, -c1_}; }

    /** Karatsuba-style product: 3 base-field multiplications. */
    constexpr Fp2
    operator*(const Fp2 &o) const
    {
        const F v0 = c0_ * o.c0_;
        const F v1 = c1_ * o.c1_;
        const F mixed = (c0_ + c1_) * (o.c0_ + o.c1_) - v0 - v1;
        return Fp2{v0 + beta() * v1, mixed};
    }

    constexpr Fp2 &operator+=(const Fp2 &o) { return *this = *this + o; }
    constexpr Fp2 &operator-=(const Fp2 &o) { return *this = *this - o; }
    constexpr Fp2 &operator*=(const Fp2 &o) { return *this = *this * o; }

    constexpr Fp2
    sqr() const
    {
        // (a + bu)^2 = a^2 + beta b^2 + 2ab u.
        const F a2 = c0_.sqr();
        const F b2 = c1_.sqr();
        return Fp2{a2 + beta() * b2, (c0_ * c1_).dbl()};
    }

    constexpr Fp2 dbl() const { return *this + *this; }

    /** Conjugate a - bu. */
    constexpr Fp2 conjugate() const { return Fp2{c0_, -c1_}; }

    /** Norm a^2 - beta b^2 (an element of F). */
    constexpr F
    norm() const
    {
        return c0_.sqr() - beta() * c1_.sqr();
    }

    Fp2
    inverse() const
    {
        DISTMSM_REQUIRE(!isZero(), "inverse of zero Fp2 element");
        // (a + bu)^-1 = conj / norm.
        const F n_inv = norm().inverse();
        return Fp2{c0_ * n_inv, -(c1_ * n_inv)};
    }

    template <std::size_t M>
    Fp2
    pow(const BigInt<M> &e) const
    {
        Fp2 acc = one();
        for (std::size_t i = e.bitLength(); i-- > 0;) {
            acc = acc.sqr();
            if (e.bit(i))
                acc *= *this;
        }
        return acc;
    }

    /** Whether this element is a square in Fp2. */
    bool
    isSquare() const
    {
        // c is a square in Fp2 iff norm(c) is a square in Fp.
        return isZero() || norm().legendre() != -1;
    }

    /**
     * Square root via the complex method: with alpha = sqrt(norm),
     * delta = (a + alpha)/2 (or (a - alpha)/2 if that is not a
     * square), x0 = sqrt(delta), x1 = b / (2 x0). Requires
     * isSquare().
     */
    Fp2
    sqrt() const
    {
        if (isZero())
            return zero();
        DISTMSM_REQUIRE(isSquare(), "sqrt of an Fp2 non-square");
        if (c1_.isZero()) {
            // Purely real: sqrt(a) in F, or sqrt(a/beta) * u.
            if (c0_.legendre() != -1)
                return Fp2{c0_.sqrt(), F::zero()};
            const F t = c0_ * beta().inverse();
            return Fp2{F::zero(), t.sqrt()};
        }
        const F alpha = norm().sqrt();
        const F half = F::fromU64(2).inverse();
        F delta = (c0_ + alpha) * half;
        if (delta.legendre() == -1)
            delta = (c0_ - alpha) * half;
        const F x0 = delta.sqrt();
        const F x1 = c1_ * (x0.dbl()).inverse();
        const Fp2 root{x0, x1};
        DISTMSM_ASSERT(root.sqr() == *this);
        return root;
    }

    std::string
    toHex() const
    {
        return c0_.toHex() + " + " + c1_.toHex() + "*u";
    }

  private:
    F c0_;
    F c1_;
};

} // namespace distmsm

#endif // DISTMSM_FIELD_FP2_H
