/**
 * @file
 * Batch field inversion (Montgomery's trick).
 *
 * Inverts n field elements with one modular inversion and 3(n-1)
 * multiplications; used to normalize large point arrays to affine
 * form when generating MSM workloads.
 */

#ifndef DISTMSM_FIELD_BATCH_INVERSE_H
#define DISTMSM_FIELD_BATCH_INVERSE_H

#include <vector>

#include "src/support/check.h"

namespace distmsm {

/**
 * Replace every element of @p values with its inverse. All elements
 * must be non-zero.
 */
template <typename Fq>
void
batchInverse(std::vector<Fq> &values)
{
    if (values.empty())
        return;
    // prefix[i] = values[0] * ... * values[i]
    std::vector<Fq> prefix(values.size());
    Fq acc = Fq::one();
    for (std::size_t i = 0; i < values.size(); ++i) {
        DISTMSM_REQUIRE(!values[i].isZero(),
                        "batchInverse of zero element");
        acc *= values[i];
        prefix[i] = acc;
    }
    Fq inv = acc.inverse();
    for (std::size_t i = values.size(); i-- > 1;) {
        const Fq this_inv = inv * prefix[i - 1];
        inv *= values[i];
        values[i] = this_inv;
    }
    values[0] = inv;
}

} // namespace distmsm

#endif // DISTMSM_FIELD_BATCH_INVERSE_H
