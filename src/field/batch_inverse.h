/**
 * @file
 * Batch field inversion (Montgomery's trick).
 *
 * Inverts n field elements with one modular inversion and 3(n-1)
 * multiplications; used to normalize large point arrays to affine
 * form and to amortize the inversion of the batched-affine bucket
 * accumulator's slope denominators. The hot-path callers loop over
 * many small batches, so every variant takes a caller-owned scratch
 * buffer that is grown once and reused across calls.
 */

#ifndef DISTMSM_FIELD_BATCH_INVERSE_H
#define DISTMSM_FIELD_BATCH_INVERSE_H

#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace distmsm {

/**
 * Replace every element of @p values with its inverse, reusing
 * @p scratch for the prefix products (resized as needed, capacity
 * kept across calls). All elements must be non-zero.
 */
template <typename Fq>
void
batchInverse(std::vector<Fq> &values, std::vector<Fq> &scratch)
{
    if (values.empty())
        return;
    // scratch[i] = values[0] * ... * values[i]
    scratch.resize(values.size());
    Fq acc = Fq::one();
    for (std::size_t i = 0; i < values.size(); ++i) {
        DISTMSM_REQUIRE(!values[i].isZero(),
                        "batchInverse of zero element");
        acc *= values[i];
        scratch[i] = acc;
    }
    Fq inv = acc.inverse();
    for (std::size_t i = values.size(); i-- > 1;) {
        const Fq this_inv = inv * scratch[i - 1];
        inv *= values[i];
        values[i] = this_inv;
    }
    values[0] = inv;
}

/** Convenience overload with a call-local scratch buffer. */
template <typename Fq>
void
batchInverse(std::vector<Fq> &values)
{
    std::vector<Fq> scratch;
    batchInverse(values, scratch);
}

/**
 * Zero-tolerant batch inversion: zero elements are left as zero and
 * flagged in @p skipped (resized to values.size(); 1 = skipped).
 * Every non-zero element is replaced with its inverse. Returns the
 * number of skipped slots. Used where zeros encode routed-out edge
 * cases (identity points, equal-x additions) rather than errors.
 */
template <typename Fq>
std::size_t
batchInverseSkipZero(std::vector<Fq> &values,
                     std::vector<Fq> &scratch,
                     std::vector<std::uint8_t> &skipped)
{
    skipped.assign(values.size(), 0);
    if (values.empty())
        return 0;
    // scratch[i] = product of the non-zero values[0..i].
    scratch.resize(values.size());
    std::size_t n_skipped = 0;
    Fq acc = Fq::one();
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i].isZero()) {
            skipped[i] = 1;
            ++n_skipped;
        } else {
            acc *= values[i];
        }
        scratch[i] = acc;
    }
    Fq inv = acc.inverse();
    for (std::size_t i = values.size(); i-- > 1;) {
        if (skipped[i])
            continue;
        const Fq this_inv = inv * scratch[i - 1];
        inv *= values[i];
        values[i] = this_inv;
    }
    if (!skipped[0])
        values[0] = inv;
    return n_skipped;
}

} // namespace distmsm

#endif // DISTMSM_FIELD_BATCH_INVERSE_H
