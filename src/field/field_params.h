/**
 * @file
 * Parameter traits binding the generated constants to Fp.
 *
 * Eight fields: the base field (Fq, coordinates) and scalar field
 * (Fr, exponents) of each supported curve. Table 1 of the paper lists
 * the bit widths these provide.
 */

#ifndef DISTMSM_FIELD_FIELD_PARAMS_H
#define DISTMSM_FIELD_FIELD_PARAMS_H

#include "src/field/curve_constants.h"
#include "src/field/field.h"

namespace distmsm {

/** Expands one generated constants namespace into a traits struct. */
#define DISTMSM_FIELD_PARAMS(Name, ns)                                  \
    struct Name                                                         \
    {                                                                   \
        static constexpr std::size_t kLimbs = constants::ns::kLimbs;    \
        static constexpr unsigned kBits = constants::ns::kBits;         \
        static constexpr unsigned kTwoAdicity =                         \
            constants::ns::kTwoAdicity;                                 \
        static constexpr std::uint64_t kInv64 = constants::ns::kInv64;  \
        static constexpr std::uint64_t kQnrSmall =                      \
            constants::ns::kQnrSmall;                                   \
        static constexpr const std::uint64_t *kModulus =                \
            constants::ns::kModulus;                                    \
        static constexpr const std::uint64_t *kR = constants::ns::kR;   \
        static constexpr const std::uint64_t *kR2 = constants::ns::kR2; \
        static constexpr const std::uint64_t *kRootOfUnity =            \
            constants::ns::kRootOfUnity;                                \
        static constexpr const char *kName = #Name;                     \
    }

DISTMSM_FIELD_PARAMS(Bn254FqParams, bn254_fq);
DISTMSM_FIELD_PARAMS(Bn254FrParams, bn254_fr);
DISTMSM_FIELD_PARAMS(Bls377FqParams, bls377_fq);
DISTMSM_FIELD_PARAMS(Bls377FrParams, bls377_fr);
DISTMSM_FIELD_PARAMS(Bls381FqParams, bls381_fq);
DISTMSM_FIELD_PARAMS(Bls381FrParams, bls381_fr);
DISTMSM_FIELD_PARAMS(Mnt4753FqParams, mnt4753_fq);
DISTMSM_FIELD_PARAMS(Mnt4753FrParams, mnt4753_fr);

#undef DISTMSM_FIELD_PARAMS

using Bn254Fq = Fp<Bn254FqParams>;
using Bn254Fr = Fp<Bn254FrParams>;
using Bls377Fq = Fp<Bls377FqParams>;
using Bls377Fr = Fp<Bls377FrParams>;
using Bls381Fq = Fp<Bls381FqParams>;
using Bls381Fr = Fp<Bls381FrParams>;
using Mnt4753Fq = Fp<Mnt4753FqParams>;
using Mnt4753Fr = Fp<Mnt4753FrParams>;

} // namespace distmsm

#endif // DISTMSM_FIELD_FIELD_PARAMS_H
