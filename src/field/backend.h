/**
 * @file
 * Thread-local field-arithmetic backend selection.
 *
 * The simulated kernels can route every Fp multiplication through the
 * tensor-core Montgomery model (tcmul/mont_tc.h) instead of CIOS.
 * The choice is a thread-local flag so the engine can scope it to the
 * simulated-kernel bodies it runs on pool workers without touching
 * unrelated host arithmetic on other threads. The TC path is
 * bit-identical to CIOS (asserted by test_tcmul and test_tc_backend)
 * but 1-2 orders of magnitude slower to simulate, so it is engaged
 * only when a caller forces MsmOptions::fieldBackend = TensorCore —
 * the planner's Auto pick prices TC without executing it.
 */

#ifndef DISTMSM_FIELD_BACKEND_H
#define DISTMSM_FIELD_BACKEND_H

#include <cstdint>

namespace distmsm::field {

/** Per-thread backend state read by Fp's multiply dispatch. */
struct TcBackendState
{
    /** Route Fp::operator* / Fp::sqr through tcmul::montMulTC. */
    bool active = false;
};

inline TcBackendState &
tcBackendState()
{
    static thread_local TcBackendState state;
    return state;
}

/** True when the calling thread executes field muls on the TC path. */
inline bool
tcBackendActive()
{
    return tcBackendState().active;
}

/**
 * RAII scope that switches the calling thread's field multiplications
 * onto the tensor-core differential path. Nests correctly (restores
 * the previous state), so an engine running under a scope can open
 * per-kernel scopes freely.
 */
class TcBackendScope
{
  public:
    explicit TcBackendScope(bool enable)
        : prev_(tcBackendState().active)
    {
        tcBackendState().active = enable;
    }
    ~TcBackendScope() { tcBackendState().active = prev_; }

    TcBackendScope(const TcBackendScope &) = delete;
    TcBackendScope &operator=(const TcBackendScope &) = delete;

  private:
    bool prev_;
};

} // namespace distmsm::field

#endif // DISTMSM_FIELD_BACKEND_H
