/**
 * @file
 * R1CS gadget library.
 *
 * Small reusable constraint patterns for building realistic circuits
 * (the paper's workloads — Zcash's note commitments, Zen's quantized
 * networks — are assembled from exactly these shapes): booleanity,
 * logic gates, selection, multiplication/squaring chains, bit
 * decomposition and an x^5 S-box permutation in the MiMC/Poseidon
 * style for hash-heavy circuits.
 *
 * A GadgetBuilder owns the growing constraint system and the witness
 * assignment simultaneously, so every allocation is checked
 * satisfiable as it is made.
 */

#ifndef DISTMSM_ZKSNARK_GADGETS_H
#define DISTMSM_ZKSNARK_GADGETS_H

#include <vector>

#include "src/support/prng.h"
#include "src/zksnark/r1cs.h"

namespace distmsm::zksnark {

/** Builds an R1CS and its witness together. */
template <typename F>
class GadgetBuilder
{
  public:
    using Wire = std::uint32_t;
    static constexpr Wire kOne = 0;

    explicit GadgetBuilder(std::size_t num_public)
        : num_public_(num_public)
    {
        wires_.push_back(F::one());
        for (std::size_t i = 0; i < num_public; ++i)
            wires_.push_back(F::zero());
    }

    /** Assign the value of public input @p index (0-based). */
    void
    setPublic(std::size_t index, const F &value)
    {
        DISTMSM_REQUIRE(index < num_public_, "no such public input");
        wires_[1 + index] = value;
    }

    Wire
    publicWire(std::size_t index) const
    {
        DISTMSM_REQUIRE(index < num_public_, "no such public input");
        return static_cast<Wire>(1 + index);
    }

    /** Allocate a private wire holding @p value. */
    Wire
    allocate(const F &value)
    {
        wires_.push_back(value);
        return static_cast<Wire>(wires_.size() - 1);
    }

    const F &value(Wire w) const { return wires_[w]; }

    /** Enforce a * b = c for linear combinations. */
    void
    enforce(LinearCombination<F> a, LinearCombination<F> b,
            LinearCombination<F> c)
    {
        constraints_.push_back(Constraint<F>{
            std::move(a), std::move(b), std::move(c)});
    }

    /** w_c = w_a * w_b. */
    Wire
    mul(Wire a, Wire b)
    {
        const Wire c = allocate(value(a) * value(b));
        enforce(lc(a), lc(b), lc(c));
        return c;
    }

    /** w_b = w_a^2. */
    Wire square(Wire a) { return mul(a, a); }

    /** Constrain w to be 0 or 1: w * (w - 1) = 0. */
    void
    enforceBoolean(Wire w)
    {
        LinearCombination<F> w_minus_one = lc(w);
        w_minus_one.add(kOne, -F::one());
        enforce(lc(w), w_minus_one, {});
    }

    /** Allocate a boolean wire. */
    Wire
    allocateBit(bool bit)
    {
        const Wire w = allocate(bit ? F::one() : F::zero());
        enforceBoolean(w);
        return w;
    }

    /** c = a AND b (booleans): c = a*b. */
    Wire andGate(Wire a, Wire b) { return mul(a, b); }

    /** c = a XOR b (booleans): a + b - 2ab. */
    Wire
    xorGate(Wire a, Wire b)
    {
        const F va = value(a), vb = value(b);
        const Wire c = allocate(va + vb - (va * vb).dbl());
        // 2a * b = a + b - c.
        LinearCombination<F> two_a;
        two_a.add(a, F::fromU64(2));
        LinearCombination<F> rhs;
        rhs.add(a, F::one());
        rhs.add(b, F::one());
        rhs.add(c, -F::one());
        enforce(two_a, lc(b), rhs);
        return c;
    }

    /** c = NOT a (boolean): 1 - a, no constraint needed. */
    Wire
    notGate(Wire a)
    {
        const Wire c = allocate(F::one() - value(a));
        LinearCombination<F> sum;
        sum.add(a, F::one());
        sum.add(c, F::one());
        enforce(lc(kOne), lc(kOne), sum);
        return c;
    }

    /** r = sel ? a : b (sel boolean): r = b + sel*(a-b). */
    Wire
    select(Wire sel, Wire a, Wire b)
    {
        const F v = value(sel).isZero() ? value(b) : value(a);
        const Wire r = allocate(v);
        LinearCombination<F> a_minus_b;
        a_minus_b.add(a, F::one());
        a_minus_b.add(b, -F::one());
        LinearCombination<F> r_minus_b;
        r_minus_b.add(r, F::one());
        r_minus_b.add(b, -F::one());
        enforce(lc(sel), a_minus_b, r_minus_b);
        return r;
    }

    /**
     * Decompose @p w into @p bits boolean wires (little-endian) and
     * constrain the weighted sum to reassemble it.
     */
    std::vector<Wire>
    decompose(Wire w, unsigned bits)
    {
        const auto raw = value(w).toRaw();
        std::vector<Wire> out;
        LinearCombination<F> sum;
        F weight = F::one();
        for (unsigned i = 0; i < bits; ++i) {
            const Wire b = allocateBit(raw.bit(i));
            out.push_back(b);
            sum.add(b, weight);
            weight = weight.dbl();
        }
        enforce(lc(kOne), sum, lc(w));
        return out;
    }

    /**
     * One x^5 S-box round with round constant @p c and key @p k:
     * out = (in + k + c)^5. Three constraints.
     */
    Wire
    sboxRound(Wire in, Wire k, const F &c)
    {
        // t = in + k + c (linear, folded into the first constraint).
        LinearCombination<F> t;
        t.add(in, F::one());
        t.add(k, F::one());
        t.add(kOne, c);
        const F tv = value(in) + value(k) + c;

        const Wire t2 = allocate(tv.sqr());
        enforce(t, t, lc(t2));
        const Wire t4 = square(t2);
        const Wire t5 = allocate(value(t4) * tv);
        enforce(lc(t4), t, lc(t5));
        return t5;
    }

    /** Finalize: the constraint system plus its witness. */
    std::pair<R1cs<F>, std::vector<F>>
    build() const
    {
        R1cs<F> r1cs(wires_.size(), num_public_);
        for (const auto &c : constraints_)
            r1cs.addConstraint(c);
        return {std::move(r1cs), wires_};
    }

    std::size_t numConstraints() const { return constraints_.size(); }

  private:
    static LinearCombination<F>
    lc(Wire w)
    {
        LinearCombination<F> out;
        out.add(w, F::one());
        return out;
    }

    std::size_t num_public_;
    std::vector<F> wires_;
    std::vector<Constraint<F>> constraints_;
};

/**
 * A MiMC-style hash chain circuit: @p rounds x^5 S-box rounds keyed
 * by a private key wire, seeded from a public input — the shape of
 * the commitment trees in the paper's Zcash workload. Returns the
 * builder so callers can extend it.
 */
template <typename F>
GadgetBuilder<F>
buildSboxChain(std::size_t rounds, const F &seed, const F &key,
               Prng &prng)
{
    GadgetBuilder<F> builder(1);
    builder.setPublic(0, seed);
    const auto key_wire = builder.allocate(key);
    auto state = builder.publicWire(0);
    for (std::size_t i = 0; i < rounds; ++i)
        state = builder.sboxRound(state, key_wire, F::random(prng));
    return builder;
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_GADGETS_H
