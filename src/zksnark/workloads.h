/**
 * @file
 * zkSNARK workloads: synthetic circuits and the Table 4 benchmarks.
 *
 * The paper evaluates Zcash-Sprout, Otti-SGD and Zen_acc-LeNet
 * R1CS instances (2.6M / 7.0M / 77.7M constraints) on BN254. Those
 * circuits are not redistributable, so this module provides (a)
 * synthetic multiplication-chain circuits of arbitrary size with
 * valid witnesses — exercising the same prover code path with the
 * same constraint counts — and (b) the Table 4 descriptors, including
 * the paper's measured libsnark CPU times and stage composition
 * (MSM 78.2%, NTT 17.9%, others 3.9%).
 */

#ifndef DISTMSM_ZKSNARK_WORKLOADS_H
#define DISTMSM_ZKSNARK_WORKLOADS_H

#include <cstdint>
#include <vector>

#include "src/support/prng.h"
#include "src/zksnark/r1cs.h"

namespace distmsm::zksnark {

/** One Table 4 application row. */
struct WorkloadSpec
{
    const char *name;
    std::uint64_t constraints;
    /** Paper-reported libsnark CPU proving time, seconds. */
    double libsnarkSeconds;
    /** Paper-reported DistMSM (8x A100) proving time, seconds. */
    double paperDistMsmSeconds;
};

/** The three applications of Table 4. */
const std::vector<WorkloadSpec> &table4Workloads();

/** Stage composition of CPU proof generation (Section 5.1.1). */
struct StageFractions
{
    double msm = 0.782;
    double ntt = 0.179;
    double others = 0.039;
};

/** A circuit together with a satisfying wire assignment. */
template <typename F>
struct BuiltCircuit
{
    R1cs<F> r1cs;
    std::vector<F> wires;
};

/**
 * Synthetic multiplication-chain circuit with @p constraints rows:
 * z_{k+1} = z_k * (z_k + x_{k mod p}), seeded by public inputs x_i.
 * Every constraint is a genuine rank-1 multiplication.
 */
template <typename F>
BuiltCircuit<F>
buildMulChainCircuit(std::size_t constraints,
                     std::size_t public_inputs, Prng &prng)
{
    DISTMSM_REQUIRE(constraints >= 1 && public_inputs >= 1,
                    "degenerate circuit");
    // Wires: [0]=1, [1..p]=public, then the chain z_0 .. z_c.
    const std::size_t num_wires = 1 + public_inputs + constraints + 1;
    BuiltCircuit<F> built{R1cs<F>(num_wires, public_inputs), {}};

    built.wires.resize(num_wires);
    built.wires[0] = F::one();
    for (std::size_t i = 1; i <= public_inputs; ++i)
        built.wires[i] = F::random(prng);
    const std::uint32_t z0 =
        static_cast<std::uint32_t>(public_inputs + 1);
    built.wires[z0] = F::random(prng);

    for (std::size_t k = 0; k < constraints; ++k) {
        const std::uint32_t zk = z0 + static_cast<std::uint32_t>(k);
        const std::uint32_t x = static_cast<std::uint32_t>(
            1 + k % public_inputs);
        Constraint<F> c;
        c.a.add(zk, F::one());
        c.b.add(zk, F::one());
        c.b.add(x, F::one());
        c.c.add(zk + 1, F::one());
        built.r1cs.addConstraint(std::move(c));
        built.wires[zk + 1] =
            built.wires[zk] * (built.wires[zk] + built.wires[x]);
    }
    DISTMSM_ASSERT(built.r1cs.isSatisfied(built.wires));
    return built;
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_WORKLOADS_H
