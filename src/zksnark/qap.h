/**
 * @file
 * Quadratic arithmetic program reduction of an R1CS.
 *
 * Groth16 interpolates the R1CS rows over an evaluation domain H:
 * wire j induces polynomials A_j, B_j, C_j with A_j(w^i) = A_{ij};
 * a witness w satisfies the system iff
 *
 *     A_w(x) * B_w(x) - C_w(x) = h(x) * Z_H(x)
 *
 * for some quotient h, where A_w = sum_j w_j A_j. This header
 * provides the two QAP computations the pipeline needs:
 *
 *  - evaluating every A_j, B_j, C_j at the setup trapdoor t (via
 *    Lagrange coefficients L_i(t), O(nnz) work), and
 *  - the prover's h(x) via NTTs on a coset (the "NTT" stage of
 *    Table 4).
 */

#ifndef DISTMSM_ZKSNARK_QAP_H
#define DISTMSM_ZKSNARK_QAP_H

#include <vector>

#include "src/field/batch_inverse.h"
#include "src/ntt/ntt.h"
#include "src/zksnark/r1cs.h"

namespace distmsm::zksnark {

/** Per-wire evaluations of the QAP polynomials at one point. */
template <typename F>
struct QapEvaluation
{
    std::vector<F> a; ///< A_j(t), one per wire
    std::vector<F> b;
    std::vector<F> c;
    F zt;             ///< Z_H(t)
    std::size_t domainSize = 0;
};

/** Smallest power-of-two domain covering the constraints. */
template <typename F>
std::size_t
qapDomainSize(const R1cs<F> &r1cs)
{
    std::size_t n = 1;
    while (n < r1cs.numConstraints())
        n <<= 1;
    return n;
}

/**
 * Evaluate all QAP wire polynomials at @p t (a point outside H).
 * Uses L_i(t) = Z_H(t) * w^i / (n * (t - w^i)).
 */
template <typename F>
QapEvaluation<F>
evaluateQapAt(const R1cs<F> &r1cs, const F &t)
{
    const std::size_t n = qapDomainSize(r1cs);
    const ntt::EvaluationDomain<F> domain(n);

    QapEvaluation<F> ev;
    ev.domainSize = n;
    ev.zt = domain.vanishing(t);
    DISTMSM_REQUIRE(!ev.zt.isZero(),
                    "trapdoor point lies in the domain");

    // Lagrange coefficients over the constraint rows, batched:
    // L_i(t) = Z(t) * w^i / (n * (t - w^i)).
    std::vector<F> denom(r1cs.numConstraints());
    F wi = F::one();
    const F w = domain.root();
    for (std::size_t i = 0; i < denom.size(); ++i) {
        denom[i] = (t - wi) * F::fromU64(n);
        wi *= w;
    }
    batchInverse(denom);
    std::vector<F> lagrange(denom.size());
    wi = F::one();
    for (std::size_t i = 0; i < denom.size(); ++i) {
        lagrange[i] = ev.zt * wi * denom[i];
        wi *= w;
    }

    ev.a.assign(r1cs.numWires(), F::zero());
    ev.b.assign(r1cs.numWires(), F::zero());
    ev.c.assign(r1cs.numWires(), F::zero());
    const auto &constraints = r1cs.constraints();
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        for (const auto &[wire, coeff] : constraints[i].a.terms)
            ev.a[wire] += coeff * lagrange[i];
        for (const auto &[wire, coeff] : constraints[i].b.terms)
            ev.b[wire] += coeff * lagrange[i];
        for (const auto &[wire, coeff] : constraints[i].c.terms)
            ev.c[wire] += coeff * lagrange[i];
    }
    return ev;
}

/**
 * The prover's NTT stage: coefficients of
 * h(x) = (A_w(x) B_w(x) - C_w(x)) / Z_H(x), degree <= n - 2.
 *
 * Seven transforms: three inverse NTTs (evaluations on H ->
 * coefficients), three forward NTTs on the coset gH, one inverse on
 * the coset.
 */
template <typename F>
std::vector<F>
computeQuotientH(const R1cs<F> &r1cs, const std::vector<F> &wires)
{
    const std::size_t n = qapDomainSize(r1cs);
    const ntt::EvaluationDomain<F> domain(n);

    // Evaluations of A_w, B_w, C_w on H are just the constraint
    // dot products.
    std::vector<F> a(n, F::zero()), b(n, F::zero()), c(n, F::zero());
    const auto &constraints = r1cs.constraints();
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        a[i] = constraints[i].a.evaluate(wires);
        b[i] = constraints[i].b.evaluate(wires);
        c[i] = constraints[i].c.evaluate(wires);
    }

    domain.inverse(a);
    domain.inverse(b);
    domain.inverse(c);

    // Move to the coset gH where Z_H never vanishes; the field's
    // small quadratic non-residue generates a suitable coset.
    const F g = F::fromU64(F::Params::kQnrSmall);
    domain.toCoset(a, g);
    domain.toCoset(b, g);
    domain.toCoset(c, g);
    domain.forward(a);
    domain.forward(b);
    domain.forward(c);

    // On the coset, Z_H(g w^i) = g^n - 1 for every i.
    F zg = g;
    for (unsigned i = 0; i < domain.logSize(); ++i)
        zg = zg.sqr();
    const F z_inv = (zg - F::one()).inverse();

    std::vector<F> h(n);
    for (std::size_t i = 0; i < n; ++i)
        h[i] = (a[i] * b[i] - c[i]) * z_inv;
    domain.inverse(h);
    domain.fromCoset(h, g);

    // Exact division leaves degree <= n - 2.
    DISTMSM_ASSERT(h.back().isZero());
    h.pop_back();
    return h;
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_QAP_H
