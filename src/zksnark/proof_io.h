/**
 * @file
 * Proof serialization.
 *
 * A Groth16 proof is three group elements; compressed they make the
 * "proof sizes under 1KB" / 127-byte artifacts the paper describes.
 * (The real protocol puts B in G2, which costs an extra coordinate;
 * this G1-substituted pipeline serializes three G1 points plus the
 * scalar shadows the trapdoor oracle needs — see groth16.h.)
 */

#ifndef DISTMSM_ZKSNARK_PROOF_IO_H
#define DISTMSM_ZKSNARK_PROOF_IO_H

#include <optional>
#include <vector>

#include "src/ec/encoding.h"
#include "src/zksnark/groth16.h"

namespace distmsm::zksnark {

/** Serialized size: three compressed points + three scalars. */
template <typename Curve>
constexpr std::size_t
proofSize()
{
    return 3 * encodedPointSize<Curve>() +
           3 * Curve::Fr::kLimbs * 8;
}

/** Size of the wire part a pairing verifier would need (3 points). */
template <typename Curve>
constexpr std::size_t
proofPointBytes()
{
    return 3 * encodedPointSize<Curve>();
}

template <typename Curve>
std::vector<std::uint8_t>
serializeProof(const Proof<Curve> &proof)
{
    std::vector<std::uint8_t> out;
    out.reserve(proofSize<Curve>());
    for (const auto &point :
         {proof.a.toAffine(), proof.b.toAffine(),
          proof.c.toAffine()}) {
        const auto bytes = encodePoint<Curve>(point);
        out.insert(out.end(), bytes.begin(), bytes.end());
    }
    for (const auto &scalar :
         {proof.aScalar, proof.bScalar, proof.cScalar}) {
        const auto raw = scalar.toRaw();
        for (std::size_t i = 0; i < Curve::Fr::kLimbs; ++i) {
            for (int b = 0; b < 8; ++b) {
                out.push_back(static_cast<std::uint8_t>(
                    raw.limb[i] >> (8 * b)));
            }
        }
    }
    return out;
}

template <typename Curve>
std::optional<Proof<Curve>>
deserializeProof(const std::vector<std::uint8_t> &bytes)
{
    using F = typename Curve::Fr;
    if (bytes.size() != proofSize<Curve>())
        return std::nullopt;
    Proof<Curve> proof;
    std::size_t off = 0;
    XYZZPoint<Curve> *points[3] = {&proof.a, &proof.b, &proof.c};
    for (auto *point : points) {
        const std::vector<std::uint8_t> chunk(
            bytes.begin() + off,
            bytes.begin() + off + encodedPointSize<Curve>());
        const auto decoded = decodePoint<Curve>(chunk);
        if (!decoded)
            return std::nullopt;
        *point = XYZZPoint<Curve>::fromAffine(*decoded);
        off += encodedPointSize<Curve>();
    }
    F *scalars[3] = {&proof.aScalar, &proof.bScalar,
                     &proof.cScalar};
    for (auto *scalar : scalars) {
        typename F::Base raw{};
        for (std::size_t i = 0; i < Curve::Fr::kLimbs; ++i) {
            for (int b = 0; b < 8; ++b) {
                raw.limb[i] |=
                    static_cast<std::uint64_t>(bytes[off++])
                    << (8 * b);
            }
        }
        if (!(raw < F::modulus()))
            return std::nullopt;
        *scalar = F::fromRaw(raw);
    }
    return proof;
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_PROOF_IO_H
