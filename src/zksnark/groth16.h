/**
 * @file
 * A Groth16-style prover pipeline.
 *
 * The paper's Table 4 measures end-to-end Groth16 proving (R1CS
 * constraints, BN254): the stages are NTT (the quotient polynomial),
 * MSM (the multi-exponentiations over the proving-key points — 78.2%
 * of the work) and "others". This module implements that pipeline
 * functionally: trusted setup from an explicit trapdoor, a prover
 * whose MSM backend is this library, and a verifier.
 *
 * Substitution note (see DESIGN.md): verification uses the setup
 * trapdoor instead of pairings. The proof carries discrete-log
 * "shadows" of its group elements; the verifier checks (1) that each
 * proof point really is [shadow]G — which pins every MSM the prover
 * ran — and (2) the Groth16 equation a*b = alpha*beta + ic*gamma +
 * c*delta in the scalar field, which holds exactly when the QAP
 * division was exact, i.e. the witness satisfies the R1CS. This is a
 * bit-exact test oracle for the prover's arithmetic, not a
 * cryptographic verifier (the real system hands proofs to libsnark).
 */

#ifndef DISTMSM_ZKSNARK_GROTH16_H
#define DISTMSM_ZKSNARK_GROTH16_H

#include <memory>
#include <vector>

#include "src/ec/point.h"
#include "src/ec/scalar_mul.h"
#include "src/msm/engine.h"
#include "src/msm/reference.h"
#include "src/support/status.h"
#include "src/support/timer.h"
#include "src/support/trace.h"
#include "src/zksnark/qap.h"

namespace distmsm::zksnark {

/** The toxic waste; kept by the test oracle, destroyed in practice. */
template <typename F>
struct Trapdoor
{
    F t, alpha, beta, gamma, delta;

    static Trapdoor
    random(Prng &prng)
    {
        return Trapdoor{F::random(prng), F::random(prng),
                        F::random(prng), F::random(prng),
                        F::random(prng)};
    }
};

/** Proving key: scalar tables plus the EC points the MSMs consume. */
template <typename Curve>
struct ProvingKey
{
    using F = typename Curve::Fr;
    using Affine = AffinePoint<Curve>;

    std::size_t numPublic = 0;
    F alpha, beta, delta;

    // Scalar (dlog) tables.
    std::vector<F> aQuery; ///< A_j(t), per wire
    std::vector<F> bQuery; ///< B_j(t), per wire
    std::vector<F> lQuery; ///< (beta A_j + alpha B_j + C_j)/delta, private wires
    std::vector<F> hQuery; ///< t^i Z(t)/delta, i < n-1

    // The corresponding curve points.
    Affine g;
    Affine alphaG, betaG, deltaG;
    std::vector<Affine> aPoints;
    std::vector<Affine> bPoints;
    std::vector<Affine> lPoints;
    std::vector<Affine> hPoints;
};

/** Verification key for the trapdoor oracle. */
template <typename Curve>
struct VerifyingKey
{
    using F = typename Curve::Fr;

    F alphaBeta; ///< alpha * beta
    F gamma, delta;
    std::vector<F> ic; ///< (beta A_j + alpha B_j + C_j)/gamma, public
};

/** A proof with its discrete-log shadows. */
template <typename Curve>
struct Proof
{
    XYZZPoint<Curve> a, b, c;
    typename Curve::Fr aScalar, bScalar, cScalar;
    /** Blinding randomness (kept so the G2 extension can rebuild B
     *  over G2 with the same randomization; see groth16_g2.h). */
    typename Curve::Fr rBlind, sBlind;
};

/** Wall-clock stage breakdown of one prove() call. */
struct ProverTiming
{
    double nttSeconds = 0.0;
    double msmSeconds = 0.0;
    double otherSeconds = 0.0;
    std::size_t msmPoints = 0; ///< total points across all MSMs
    std::size_t domainSize = 0;

    double
    totalSeconds() const
    {
        return nttSeconds + msmSeconds + otherSeconds;
    }
};

template <typename Curve>
struct KeyPair
{
    ProvingKey<Curve> pk;
    VerifyingKey<Curve> vk;
};

/**
 * Engine-backed MSM backend for prove(): one staged MsmEngine per
 * proving-key point table (A, B, L, H). Construct once per proving
 * key and pass to prove(); repeated proofs reuse the engines' staged
 * state, and with MsmOptions::precompute the fixed-base tables come
 * from the cross-proof BaseTableCache — even a freshly constructed
 * ProverEngines for the same proving key skips the table builds.
 * prove() without engines keeps the serial Pippenger reference.
 */
template <typename Curve>
struct ProverEngines
{
    using Engine = msm::MsmEngine<Curve>;

    std::unique_ptr<Engine> a, b, l, h;

    ProverEngines(const ProvingKey<Curve> &pk,
                  const gpusim::Cluster &cluster,
                  const msm::MsmOptions &options = msm::MsmOptions{})
    {
        auto make = [&](const std::vector<AffinePoint<Curve>> &pts)
            -> std::unique_ptr<Engine> {
            if (pts.empty())
                return nullptr;
            return std::make_unique<Engine>(pts, cluster, options);
        };
        a = make(pk.aPoints);
        b = make(pk.bPoints);
        l = make(pk.lPoints);
        h = make(pk.hPoints);
    }
};

namespace detail {

/** Fixed-base multiples [k]G as affine points, batched. */
template <typename Curve>
std::vector<AffinePoint<Curve>>
fixedBaseMultiples(const AffinePoint<Curve> &g,
                   const std::vector<typename Curve::Fr> &scalars)
{
    using Xyzz = XYZZPoint<Curve>;
    // One shared window table amortizes the generator's doublings
    // across the whole proving key.
    static thread_local const FixedBaseTable<Curve> table(
        Xyzz::fromAffine(g), Curve::kScalarBits);
    std::vector<Xyzz> raw;
    raw.reserve(scalars.size());
    for (const auto &k : scalars)
        raw.push_back(table.mul(k.toRaw()));

    // Batch-normalize (identity entries keep denominator one).
    using Fq = typename Curve::Fq;
    std::vector<Fq> denoms;
    denoms.reserve(2 * raw.size());
    for (const auto &p : raw) {
        denoms.push_back(p.isIdentity() ? Fq::one() : p.zz);
        denoms.push_back(p.isIdentity() ? Fq::one() : p.zzz);
    }
    batchInverse(denoms);
    std::vector<AffinePoint<Curve>> out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].isIdentity()) {
            out[i] = AffinePoint<Curve>::fromXY(
                raw[i].x * denoms[2 * i],
                raw[i].y * denoms[2 * i + 1]);
        }
    }
    return out;
}

/** MSM over Fr scalars via the serial Pippenger reference, or the
 *  staged engine when @p engine is non-null (the engine's result is
 *  bit-identical to the reference; pinned by the MSM KAT suite).
 *  Returns the typed Status of an unrecoverable injected fault
 *  (MsmEngine::tryCompute) instead of aborting. */
template <typename Curve>
support::StatusOr<XYZZPoint<Curve>>
tryProverMsm(const std::vector<AffinePoint<Curve>> &points,
             const std::vector<typename Curve::Fr> &scalars,
             const msm::MsmEngine<Curve> *engine = nullptr)
{
    DISTMSM_ASSERT(points.size() == scalars.size());
    std::vector<BigInt<Curve::Fr::kLimbs>> raw;
    raw.reserve(scalars.size());
    for (const auto &s : scalars)
        raw.push_back(s.toRaw());
    if (points.empty())
        return XYZZPoint<Curve>::identity();
    if (engine != nullptr) {
        support::StatusOr<msm::MsmResult<Curve>> result =
            engine->tryCompute(raw);
        if (!result.isOk())
            return result.status();
        return result->value;
    }
    return msm::msmSerialPippenger<Curve>(points, raw, 8);
}

/** tryProverMsm with the legacy hard-failure contract. */
template <typename Curve>
XYZZPoint<Curve>
proverMsm(const std::vector<AffinePoint<Curve>> &points,
          const std::vector<typename Curve::Fr> &scalars,
          const msm::MsmEngine<Curve> *engine = nullptr)
{
    support::StatusOr<XYZZPoint<Curve>> result =
        tryProverMsm(points, scalars, engine);
    DISTMSM_REQUIRE(result.isOk(),
                    result.status().toString().c_str());
    return *result;
}

} // namespace detail

/** Trusted setup for @p r1cs from an explicit trapdoor. */
template <typename Curve>
KeyPair<Curve>
setup(const R1cs<typename Curve::Fr> &r1cs,
      const Trapdoor<typename Curve::Fr> &trapdoor)
{
    using F = typename Curve::Fr;
    const auto ev = evaluateQapAt(r1cs, trapdoor.t);

    KeyPair<Curve> keys;
    ProvingKey<Curve> &pk = keys.pk;
    pk.numPublic = r1cs.numPublic();
    pk.alpha = trapdoor.alpha;
    pk.beta = trapdoor.beta;
    pk.delta = trapdoor.delta;
    pk.aQuery = ev.a;
    pk.bQuery = ev.b;

    const F gamma_inv = trapdoor.gamma.inverse();
    const F delta_inv = trapdoor.delta.inverse();

    VerifyingKey<Curve> &vk = keys.vk;
    vk.alphaBeta = trapdoor.alpha * trapdoor.beta;
    vk.gamma = trapdoor.gamma;
    vk.delta = trapdoor.delta;

    for (std::size_t j = 0; j < r1cs.numWires(); ++j) {
        const F combined = trapdoor.beta * ev.a[j] +
                           trapdoor.alpha * ev.b[j] + ev.c[j];
        if (j <= r1cs.numPublic()) {
            vk.ic.push_back(combined * gamma_inv);
        } else {
            pk.lQuery.push_back(combined * delta_inv);
        }
    }

    // H query: t^i * Z(t) / delta for i = 0 .. n-2.
    const F z_over_delta = ev.zt * delta_inv;
    F ti = F::one();
    for (std::size_t i = 0; i + 1 < ev.domainSize; ++i) {
        pk.hQuery.push_back(ti * z_over_delta);
        ti *= trapdoor.t;
    }

    // Materialize the EC point tables.
    pk.g = Curve::generator();
    const auto blind = detail::fixedBaseMultiples<Curve>(
        pk.g, {trapdoor.alpha, trapdoor.beta, trapdoor.delta});
    pk.alphaG = blind[0];
    pk.betaG = blind[1];
    pk.deltaG = blind[2];
    pk.aPoints = detail::fixedBaseMultiples<Curve>(pk.g, pk.aQuery);
    pk.bPoints = detail::fixedBaseMultiples<Curve>(pk.g, pk.bQuery);
    pk.lPoints = detail::fixedBaseMultiples<Curve>(pk.g, pk.lQuery);
    pk.hPoints = detail::fixedBaseMultiples<Curve>(pk.g, pk.hQuery);
    return keys;
}

/**
 * Produce a proof for @p wires (which must satisfy @p r1cs).
 * Stage times are reported through @p timing when non-null.
 *
 * Tracing: when @p trace is non-null (or DISTMSM_TRACE is set), the
 * NTT / MSM / other stage breakdown is emitted as spans on the
 * prover lane (support::tracelane::kProverPid). These spans use the
 * *host wall-clock* axis — they are real measured durations, not
 * simulated time, and are therefore excluded from the determinism
 * contract (see trace.h).
 *
 * Fault tolerance: when the MSM engines run under a fault plan
 * (MsmOptions::faults / DISTMSM_FAULT_SPEC), recoverable faults are
 * absorbed inside the engines and the proof is bit-identical to a
 * fault-free run; an unrecoverable fault surfaces as the typed
 * Status of the failing MSM — never a wrong proof, never an abort.
 */
template <typename Curve>
support::StatusOr<Proof<Curve>>
tryProve(const ProvingKey<Curve> &pk,
         const R1cs<typename Curve::Fr> &r1cs,
         const std::vector<typename Curve::Fr> &wires, Prng &prng,
         ProverTiming *timing = nullptr,
         support::TraceRecorder *trace = nullptr,
         const ProverEngines<Curve> *engines = nullptr)
{
    using F = typename Curve::Fr;
    using Xyzz = XYZZPoint<Curve>;
    DISTMSM_REQUIRE(r1cs.isSatisfied(wires),
                    "witness does not satisfy the constraint system");

    ProverTiming local;
    Timer timer;

    // --- NTT stage: the quotient polynomial h(x). ---
    const std::vector<F> h = computeQuotientH(r1cs, wires);
    local.nttSeconds = timer.seconds();
    local.domainSize = qapDomainSize(r1cs);

    // --- MSM stage: the four multi-exponentiations. Any engine hit
    // by an unrecoverable injected fault fails the whole proof with
    // its typed Status (first failing MSM in A, B, L, H order). ---
    timer.reset();
    const support::StatusOr<Xyzz> a_or = detail::tryProverMsm<Curve>(
        pk.aPoints, wires,
        engines != nullptr ? engines->a.get() : nullptr);
    if (!a_or.isOk())
        return a_or.status();
    const Xyzz a_base = *a_or;
    const support::StatusOr<Xyzz> b_or = detail::tryProverMsm<Curve>(
        pk.bPoints, wires,
        engines != nullptr ? engines->b.get() : nullptr);
    if (!b_or.isOk())
        return b_or.status();
    const Xyzz b_base = *b_or;
    const std::vector<F> private_wires(
        wires.begin() + pk.numPublic + 1, wires.end());
    const support::StatusOr<Xyzz> l_or = detail::tryProverMsm<Curve>(
        pk.lPoints, private_wires,
        engines != nullptr ? engines->l.get() : nullptr);
    if (!l_or.isOk())
        return l_or.status();
    const Xyzz l_base = *l_or;
    const support::StatusOr<Xyzz> h_or = detail::tryProverMsm<Curve>(
        pk.hPoints, h,
        engines != nullptr ? engines->h.get() : nullptr);
    if (!h_or.isOk())
        return h_or.status();
    const Xyzz h_base = *h_or;
    local.msmSeconds = timer.seconds();
    local.msmPoints = pk.aPoints.size() + pk.bPoints.size() +
                      pk.lPoints.size() + h.size();

    // --- Others: blinding and final combination. ---
    timer.reset();
    const F r = F::random(prng);
    const F s = F::random(prng);
    Proof<Curve> proof;
    proof.rBlind = r;
    proof.sBlind = s;

    // Scalar shadows.
    F aw = pk.alpha, bw = pk.beta;
    for (std::size_t j = 0; j < wires.size(); ++j) {
        aw += wires[j] * pk.aQuery[j];
        bw += wires[j] * pk.bQuery[j];
    }
    aw += r * pk.delta;
    bw += s * pk.delta;
    F cw = F::zero();
    for (std::size_t j = 0; j < private_wires.size(); ++j)
        cw += private_wires[j] * pk.lQuery[j];
    for (std::size_t i = 0; i < h.size(); ++i)
        cw += h[i] * pk.hQuery[i];
    cw += s * aw + r * bw - r * s * pk.delta;
    proof.aScalar = aw;
    proof.bScalar = bw;
    proof.cScalar = cw;

    // Group elements.
    const Xyzz delta_g = Xyzz::fromAffine(pk.deltaG);
    proof.a = padd(padd(Xyzz::fromAffine(pk.alphaG), a_base),
                   pmul(delta_g, r.toRaw()));
    proof.b = padd(padd(Xyzz::fromAffine(pk.betaG), b_base),
                   pmul(delta_g, s.toRaw()));
    Xyzz c = padd(l_base, h_base);
    c = padd(c, pmul(proof.a, s.toRaw()));
    c = padd(c, pmul(proof.b, r.toRaw()));
    c = padd(c, pmul(delta_g, (r * s).toRaw()).negated());
    proof.c = c;
    local.otherSeconds = timer.seconds();

    if (trace == nullptr)
        trace = support::globalTraceFromEnv();
    if (trace != nullptr) {
        namespace lane = support::tracelane;
        trace->labelProcess(lane::kProverPid,
                            "groth16 prover (wall-clock)");
        trace->labelThread(lane::kProverPid, lane::kComputeTid,
                           "stages");
        const double ntt_ns = local.nttSeconds * 1e9;
        const double msm_ns = local.msmSeconds * 1e9;
        const double other_ns = local.otherSeconds * 1e9;
        support::TraceArgs ntt_args;
        ntt_args.arg("domain_size",
                     static_cast<double>(local.domainSize));
        trace->span("ntt", "prover", lane::kProverPid,
                    lane::kComputeTid, 0.0, ntt_ns,
                    std::move(ntt_args));
        support::TraceArgs msm_args;
        msm_args.arg("msm_points",
                     static_cast<double>(local.msmPoints));
        trace->span("msm", "prover", lane::kProverPid,
                    lane::kComputeTid, ntt_ns, msm_ns,
                    std::move(msm_args));
        trace->span("other", "prover", lane::kProverPid,
                    lane::kComputeTid, ntt_ns + msm_ns, other_ns);
        auto &metrics = trace->metrics();
        metrics.add("prover/ntt_seconds", local.nttSeconds);
        metrics.add("prover/msm_seconds", local.msmSeconds);
        metrics.add("prover/other_seconds", local.otherSeconds);
        metrics.add("prover/msm_points",
                    static_cast<double>(local.msmPoints));
    }

    if (timing)
        *timing = local;
    return proof;
}

/** tryProve with the legacy hard-failure contract. */
template <typename Curve>
Proof<Curve>
prove(const ProvingKey<Curve> &pk,
      const R1cs<typename Curve::Fr> &r1cs,
      const std::vector<typename Curve::Fr> &wires, Prng &prng,
      ProverTiming *timing = nullptr,
      support::TraceRecorder *trace = nullptr,
      const ProverEngines<Curve> *engines = nullptr)
{
    support::StatusOr<Proof<Curve>> proof =
        tryProve(pk, r1cs, wires, prng, timing, trace, engines);
    DISTMSM_REQUIRE(proof.isOk(), proof.status().toString().c_str());
    return std::move(*proof);
}

/**
 * Trapdoor verification (test oracle; see the file comment).
 *
 * @param public_inputs wires 1 .. numPublic (without the leading 1).
 */
template <typename Curve>
bool
verify(const VerifyingKey<Curve> &vk, const Proof<Curve> &proof,
       const std::vector<typename Curve::Fr> &public_inputs)
{
    using F = typename Curve::Fr;
    using Xyzz = XYZZPoint<Curve>;
    if (public_inputs.size() + 1 != vk.ic.size())
        return false;

    // (1) The points must match their shadows: this pins every MSM
    // and point operation the prover performed.
    const Xyzz g = Xyzz::fromAffine(Curve::generator());
    if (!(proof.a == pmul(g, proof.aScalar.toRaw())) ||
        !(proof.b == pmul(g, proof.bScalar.toRaw())) ||
        !(proof.c == pmul(g, proof.cScalar.toRaw()))) {
        return false;
    }

    // (2) The Groth16 equation in the exponent.
    F ic = vk.ic[0];
    for (std::size_t i = 0; i < public_inputs.size(); ++i)
        ic += public_inputs[i] * vk.ic[i + 1];
    const F lhs = proof.aScalar * proof.bScalar;
    const F rhs = vk.alphaBeta + ic * vk.gamma +
                  proof.cScalar * vk.delta;
    return lhs == rhs;
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_GROTH16_H
