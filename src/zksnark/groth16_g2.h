/**
 * @file
 * The G2 half of Groth16.
 *
 * In the real protocol the proof element B lives in G2 (the
 * pairing's second source group); that is what makes a BN254 proof
 * ~127 bytes (two compressed G1 points + one compressed G2 point)
 * and why provers run one of their MSMs over G2. This header adds
 * that half on top of the G1 pipeline of groth16.h:
 *
 *  - extendSetupG2: [B_j(t)]G2, [beta]G2, [delta]G2 tables;
 *  - proveB2: B over G2 via a genuine G2 MSM with the same
 *    randomization s as the G1 proof;
 *  - verifyWithG2: the trapdoor-oracle checks plus B2's shadow;
 *  - a compressed wire encoding: 33 + 65 + 33 = 131 bytes on BN254.
 */

#ifndef DISTMSM_ZKSNARK_GROTH16_G2_H
#define DISTMSM_ZKSNARK_GROTH16_G2_H

#include <optional>

#include "src/ec/bn254_g2.h"
#include "src/msm/engine.h"
#include "src/zksnark/groth16.h"

namespace distmsm::zksnark {

/** G1/G2 group pair of a pairing-friendly curve. */
struct Bn254Pair
{
    using G1 = Bn254;
    using G2 = Bn254G2;
};

/** The G2 additions to a proving key. */
template <typename Pair>
struct ProvingKeyG2
{
    using G2 = typename Pair::G2;
    AffinePoint<G2> g2;
    AffinePoint<G2> betaG2, deltaG2;
    std::vector<AffinePoint<G2>> bPoints;
};

/** Build the G2 tables from the (scalar) proving key. */
template <typename Pair>
ProvingKeyG2<Pair>
extendSetupG2(const ProvingKey<typename Pair::G1> &pk)
{
    using G2 = typename Pair::G2;
    using Xyzz = XYZZPoint<G2>;
    ProvingKeyG2<Pair> ext;
    ext.g2 = G2::generator();
    const FixedBaseTable<G2> table(Xyzz::fromAffine(ext.g2),
                                   G2::kScalarBits);
    ext.betaG2 = table.mul(pk.beta.toRaw()).toAffine();
    ext.deltaG2 = table.mul(pk.delta.toRaw()).toAffine();
    std::vector<Xyzz> raw;
    raw.reserve(pk.bQuery.size());
    for (const auto &b : pk.bQuery)
        raw.push_back(table.mul(b.toRaw()));
    ext.bPoints = msm::detail::toAffineBatch<G2>(raw);
    return ext;
}

/**
 * B over G2: [beta]G2 + MSM(bPoints, wires) + [s]deltaG2, with the
 * same blinding s the G1 proof used.
 */
template <typename Pair>
XYZZPoint<typename Pair::G2>
proveB2(const ProvingKeyG2<Pair> &ext,
        const std::vector<typename Pair::G1::Fr> &wires,
        const typename Pair::G1::Fr &s_blind)
{
    using G2 = typename Pair::G2;
    using Xyzz = XYZZPoint<G2>;
    const Xyzz msm_part =
        detail::proverMsm<G2>(ext.bPoints, wires);
    Xyzz b2 = padd(Xyzz::fromAffine(ext.betaG2), msm_part);
    b2 = padd(b2, pmul(Xyzz::fromAffine(ext.deltaG2),
                       s_blind.toRaw()));
    return b2;
}

/** G1 checks plus the G2 element's shadow consistency. */
template <typename Pair>
bool
verifyWithG2(const VerifyingKey<typename Pair::G1> &vk,
             const Proof<typename Pair::G1> &proof,
             const XYZZPoint<typename Pair::G2> &b2,
             const std::vector<typename Pair::G1::Fr> &public_inputs)
{
    using G2 = typename Pair::G2;
    if (!verify<typename Pair::G1>(vk, proof, public_inputs))
        return false;
    const auto g2 =
        XYZZPoint<G2>::fromAffine(G2::generator());
    return b2 == pmul(g2, proof.bScalar.toRaw());
}

// ---------------------------------------------------------------
// Compressed G2 point encoding (BN254-specific layout): one flag
// byte + big-endian c1 then c0 of x. The flag records identity or
// which of {y, -y} is lexicographically larger (compared as
// (c1, c0) raw integers).
// ---------------------------------------------------------------

/** Bytes of a compressed Bn254 G2 point. */
constexpr std::size_t
encodedG2PointSize()
{
    return 1 + 2 * 32;
}

namespace g2detail {

inline void
appendFq(std::vector<std::uint8_t> &out, const Bn254Fq &v)
{
    const auto raw = v.toRaw();
    for (std::size_t i = 0; i < 32; ++i) {
        const std::size_t byte = 31 - i;
        out.push_back(static_cast<std::uint8_t>(
            raw.limb[byte / 8] >> (8 * (byte % 8))));
    }
}

inline Bn254Fq
readFq(const std::vector<std::uint8_t> &bytes, std::size_t off,
       bool &ok)
{
    BigInt<4> raw{};
    for (std::size_t i = 0; i < 32; ++i) {
        const std::size_t byte = 31 - i;
        raw.limb[byte / 8] |=
            static_cast<std::uint64_t>(bytes[off + i])
            << (8 * (byte % 8));
    }
    if (!(raw < Bn254Fq::modulus()))
        ok = false;
    return Bn254Fq::fromRaw(raw);
}

/** Lexicographic (c1, c0) comparison of raw representations. */
inline bool
lexGreater(const Bn254Fq2 &a, const Bn254Fq2 &b)
{
    const auto a1 = a.c1().toRaw(), b1 = b.c1().toRaw();
    if (!(a1 == b1))
        return b1 < a1;
    return b.c0().toRaw() < a.c0().toRaw();
}

} // namespace g2detail

/** Compress a Bn254 G2 point. */
inline std::vector<std::uint8_t>
encodeG2Point(const AffinePoint<Bn254G2> &p)
{
    std::vector<std::uint8_t> out;
    out.reserve(encodedG2PointSize());
    if (p.infinity) {
        out.assign(encodedG2PointSize(), 0);
        return out;
    }
    out.push_back(g2detail::lexGreater(p.y, -p.y) ? 3 : 2);
    g2detail::appendFq(out, p.x.c1());
    g2detail::appendFq(out, p.x.c0());
    return out;
}

/** Decompress; nullopt on malformed input. */
inline std::optional<AffinePoint<Bn254G2>>
decodeG2Point(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() != encodedG2PointSize())
        return std::nullopt;
    if (bytes[0] == 0) {
        for (std::size_t i = 1; i < bytes.size(); ++i) {
            if (bytes[i] != 0)
                return std::nullopt;
        }
        return AffinePoint<Bn254G2>::identity();
    }
    if (bytes[0] != 2 && bytes[0] != 3)
        return std::nullopt;
    bool ok = true;
    const Bn254Fq c1 = g2detail::readFq(bytes, 1, ok);
    const Bn254Fq c0 = g2detail::readFq(bytes, 33, ok);
    if (!ok)
        return std::nullopt;
    const Bn254Fq2 x{c0, c1};
    const Bn254Fq2 rhs = x.sqr() * x + Bn254G2::b();
    if (!rhs.isSquare())
        return std::nullopt;
    Bn254Fq2 y = rhs.sqrt();
    const bool want_greater = bytes[0] == 3;
    if (g2detail::lexGreater(y, -y) != want_greater)
        y = -y;
    return AffinePoint<Bn254G2>::fromXY(x, y);
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_GROTH16_G2_H
