#include "src/zksnark/workloads.h"

namespace distmsm::zksnark {

const std::vector<WorkloadSpec> &
table4Workloads()
{
    static const std::vector<WorkloadSpec> specs = {
        {"Zcash-Sprout", 2585747, 145.8, 5.8},
        {"Otti-SGD", 6968254, 291.0, 11.7},
        {"Zen_acc-LeNet", 77689757, 5036.7, 188.7},
    };
    return specs;
}

} // namespace distmsm::zksnark
