/**
 * @file
 * Rank-1 constraint systems.
 *
 * The paper's end-to-end workloads (Table 4) are R1CS instances:
 * constraints of the form <a_i, w> * <b_i, w> = <c_i, w> over the
 * scalar field, with w the wire vector (w[0] = 1, then the public
 * inputs, then private wires).
 */

#ifndef DISTMSM_ZKSNARK_R1CS_H
#define DISTMSM_ZKSNARK_R1CS_H

#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace distmsm::zksnark {

/** Sparse linear combination over the wire vector. */
template <typename F>
struct LinearCombination
{
    std::vector<std::pair<std::uint32_t, F>> terms;

    void
    add(std::uint32_t wire, const F &coeff)
    {
        terms.emplace_back(wire, coeff);
    }

    F
    evaluate(const std::vector<F> &wires) const
    {
        F acc = F::zero();
        for (const auto &[wire, coeff] : terms) {
            DISTMSM_ASSERT(wire < wires.size());
            acc += coeff * wires[wire];
        }
        return acc;
    }
};

/** One constraint: a * b = c. */
template <typename F>
struct Constraint
{
    LinearCombination<F> a;
    LinearCombination<F> b;
    LinearCombination<F> c;
};

/** A rank-1 constraint system. */
template <typename F>
class R1cs
{
  public:
    /**
     * @param num_wires total wires including the constant-one wire 0.
     * @param num_public wires 1 .. num_public are public inputs.
     */
    R1cs(std::size_t num_wires, std::size_t num_public)
        : num_wires_(num_wires), num_public_(num_public)
    {
        DISTMSM_REQUIRE(num_public + 1 <= num_wires,
                        "more public inputs than wires");
    }

    std::size_t numWires() const { return num_wires_; }
    std::size_t numPublic() const { return num_public_; }
    std::size_t numConstraints() const { return constraints_.size(); }

    void
    addConstraint(Constraint<F> c)
    {
        constraints_.push_back(std::move(c));
    }

    const std::vector<Constraint<F>> &
    constraints() const
    {
        return constraints_;
    }

    /** Check <a_i,w> * <b_i,w> == <c_i,w> for every constraint. */
    bool
    isSatisfied(const std::vector<F> &wires) const
    {
        if (wires.size() != num_wires_ || wires.empty() ||
            !(wires[0] == F::one())) {
            return false;
        }
        for (const auto &c : constraints_) {
            if (!(c.a.evaluate(wires) * c.b.evaluate(wires) ==
                  c.c.evaluate(wires))) {
                return false;
            }
        }
        return true;
    }

  private:
    std::size_t num_wires_;
    std::size_t num_public_;
    std::vector<Constraint<F>> constraints_;
};

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_R1CS_H
