/**
 * @file
 * Batch proof verification.
 *
 * Rollups and payment systems (the paper's motivating deployments —
 * Loopring, Immutable X, Zcash) verify many proofs per block. The
 * standard trick checks a random linear combination of the
 * individual verification equations: one random coefficient rho_i
 * per proof makes a single aggregate check sound except with
 * probability ~1/r. With the trapdoor oracle the aggregate equation
 * lives in the scalar field:
 *
 *   sum_i rho_i (a_i b_i - alpha beta - ic_i gamma - c_i delta) == 0
 *
 * plus the usual point/shadow consistency per proof (which is the
 * part a pairing verifier would batch as a single multi-pairing).
 */

#ifndef DISTMSM_ZKSNARK_BATCH_VERIFY_H
#define DISTMSM_ZKSNARK_BATCH_VERIFY_H

#include <vector>

#include "src/zksnark/groth16.h"

namespace distmsm::zksnark {

/** One (proof, public inputs) pair of a batch. */
template <typename Curve>
struct BatchEntry
{
    Proof<Curve> proof;
    std::vector<typename Curve::Fr> publicInputs;
};

/**
 * Verify a batch of proofs under one verifying key with random
 * linear combination. Sound up to ~1/r soundness error per run;
 * @p prng supplies the verifier's randomness.
 */
template <typename Curve>
bool
batchVerify(const VerifyingKey<Curve> &vk,
            const std::vector<BatchEntry<Curve>> &entries,
            Prng &prng)
{
    using F = typename Curve::Fr;
    using Xyzz = XYZZPoint<Curve>;
    if (entries.empty())
        return true;

    const Xyzz g = Xyzz::fromAffine(Curve::generator());
    F aggregate = F::zero();
    for (const auto &entry : entries) {
        if (entry.publicInputs.size() + 1 != vk.ic.size())
            return false;
        // Point/shadow consistency stays per proof (a real verifier
        // folds these into one multi-pairing; our oracle checks the
        // dlogs directly).
        if (!(entry.proof.a == pmul(g, entry.proof.aScalar.toRaw())) ||
            !(entry.proof.b == pmul(g, entry.proof.bScalar.toRaw())) ||
            !(entry.proof.c == pmul(g, entry.proof.cScalar.toRaw()))) {
            return false;
        }
        F ic = vk.ic[0];
        for (std::size_t i = 0; i < entry.publicInputs.size(); ++i)
            ic += entry.publicInputs[i] * vk.ic[i + 1];
        const F residual = entry.proof.aScalar *
                               entry.proof.bScalar -
                           vk.alphaBeta - ic * vk.gamma -
                           entry.proof.cScalar * vk.delta;
        aggregate += F::random(prng) * residual;
    }
    return aggregate.isZero();
}

} // namespace distmsm::zksnark

#endif // DISTMSM_ZKSNARK_BATCH_VERIFY_H
