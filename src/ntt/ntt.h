/**
 * @file
 * Number-theoretic transform over NTT-friendly scalar fields.
 *
 * NTT is the second pillar of zkSNARK proving (17.9% of proof time in
 * the paper's Table 4 analysis; DistMSM pairs its MSM with Sppark's
 * NTT). This is an iterative radix-2 Cooley-Tukey transform over an
 * evaluation domain H = {w^0 .. w^(n-1)} of power-of-two size, plus
 * the coset machinery Groth16's h(x) computation needs: dividing
 * A(x)B(x) - C(x) by the vanishing polynomial Z_H(x) = x^n - 1 is
 * exact only away from H, so the quotient is computed on the coset
 * g*H where Z_H(g x) = g^n x^n - 1 is a non-zero constant... times
 * x^n; see divideByVanishingOnCoset.
 */

#ifndef DISTMSM_NTT_NTT_H
#define DISTMSM_NTT_NTT_H

#include <vector>

#include "src/support/check.h"

namespace distmsm::ntt {

/**
 * A power-of-two multiplicative subgroup of F* with transform
 * helpers. F must expose Params::kTwoAdicity and kRootOfUnity.
 */
template <typename F>
class EvaluationDomain
{
  public:
    /** Domain of size @p size (power of two, within 2-adicity). */
    explicit EvaluationDomain(std::size_t size) : size_(size)
    {
        DISTMSM_REQUIRE(size >= 1 && (size & (size - 1)) == 0,
                        "domain size must be a power of two");
        unsigned log_n = 0;
        while ((std::size_t{1} << log_n) < size)
            ++log_n;
        log_size_ = log_n;
        DISTMSM_REQUIRE(log_n <= F::Params::kTwoAdicity,
                        "domain exceeds the field's 2-adicity");
        // Scale the maximal-order root down to order `size`.
        F w = F::fromRaw(
            F::Base::fromLimbs(F::Params::kRootOfUnity));
        for (unsigned i = F::Params::kTwoAdicity; i > log_n; --i)
            w = w.sqr();
        root_ = w;
        root_inv_ = w.inverse();
        size_inv_ = F::fromU64(size).inverse();
    }

    std::size_t size() const { return size_; }
    unsigned logSize() const { return log_size_; }
    const F &root() const { return root_; }

    /** w^i. */
    F
    element(std::size_t i) const
    {
        F r = F::one();
        F base = root_;
        for (std::size_t e = i; e != 0; e >>= 1) {
            if (e & 1)
                r *= base;
            base = base.sqr();
        }
        return r;
    }

    /** In-place forward NTT: coefficients -> evaluations over H. */
    void
    forward(std::vector<F> &a) const
    {
        transform(a, root_);
    }

    /** In-place inverse NTT: evaluations -> coefficients. */
    void
    inverse(std::vector<F> &a) const
    {
        transform(a, root_inv_);
        for (auto &x : a)
            x *= size_inv_;
    }

    /** Scale coefficients so evaluation happens on the coset g*H. */
    void
    toCoset(std::vector<F> &coeffs, const F &g) const
    {
        F power = F::one();
        for (auto &c : coeffs) {
            c *= power;
            power *= g;
        }
    }

    /** Undo toCoset (divide coefficient i by g^i). */
    void
    fromCoset(std::vector<F> &coeffs, const F &g) const
    {
        toCoset(coeffs, g.inverse());
    }

    /** Z_H(x) = x^n - 1 evaluated at @p x. */
    F
    vanishing(const F &x) const
    {
        F p = x;
        for (unsigned i = 0; i < log_size_; ++i)
            p = p.sqr();
        return p - F::one();
    }

  private:
    /** Iterative radix-2 Cooley-Tukey with bit-reversal. */
    void
    transform(std::vector<F> &a, const F &w) const
    {
        DISTMSM_REQUIRE(a.size() == size_, "vector/domain mismatch");
        const std::size_t n = size_;
        // Bit-reverse permutation.
        for (std::size_t i = 1, j = 0; i < n; ++i) {
            std::size_t bit = n >> 1;
            for (; j & bit; bit >>= 1)
                j ^= bit;
            j ^= bit;
            if (i < j)
                std::swap(a[i], a[j]);
        }
        for (std::size_t len = 2; len <= n; len <<= 1) {
            F wlen = w;
            for (std::size_t k = len; k < n; k <<= 1)
                wlen = wlen.sqr();
            for (std::size_t i = 0; i < n; i += len) {
                F tw = F::one();
                for (std::size_t j = 0; j < len / 2; ++j) {
                    const F u = a[i + j];
                    const F v = a[i + j + len / 2] * tw;
                    a[i + j] = u + v;
                    a[i + j + len / 2] = u - v;
                    tw *= wlen;
                }
            }
        }
    }

    std::size_t size_;
    unsigned log_size_;
    F root_;
    F root_inv_;
    F size_inv_;
};

/** Evaluate a polynomial (coefficient form) at @p x via Horner. */
template <typename F>
F
evaluatePoly(const std::vector<F> &coeffs, const F &x)
{
    F acc = F::zero();
    for (std::size_t i = coeffs.size(); i-- > 0;)
        acc = acc * x + coeffs[i];
    return acc;
}

/** Product of two polynomials via NTT (sizes padded internally). */
template <typename F>
std::vector<F>
multiplyPolys(std::vector<F> a, std::vector<F> b)
{
    const std::size_t out_size = a.size() + b.size() - 1;
    std::size_t n = 1;
    while (n < out_size)
        n <<= 1;
    a.resize(n, F::zero());
    b.resize(n, F::zero());
    const EvaluationDomain<F> domain(n);
    domain.forward(a);
    domain.forward(b);
    for (std::size_t i = 0; i < n; ++i)
        a[i] *= b[i];
    domain.inverse(a);
    a.resize(out_size);
    return a;
}

} // namespace distmsm::ntt

#endif // DISTMSM_NTT_NTT_H
