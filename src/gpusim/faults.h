/**
 * @file
 * Deterministic fault injection for the simulated cluster.
 *
 * A FaultPlan is a static, seeded description of the faults one run
 * must experience: kill device i at its j-th window, flip bytes of
 * the N-th host<->device transfer (or of every transfer a device
 * makes), delay a device's transfer past the engine's timeout, slow
 * a device down persistently (degrade), corrupt its transfers with a
 * seeded probability (flaky), or stop it responding mid-window
 * (hang). Because the plan is data — not a callback racing with
 * execution — and because MsmEngine draws transfer indices from a
 * sequential host-side counter, the injected faults, the recovery
 * path and the final result are bit-identical for every hostThreads
 * setting.
 *
 * Plans come from MsmOptions::faults or from the DISTMSM_FAULT_SPEC
 * environment variable. Spec grammar (clauses joined by ';'):
 *
 *   kill:dev=K[@win=J]     device K dies at its J-th assigned window
 *                          (J defaults to 0: before any work)
 *   corrupt:xfer=N         flip one byte of transfer attempt N
 *                          (one-shot; the retry sees clean bytes)
 *   corrupt:dev=K          flip one byte of EVERY transfer from
 *                          device K (persistent; exhausts retries)
 *   delay:dev=K,ns=X[@attempt=A]
 *                          delay device K's transfer attempt A
 *                          (default 0: the first attempt) by X ns;
 *                          times out when X exceeds
 *                          MsmOptions::transferTimeoutNs
 *   degrade:dev=K,factor=F[@win=J]
 *                          device K computes F x slower from its
 *                          J-th window on (persistent straggler;
 *                          F >= 1, default onset J = 0)
 *   flaky:dev=K,p=P        corrupt each transfer from device K with
 *                          seeded probability P in [0, 1] (the coin
 *                          derives from (seed, transfer index), so
 *                          the same transfers flip on every run)
 *   hang:dev=K[@win=J]     device K stops responding at its J-th
 *                          window: the window never completes
 *                          without the engine's watchdog
 *   seed:S                 seed for the corruption byte/mask and the
 *                          flaky coin
 *
 * Example: "kill:dev=2@win=1;degrade:dev=0,factor=4;flaky:dev=3,p=1".
 */

#ifndef DISTMSM_GPUSIM_FAULTS_H
#define DISTMSM_GPUSIM_FAULTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace distmsm::gpusim {

/** One injected fault. */
enum class FaultKind {
    KillDevice,            ///< device dies at a window boundary
    CorruptTransfer,       ///< one-shot byte flip of transfer N
    CorruptDeviceTransfers,///< persistent byte flips from device K
    DelayTransfer,         ///< delay one attempt of device K
    DegradeDevice,         ///< persistent compute slowdown (factor)
    FlakyTransfers,        ///< seeded per-transfer corruption odds
    HangDevice,            ///< device stops responding mid-window
};

struct FaultEvent
{
    FaultKind kind = FaultKind::KillDevice;
    int device = -1;           ///< target device (all kinds but xfer)
    int window = 0;            ///< kill/hang/degrade onset ordinal
    std::uint64_t transfer = 0;///< corrupt:xfer=N target index
    double delayNs = 0.0;      ///< delay amount
    int attempt = 0;           ///< delay: the attempt it hits
    double factor = 1.0;       ///< degrade slowdown (>= 1)
    double probability = 0.0;  ///< flaky corruption odds in [0, 1]
};

/** How the fault plan treats one transfer attempt. */
enum class TransferFault {
    None,    ///< clean wire
    Corrupt, ///< a corrupt:xfer / corrupt:dev clause names it
    Flaky,   ///< the flaky coin came up corrupted
};

/** A static, seeded set of faults for one run. */
struct FaultPlan
{
    /** Seeds the corruption byte/mask and the flaky coin. */
    std::uint64_t seed = 0xFA177;
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Parse the DISTMSM_FAULT_SPEC grammar (see file comment). */
    static support::StatusOr<FaultPlan> parse(const std::string &spec);

    /**
     * Ordinal of the window at which @p device dies, or -1 when the
     * plan keeps it alive. Multiple kill clauses for one device take
     * the earliest window.
     */
    int killWindow(int device) const;

    /**
     * Ordinal of the window at which @p device hangs (stops
     * responding), or -1 when it never does. Multiple hang clauses
     * take the earliest window.
     */
    int hangWindow(int device) const;

    /**
     * Compute slowdown of @p device at its @p window_ordinal -th
     * window: the product of the factors of every degrade clause
     * whose onset ordinal is <= @p window_ordinal. 1.0 when healthy.
     */
    double degradeFactor(int device, int window_ordinal) const;

    /** True when any degrade clause targets @p device. */
    bool degraded(int device) const;

    /** Largest flaky corruption probability targeting @p device
     *  (0.0 when none do). */
    double flakyProbability(int device) const;

    /** True when the plan contains degrade or hang clauses — the
     *  faults only the engine's watchdog pass can observe. */
    bool hasStragglerFaults() const;

    /**
     * How transfer attempt @p transfer_index (the engine's
     * sequential counter) from @p device fares: Corrupt when a
     * one-shot corrupt:xfer clause names the index or a persistent
     * corrupt:dev clause names the device, Flaky when a flaky
     * clause's seeded coin (keyed by seed and transfer index, so the
     * outcome is identical at every hostThreads setting) comes up
     * corrupted, None otherwise.
     */
    TransferFault transferFault(std::uint64_t transfer_index,
                                int device) const;

    /** transferFault(...) != None (legacy predicate). */
    bool corruptsTransfer(std::uint64_t transfer_index,
                          int device) const;

    /** Injected delay (ns) for @p device 's attempt @p attempt
     *  (each delay clause hits the attempt its @attempt names,
     *  default 0: the first). */
    double transferDelayNs(int device, int attempt) const;
};

/**
 * Deterministically flip one byte of @p bytes in place: the byte
 * index and the non-zero XOR mask derive from (@p seed, @p
 * transfer_index) alone, so the same plan corrupts the same bit
 * pattern on every run and at every hostThreads setting.
 */
void corruptBytes(std::vector<std::uint8_t> &bytes,
                  std::uint64_t seed, std::uint64_t transfer_index);

/**
 * Process-wide plan from DISTMSM_FAULT_SPEC, parsed once. Returns
 * nullptr when the variable is unset or empty, and the typed
 * InvalidArgument Status when the spec is malformed — the caller
 * decides whether that is fatal (msm_cli exits non-zero; the engine
 * propagates it out of tryCompute).
 */
support::StatusOr<const FaultPlan *> globalFaultPlanFromEnv();

/**
 * What the fault layer saw and did during one MSM: injected faults,
 * detections, recoveries and the verification work performed.
 * Deliberately separate from KernelStats so a zero-fault run's
 * simulator statistics stay bit-identical to a build without the
 * fault layer.
 *
 * Every field is an 8-byte counter (u64 or double ns) and merge()
 * must fold each one; kFieldCount and the static_assert below pin
 * the layout so a newly added field fails compilation until both
 * the count and merge() (checked by the round-trip KAT in
 * test_health.cc) are updated.
 */
struct FaultReport
{
    std::uint64_t faultsInjected = 0;   ///< kills + corruptions + delays
    std::uint64_t corruptInjected = 0;  ///< transfers corrupted in flight
    std::uint64_t corruptDetected = 0;  ///< checksum mismatches raised
    std::uint64_t timeouts = 0;         ///< transfer attempts timed out
    std::uint64_t retries = 0;          ///< transfer attempts repeated
    std::uint64_t windowsResharded = 0; ///< windows re-run on survivors
    /** Reshard targets on the dead device's own node (the
     *  topology-aware policy prefers these: NVLink-local recovery). */
    std::uint64_t reshardsIntraNode = 0;
    /** Reshard targets that had to cross the inter-node fabric. */
    std::uint64_t reshardsCrossNode = 0;
    std::uint64_t devicesLost = 0;      ///< devices the plan killed
    std::uint64_t transfers = 0;        ///< transfer attempts, total
    std::uint64_t checksummed = 0;      ///< payloads digest-verified
    std::uint64_t verifyEcOps = 0;      ///< EC ops spent on digests
    double delayNs = 0.0;               ///< injected transfer delay
    /** Windows whose deadline the watchdog saw blown (degrade beyond
     *  the slack factor, or a hang). */
    std::uint64_t stragglersDetected = 0;
    /** Speculative re-dispatches the watchdog launched. */
    std::uint64_t stragglerRespawns = 0;
    /** Respawns whose speculative copy was adopted. */
    std::uint64_t speculativeWins = 0;
    /** Respawns the original outran (wasted speculation). */
    std::uint64_t speculativeLosses = 0;
    std::uint64_t hangs = 0;            ///< hang faults observed
    /** Payloads re-shipped through a healthy survivor after the
     *  origin device exhausted its transfer retries. */
    std::uint64_t transferFailovers = 0;
    /** Exponential-backoff wait priced before retries. */
    double backoffNs = 0.0;
    /** Priced straggler penalty of this run (watchdog engaged). */
    double stragglerWaitNs = 0.0;
    /** Counterfactual stall had no watchdog respawned the windows. */
    double stragglerStallNs = 0.0;

    /** 8-byte fields above; bump when adding one, then extend both
     *  merge() and the test_health.cc round-trip KAT. */
    static constexpr std::size_t kFieldCount = 22;

    void
    merge(const FaultReport &other)
    {
        faultsInjected += other.faultsInjected;
        corruptInjected += other.corruptInjected;
        corruptDetected += other.corruptDetected;
        timeouts += other.timeouts;
        retries += other.retries;
        windowsResharded += other.windowsResharded;
        reshardsIntraNode += other.reshardsIntraNode;
        reshardsCrossNode += other.reshardsCrossNode;
        devicesLost += other.devicesLost;
        transfers += other.transfers;
        checksummed += other.checksummed;
        verifyEcOps += other.verifyEcOps;
        delayNs += other.delayNs;
        stragglersDetected += other.stragglersDetected;
        stragglerRespawns += other.stragglerRespawns;
        speculativeWins += other.speculativeWins;
        speculativeLosses += other.speculativeLosses;
        hangs += other.hangs;
        transferFailovers += other.transferFailovers;
        backoffNs += other.backoffNs;
        stragglerWaitNs += other.stragglerWaitNs;
        stragglerStallNs += other.stragglerStallNs;
    }
};

static_assert(sizeof(FaultReport) ==
                  FaultReport::kFieldCount * sizeof(std::uint64_t),
              "FaultReport gained a field: bump kFieldCount and "
              "extend merge() plus the test_health.cc KAT");

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_FAULTS_H
