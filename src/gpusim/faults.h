/**
 * @file
 * Deterministic fault injection for the simulated cluster.
 *
 * A FaultPlan is a static, seeded description of the faults one run
 * must experience: kill device i at its j-th window, flip bytes of
 * the N-th host<->device transfer (or of every transfer a device
 * makes), or delay a device's transfer past the engine's timeout.
 * Because the plan is data — not a callback racing with execution —
 * and because MsmEngine draws transfer indices from a sequential
 * host-side counter, the injected faults, the recovery path and the
 * final result are bit-identical for every hostThreads setting.
 *
 * Plans come from MsmOptions::faults or from the DISTMSM_FAULT_SPEC
 * environment variable. Spec grammar (clauses joined by ';'):
 *
 *   kill:dev=K[@win=J]   device K dies at its J-th assigned window
 *                        (J defaults to 0: before any work)
 *   corrupt:xfer=N       flip one byte of transfer attempt N
 *                        (one-shot; the retry sees clean bytes)
 *   corrupt:dev=K        flip one byte of EVERY transfer from
 *                        device K (persistent; exhausts retries)
 *   delay:dev=K,ns=X     delay device K's first transfer attempt by
 *                        X ns (times out when X exceeds
 *                        MsmOptions::transferTimeoutNs)
 *   seed:S               seed for the corruption byte/mask choice
 *
 * Example: "kill:dev=2@win=1;corrupt:xfer=3;delay:dev=0,ns=5e8".
 */

#ifndef DISTMSM_GPUSIM_FAULTS_H
#define DISTMSM_GPUSIM_FAULTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace distmsm::gpusim {

/** One injected fault. */
enum class FaultKind {
    KillDevice,            ///< device dies at a window boundary
    CorruptTransfer,       ///< one-shot byte flip of transfer N
    CorruptDeviceTransfers,///< persistent byte flips from device K
    DelayTransfer,         ///< delay device K's first attempt
};

struct FaultEvent
{
    FaultKind kind = FaultKind::KillDevice;
    int device = -1;           ///< target device (kill/corrupt/delay)
    int window = 0;            ///< kill: ordinal of the fatal window
    std::uint64_t transfer = 0;///< corrupt:xfer=N target index
    double delayNs = 0.0;      ///< delay amount
};

/** A static, seeded set of faults for one run. */
struct FaultPlan
{
    /** Seeds the corruption byte/mask choice (see corruptBytes). */
    std::uint64_t seed = 0xFA177;
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Parse the DISTMSM_FAULT_SPEC grammar (see file comment). */
    static support::StatusOr<FaultPlan> parse(const std::string &spec);

    /**
     * Ordinal of the window at which @p device dies, or -1 when the
     * plan keeps it alive. Multiple kill clauses for one device take
     * the earliest window.
     */
    int killWindow(int device) const;

    /**
     * True when transfer attempt @p transfer_index (the engine's
     * sequential counter) from @p device must be corrupted — either
     * a one-shot corrupt:xfer clause naming this index, or a
     * persistent corrupt:dev clause naming this device.
     */
    bool corruptsTransfer(std::uint64_t transfer_index,
                          int device) const;

    /** Injected delay (ns) for @p device 's attempt @p attempt
     *  (delay clauses hit only the first attempt). */
    double transferDelayNs(int device, int attempt) const;
};

/**
 * Deterministically flip one byte of @p bytes in place: the byte
 * index and the non-zero XOR mask derive from (@p seed, @p
 * transfer_index) alone, so the same plan corrupts the same bit
 * pattern on every run and at every hostThreads setting.
 */
void corruptBytes(std::vector<std::uint8_t> &bytes,
                  std::uint64_t seed, std::uint64_t transfer_index);

/**
 * Process-wide plan from DISTMSM_FAULT_SPEC, parsed once. Returns
 * nullptr when the variable is unset or empty; exits with a message
 * on a malformed spec (caller error, not a bug).
 */
const FaultPlan *globalFaultPlanFromEnv();

/**
 * What the fault layer saw and did during one MSM: injected faults,
 * detections, recoveries and the verification work performed.
 * Deliberately separate from KernelStats so a zero-fault run's
 * simulator statistics stay bit-identical to a build without the
 * fault layer.
 */
struct FaultReport
{
    std::uint64_t faultsInjected = 0;   ///< kills + corruptions + delays
    std::uint64_t corruptInjected = 0;  ///< transfers corrupted in flight
    std::uint64_t corruptDetected = 0;  ///< checksum mismatches raised
    std::uint64_t timeouts = 0;         ///< transfer attempts timed out
    std::uint64_t retries = 0;          ///< transfer attempts repeated
    std::uint64_t windowsResharded = 0; ///< windows re-run on survivors
    /** Reshard targets on the dead device's own node (the
     *  topology-aware policy prefers these: NVLink-local recovery). */
    std::uint64_t reshardsIntraNode = 0;
    /** Reshard targets that had to cross the inter-node fabric. */
    std::uint64_t reshardsCrossNode = 0;
    std::uint64_t devicesLost = 0;      ///< devices the plan killed
    std::uint64_t transfers = 0;        ///< transfer attempts, total
    std::uint64_t checksummed = 0;      ///< payloads digest-verified
    std::uint64_t verifyEcOps = 0;      ///< EC ops spent on digests
    double delayNs = 0.0;               ///< injected transfer delay

    void
    merge(const FaultReport &other)
    {
        faultsInjected += other.faultsInjected;
        corruptInjected += other.corruptInjected;
        corruptDetected += other.corruptDetected;
        timeouts += other.timeouts;
        retries += other.retries;
        windowsResharded += other.windowsResharded;
        reshardsIntraNode += other.reshardsIntraNode;
        reshardsCrossNode += other.reshardsCrossNode;
        devicesLost += other.devicesLost;
        transfers += other.transfers;
        checksummed += other.checksummed;
        verifyEcOps += other.verifyEcOps;
        delayNs += other.delayNs;
    }
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_FAULTS_H
