/**
 * @file
 * Collective merge strategies over the hierarchical topology, with a
 * cost-model-driven tuner.
 *
 * The MSM bucket/window merge moves each device's disjoint partial
 * results (window points, or bucket-slice sums) to the host. Four
 * strategies:
 *
 *   gather          every device ships straight to the host (the
 *                   paper's all-to-host baseline; remote devices
 *                   contend for the host node's NICs)
 *   ring            devices forward along a node-grouped chain; only
 *                   the chain's head (on the host's node) crosses
 *                   the host link
 *   tree            binomial reduce inside each node over NVLink,
 *                   then a binomial combine across node leaders over
 *                   InfiniBand (disjoint leader pairs use their own
 *                   NICs concurrently), then one host hop
 *   reduce-scatter  intra-node NVLink ring reduce-scatter so every
 *                   member ends up owning one key shard, an
 *                   inter-node shard exchange streaming on every
 *                   node's own NICs concurrently, then an allgather
 *                   of the equal-sized shards back to the reduce
 *                   owner, overlapped with the host hop
 *
 * Because every merged key has exactly one non-identity contributor
 * (the distributions partition windows/buckets) and padd() returns
 * its non-identity operand bit-exactly, any combine order yields the
 * gather result bit-for-bit — the strategies differ only in modeled
 * time and per-link traffic. Reduce-scatter in particular never
 * combines in flight either: a "shard" step moves only the keys
 * owned by the shard, each still with its single contributor.
 *
 * CollectiveTimeEstimator predicts per-(topology, message-size,
 * device-count) merge time from the link model, in the style of
 * FlagCX's FlagCXAlgoTimeEstimator; pick() is the tuner (argmin over
 * the predicted times). On the legacy flat topology the gather
 * branch reproduces Cluster::gatherNs's original formula bit-exactly
 * and the refined per-message pricing stays off, so pre-existing
 * timelines never move.
 *
 * Congestion model
 * ----------------
 * Transfers that share a link serialize proportionally to their
 * concurrent occupancy. concurrentTransferNs() is the primitive: one
 * wave of `transfers` synchronized senders streaming `bytes` each
 * over `lanes` independent lanes of one link pays the link latency
 * once (posted receives — the senders are already synchronized by
 * the collective's previous phase) and `transfers / lanes` times the
 * serialized bandwidth term. The legacy formulas are already
 * congestion-consistent under this reading and stay bit-exact
 * (KAT-pinned):
 *
 *   gather  an *unsynchronized* occupancy-N funnel into the host
 *           node — each DMA pays its own latency, the bandwidth
 *           terms serialize (local_gpus x host link, remote_gpus x
 *           striped NICs)
 *   ring    each chain hop occupies a distinct link (occupancy 1);
 *           the slot time is the max over the contended hop kinds
 *   tree    every round's partner pairs use disjoint links
 *           (occupancy 1 per link; concurrent pairs don't share)
 *
 * reduceScatterNs() prices the new schedule with the primitive where
 * occupancy exceeds one: the allgather fan-in is a (g-1)-occupancy
 * NVLink wave racing a (p-g)-occupancy NIC wave into the owner.
 */

#ifndef DISTMSM_GPUSIM_COLLECTIVES_H
#define DISTMSM_GPUSIM_COLLECTIVES_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device.h"
#include "src/gpusim/topology.h"
#include "src/support/status.h"

namespace distmsm::gpusim {

/** A concrete merge strategy. */
enum class CollectiveAlgo { Gather, Ring, Tree, ReduceScatter };

/** The planner-facing knob: a forced strategy, or the tuner. */
enum class CollectivePolicy { Gather, Ring, Tree, ReduceScatter, Auto };

const char *collectiveAlgoName(CollectiveAlgo algo);
const char *collectivePolicyName(CollectivePolicy policy);

/** Parse "gather" | "ring" | "tree" | "reduce-scatter" | "auto". */
support::StatusOr<CollectivePolicy>
parseCollectivePolicy(const std::string &name);

/** Predicted merge time (ns) of every strategy for one merge. */
struct CollectiveCosts
{
    double gatherNs = 0.0;
    double ringNs = 0.0;
    double treeNs = 0.0;
    double reduceScatterNs = 0.0;

    double
    ns(CollectiveAlgo algo) const
    {
        switch (algo) {
        case CollectiveAlgo::Ring:
            return ringNs;
        case CollectiveAlgo::Tree:
            return treeNs;
        case CollectiveAlgo::ReduceScatter:
            return reduceScatterNs;
        default:
            return gatherNs;
        }
    }

    /** Argmin; ties prefer gather, then ring, then tree (the
     *  simpler plans, in schedule-size order). */
    CollectiveAlgo
    best() const
    {
        CollectiveAlgo algo = CollectiveAlgo::Gather;
        double best_ns = gatherNs;
        if (ringNs < best_ns) {
            algo = CollectiveAlgo::Ring;
            best_ns = ringNs;
        }
        if (treeNs < best_ns) {
            algo = CollectiveAlgo::Tree;
            best_ns = treeNs;
        }
        if (reduceScatterNs < best_ns)
            algo = CollectiveAlgo::ReduceScatter;
        return algo;
    }
};

/**
 * One device-to-device reduce edge; dst absorbs src's payload.
 * shard < 0 moves src's whole payload (the legacy semantics); shard
 * >= 0 moves only the keys k with k % shardCount == shard, leaving
 * the rest on src (the reduce-scatter rounds).
 */
struct CollectiveStep
{
    int src = 0;
    int dst = 0;
    int shard = -1;
};

/**
 * A deterministic reduce plan over a member set: the steps in
 * dependency order (a device sends only after every step targeting
 * it in an earlier position ran), then the root ships the merged
 * payload to the host. Gather has no steps and root -1 (every member
 * ships directly). shardCount > 0 (reduce-scatter) keys the shard
 * filter of the sharded steps: shard of key k is k % shardCount.
 */
struct CollectiveSchedule
{
    CollectiveAlgo algo = CollectiveAlgo::Gather;
    std::vector<CollectiveStep> steps;
    int root = -1;
    int shardCount = 0;
};

/**
 * Build the reduce schedule of @p algo over @p members (ascending
 * device ids; ascending order is node-major, so consecutive members
 * share nodes). Ring chains members descending into the lowest
 * member; tree reduces each node's members binomially into the
 * node's first member, then the leaders binomially into the global
 * first member — which lives closest to the host. Pure function of
 * its arguments, so schedules are identical at every hostThreads.
 */
CollectiveSchedule
buildCollectiveSchedule(CollectiveAlgo algo, const Topology &topo,
                        const std::vector<int> &members);

/**
 * Concurrent-transfer congestion primitive: one wave of @p transfers
 * synchronized senders, each streaming @p bytes over a shared link
 * of @p lanes independent lanes (NVLink pair, PCIe complex, or a
 * node's NIC set). The senders were synchronized by the collective's
 * previous phase and the receives are posted, so the wave pays the
 * link latency ONCE; the bandwidth terms serialize proportionally to
 * occupancy (transfers / lanes). Monotone in @p transfers and
 * antitone in @p lanes by construction (KAT-pinned); transfers == 1
 * on a single lane degenerates to LinkSpec::ns.
 */
double concurrentTransferNs(const LinkSpec &link, int lanes,
                            int transfers, double bytes);

/**
 * Analytic per-strategy merge-time model over one topology
 * (FlagCXAlgoTimeEstimator-style). All devices participate; each
 * contributes @p bytes_per_gpu of disjoint payload, and the merged
 * union (num_gpus * bytes_per_gpu) crosses the host link once for
 * ring/tree. The host link comes from the DeviceSpec
 * (transferBandwidthGBs / transferLatencyUs), the device links from
 * the Topology.
 */
class CollectiveTimeEstimator
{
  public:
    CollectiveTimeEstimator(const Topology &topo,
                            const DeviceSpec &device)
        : topo_(topo), device_(device)
    {
    }

    /**
     * All-to-host gather. Legacy flat topologies reproduce the
     * original Cluster::gatherNs formula bit-exactly (one latency
     * term, local NVLink/PCIe complex vs remote NIC contention);
     * hierarchical topologies price each device's DMA with its own
     * link latency, remote traffic striped over the host node's
     * NICs.
     */
    double gatherNs(int num_gpus, std::uint64_t bytes_per_gpu) const;

    /** Node-grouped pipelined chain into the host node's member. */
    double ringNs(int num_gpus, std::uint64_t bytes_per_gpu) const;

    /** Intra-node binomial + leader binomial + one host hop. */
    double treeNs(int num_gpus, std::uint64_t bytes_per_gpu) const;

    /**
     * Intra-node ring reduce-scatter + inter-node shard exchange +
     * allgather fan-in to the owner, the fan-in wave racing (and
     * overlapping) the streamed host hop. The congestion primitive
     * prices the two fan-in waves; see the .cc for the phase
     * accounting.
     */
    double reduceScatterNs(int num_gpus,
                           std::uint64_t bytes_per_gpu) const;

    CollectiveCosts
    costs(int num_gpus, std::uint64_t bytes_per_gpu) const
    {
        CollectiveCosts c;
        c.gatherNs = gatherNs(num_gpus, bytes_per_gpu);
        c.ringNs = ringNs(num_gpus, bytes_per_gpu);
        c.treeNs = treeNs(num_gpus, bytes_per_gpu);
        c.reduceScatterNs =
            reduceScatterNs(num_gpus, bytes_per_gpu);
        return c;
    }

    /** The tuner: a forced policy maps through; Auto is argmin. */
    CollectiveAlgo pick(CollectivePolicy policy, int num_gpus,
                        std::uint64_t bytes_per_gpu) const;

  private:
    /** Merged-union hop root -> host, ns. */
    double hostHopNs(int num_gpus,
                     std::uint64_t bytes_per_gpu) const;

    Topology topo_;
    DeviceSpec device_;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_COLLECTIVES_H
