#include "src/gpusim/cluster.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/thread_pool.h"

namespace distmsm::gpusim {

Cluster::Cluster(DeviceSpec device, int num_gpus, HostSpec host,
                 CostParams params)
    : device_(std::move(device)), num_gpus_(num_gpus),
      host_(std::move(host)), model_(device_, params)
{
    DISTMSM_REQUIRE(num_gpus >= 1, "cluster needs at least one GPU");
}

double
Cluster::makespanNs(const std::vector<double> &per_gpu_ns)
{
    double makespan = 0.0;
    for (double t : per_gpu_ns)
        makespan = std::max(makespan, t);
    return makespan;
}

void
Cluster::forEachDevice(int tasks, const std::function<void(int)> &fn,
                       int host_threads) const
{
    if (tasks <= 0)
        return;
    support::ThreadPool::global().parallelFor(
        0, static_cast<std::size_t>(tasks),
        [&](std::size_t i) { fn(static_cast<int>(i)); },
        support::resolveHostThreads(host_threads));
}

int
Cluster::numNodes() const
{
    return (num_gpus_ + gpusPerNode() - 1) / gpusPerNode();
}

double
Cluster::gatherNs(std::uint64_t bytes_per_gpu) const
{
    // Local node: its GPUs share the NVLink/PCIe complex serially.
    const int local_gpus = std::min(num_gpus_, gpusPerNode());
    const double local_ns =
        local_gpus * bytes_per_gpu /
        (device_.transferBandwidthGBs * 1e9) * 1e9;

    // Remote nodes: each aggregates its GPUs' shares and all remote
    // nodes contend for the host's inter-node NIC.
    const int remote_gpus = num_gpus_ - local_gpus;
    const double remote_ns =
        remote_gpus * bytes_per_gpu /
        (kInterNodeBandwidthGBs * 1e9) * 1e9;

    return device_.transferLatencyUs * 1e3 +
           std::max(local_ns, remote_ns);
}

} // namespace distmsm::gpusim
