#include "src/gpusim/cluster.h"

#include <algorithm>

#include <string>

#include "src/gpusim/collectives.h"
#include "src/support/check.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace distmsm::gpusim {

Cluster::Cluster(DeviceSpec device, int num_gpus, HostSpec host,
                 CostParams params)
    : device_(std::move(device)), num_gpus_(num_gpus),
      topology_(Topology::flat(num_gpus)), host_(std::move(host)),
      model_(device_, params)
{
    DISTMSM_REQUIRE(num_gpus >= 1, "cluster needs at least one GPU");
}

Cluster::Cluster(DeviceSpec device, Topology topology, HostSpec host,
                 CostParams params)
    : device_(std::move(device)), num_gpus_(topology.numGpus()),
      topology_(topology), host_(std::move(host)),
      model_(device_, params)
{
    DISTMSM_REQUIRE(num_gpus_ >= 1,
                    "cluster needs at least one GPU");
    DISTMSM_REQUIRE(topology_.gpusPerNode >= 1,
                    "topology needs at least one GPU per node");
}

double
Cluster::makespanNs(const std::vector<double> &per_gpu_ns)
{
    double makespan = 0.0;
    for (double t : per_gpu_ns)
        makespan = std::max(makespan, t);
    return makespan;
}

void
Cluster::forEachDevice(int tasks, const std::function<void(int)> &fn,
                       int host_threads) const
{
    if (tasks <= 0)
        return;
    support::ThreadPool::global().parallelFor(
        0, static_cast<std::size_t>(tasks),
        [&](std::size_t i) { fn(static_cast<int>(i)); },
        support::resolveHostThreads(host_threads));
}

support::Status
Cluster::forEachDeviceChecked(
    int tasks, const std::function<support::Status(int)> &fn,
    int host_threads) const
{
    if (tasks <= 0)
        return support::Status::ok();
    std::vector<support::Status> slots(
        static_cast<std::size_t>(tasks));
    support::ThreadPool::global().parallelFor(
        0, static_cast<std::size_t>(tasks),
        [&](std::size_t i) { slots[i] = fn(static_cast<int>(i)); },
        support::resolveHostThreads(host_threads));
    for (support::Status &s : slots) {
        if (!s.isOk())
            return s;
    }
    return support::Status::ok();
}

int
Cluster::numNodes() const
{
    return topology_.numNodes();
}

double
Cluster::gatherNs(std::uint64_t bytes_per_gpu) const
{
    // Single source of truth for gather pricing: the collective
    // estimator's gather branch (legacy flat topologies reproduce
    // the original formula bit-exactly; see collectives.h).
    return CollectiveTimeEstimator(topology_, device_)
        .gatherNs(num_gpus_, bytes_per_gpu);
}

void
Cluster::labelTraceLanes(support::TraceRecorder &trace) const
{
    namespace lane = support::tracelane;
    trace.labelProcess(lane::kHostPid, "host cpu");
    trace.labelThread(lane::kHostPid, lane::kComputeTid, "reduce");
    for (int d = 0; d < num_gpus_; ++d) {
        trace.labelProcess(lane::devicePid(d),
                           "gpu" + std::to_string(d));
        trace.labelThread(lane::devicePid(d), lane::kComputeTid,
                          "compute");
        trace.labelThread(lane::devicePid(d), lane::kTransferTid,
                          "transfer");
    }
}

double
Cluster::traceGather(support::TraceRecorder &trace,
                     const std::string &label,
                     std::uint64_t bytes_per_gpu, double start_ns,
                     std::uint64_t flow_id_base) const
{
    namespace lane = support::tracelane;
    labelTraceLanes(trace);
    const double dur_ns = gatherNs(bytes_per_gpu);
    const double end_ns = start_ns + dur_ns;
    support::TraceArgs args;
    args.arg("bytes_per_gpu", static_cast<double>(bytes_per_gpu));
    for (int d = 0; d < num_gpus_; ++d) {
        trace.span(label, "transfer", lane::devicePid(d),
                   lane::kTransferTid, start_ns, dur_ns, args);
        trace.flow(label, flow_id_base + static_cast<std::uint64_t>(d),
                   lane::devicePid(d), lane::kTransferTid, end_ns,
                   lane::kHostPid, lane::kComputeTid, end_ns);
    }
    return end_ns;
}

} // namespace distmsm::gpusim
