/**
 * @file
 * Multi-GPU cluster description.
 *
 * The paper's testbed is an NVIDIA DGX (8x A100 + dual AMD Rome
 * CPUs); configurations beyond 8 GPUs chain several DGX systems
 * (Section 5.1). A Cluster bundles the device specification, the GPU
 * count and the host model, and provides the simple cross-device
 * timing helpers the MSM planner composes.
 */

#ifndef DISTMSM_GPUSIM_CLUSTER_H
#define DISTMSM_GPUSIM_CLUSTER_H

#include <functional>
#include <string>
#include <vector>

#include "src/gpusim/cost_model.h"
#include "src/gpusim/device.h"
#include "src/gpusim/topology.h"
#include "src/support/status.h"

namespace distmsm::support {
class TraceRecorder;
}

namespace distmsm::gpusim {

/** A homogeneous multi-GPU system with one host. */
class Cluster
{
  public:
    /** Legacy flat cluster: Topology::flat(num_gpus). */
    Cluster(DeviceSpec device, int num_gpus,
            HostSpec host = HostSpec{},
            CostParams params = CostParams{});

    /** Hierarchical cluster over an explicit topology. */
    Cluster(DeviceSpec device, Topology topology,
            HostSpec host = HostSpec{},
            CostParams params = CostParams{});

    /** Inter-node link bandwidth (InfiniBand HDR), GB/s per node. */
    static constexpr double kInterNodeBandwidthGBs = 25.0;

    int numGpus() const { return num_gpus_; }
    const DeviceSpec &device() const { return device_; }
    const HostSpec &host() const { return host_; }
    const CostModel &model() const { return model_; }
    const Topology &topology() const { return topology_; }

    /** GPUs per node (transfers within a node use NVLink). */
    int gpusPerNode() const { return topology_.gpusPerNode; }

    /**
     * Makespan (ns) of per-GPU work items executed concurrently:
     * simply the maximum, since the GPUs are independent.
     */
    static double makespanNs(const std::vector<double> &per_gpu_ns);

    /**
     * Time (ns) to gather @p bytes_per_gpu from every GPU to the
     * host. Two-level topology: GPUs of the host's node share its
     * NVLink/PCIe complex; remote DGX nodes forward their aggregated
     * share over the inter-node fabric, all remote nodes contending
     * for the host's NIC (Section 5.1's multi-DGX configurations).
     */
    double gatherNs(std::uint64_t bytes_per_gpu) const;

    /** Number of DGX nodes covering the GPUs. */
    int numNodes() const;

    /**
     * Execute @p fn(i) for i in [0, tasks) — one task per simulated
     * device (or device group) — concurrently on the host thread
     * pool. The real GPUs of the testbed run independently, so their
     * simulations may too; @p fn must only write state owned by task
     * i (e.g. slot i of a result vector), and the caller merges the
     * slots in index order so results are bit-identical to a
     * sequential run.
     *
     * @param host_threads support::resolveHostThreads convention
     *        (0 = auto, 1 = strictly sequential in ascending order).
     */
    void forEachDevice(int tasks,
                       const std::function<void(int)> &fn,
                       int host_threads = 0) const;

    /**
     * forEachDevice with a typed error channel: each task returns a
     * support::Status into its own slot, and the first non-ok status
     * in *task index order* (not completion order, so the result is
     * deterministic across host thread counts) is returned. Used by
     * the fault-tolerant MSM paths, where a task may report its
     * simulated device as lost instead of aborting the process.
     */
    support::Status
    forEachDeviceChecked(int tasks,
                         const std::function<support::Status(int)> &fn,
                         int host_threads = 0) const;

    /** forEachDevice over exactly the cluster's GPUs. */
    void
    forEachGpu(const std::function<void(int)> &fn,
               int host_threads = 0) const
    {
        forEachDevice(num_gpus_, fn, host_threads);
    }

    /**
     * Name this cluster's trace lanes: the host-CPU process plus one
     * process per GPU with compute and transfer tracks
     * (support::tracelane layout). Idempotent; instrumentation sites
     * call it before emitting device spans.
     */
    void labelTraceLanes(support::TraceRecorder &trace) const;

    /**
     * Emit the gather of @p bytes_per_gpu from every GPU as trace
     * spans: one span named @p label on each device's transfer track
     * starting at @p start_ns and lasting gatherNs(bytes_per_gpu),
     * with a flow arrow from its end into the host-CPU lane.
     * @p flow_id_base salts the arrow ids (caller keeps them unique
     * per trace). Returns the gather's end time (ns).
     */
    double traceGather(support::TraceRecorder &trace,
                       const std::string &label,
                       std::uint64_t bytes_per_gpu, double start_ns,
                       std::uint64_t flow_id_base) const;

  private:
    DeviceSpec device_;
    int num_gpus_;
    Topology topology_;
    HostSpec host_;
    CostModel model_;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_CLUSTER_H
