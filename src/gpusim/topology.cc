#include "src/gpusim/topology.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace distmsm::gpusim {

int
Topology::intraHops(int lane_a, int lane_b) const
{
    if (lane_a == lane_b)
        return 0;
    if (intra == IntraTopo::FullyConnected)
        return 1;
    const int g = gpusPerNode;
    const int fwd = ((lane_b - lane_a) % g + g) % g;
    return std::min(fwd, g - fwd);
}

double
Topology::linkNs(int src, int dst, std::uint64_t bytes) const
{
    if (src == dst)
        return 0.0;
    if (sameNode(src, dst)) {
        const int hops = intraHops(laneOf(src), laneOf(dst));
        return hops * intraLink.latencyUs * 1e3 +
               static_cast<double>(bytes) /
                   (intraLink.bandwidthGBs * 1e9) * 1e9;
    }
    const double nic_gbs =
        interLink.bandwidthGBs * std::max(1, nicsPerNode);
    return interLink.latencyUs * 1e3 +
           static_cast<double>(bytes) / (nic_gbs * 1e9) * 1e9;
}

Topology
Topology::flat(int num_gpus)
{
    Topology t;
    t.totalGpus = num_gpus;
    t.gpusPerNode = 8;
    t.hierarchical = false;
    return t;
}

Topology
Topology::dgx(int nodes, int gpus_per_node)
{
    Topology t;
    t.totalGpus = nodes * gpus_per_node;
    t.gpusPerNode = gpus_per_node;
    t.hierarchical = true;
    return t;
}

support::StatusOr<Topology>
Topology::parse(const std::string &spec)
{
    using support::Status;
    using support::StatusCode;
    Topology t;
    t.hierarchical = true;
    int nodes = 1;
    int gpus = 8;
    std::stringstream ss(spec);
    std::string clause;
    while (std::getline(ss, clause, ',')) {
        if (clause.empty())
            continue;
        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            return Status(StatusCode::InvalidArgument,
                          "topology clause '" + clause +
                              "' is not key=value");
        const std::string key = clause.substr(0, eq);
        const std::string val = clause.substr(eq + 1);
        char *end = nullptr;
        const double num = std::strtod(val.c_str(), &end);
        const bool numeric =
            end != nullptr && *end == '\0' && !val.empty();
        const auto positive_int = [&](int &out) {
            if (!numeric || num < 1 || num != static_cast<int>(num))
                return false;
            out = static_cast<int>(num);
            return true;
        };
        const auto positive = [&](double &out) {
            if (!numeric || num <= 0)
                return false;
            out = num;
            return true;
        };
        bool ok = true;
        if (key == "nodes") {
            ok = positive_int(nodes);
        } else if (key == "gpus") {
            ok = positive_int(gpus);
        } else if (key == "nics") {
            ok = positive_int(t.nicsPerNode);
        } else if (key == "intra") {
            if (val == "ring")
                t.intra = IntraTopo::Ring;
            else if (val == "fc")
                t.intra = IntraTopo::FullyConnected;
            else
                ok = false;
        } else if (key == "nvlink") {
            ok = positive(t.intraLink.bandwidthGBs);
        } else if (key == "nvlink_us") {
            ok = positive(t.intraLink.latencyUs);
        } else if (key == "ib") {
            ok = positive(t.interLink.bandwidthGBs);
        } else if (key == "ib_us") {
            ok = positive(t.interLink.latencyUs);
        } else {
            return Status(StatusCode::InvalidArgument,
                          "unknown topology key '" + key + "'");
        }
        if (!ok)
            return Status(StatusCode::InvalidArgument,
                          "bad topology value '" + val +
                              "' for key '" + key + "'");
    }
    t.gpusPerNode = gpus;
    t.totalGpus = nodes * gpus;
    return t;
}

std::string
Topology::describe() const
{
    std::ostringstream os;
    os << numNodes() << "x" << gpusPerNode << " ("
       << (intra == IntraTopo::Ring ? "ring" : "fc")
       << " nvlink " << intraLink.bandwidthGBs << " GB/s, ib "
       << interLink.bandwidthGBs << " GB/s x" << nicsPerNode
       << " nic" << (nicsPerNode == 1 ? "" : "s") << ", "
       << (hierarchical ? "hierarchical" : "legacy flat") << ")";
    return os.str();
}

} // namespace distmsm::gpusim
