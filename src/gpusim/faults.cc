#include "src/gpusim/faults.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>

#include "src/support/check.h"
#include "src/support/prng.h"

namespace distmsm::gpusim {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t next = s.find(sep, pos);
        const std::size_t end =
            next == std::string::npos ? s.size() : next;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

Status
malformed(const std::string &clause, const char *why)
{
    return Status(StatusCode::InvalidArgument,
                  "fault spec clause '" + clause + "': " + why);
}

/** Parse "key=value" pairs of one clause body ("dev=2,ns=5e8"). */
bool
parseFields(const std::string &body,
            std::vector<std::pair<std::string, std::string>> &fields)
{
    for (const std::string &part : split(body, ',')) {
        const std::size_t at = part.find('@');
        // kill:dev=K@win=J nests with '@'; flatten both pieces.
        for (const std::string &kv :
             at == std::string::npos
                 ? std::vector<std::string>{part}
                 : std::vector<std::string>{part.substr(0, at),
                                            part.substr(at + 1)}) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= kv.size())
                return false;
            fields.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        }
    }
    return !fields.empty();
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Non-negative finite double: NaN, inf and negatives are parse
 *  errors (a NaN delay would otherwise slip past `v < 0`). */
bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v) ||
        v < 0.0)
        return false;
    out = v;
    return true;
}

} // namespace

StatusOr<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &clause : split(spec, ';')) {
        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos)
            return malformed(clause, "expected '<kind>:<fields>'");
        const std::string kind = clause.substr(0, colon);
        const std::string body = clause.substr(colon + 1);

        if (kind == "seed") {
            if (!parseU64(body, plan.seed))
                return malformed(clause, "seed wants an integer");
            continue;
        }

        std::vector<std::pair<std::string, std::string>> fields;
        if (!parseFields(body, fields))
            return malformed(clause, "expected key=value fields");

        FaultEvent ev;
        bool have_dev = false, have_xfer = false, have_ns = false;
        bool have_factor = false, have_p = false;
        for (const auto &[key, value] : fields) {
            if (key == "dev") {
                std::uint64_t d;
                if (!parseU64(value, d) ||
                    d > std::numeric_limits<int>::max())
                    return malformed(clause, "bad dev index");
                ev.device = static_cast<int>(d);
                have_dev = true;
            } else if (key == "win") {
                std::uint64_t w;
                if (!parseU64(value, w) ||
                    w > std::numeric_limits<int>::max())
                    return malformed(clause, "bad win ordinal");
                ev.window = static_cast<int>(w);
            } else if (key == "xfer") {
                if (!parseU64(value, ev.transfer))
                    return malformed(clause, "bad xfer index");
                have_xfer = true;
            } else if (key == "ns") {
                if (!parseDouble(value, ev.delayNs))
                    return malformed(
                        clause,
                        "bad ns value (wants finite, >= 0)");
                have_ns = true;
            } else if (key == "attempt") {
                std::uint64_t a;
                if (!parseU64(value, a) ||
                    a > std::numeric_limits<int>::max())
                    return malformed(clause, "bad attempt ordinal");
                ev.attempt = static_cast<int>(a);
            } else if (key == "factor") {
                if (!parseDouble(value, ev.factor) ||
                    ev.factor < 1.0)
                    return malformed(
                        clause,
                        "bad factor (wants finite, >= 1)");
                have_factor = true;
            } else if (key == "p") {
                if (!parseDouble(value, ev.probability) ||
                    ev.probability > 1.0)
                    return malformed(
                        clause, "bad p (wants a value in [0, 1])");
                have_p = true;
            } else {
                return malformed(clause,
                                 "unknown field (dev/win/xfer/ns/"
                                 "attempt/factor/p)");
            }
        }

        if (kind == "kill") {
            if (!have_dev)
                return malformed(clause, "kill wants dev=K");
            ev.kind = FaultKind::KillDevice;
        } else if (kind == "corrupt") {
            if (have_dev == have_xfer)
                return malformed(clause,
                                 "corrupt wants dev=K or xfer=N");
            ev.kind = have_xfer ? FaultKind::CorruptTransfer
                                : FaultKind::CorruptDeviceTransfers;
        } else if (kind == "delay") {
            if (!have_dev || !have_ns)
                return malformed(clause, "delay wants dev=K,ns=X");
            ev.kind = FaultKind::DelayTransfer;
        } else if (kind == "degrade") {
            if (!have_dev || !have_factor)
                return malformed(clause,
                                 "degrade wants dev=K,factor=F");
            ev.kind = FaultKind::DegradeDevice;
        } else if (kind == "flaky") {
            if (!have_dev || !have_p)
                return malformed(clause, "flaky wants dev=K,p=P");
            ev.kind = FaultKind::FlakyTransfers;
        } else if (kind == "hang") {
            if (!have_dev)
                return malformed(clause, "hang wants dev=K");
            ev.kind = FaultKind::HangDevice;
        } else {
            return malformed(clause,
                             "unknown kind (kill/corrupt/delay/"
                             "degrade/flaky/hang/seed)");
        }
        plan.events.push_back(ev);
    }
    return plan;
}

int
FaultPlan::killWindow(int device) const
{
    int win = -1;
    for (const FaultEvent &ev : events) {
        if (ev.kind != FaultKind::KillDevice || ev.device != device)
            continue;
        if (win < 0 || ev.window < win)
            win = ev.window;
    }
    return win;
}

int
FaultPlan::hangWindow(int device) const
{
    int win = -1;
    for (const FaultEvent &ev : events) {
        if (ev.kind != FaultKind::HangDevice || ev.device != device)
            continue;
        if (win < 0 || ev.window < win)
            win = ev.window;
    }
    return win;
}

double
FaultPlan::degradeFactor(int device, int window_ordinal) const
{
    double factor = 1.0;
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::DegradeDevice &&
            ev.device == device && ev.window <= window_ordinal)
            factor *= ev.factor;
    }
    return factor;
}

bool
FaultPlan::degraded(int device) const
{
    for (const FaultEvent &ev : events)
        if (ev.kind == FaultKind::DegradeDevice &&
            ev.device == device)
            return true;
    return false;
}

double
FaultPlan::flakyProbability(int device) const
{
    double p = 0.0;
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::FlakyTransfers &&
            ev.device == device && ev.probability > p)
            p = ev.probability;
    }
    return p;
}

bool
FaultPlan::hasStragglerFaults() const
{
    for (const FaultEvent &ev : events)
        if (ev.kind == FaultKind::DegradeDevice ||
            ev.kind == FaultKind::HangDevice)
            return true;
    return false;
}

TransferFault
FaultPlan::transferFault(std::uint64_t transfer_index,
                         int device) const
{
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::CorruptTransfer &&
            ev.transfer == transfer_index)
            return TransferFault::Corrupt;
        if (ev.kind == FaultKind::CorruptDeviceTransfers &&
            ev.device == device)
            return TransferFault::Corrupt;
    }
    const double p = flakyProbability(device);
    if (p > 0.0) {
        // The coin is a pure function of (seed, transfer index):
        // the engine's sequential transfer counter makes the same
        // attempts flip at every hostThreads setting. A distinct
        // mixing constant keeps the coin stream independent of the
        // corruptBytes byte/mask stream.
        Prng coin(seed ^ (transfer_index * 0xD1B54A32D192ED03ull) ^
                  0xF1AC7);
        const double draw =
            static_cast<double>(coin() >> 11) * 0x1.0p-53;
        if (draw < p)
            return TransferFault::Flaky;
    }
    return TransferFault::None;
}

bool
FaultPlan::corruptsTransfer(std::uint64_t transfer_index,
                            int device) const
{
    return transferFault(transfer_index, device) !=
           TransferFault::None;
}

double
FaultPlan::transferDelayNs(int device, int attempt) const
{
    double delay = 0.0;
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::DelayTransfer &&
            ev.device == device && ev.attempt == attempt)
            delay += ev.delayNs;
    }
    return delay;
}

void
corruptBytes(std::vector<std::uint8_t> &bytes, std::uint64_t seed,
             std::uint64_t transfer_index)
{
    if (bytes.empty())
        return;
    Prng prng(seed ^ (transfer_index * 0x9E3779B97F4A7C15ull));
    const std::size_t idx =
        static_cast<std::size_t>(prng.below(bytes.size()));
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1 + prng.below(255));
    bytes[idx] ^= mask;
}

StatusOr<const FaultPlan *>
globalFaultPlanFromEnv()
{
    struct EnvPlan
    {
        std::unique_ptr<FaultPlan> plan;
        Status status;
    };
    static const EnvPlan env = [] {
        EnvPlan e;
        const char *spec = std::getenv("DISTMSM_FAULT_SPEC");
        if (spec == nullptr || spec[0] == '\0')
            return e;
        StatusOr<FaultPlan> parsed = FaultPlan::parse(spec);
        if (!parsed.isOk()) {
            e.status = Status(
                parsed.status().code(),
                "DISTMSM_FAULT_SPEC: " + parsed.status().message());
            return e;
        }
        e.plan = std::make_unique<FaultPlan>(std::move(*parsed));
        return e;
    }();
    if (!env.status.isOk())
        return env.status;
    return static_cast<const FaultPlan *>(env.plan.get());
}

} // namespace distmsm::gpusim
