#include "src/gpusim/faults.h"

#include <cstdlib>
#include <limits>
#include <memory>

#include "src/support/check.h"
#include "src/support/prng.h"

namespace distmsm::gpusim {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t next = s.find(sep, pos);
        const std::size_t end =
            next == std::string::npos ? s.size() : next;
        if (end > pos)
            out.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

Status
malformed(const std::string &clause, const char *why)
{
    return Status(StatusCode::InvalidArgument,
                  "fault spec clause '" + clause + "': " + why);
}

/** Parse "key=value" pairs of one clause body ("dev=2,ns=5e8"). */
bool
parseFields(const std::string &body,
            std::vector<std::pair<std::string, std::string>> &fields)
{
    for (const std::string &part : split(body, ',')) {
        const std::size_t at = part.find('@');
        // kill:dev=K@win=J nests with '@'; flatten both pieces.
        for (const std::string &kv :
             at == std::string::npos
                 ? std::vector<std::string>{part}
                 : std::vector<std::string>{part.substr(0, at),
                                            part.substr(at + 1)}) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= kv.size())
                return false;
            fields.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        }
    }
    return !fields.empty();
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || v < 0.0)
        return false;
    out = v;
    return true;
}

} // namespace

StatusOr<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &clause : split(spec, ';')) {
        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos)
            return malformed(clause, "expected '<kind>:<fields>'");
        const std::string kind = clause.substr(0, colon);
        const std::string body = clause.substr(colon + 1);

        if (kind == "seed") {
            if (!parseU64(body, plan.seed))
                return malformed(clause, "seed wants an integer");
            continue;
        }

        std::vector<std::pair<std::string, std::string>> fields;
        if (!parseFields(body, fields))
            return malformed(clause, "expected key=value fields");

        FaultEvent ev;
        bool have_dev = false, have_xfer = false, have_ns = false;
        for (const auto &[key, value] : fields) {
            if (key == "dev") {
                std::uint64_t d;
                if (!parseU64(value, d) ||
                    d > std::numeric_limits<int>::max())
                    return malformed(clause, "bad dev index");
                ev.device = static_cast<int>(d);
                have_dev = true;
            } else if (key == "win") {
                std::uint64_t w;
                if (!parseU64(value, w) ||
                    w > std::numeric_limits<int>::max())
                    return malformed(clause, "bad win ordinal");
                ev.window = static_cast<int>(w);
            } else if (key == "xfer") {
                if (!parseU64(value, ev.transfer))
                    return malformed(clause, "bad xfer index");
                have_xfer = true;
            } else if (key == "ns") {
                if (!parseDouble(value, ev.delayNs))
                    return malformed(clause, "bad ns value");
                have_ns = true;
            } else {
                return malformed(clause,
                                 "unknown field (dev/win/xfer/ns)");
            }
        }

        if (kind == "kill") {
            if (!have_dev)
                return malformed(clause, "kill wants dev=K");
            ev.kind = FaultKind::KillDevice;
        } else if (kind == "corrupt") {
            if (have_dev == have_xfer)
                return malformed(clause,
                                 "corrupt wants dev=K or xfer=N");
            ev.kind = have_xfer ? FaultKind::CorruptTransfer
                                : FaultKind::CorruptDeviceTransfers;
        } else if (kind == "delay") {
            if (!have_dev || !have_ns)
                return malformed(clause, "delay wants dev=K,ns=X");
            ev.kind = FaultKind::DelayTransfer;
        } else {
            return malformed(clause,
                             "unknown kind (kill/corrupt/delay/seed)");
        }
        plan.events.push_back(ev);
    }
    return plan;
}

int
FaultPlan::killWindow(int device) const
{
    int win = -1;
    for (const FaultEvent &ev : events) {
        if (ev.kind != FaultKind::KillDevice || ev.device != device)
            continue;
        if (win < 0 || ev.window < win)
            win = ev.window;
    }
    return win;
}

bool
FaultPlan::corruptsTransfer(std::uint64_t transfer_index,
                            int device) const
{
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::CorruptTransfer &&
            ev.transfer == transfer_index)
            return true;
        if (ev.kind == FaultKind::CorruptDeviceTransfers &&
            ev.device == device)
            return true;
    }
    return false;
}

double
FaultPlan::transferDelayNs(int device, int attempt) const
{
    if (attempt != 0)
        return 0.0;
    double delay = 0.0;
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::DelayTransfer &&
            ev.device == device)
            delay += ev.delayNs;
    }
    return delay;
}

void
corruptBytes(std::vector<std::uint8_t> &bytes, std::uint64_t seed,
             std::uint64_t transfer_index)
{
    if (bytes.empty())
        return;
    Prng prng(seed ^ (transfer_index * 0x9E3779B97F4A7C15ull));
    const std::size_t idx =
        static_cast<std::size_t>(prng.below(bytes.size()));
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1 + prng.below(255));
    bytes[idx] ^= mask;
}

const FaultPlan *
globalFaultPlanFromEnv()
{
    static const std::unique_ptr<FaultPlan> plan = [] {
        const char *spec = std::getenv("DISTMSM_FAULT_SPEC");
        if (spec == nullptr || spec[0] == '\0')
            return std::unique_ptr<FaultPlan>{};
        StatusOr<FaultPlan> parsed = FaultPlan::parse(spec);
        if (!parsed.isOk()) {
            fatal(__FILE__, __LINE__,
                  ("DISTMSM_FAULT_SPEC: " +
                   parsed.status().toString())
                      .c_str());
        }
        return std::make_unique<FaultPlan>(std::move(*parsed));
    }();
    return plan.get();
}

} // namespace distmsm::gpusim
