/**
 * @file
 * Functional SIMT executor.
 *
 * Kernels are executed under a bulk-synchronous model: a launch is a
 * sequence of *phases*, each running a callback for every thread of
 * the grid, with an implicit barrier between phases. This matches how
 * the paper's kernels are structured (e.g. the three levels of the
 * hierarchical bucket scatter, Algorithm 3, are phases separated by
 * block barriers) and makes atomicity trivial while still letting the
 * simulator measure *concurrency*: all writes to one address within a
 * phase would contend on real hardware, which is exactly the
 * contention statistic the cost model consumes.
 *
 * Per-thread "registers" live in caller-managed arrays indexed by
 * global thread id; per-block shared memory is allocated by the
 * launch and persists across its phases.
 *
 * Host parallelism: a launch constructed with host_threads != 1 runs
 * the independent thread *blocks* of each phase concurrently on the
 * support::ThreadPool; threads within a block stay sequential in tid
 * order. Statistics are accumulated per block and merged in block
 * index order after the barrier, and simulated atomics stay modeled
 * (global WordArrays serialize behind a per-array mutex), so every
 * counter and every simulated memory word is bit-identical to the
 * sequential execution. Kernel callbacks must follow the same rules
 * real CUDA kernels do: only touch shared memory of their own block,
 * use atomicAdd() for cross-block global writes, and never depend on
 * the *ordering* of other blocks' global atomics within a phase.
 */

#ifndef DISTMSM_GPUSIM_EXECUTOR_H
#define DISTMSM_GPUSIM_EXECUTOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/gpusim/stats.h"
#include "src/support/check.h"
#include "src/support/status.h"
#include "src/support/trace.h"

namespace distmsm::gpusim {

class KernelLaunch;

/** Thread coordinates handed to every phase callback. */
struct ThreadCtx
{
    int tid;      ///< thread index within the block
    int bid;      ///< block index
    int blockDim; ///< threads per block
    int gridDim;  ///< blocks in the grid

    /** Global thread id. */
    int gid() const { return bid * blockDim + tid; }
    /** Total threads in the grid. */
    int gridThreads() const { return blockDim * gridDim; }
};

/**
 * A 64-bit word array in simulated memory with atomic counters.
 * Used for both global arrays (one instance for the grid) and
 * per-block shared arrays (owned by KernelLaunch).
 */
class WordArray
{
  public:
    enum class Space { Global, Shared };

    WordArray(std::size_t size, Space space)
        : words_(size, 0), space_(space), phase_counts_(size, 0),
          mutex_(space == Space::Global ? new std::mutex : nullptr)
    {
    }

    std::size_t size() const { return words_.size(); }

    std::uint64_t
    read(std::size_t i) const
    {
        DISTMSM_ASSERT(i < words_.size());
        return words_[i];
    }

    void
    write(std::size_t i, std::uint64_t v)
    {
        DISTMSM_ASSERT(i < words_.size());
        words_[i] = v;
    }

    void fill(std::uint64_t v) { words_.assign(words_.size(), v); }

  private:
    friend class KernelLaunch;
    std::vector<std::uint64_t> words_;
    Space space_;
    // Per-phase contention accounting: writer count per word index
    // plus the list of indices written this phase (first writer
    // appends). Flat storage — a hash map here costs ~100 ns per
    // simulated atomic and dominates large scatter launches. Shared
    // arrays need no block salt: each block owns its own WordArray
    // instance, so indices never alias across blocks.
    std::vector<std::uint32_t> phase_counts_;
    std::vector<std::uint32_t> phase_touched_;
    // Models the hardware atomic unit when blocks run on concurrent
    // host threads: global-space updates serialize here. Shared
    // arrays are only touched by their owning block and need none.
    std::unique_ptr<std::mutex> mutex_;
};

/**
 * One kernel launch: grid geometry, shared memory, phases and stats.
 */
class KernelLaunch
{
  public:
    /**
     * @param grid_dim blocks in the grid.
     * @param block_dim threads per block.
     * @param shared_words 64-bit words of shared memory per block.
     * @param host_threads host threads executing blocks of one phase
     *        concurrently (resolveHostThreads convention; default 1
     *        keeps the legacy strictly-sequential execution).
     */
    KernelLaunch(int grid_dim, int block_dim,
                 std::size_t shared_words, int host_threads = 1);

    /**
     * Check a launch configuration without constructing it: returns
     * KernelFault on empty/negative geometry or a per-block shared
     * allocation the device could never satisfy. Launch sites that
     * participate in the fault-tolerant retry layer validate first
     * and propagate the Status instead of tripping the constructor's
     * hard REQUIRE (kept for direct callers, where bad geometry is a
     * programming error).
     */
    static support::Status validateLaunch(int grid_dim, int block_dim,
                                          std::size_t shared_words);

    /**
     * Emits the launch's trace span on destruction (if tracing was
     * attached): the per-launch record of phases and atomic
     * contention.
     */
    ~KernelLaunch();

    /**
     * Attach structured tracing: when @p trace is non-null, the
     * destructor emits one complete span named @p label on the
     * kernel-launch lane @p lane (tracelane::kKernelsPid), with a
     * logical time axis of one microsecond per bulk-synchronous
     * phase and the full KernelStats — including the atomic
     * contention counters — as args. Zero cost when @p trace is
     * null.
     */
    void
    setTrace(support::TraceRecorder *trace, std::string label,
             int lane)
    {
        trace_ = trace;
        trace_label_ = std::move(label);
        trace_lane_ = lane;
    }

    int gridDim() const { return grid_dim_; }
    int blockDim() const { return block_dim_; }
    int gridThreads() const { return grid_dim_ * block_dim_; }
    /** Effective host threads this launch may use per phase. */
    int hostThreads() const { return host_threads_; }

    /** Per-block shared memory (valid for the whole launch). */
    WordArray &shared(int bid);

    /**
     * Execute one bulk-synchronous phase: @p fn runs for every
     * thread; an implicit barrier follows. Atomic contention is
     * accounted per phase. Blocks may execute on concurrent host
     * threads (see the file comment); threads of one block run
     * sequentially in tid order.
     */
    void phase(const std::function<void(ThreadCtx &)> &fn);

    /**
     * Atomic fetch-add on a word array from thread context; records
     * contention in this launch's stats. As on real hardware, the
     * returned reservation is ordered within a block but carries no
     * cross-block ordering guarantee when blocks run concurrently.
     */
    std::uint64_t atomicAdd(WordArray &arr, std::size_t i,
                            std::uint64_t v, const ThreadCtx &ctx);

    /** Plain (non-atomic) shared/global access accounting. */
    void
    countSharedAccess(const ThreadCtx &ctx, std::uint64_t n = 1)
    {
        blockStats(ctx).sharedAccesses += n;
    }

    void
    countGmemBytes(const ThreadCtx &ctx, std::uint64_t bytes)
    {
        blockStats(ctx).gmemBytes += bytes;
    }

    const KernelStats &stats() const { return stats_; }
    KernelStats &stats() { return stats_; }

  private:
    KernelStats &
    blockStats(const ThreadCtx &ctx)
    {
        return block_stats_[static_cast<std::size_t>(ctx.bid)];
    }

    void runBlock(int bid, const std::function<void(ThreadCtx &)> &fn);
    void foldPhaseContention(WordArray &arr);

    int grid_dim_;
    int block_dim_;
    int host_threads_;
    support::TraceRecorder *trace_ = nullptr;
    std::string trace_label_;
    int trace_lane_ = 0;
    std::vector<WordArray> shared_;
    std::vector<WordArray *> touched_;
    std::mutex touched_mutex_;
    /** Per-block tallies of the running phase, merged in bid order. */
    std::vector<KernelStats> block_stats_;
    KernelStats stats_;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_EXECUTOR_H
