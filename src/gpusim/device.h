/**
 * @file
 * Device descriptions for the simulated GPUs.
 *
 * The paper evaluates on NVIDIA A100 (the DGX systems of Section 5.1),
 * NVIDIA RTX 4090 and AMD RX 6900XT (Section 5.2 / Figure 9). This
 * environment has no GPU, so the evaluation runs against a
 * functional-plus-analytic simulator; DeviceSpec carries the hardware
 * parameters the paper's analysis depends on: thread capacity,
 * register file, shared memory, integer/tensor/fp32 throughput,
 * memory bandwidth and atomic costs.
 */

#ifndef DISTMSM_GPUSIM_DEVICE_H
#define DISTMSM_GPUSIM_DEVICE_H

#include <cstdint>
#include <string>

namespace distmsm::gpusim {

/** Static hardware description of one GPU. */
struct DeviceSpec
{
    std::string name;

    int smCount = 0;
    int maxThreadsPerSm = 0;
    /** 32-bit registers per SM. */
    int registersPerSm = 0;
    /** Per-thread register ceiling imposed by the ISA. */
    int maxRegistersPerThread = 255;
    /** Shared memory per SM in bytes. */
    std::size_t sharedMemPerSm = 0;
    /** Device global memory in bytes (0 = unmodeled / unbounded).
     *  Bounds the planner's precompute-table decision: tables
     *  multiply point storage by the window count, so small-memory
     *  devices shrink the table (larger c) or decline precompute. */
    std::uint64_t globalMemBytes = 0;

    double clockGhz = 0.0;
    /** CUDA-core int32 throughput, tera-ops/s. */
    double int32Tops = 0.0;
    /** Tensor-core int8 throughput, tera-ops/s (0 = no tensor cores). */
    double tensorInt8Tops = 0.0;
    /** fp32 throughput, tera-flops/s. */
    double fp32Tflops = 0.0;
    /** Device memory bandwidth, GB/s. */
    double memBandwidthGBs = 0.0;
    /** Shared-memory aggregate bandwidth relative to device memory. */
    double sharedBandwidthRatio = 10.0;

    /** Latency of an uncontended global atomic, ns. */
    double globalAtomicNs = 20.0;
    /** Extra serialization per additional concurrent writer, ns
     *  (same-address atomics serialize in the L2 atomic units). */
    double globalAtomicConflictNs = 32.0;
    /** Latency of an uncontended shared-memory atomic, ns. */
    double sharedAtomicNs = 2.0;
    /** Extra serialization per concurrent writer (same bank), ns. */
    double sharedAtomicConflictNs = 1.0;

    /** Host<->device transfer bandwidth, GB/s (PCIe / NVLink). */
    double transferBandwidthGBs = 25.0;
    /** Per-transfer latency, us. */
    double transferLatencyUs = 10.0;

    /** Maximum concurrently resident threads on the device. */
    int
    maxConcurrentThreads() const
    {
        return smCount * maxThreadsPerSm;
    }

    /**
     * Occupancy (0..1]: fraction of maxThreadsPerSm that can be
     * resident given per-thread register demand and per-block shared
     * memory demand.
     *
     * @param regs_per_thread registers each thread needs.
     * @param shared_bytes_per_block shared memory per thread block.
     * @param threads_per_block block size.
     */
    double occupancy(int regs_per_thread,
                     std::size_t shared_bytes_per_block,
                     int threads_per_block) const;

    /** NVIDIA A100 80GB (SXM). */
    static DeviceSpec a100();
    /** NVIDIA GeForce RTX 4090. */
    static DeviceSpec rtx4090();
    /** AMD Radeon RX 6900XT. */
    static DeviceSpec rx6900xt();
};

/** Host CPU description for the offloaded bucket-reduce and staging. */
struct HostSpec
{
    std::string name = "AMD Rome 7742 x2";
    int cores = 128;
    /**
     * Serial EC point-addition rate relative to one full GPU; the
     * paper's extrapolation is "a GPU could be up to 128x faster
     * than a high-end CPU".
     */
    double gpuToCpuEcRatio = 128.0;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_DEVICE_H
