/**
 * @file
 * Execution statistics gathered by the functional SIMT executor.
 *
 * The paper's multi-GPU analysis is driven by counts — atomic
 * operations and their contention, EC arithmetic per thread, bytes
 * moved. The executor measures them exactly during functional runs;
 * the cost model (cost_model.h) converts them to simulated time.
 */

#ifndef DISTMSM_GPUSIM_STATS_H
#define DISTMSM_GPUSIM_STATS_H

#include <cstdint>
#include <string>

#include "src/support/metrics.h"

namespace distmsm::gpusim {

/** Tallies for one kernel launch (or one accumulation scope). */
struct KernelStats
{
    /**
     * Bulk-synchronous phases executed.
     *
     * Aggregation scope: phases count *launch* structure, not work,
     * so the two merge directions treat them differently. merge()
     * composes launches that run one after another (windows of one
     * GPU, successive kernels) and SUMS phases. mergeLockstep()
     * composes devices executing the same launch in lockstep (the
     * bucket groups of one window, per-GPU replicas of a grid) and
     * takes the MAX — the cost model must see per-launch phases,
     * not a device-count multiple. Every other field is a work or
     * traffic count and sums under both scopes.
     */
    std::uint64_t phases = 0;

    /** Global-memory atomic operations issued. */
    std::uint64_t globalAtomics = 0;
    /**
     * Serialization weight: for every phase and address, c writers
     * contribute c*c (each of the c atomics waits on average for c
     * predecessors). The hotter an address, the superlinearly larger
     * this term — the effect Section 3.2 attributes the scatter
     * bottleneck to.
     */
    std::uint64_t globalConflictWeight = 0;
    /** Largest per-address writer count seen in any phase. */
    std::uint64_t globalMaxConflict = 0;

    /** Shared-memory atomic operations issued. */
    std::uint64_t sharedAtomics = 0;
    std::uint64_t sharedConflictWeight = 0;
    std::uint64_t sharedMaxConflict = 0;

    /** Plain shared-memory word accesses. */
    std::uint64_t sharedAccesses = 0;
    /** Device-memory bytes read/written by explicit transfers. */
    std::uint64_t gmemBytes = 0;

    /** Elliptic-curve operations executed (filled by MSM kernels). */
    std::uint64_t paddOps = 0;
    std::uint64_t paccOps = 0;
    std::uint64_t pdblOps = 0;
    /** Batched-affine bucket accumulations (~6 muls amortized). */
    std::uint64_t affineAddOps = 0;
    /** Shared Montgomery batch inversions amortized over the above. */
    std::uint64_t batchInvOps = 0;

    /**
     * Field-wise equality; the determinism tests assert measured
     * statistics do not drift across host-thread counts.
     */
    bool operator==(const KernelStats &) const = default;

    /** Serial composition (launch after launch): sums everything,
     *  including phases; maxima stay maxima. */
    void
    merge(const KernelStats &o)
    {
        phases += o.phases;
        globalAtomics += o.globalAtomics;
        globalConflictWeight += o.globalConflictWeight;
        globalMaxConflict =
            globalMaxConflict > o.globalMaxConflict
                ? globalMaxConflict
                : o.globalMaxConflict;
        sharedAtomics += o.sharedAtomics;
        sharedConflictWeight += o.sharedConflictWeight;
        sharedMaxConflict =
            sharedMaxConflict > o.sharedMaxConflict
                ? sharedMaxConflict
                : o.sharedMaxConflict;
        sharedAccesses += o.sharedAccesses;
        gmemBytes += o.gmemBytes;
        paddOps += o.paddOps;
        paccOps += o.paccOps;
        pdblOps += o.pdblOps;
        affineAddOps += o.affineAddOps;
        batchInvOps += o.batchInvOps;
    }

    /**
     * Parallel composition (devices running the same launch in
     * lockstep): work and traffic counts sum across the devices,
     * but the bulk-synchronous phase count is a property of the one
     * launch they share, so it maxes (see the phases field).
     */
    void
    mergeLockstep(const KernelStats &o)
    {
        const std::uint64_t launch_phases =
            phases > o.phases ? phases : o.phases;
        merge(o);
        phases = launch_phases;
    }

    /**
     * Feed every counter into @p metrics under @p prefix (e.g.
     * "msm/dev0/w12/"). Integer counters commute exactly, so
     * concurrent recording stays deterministic.
     */
    void
    recordMetrics(support::MetricsRegistry &metrics,
                  const std::string &prefix) const
    {
        metrics.add(prefix + "phases",
                    static_cast<double>(phases));
        metrics.add(prefix + "global_atomics",
                    static_cast<double>(globalAtomics));
        metrics.add(prefix + "global_conflict_weight",
                    static_cast<double>(globalConflictWeight));
        metrics.max(prefix + "global_max_conflict",
                    static_cast<double>(globalMaxConflict));
        metrics.add(prefix + "shared_atomics",
                    static_cast<double>(sharedAtomics));
        metrics.add(prefix + "shared_conflict_weight",
                    static_cast<double>(sharedConflictWeight));
        metrics.max(prefix + "shared_max_conflict",
                    static_cast<double>(sharedMaxConflict));
        metrics.add(prefix + "shared_accesses",
                    static_cast<double>(sharedAccesses));
        metrics.add(prefix + "gmem_bytes",
                    static_cast<double>(gmemBytes));
        metrics.add(prefix + "padd_ops",
                    static_cast<double>(paddOps));
        metrics.add(prefix + "pacc_ops",
                    static_cast<double>(paccOps));
        metrics.add(prefix + "pdbl_ops",
                    static_cast<double>(pdblOps));
        metrics.add(prefix + "affine_add_ops",
                    static_cast<double>(affineAddOps));
        metrics.add(prefix + "batch_inv_ops",
                    static_cast<double>(batchInvOps));
    }
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_STATS_H
