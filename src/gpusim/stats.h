/**
 * @file
 * Execution statistics gathered by the functional SIMT executor.
 *
 * The paper's multi-GPU analysis is driven by counts — atomic
 * operations and their contention, EC arithmetic per thread, bytes
 * moved. The executor measures them exactly during functional runs;
 * the cost model (cost_model.h) converts them to simulated time.
 */

#ifndef DISTMSM_GPUSIM_STATS_H
#define DISTMSM_GPUSIM_STATS_H

#include <cstdint>

namespace distmsm::gpusim {

/** Tallies for one kernel launch (or one accumulation scope). */
struct KernelStats
{
    /** Bulk-synchronous phases executed. */
    std::uint64_t phases = 0;

    /** Global-memory atomic operations issued. */
    std::uint64_t globalAtomics = 0;
    /**
     * Serialization weight: for every phase and address, c writers
     * contribute c*c (each of the c atomics waits on average for c
     * predecessors). The hotter an address, the superlinearly larger
     * this term — the effect Section 3.2 attributes the scatter
     * bottleneck to.
     */
    std::uint64_t globalConflictWeight = 0;
    /** Largest per-address writer count seen in any phase. */
    std::uint64_t globalMaxConflict = 0;

    /** Shared-memory atomic operations issued. */
    std::uint64_t sharedAtomics = 0;
    std::uint64_t sharedConflictWeight = 0;
    std::uint64_t sharedMaxConflict = 0;

    /** Plain shared-memory word accesses. */
    std::uint64_t sharedAccesses = 0;
    /** Device-memory bytes read/written by explicit transfers. */
    std::uint64_t gmemBytes = 0;

    /** Elliptic-curve operations executed (filled by MSM kernels). */
    std::uint64_t paddOps = 0;
    std::uint64_t paccOps = 0;
    std::uint64_t pdblOps = 0;
    /** Batched-affine bucket accumulations (~6 muls amortized). */
    std::uint64_t affineAddOps = 0;
    /** Shared Montgomery batch inversions amortized over the above. */
    std::uint64_t batchInvOps = 0;

    /**
     * Field-wise equality; the determinism tests assert measured
     * statistics do not drift across host-thread counts.
     */
    bool operator==(const KernelStats &) const = default;

    void
    merge(const KernelStats &o)
    {
        phases += o.phases;
        globalAtomics += o.globalAtomics;
        globalConflictWeight += o.globalConflictWeight;
        globalMaxConflict =
            globalMaxConflict > o.globalMaxConflict
                ? globalMaxConflict
                : o.globalMaxConflict;
        sharedAtomics += o.sharedAtomics;
        sharedConflictWeight += o.sharedConflictWeight;
        sharedMaxConflict =
            sharedMaxConflict > o.sharedMaxConflict
                ? sharedMaxConflict
                : o.sharedMaxConflict;
        sharedAccesses += o.sharedAccesses;
        gmemBytes += o.gmemBytes;
        paddOps += o.paddOps;
        paccOps += o.paccOps;
        pdblOps += o.pdblOps;
        affineAddOps += o.affineAddOps;
        batchInvOps += o.batchInvOps;
    }
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_STATS_H
