#include "src/gpusim/cost_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/sched/dag.h"
#include "src/sched/schedule_search.h"
#include "src/sched/spill.h"
#include "src/support/check.h"

namespace distmsm::gpusim {
namespace {

/** Block size assumed for the EC kernels. */
constexpr int kEcBlockThreads = 256;

/** See CostModel::evaluations(). */
std::atomic<std::uint64_t> g_evaluations{0};

inline void
noteEvaluation()
{
    g_evaluations.fetch_add(1, std::memory_order_relaxed);
}

/** Cached schedule results so the model agrees with src/sched. */
struct SchedNumbers
{
    int paccReference;
    int paccOptimal;
    int paccSpilled;
    int paddReference;
    int paddOptimal;
    int paddSpilled;
    int pdblReference;
    int pdblOptimal;
    int pdblSpilled;
    int spillTransfers;
    int spillShared;
};

const SchedNumbers &
schedNumbers()
{
    static const SchedNumbers numbers = [] {
        SchedNumbers n{};
        const sched::OpDag pacc = sched::makePaccDag();
        const sched::OpDag padd = sched::makePaddDag();
        n.paccReference = pacc.peakLiveReferenceOrder();
        n.paddReference = padd.peakLiveReferenceOrder();
        const auto pacc_opt = sched::findOptimalOrder(pacc);
        const auto padd_opt = sched::findOptimalOrder(padd);
        n.paccOptimal = pacc_opt.peak;
        n.paddOptimal = padd_opt.peak;
        const auto pacc_spill =
            sched::planSpills(pacc, pacc_opt.order, pacc_opt.peak - 2);
        const auto padd_spill =
            sched::planSpills(padd, padd_opt.order, padd_opt.peak - 2);
        DISTMSM_ASSERT(pacc_spill.feasible && padd_spill.feasible);
        n.paccSpilled = pacc_spill.regTarget;
        n.paddSpilled = padd_spill.regTarget;
        n.spillTransfers = pacc_spill.transfers;
        n.spillShared = pacc_spill.peakShared;
        const sched::OpDag pdbl = sched::makePdblDag(true);
        n.pdblReference = pdbl.peakLiveReferenceOrder();
        const auto pdbl_opt = sched::findOptimalOrder(pdbl);
        n.pdblOptimal = pdbl_opt.peak;
        const auto pdbl_spill = sched::planSpills(
            pdbl, pdbl_opt.order,
            std::max(3, pdbl_opt.peak - 2));
        DISTMSM_ASSERT(pdbl_spill.feasible);
        n.pdblSpilled = pdbl_spill.regTarget;
        return n;
    }();
    return numbers;
}

} // namespace

int
ecOpModmuls(const EcKernelVariant &v, EcOp op, bool a_is_zero)
{
    switch (op) {
      case EcOp::Pacc:
        return v.dedicatedPacc ? 10 : 14;
      case EcOp::Padd:
        return 14;
      case EcOp::Pdbl:
        return a_is_zero ? 9 : 11;
      case EcOp::AffineAdd:
        // 3 intrinsic muls + 3 amortized batch-inversion muls + ~1
        // for the inversion share itself.
        return 7;
    }
    return 14;
}

const char *
fieldBackendName(FieldBackend backend)
{
    switch (backend) {
      case FieldBackend::Auto:
        return "auto";
      case FieldBackend::CudaCore:
        return "cuda-core";
      case FieldBackend::TensorCore:
        return "tensor-core";
    }
    return "?";
}

bool
parseFieldBackend(std::string_view text, FieldBackend *out)
{
    if (text == "auto") {
        *out = FieldBackend::Auto;
    } else if (text == "cuda-core" || text == "cuda" ||
               text == "cudacore") {
        *out = FieldBackend::CudaCore;
    } else if (text == "tensor-core" || text == "tensor" ||
               text == "tc" || text == "tensorcore") {
        *out = FieldBackend::TensorCore;
    } else {
        return false;
    }
    return true;
}

EcKernelVariant
applyFieldBackend(EcKernelVariant v, FieldBackend backend)
{
    switch (backend) {
      case FieldBackend::Auto:
        break;
      case FieldBackend::CudaCore:
        v.tensorCoreMont = false;
        v.onTheFlyCompact = false;
        break;
      case FieldBackend::TensorCore:
        // Variants that already model tensor cores keep their
        // compaction choice (the conventional store-to-memory path
        // stays priceable); otherwise engage the paper's preferred
        // in-register compaction along with the offload.
        if (!v.tensorCoreMont)
            v.onTheFlyCompact = true;
        v.tensorCoreMont = true;
        break;
    }
    return v;
}

CurveProfile
CurveProfile::bn254()
{
    return CurveProfile{"BN254", 254, 254, true, 128};
}

CurveProfile
CurveProfile::bls377()
{
    return CurveProfile{"BLS12-377", 377, 253, true};
}

CurveProfile
CurveProfile::bls381()
{
    return CurveProfile{"BLS12-381", 381, 255, true, 128};
}

CurveProfile
CurveProfile::mnt4753()
{
    return CurveProfile{"MNT4753", 753, 753, false};
}

CostModel::CostModel(const DeviceSpec &spec, const CostParams &params)
    : spec_(spec), params_(params)
{
}

int
CostModel::peakLiveBigints(const EcKernelVariant &v, EcOp op) const
{
    const SchedNumbers &n = schedNumbers();
    if (op == EcOp::Pdbl) {
        if (v.explicitSpill && v.optimalOrder)
            return n.pdblSpilled;
        return v.optimalOrder ? n.pdblOptimal : n.pdblReference;
    }
    // The batched-affine accumulation's register footprint is the
    // pacc kernel's (fewer live temporaries, plus the slope batch
    // staged in memory), so it shares the pacc schedule numbers.
    const bool pacc_like =
        op == EcOp::Pacc || op == EcOp::AffineAdd;
    if (v.explicitSpill && v.optimalOrder)
        return pacc_like ? n.paccSpilled : n.paddSpilled;
    if (v.optimalOrder)
        return pacc_like ? n.paccOptimal : n.paddOptimal;
    return pacc_like ? n.paccReference : n.paddReference;
}

int
CostModel::regsPerThread(const CurveProfile &curve,
                         const EcKernelVariant &v, EcOp op) const
{
    const double bigints = peakLiveBigints(v, op);
    return static_cast<int>(
               std::lround(bigints * curve.regsPerBigint())) +
           params_.auxRegisters;
}

double
CostModel::kernelOccupancy(const CurveProfile &curve,
                           const EcKernelVariant &v, EcOp op) const
{
    const int regs = regsPerThread(curve, v, op);
    std::size_t shared_bytes = 0;
    if (v.explicitSpill && v.optimalOrder) {
        shared_bytes = static_cast<std::size_t>(
            schedNumbers().spillShared) *
            curve.limbs64() * 8 * kEcBlockThreads;
    }
    return spec_.occupancy(regs, shared_bytes, kEcBlockThreads);
}

double
CostModel::effectiveIssue(double occupancy) const
{
    const double threads = occupancy * spec_.maxThreadsPerSm;
    return std::min(1.0, threads / params_.saturationThreadsPerSm);
}

double
CostModel::ecOpCudaOps(const CurveProfile &curve,
                       const EcKernelVariant &v, EcOp op) const
{
    const double L = curve.limbs64();
    const int modmuls = ecOpModmuls(v, op, curve.aIsZero);
    const int modadds = op == EcOp::Pdbl ? 6 : 7;
    // CIOS: 2L^2 + L 64-bit MACs per modular multiplication.
    double macs = modmuls * (2 * L * L + L);
    double marshal_ops = 0.0;
    if (v.tensorCoreMont) {
        // The constant-operand half (m * n, L^2 MACs per modmul)
        // leaves the CUDA cores, but packing fragments and folding
        // the column sums back costs int32 work; slightly less when
        // the raw lanes go straight to memory (the traffic penalty
        // is charged separately).
        macs -= modmuls * L * L;
        double per_mac = params_.tcMarshalOpsPerOffloadedMac;
        if (v.onTheFlyCompact) {
            // Wider operands drag more zero lanes through the
            // in-register compaction (Section 5.3.3).
            per_mac *= 1.0 + params_.compactWideMarshalFactor *
                                 std::max(0.0,
                                          curve.fieldBits / 384.0 -
                                              1.0);
        } else {
            per_mac *= 0.75;
        }
        marshal_ops = modmuls * L * L * per_mac;
        if (!v.onTheFlyCompact) {
            // Conventional path: every raw uint32 lane is stored to
            // memory and reloaded before compaction.
            marshal_ops += modmuls * L * params_.tcRawStoreOpsPerLimb;
        }
    }
    const double add_ops = modadds * 2 * L * params_.opsPerAdd;
    return macs * params_.opsPerMac + marshal_ops + add_ops;
}

double
CostModel::ecThroughputNs(const CurveProfile &curve,
                          const EcKernelVariant &v, EcOp op,
                          std::uint64_t total_ops) const
{
    noteEvaluation();
    if (total_ops == 0)
        return 0.0;
    const double occ = kernelOccupancy(curve, v, op);
    const double issue = effectiveIssue(occ);
    DISTMSM_REQUIRE(issue > 0, "kernel cannot be resident");
    const double cuda_rate = spec_.int32Tops * 1e12 * issue;
    const double cuda_ns =
        total_ops * ecOpCudaOps(curve, v, op) / cuda_rate * 1e9;

    double tc_ns = 0.0;
    double traffic_ns = 0.0;
    if (v.tensorCoreMont) {
        if (spec_.tensorInt8Tops > 0) {
            const double L = curve.limbs64();
            const int modmuls =
                ecOpModmuls(v, op, curve.aIsZero);
            // Digit-matrix product: (8L)^2 byte MACs per modmul.
            const double tc_ops = total_ops * modmuls * 64 * L * L *
                                  params_.tcOpsPerByteMac;
            tc_ns = tc_ops / (spec_.tensorInt8Tops * 1e12) * 1e9;
        } else {
            // No tensor unit (RX 6900XT): the work stays on the
            // vector ALUs; fold it back.
            const double L = curve.limbs64();
            const int modmuls =
                ecOpModmuls(v, op, curve.aIsZero);
            const double macs = total_ops * modmuls * L * L;
            tc_ns = macs * params_.opsPerMac / cuda_rate * 1e9;
        }
    }

    double spill_ns = 0.0;
    if (v.explicitSpill && v.optimalOrder) {
        const double bytes = static_cast<double>(total_ops) *
                             schedNumbers().spillTransfers *
                             curve.limbs64() * 8;
        const double shared_bw =
            spec_.memBandwidthGBs * spec_.sharedBandwidthRatio * 1e9;
        spill_ns = bytes / shared_bw * 1e9;
    }

    // Tensor cores run concurrently with CUDA cores; memory and
    // shared-memory traffic do not overlap in this model.
    return std::max(cuda_ns, tc_ns) + traffic_ns + spill_ns;
}

double
CostModel::ecSerialNs(const CurveProfile &curve,
                      const EcKernelVariant &v, EcOp op,
                      std::uint64_t chain_ops) const
{
    noteEvaluation();
    // A lone dependent chain is issue-latency bound: roughly one
    // int32 op per cycle with no latency hiding.
    const double single_thread_rate = spec_.clockGhz * 1e9 * 0.5;
    return chain_ops * ecOpCudaOps(curve, v, op) /
           single_thread_rate * 1e9;
}

double
CostModel::atomicNs(const KernelStats &stats, int active_threads) const
{
    noteEvaluation();
    DISTMSM_REQUIRE(active_threads > 0, "no active threads");
    double total = 0.0;
    if (stats.globalAtomics > 0) {
        const double mean_conflict =
            static_cast<double>(stats.globalConflictWeight) /
            stats.globalAtomics;
        const double per_op = spec_.globalAtomicNs +
                              (mean_conflict - 1.0) *
                                  spec_.globalAtomicConflictNs;
        total += stats.globalAtomics * per_op /
                 std::min<double>(active_threads,
                                  spec_.maxConcurrentThreads());
    }
    if (stats.sharedAtomics > 0) {
        const double mean_conflict =
            static_cast<double>(stats.sharedConflictWeight) /
            stats.sharedAtomics;
        const double per_op = spec_.sharedAtomicNs +
                              (mean_conflict - 1.0) *
                                  spec_.sharedAtomicConflictNs;
        total += stats.sharedAtomics * per_op /
                 std::min<double>(active_threads,
                                  spec_.maxConcurrentThreads());
    }
    return total;
}

double
CostModel::scatterComputeNs(std::uint64_t elements,
                            int active_threads) const
{
    noteEvaluation();
    const double occ =
        std::min(1.0, static_cast<double>(active_threads) /
                          spec_.maxConcurrentThreads());
    const double rate =
        spec_.int32Tops * 1e12 * effectiveIssue(occ);
    return elements * params_.scatterOpsPerElement / rate * 1e9;
}

double
CostModel::gmemNs(std::uint64_t bytes) const
{
    noteEvaluation();
    return bytes / (spec_.memBandwidthGBs * 1e9) * 1e9;
}

double
CostModel::transferNs(std::uint64_t bytes) const
{
    noteEvaluation();
    return spec_.transferLatencyUs * 1e3 +
           bytes / (spec_.transferBandwidthGBs * 1e9) * 1e9;
}

double
CostModel::hostEcNs(const CurveProfile &curve, std::uint64_t ops,
                    const HostSpec &host) const
{
    noteEvaluation();
    // "a GPU could be up to 128x faster than a high-end CPU": the
    // CPU retires EC additions at 1/128 of the full device rate.
    const EcKernelVariant v = EcKernelVariant::full();
    const double gpu_ns_per_op =
        ecThroughputNs(curve, v, EcOp::Pacc, 1 << 20) / (1 << 20);
    return ops * gpu_ns_per_op * host.gpuToCpuEcRatio;
}

std::uint64_t
CostModel::evaluations()
{
    return g_evaluations.load(std::memory_order_relaxed);
}

} // namespace distmsm::gpusim
