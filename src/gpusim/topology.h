/**
 * @file
 * Hierarchical interconnect topology of the simulated cluster.
 *
 * The paper's testbed chains DGX nodes (8x A100 each) over
 * InfiniBand (Section 5.1); inside a node the GPUs share an NVLink
 * fabric. A Topology generalizes the flat N-device model to
 * nodes x devices with per-link-class bandwidth/latency:
 *
 *   intra-node   NVLink, either a ring (each GPU links its two ring
 *                neighbours; non-neighbour traffic is forwarded) or
 *                fully-connected (NVSwitch: every pair one hop)
 *   inter-node   InfiniBand through per-node NICs; nicsPerNode NICs
 *                stripe a node's inter-node traffic
 *
 * Devices are numbered node-major: device d lives on node
 * d / gpusPerNode at lane d % gpusPerNode. The host hangs off node 0
 * via the DeviceSpec's host link (transferBandwidthGBs /
 * transferLatencyUs), which is not part of the Topology.
 *
 * Topology::flat(n) reproduces the legacy flat model (8 GPUs per
 * node, legacy gather pricing in collectives.h) so existing clusters
 * are byte-identical; hierarchical topologies (dgx(), parse()) opt
 * into the refined per-message link pricing.
 */

#ifndef DISTMSM_GPUSIM_TOPOLOGY_H
#define DISTMSM_GPUSIM_TOPOLOGY_H

#include <cstdint>
#include <string>

#include "src/support/status.h"

namespace distmsm::gpusim {

/** One link class: bandwidth and per-message latency. */
struct LinkSpec
{
    double bandwidthGBs = 0.0;
    double latencyUs = 0.0;

    /** Time (ns) for one @p bytes message over one such link. */
    double
    ns(std::uint64_t bytes) const
    {
        return latencyUs * 1e3 +
               static_cast<double>(bytes) /
                   (bandwidthGBs * 1e9) * 1e9;
    }
};

/** Intra-node NVLink wiring. */
enum class IntraTopo {
    Ring,           ///< each GPU links its two ring neighbours
    FullyConnected, ///< NVSwitch: every pair is one hop
};

/**
 * Link-class presets: the alpha/beta (latency/bandwidth) constants
 * the CollectiveTimeEstimator prices merges with, calibrated against
 * published numbers rather than invented per call site.
 *
 * kNvlink3NvSwitch — A100 NVSwitch fabric. beta: 300 GB/s per GPU
 * per direction (12 NVLink3 links x 25 GB/s/direction, NVIDIA A100
 * datasheet — the headline "600 GB/s" is the bidirectional sum; a
 * collective stream moves payload one direction over a link, and
 * published nccl-tests bus bandwidth on 8x A100 NVSwitch saturates
 * at 230-280 GB/s per GPU for large all_gather/reduce_scatter,
 * i.e. bounded by the 300 GB/s unidirectional injection rate, never
 * by 600). alpha: 2 us, NCCL's measured intra-node base latency for
 * a small message through the proxy/NVSwitch path (nccl-tests busbw
 * tables report 1-3 us alpha for 8xA100 NVLink rings).
 *
 * kInfinibandHdrNic — one HDR InfiniBand NIC. beta: 200 Gb/s = 25
 * GB/s per NIC (HDR data rate; DGX-A100 ships 8 such NICs;
 * nccl-tests cross-node busbw reaches 23-24 GB/s per NIC, so the
 * nominal rate is the calibrated ceiling). alpha: 10 us, NCCL's
 * inter-node base latency through the IB verbs transport
 * (nccl-tests reports 8-15 us small-message latency for cross-node
 * rings/trees; ring alpha dominates at small sizes, matching the
 * tuner's preference for tree on deep multi-node merges).
 *
 * Each preset is locked by a merge-time KAT in test_topology.cc
 * (PresetConstantsKat + DgxPresetMergeTimeKat): recalibrating a
 * constant moves those pinned values, deliberately.
 */
inline constexpr LinkSpec kNvlink3NvSwitch{300.0, 2.0};
inline constexpr LinkSpec kInfinibandHdrNic{25.0, 10.0};

/** Hierarchical cluster shape: nodes x devices plus link classes. */
struct Topology
{
    /** Total simulated devices (may leave the last node ragged,
     *  matching the legacy flat model's ceil(n/8) node count). */
    int totalGpus = 8;
    int gpusPerNode = 8;
    IntraTopo intra = IntraTopo::FullyConnected;
    /** NVLink per-pair link (defaults to the calibrated preset). */
    LinkSpec intraLink = kNvlink3NvSwitch;
    /** InfiniBand per-NIC link (defaults to the calibrated preset). */
    LinkSpec interLink = kInfinibandHdrNic;
    /** NICs striping each node's inter-node traffic. */
    int nicsPerNode = 1;
    /**
     * True for topologies built by dgx()/parse(): collective cost
     * models may price gathers with per-message link latency. The
     * flat() legacy topology keeps the original single-latency
     * gather formula so pre-existing timelines stay byte-identical.
     */
    bool hierarchical = false;

    int numGpus() const { return totalGpus; }
    int
    numNodes() const
    {
        return (totalGpus + gpusPerNode - 1) / gpusPerNode;
    }
    int nodeOf(int device) const { return device / gpusPerNode; }
    int laneOf(int device) const { return device % gpusPerNode; }
    bool
    sameNode(int a, int b) const
    {
        return nodeOf(a) == nodeOf(b);
    }
    /** Devices actually present on @p node (last node may be ragged). */
    int
    gpusOnNode(int node) const
    {
        const int lo = node * gpusPerNode;
        const int hi = lo + gpusPerNode;
        return (hi <= totalGpus ? hi : totalGpus) - lo;
    }

    /**
     * Intra-node hop count between two lanes: ring distance on a
     * ring fabric (traffic forwards through intermediates), 1 on a
     * fully-connected fabric.
     */
    int intraHops(int lane_a, int lane_b) const;

    /**
     * Time (ns) of one @p bytes message device @p src -> @p dst.
     * Same node: intraHops ring/fc hops over the NVLink link (each
     * hop pays the link latency; the payload streams, so bandwidth
     * is paid once). Cross-node: one NVLink hop to the NIC complex
     * is folded into the InfiniBand link time, striped over the
     * node's NICs.
     */
    double linkNs(int src, int dst, std::uint64_t bytes) const;

    /** The legacy flat model: @p num_gpus over ceil(n/8) DGX nodes,
     *  legacy gather pricing. */
    static Topology flat(int num_gpus);

    /** @p nodes DGX nodes of @p gpus_per_node, hierarchical pricing. */
    static Topology dgx(int nodes, int gpus_per_node);

    /**
     * Parse a topology spec. Comma-joined key=value clauses:
     *
     *   nodes=N        node count (default 1)
     *   gpus=G         GPUs per node (default 8)
     *   intra=ring|fc  intra-node NVLink wiring (default fc)
     *   nvlink=GBs     intra-node link bandwidth (default 300)
     *   nvlink_us=US   intra-node link latency (default 2)
     *   ib=GBs         inter-node per-NIC bandwidth (default 25)
     *   ib_us=US       inter-node link latency (default 10)
     *   nics=K         NICs per node (default 1)
     *
     * Example: "nodes=32,gpus=8,intra=ring,nics=4".
     */
    static support::StatusOr<Topology> parse(const std::string &spec);

    /** Human-readable one-line summary. */
    std::string describe() const;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_TOPOLOGY_H
