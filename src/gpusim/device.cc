#include "src/gpusim/device.h"

#include <algorithm>

#include "src/support/check.h"

namespace distmsm::gpusim {

double
DeviceSpec::occupancy(int regs_per_thread,
                      std::size_t shared_bytes_per_block,
                      int threads_per_block) const
{
    DISTMSM_REQUIRE(regs_per_thread > 0 && threads_per_block > 0,
                    "invalid occupancy query");
    if (regs_per_thread > maxRegistersPerThread) {
        // The compiler would spill to local memory instead; model the
        // clamp and let the caller account for spill traffic.
        regs_per_thread = maxRegistersPerThread;
    }

    // Register-limited threads per SM.
    int by_regs = registersPerSm / regs_per_thread;
    // Shared-memory-limited blocks per SM.
    int by_shared = maxThreadsPerSm / threads_per_block;
    if (shared_bytes_per_block > 0) {
        by_shared = std::min(
            by_shared, static_cast<int>(sharedMemPerSm /
                                        shared_bytes_per_block));
    }
    int threads = std::min({maxThreadsPerSm, by_regs,
                             by_shared * threads_per_block});
    // Production kernels tune their block size; resident threads
    // effectively quantize at warp-pair granularity.
    threads = (threads / 64) * 64;
    if (threads <= 0)
        return 0.0;
    return static_cast<double>(threads) / maxThreadsPerSm;
}

DeviceSpec
DeviceSpec::a100()
{
    DeviceSpec d;
    d.name = "NVIDIA A100 80GB";
    d.smCount = 108;
    d.maxThreadsPerSm = 2048;
    d.registersPerSm = 65536;
    d.sharedMemPerSm = 164 * 1024;
    d.globalMemBytes = 80ull << 30;
    d.clockGhz = 1.41;
    d.int32Tops = 19.5;
    d.tensorInt8Tops = 624.0;
    d.fp32Tflops = 19.5;
    d.memBandwidthGBs = 2039.0;
    d.transferBandwidthGBs = 600.0; // NVLink
    return d;
}

DeviceSpec
DeviceSpec::rtx4090()
{
    DeviceSpec d;
    d.name = "NVIDIA RTX 4090";
    d.smCount = 128;
    d.maxThreadsPerSm = 1536;
    d.registersPerSm = 65536;
    d.sharedMemPerSm = 100 * 1024;
    d.globalMemBytes = 24ull << 30;
    d.clockGhz = 2.52;
    // Section 5.2: 2.12x the int32 capability of the A100.
    d.int32Tops = 41.3;
    d.tensorInt8Tops = 660.6;
    d.fp32Tflops = 82.6;
    d.memBandwidthGBs = 1008.0;
    d.transferBandwidthGBs = 25.0; // PCIe 4.0
    return d;
}

DeviceSpec
DeviceSpec::rx6900xt()
{
    DeviceSpec d;
    d.name = "AMD RX 6900XT";
    d.smCount = 80; // compute units
    d.maxThreadsPerSm = 2048;
    d.registersPerSm = 65536;
    d.sharedMemPerSm = 64 * 1024;
    d.globalMemBytes = 16ull << 30;
    d.clockGhz = 2.25;
    // Section 5.2: "similar register capabilities and memory
    // bandwidth ... its integer arithmetic throughput is notably
    // lower"; no int8 tensor unit.
    d.int32Tops = 11.5;
    d.tensorInt8Tops = 0.0;
    d.fp32Tflops = 23.0;
    d.memBandwidthGBs = 512.0;
    d.sharedBandwidthRatio = 8.0;
    d.transferBandwidthGBs = 25.0;
    return d;
}

} // namespace distmsm::gpusim
