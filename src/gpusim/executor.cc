#include "src/gpusim/executor.h"

#include <algorithm>

namespace distmsm::gpusim {

KernelLaunch::KernelLaunch(int grid_dim, int block_dim,
                           std::size_t shared_words)
    : grid_dim_(grid_dim), block_dim_(block_dim)
{
    DISTMSM_REQUIRE(grid_dim > 0 && block_dim > 0,
                    "empty kernel launch");
    shared_.reserve(grid_dim);
    for (int b = 0; b < grid_dim; ++b)
        shared_.emplace_back(shared_words, WordArray::Space::Shared);
}

WordArray &
KernelLaunch::shared(int bid)
{
    DISTMSM_ASSERT(bid >= 0 && bid < grid_dim_);
    return shared_[bid];
}

void
KernelLaunch::phase(const std::function<void(ThreadCtx &)> &fn)
{
    ++stats_.phases;
    for (int bid = 0; bid < grid_dim_; ++bid) {
        for (int tid = 0; tid < block_dim_; ++tid) {
            ThreadCtx ctx{tid, bid, block_dim_, grid_dim_};
            fn(ctx);
        }
    }
    // Fold this phase's per-address writer counts into the stats.
    for (WordArray *arr : touched_)
        foldPhaseContention(*arr);
    touched_.clear();
}

std::uint64_t
KernelLaunch::atomicAdd(WordArray &arr, std::size_t i, std::uint64_t v,
                        const ThreadCtx &ctx)
{
    DISTMSM_ASSERT(i < arr.words_.size());
    const std::uint64_t old = arr.words_[i];
    arr.words_[i] += v;

    // Shared-memory conflicts only arise within a block; salt the
    // key so different blocks' writes to the same index of their own
    // copies do not alias.
    const std::uint64_t key =
        arr.space_ == WordArray::Space::Shared
            ? (static_cast<std::uint64_t>(ctx.bid) << 40) | i
            : i;
    if (arr.phase_writers_.empty())
        touched_.push_back(&arr);
    ++arr.phase_writers_[key];

    if (arr.space_ == WordArray::Space::Shared) {
        ++stats_.sharedAtomics;
    } else {
        ++stats_.globalAtomics;
    }
    return old;
}

void
KernelLaunch::foldPhaseContention(WordArray &arr)
{
    const bool shared = arr.space_ == WordArray::Space::Shared;
    for (const auto &[key, count] : arr.phase_writers_) {
        const std::uint64_t c = count;
        if (shared) {
            stats_.sharedConflictWeight += c * c;
            stats_.sharedMaxConflict =
                std::max<std::uint64_t>(stats_.sharedMaxConflict, c);
        } else {
            stats_.globalConflictWeight += c * c;
            stats_.globalMaxConflict =
                std::max<std::uint64_t>(stats_.globalMaxConflict, c);
        }
    }
    arr.phase_writers_.clear();
}

} // namespace distmsm::gpusim
