#include "src/gpusim/executor.h"

#include <algorithm>
#include <string>

#include "src/support/thread_pool.h"

namespace distmsm::gpusim {

support::Status
KernelLaunch::validateLaunch(int grid_dim, int block_dim,
                             std::size_t shared_words)
{
    using support::Status;
    using support::StatusCode;
    if (grid_dim <= 0 || block_dim <= 0) {
        return Status(StatusCode::KernelFault,
                      "empty kernel launch: grid_dim=" +
                          std::to_string(grid_dim) + " block_dim=" +
                          std::to_string(block_dim));
    }
    // No real device offers anywhere near this much per-block shared
    // memory; a request this large is a mis-sized launch, not a
    // tight fit (those are caught against the DeviceSpec budget by
    // the kernel's own configuration check).
    constexpr std::size_t kMaxSharedWords = std::size_t{1} << 21;
    if (shared_words > kMaxSharedWords) {
        return Status(StatusCode::KernelFault,
                      "per-block shared allocation of " +
                          std::to_string(shared_words) +
                          " words exceeds any device");
    }
    return Status::ok();
}

KernelLaunch::KernelLaunch(int grid_dim, int block_dim,
                           std::size_t shared_words, int host_threads)
    : grid_dim_(grid_dim), block_dim_(block_dim),
      host_threads_(support::resolveHostThreads(host_threads))
{
    const support::Status geometry =
        validateLaunch(grid_dim, block_dim, shared_words);
    DISTMSM_REQUIRE(geometry.isOk(), geometry.toString().c_str());
    shared_.reserve(grid_dim);
    for (int b = 0; b < grid_dim; ++b)
        shared_.emplace_back(shared_words, WordArray::Space::Shared);
    block_stats_.resize(static_cast<std::size_t>(grid_dim));
}

KernelLaunch::~KernelLaunch()
{
    if (trace_ == nullptr)
        return;
    // Logical time axis: one microsecond per bulk-synchronous phase,
    // so a launch's span length reads as its phase count in Perfetto.
    support::TraceArgs args;
    args.arg("grid_dim", static_cast<double>(grid_dim_))
        .arg("block_dim", static_cast<double>(block_dim_))
        .arg("phases", static_cast<double>(stats_.phases))
        .arg("global_atomics",
             static_cast<double>(stats_.globalAtomics))
        .arg("global_conflict_weight",
             static_cast<double>(stats_.globalConflictWeight))
        .arg("global_max_conflict",
             static_cast<double>(stats_.globalMaxConflict))
        .arg("shared_atomics",
             static_cast<double>(stats_.sharedAtomics))
        .arg("shared_conflict_weight",
             static_cast<double>(stats_.sharedConflictWeight))
        .arg("shared_max_conflict",
             static_cast<double>(stats_.sharedMaxConflict))
        .arg("shared_accesses",
             static_cast<double>(stats_.sharedAccesses))
        .arg("gmem_bytes", static_cast<double>(stats_.gmemBytes));
    trace_->span(trace_label_, "kernel-launch",
                 support::tracelane::kKernelsPid, trace_lane_, 0.0,
                 static_cast<double>(stats_.phases) * 1000.0,
                 std::move(args));
}

WordArray &
KernelLaunch::shared(int bid)
{
    DISTMSM_ASSERT(bid >= 0 && bid < grid_dim_);
    return shared_[bid];
}

void
KernelLaunch::runBlock(int bid,
                       const std::function<void(ThreadCtx &)> &fn)
{
    for (int tid = 0; tid < block_dim_; ++tid) {
        ThreadCtx ctx{tid, bid, block_dim_, grid_dim_};
        fn(ctx);
    }
}

void
KernelLaunch::phase(const std::function<void(ThreadCtx &)> &fn)
{
    ++stats_.phases;
    if (host_threads_ <= 1 || grid_dim_ == 1) {
        for (int bid = 0; bid < grid_dim_; ++bid)
            runBlock(bid, fn);
    } else {
        support::ThreadPool::global().parallelFor(
            0, static_cast<std::size_t>(grid_dim_),
            [&](std::size_t bid) {
                runBlock(static_cast<int>(bid), fn);
            },
            host_threads_);
    }
    // Barrier reached: merge the per-block tallies in block index
    // order (all fields are sums or maxima, so the totals equal the
    // sequential execution's), then fold this phase's per-address
    // writer counts into the stats.
    for (auto &bs : block_stats_) {
        stats_.merge(bs);
        bs = KernelStats{};
    }
    for (WordArray *arr : touched_)
        foldPhaseContention(*arr);
    touched_.clear();
}

std::uint64_t
KernelLaunch::atomicAdd(WordArray &arr, std::size_t i, std::uint64_t v,
                        const ThreadCtx &ctx)
{
    DISTMSM_ASSERT(i < arr.words_.size());
    const bool is_shared = arr.space_ == WordArray::Space::Shared;

    std::uint64_t old;
    bool first_writer;
    if (!is_shared && host_threads_ > 1) {
        // Concurrent host threads model the atomic unit: serialize
        // global-space updates. fetch-add commutes, so the final
        // words and writer counts are schedule-independent.
        std::lock_guard<std::mutex> lock(*arr.mutex_);
        old = arr.words_[i];
        arr.words_[i] += v;
        first_writer = arr.phase_touched_.empty();
        if (arr.phase_counts_[i]++ == 0)
            arr.phase_touched_.push_back(
                static_cast<std::uint32_t>(i));
    } else {
        old = arr.words_[i];
        arr.words_[i] += v;
        first_writer = arr.phase_touched_.empty();
        if (arr.phase_counts_[i]++ == 0)
            arr.phase_touched_.push_back(
                static_cast<std::uint32_t>(i));
    }
    if (first_writer) {
        std::lock_guard<std::mutex> lock(touched_mutex_);
        touched_.push_back(&arr);
    }

    KernelStats &bs = blockStats(ctx);
    if (is_shared) {
        ++bs.sharedAtomics;
    } else {
        ++bs.globalAtomics;
    }
    return old;
}

void
KernelLaunch::foldPhaseContention(WordArray &arr)
{
    // Sums and maxima commute, so the visit order of the touched
    // indices never shows in the totals — identical to the old
    // hash-map accounting, at a fraction of the per-atomic cost.
    const bool shared = arr.space_ == WordArray::Space::Shared;
    for (const std::uint32_t idx : arr.phase_touched_) {
        const std::uint64_t c = arr.phase_counts_[idx];
        arr.phase_counts_[idx] = 0;
        if (shared) {
            stats_.sharedConflictWeight += c * c;
            stats_.sharedMaxConflict =
                std::max<std::uint64_t>(stats_.sharedMaxConflict, c);
        } else {
            stats_.globalConflictWeight += c * c;
            stats_.globalMaxConflict =
                std::max<std::uint64_t>(stats_.globalMaxConflict, c);
        }
    }
    arr.phase_touched_.clear();
}

} // namespace distmsm::gpusim
