/**
 * @file
 * Analytic timing model for the simulated GPUs.
 *
 * Converts the counts produced by the functional executor (and by the
 * MSM planner's workload formulas) into simulated time on a given
 * DeviceSpec. The model captures the effects the paper's evaluation
 * turns on:
 *
 *  - EC kernel throughput limited by integer throughput *and*
 *    occupancy, where occupancy follows from registers per thread =
 *    (peak live big integers) x (registers per big integer) + aux —
 *    the quantity the scheduler (src/sched) minimizes;
 *  - the dedicated PACC kernel's 10-vs-14 modular multiplications;
 *  - explicit spilling: fewer registers, plus shared-memory traffic
 *    for the transferred big integers;
 *  - tensor-core Montgomery: the constant-operand half of the wide
 *    multiplications runs on tensor cores concurrently with CUDA
 *    cores; without on-the-fly compaction the expanded outputs pay a
 *    4x memory-traffic penalty, with compaction they stay in
 *    registers at the price of extra register pressure (hurting
 *    753-bit curves, Section 5.3.3);
 *  - atomic costs that grow with per-address contention (Section 3.2);
 *  - host<->device transfers and the 128x GPU:CPU EC ratio.
 *
 * All tunable coefficients live in CostParams; EXPERIMENTS.md records
 * the calibration.
 */

#ifndef DISTMSM_GPUSIM_COST_MODEL_H
#define DISTMSM_GPUSIM_COST_MODEL_H

#include <cstdint>
#include <string_view>

#include "src/gpusim/device.h"
#include "src/gpusim/stats.h"

namespace distmsm::gpusim {

/** Static description of a curve's arithmetic, for the model. */
struct CurveProfile
{
    const char *name;
    unsigned fieldBits;  ///< base-field width (Table 1)
    unsigned scalarBits; ///< scalar width (Table 1)
    bool aIsZero;        ///< curve coefficient a == 0
    /** Half-scalar width of the GLV decomposition (0 = no GLV
     *  constants for this curve; the planner falls back). */
    unsigned glvScalarBits = 0;

    unsigned limbs64() const { return (fieldBits + 63) / 64; }
    /** 32-bit registers per big integer (24 for MNT4753, Sec. 5.1). */
    unsigned regsPerBigint() const { return (fieldBits + 31) / 32; }

    static CurveProfile bn254();
    static CurveProfile bls377();
    static CurveProfile bls381();
    static CurveProfile mnt4753();
};

/** Which of the Section 4 kernel optimizations are enabled. */
struct EcKernelVariant
{
    bool dedicatedPacc = false;   ///< PADD -> PACC (Section 4.1)
    bool optimalOrder = false;    ///< exhaustive schedule (4.2.1)
    bool explicitSpill = false;   ///< spill to shared memory (4.2.2)
    bool tensorCoreMont = false;  ///< m*n on tensor cores (4.3)
    bool onTheFlyCompact = false; ///< in-register compaction (4.3)

    /** The NO-OPT baseline kernel of Section 5.3. */
    static EcKernelVariant baseline() { return {}; }

    /** All optimizations on (the DistMSM kernel). */
    static EcKernelVariant
    full()
    {
        return {true, true, true, true, true};
    }
};

/**
 * Field-arithmetic backend for the simulated EC kernels: which unit
 * retires the wide Montgomery multiplications. `CudaCore` is the
 * classic CIOS path on the int32 ALUs; `TensorCore` offloads the
 * constant-operand half (m * n) to the uint8 digit-matrix product of
 * Figure 6/7, priced at the device's int8 tensor throughput plus the
 * fragment pack / column-sum compaction marshalling. `Auto` lets the
 * planner pick per (curve, N, window bits) from the cost model —
 * tensor cores win on <=384-bit fields and lose on MNT4753, where
 * compaction's zero lanes swamp the offloaded MACs (Section 5.3.3).
 */
enum class FieldBackend { Auto, CudaCore, TensorCore };

const char *fieldBackendName(FieldBackend backend);

/** Parses "auto" / "cuda-core" / "tensor-core" (also "cuda", "tc",
 *  "tensor"). Returns false and leaves @p out untouched on junk. */
bool parseFieldBackend(std::string_view text, FieldBackend *out);

/**
 * Resolves a kernel variant against an explicit backend choice:
 * `CudaCore` strips the tensor-core legs (tensorCoreMont,
 * onTheFlyCompact), `TensorCore` forces them on, `Auto` returns the
 * variant unchanged (the planner has already folded its pick into
 * the plan). Every cost-model call in the MSM path routes through
 * this so pricing and attribution agree with the executed backend.
 */
EcKernelVariant applyFieldBackend(EcKernelVariant v,
                                  FieldBackend backend);

/** Tunable coefficients of the analytic model. */
struct CostParams
{
    /** int32-op equivalents per 64-bit multiply-accumulate. */
    double opsPerMac = 6.0;
    /** int32-op equivalents per 64-bit add-with-carry. */
    double opsPerAdd = 2.0;
    /** Aux registers per thread (addresses, indices, loop state). */
    int auxRegisters = 16;
    /** Resident threads per SM at which issue slots saturate
     *  (latency hiding is about absolute warps, not the fraction of
     *  a device's architectural maximum). */
    double saturationThreadsPerSm = 1024.0;
    /** int8 tensor ops per byte-MAC of the digit-matrix product. */
    double tcOpsPerByteMac = 1.0;
    /**
     * int32 ops of marshalling per 64-bit MAC offloaded to tensor
     * cores: packing the multiplier digits into fragment layout and
     * folding the column sums back into the running Montgomery
     * state. This is why the paper's net TC gain is a few percent
     * (Figure 12), not the raw 8x throughput headroom.
     */
    double tcMarshalOpsPerOffloadedMac = 4.0;
    /**
     * Extra marshalling per offloaded MAC, per 384 bits of operand
     * beyond the first: the zero lanes of Figure 7 grow with the
     * operand width, which is Section 5.3.3's MNT4753 compaction
     * regression.
     */
    double compactWideMarshalFactor = 0.79;
    /** int32 ops of index arithmetic per scatter element. */
    double scatterOpsPerElement = 12.0;
    /** Launch + synchronization overhead per kernel launch, us. */
    double kernelLaunchUs = 25.0;
    /**
     * int32-op equivalents per limb per modmul for storing the raw
     * (uncompacted) tensor-core lanes to memory and reloading them
     * (Section 4.3's conventional method; calibrated to the paper's
     * -6.8% net slowdown).
     */
    double tcRawStoreOpsPerLimb = 39.0;
};

/** EC operation kinds for the kernel model. AffineAdd is one
 *  batched-affine bucket accumulation: 3 intrinsic multiplications
 *  plus the amortized share of the shared batch inversion (~3 more
 *  muls and epsilon inversions), priced at 7 modmuls against pacc's
 *  10 with pacc-like register pressure. */
enum class EcOp { Pacc, Padd, Pdbl, AffineAdd };

/** Modular multiplications of one EC op under kernel variant @p v —
 *  the unit the per-backend op accounting is denominated in. */
int ecOpModmuls(const EcKernelVariant &v, EcOp op, bool a_is_zero);

/**
 * Timing model bound to one device.
 */
class CostModel
{
  public:
    explicit CostModel(const DeviceSpec &spec,
                       const CostParams &params = CostParams{});

    const DeviceSpec &device() const { return spec_; }
    const CostParams &params() const { return params_; }

    /** Peak live big integers of the dominant kernel under @p v. */
    int peakLiveBigints(const EcKernelVariant &v, EcOp op) const;

    /** Registers per thread for the EC kernel under @p v. */
    int regsPerThread(const CurveProfile &curve,
                      const EcKernelVariant &v, EcOp op) const;

    /** Occupancy of the EC kernel (block size 256, spill shmem). */
    double kernelOccupancy(const CurveProfile &curve,
                           const EcKernelVariant &v, EcOp op) const;

    /**
     * Total device time (ns) to retire @p total_ops EC operations
     * when the grid supplies enough parallel work to keep the device
     * saturated (the bucket-sum regime). Includes spill traffic and
     * tensor-core effects of @p v.
     */
    double ecThroughputNs(const CurveProfile &curve,
                          const EcKernelVariant &v, EcOp op,
                          std::uint64_t total_ops) const;

    /**
     * Latency (ns) of a *dependent chain* of @p chain_ops EC
     * operations executed by one thread while the rest of the device
     * idles (the parallel bucket-reduce regime, Section 3.2.3).
     */
    double ecSerialNs(const CurveProfile &curve,
                      const EcKernelVariant &v, EcOp op,
                      std::uint64_t chain_ops) const;

    /** int32-op equivalents one EC operation costs a single thread. */
    double ecOpCudaOps(const CurveProfile &curve,
                       const EcKernelVariant &v, EcOp op) const;

    /**
     * Simulated nanoseconds consumed by the atomic traffic in
     * @p stats, using the contention-scaled cost of Section 3.2,
     * spread over @p active_threads.
     */
    double atomicNs(const KernelStats &stats,
                    int active_threads) const;

    /** Simulated ns for the scatter's per-element index work. */
    double scatterComputeNs(std::uint64_t elements,
                            int active_threads) const;

    /** Device-memory traffic time. */
    double gmemNs(std::uint64_t bytes) const;

    /** Host<->device transfer time for @p bytes. */
    double transferNs(std::uint64_t bytes) const;

    /**
     * Serial host (CPU) time for @p ops EC additions, derived from
     * the per-op GPU cost via the paper's 128x extrapolation.
     */
    double hostEcNs(const CurveProfile &curve, std::uint64_t ops,
                    const HostSpec &host) const;

    /**
     * Process-wide monotone count of pricing evaluations (every
     * ecThroughputNs / ecSerialNs / atomicNs / scatterComputeNs /
     * gmemNs / transferNs / hostEcNs call, any CostModel instance).
     * The MSM plan search records the delta across its run as the
     * `autoplan/cost_model_evals` metric — a warm plan-cache hit
     * must leave it at exactly zero. Relaxed atomic: a counter, not
     * a synchronization point.
     */
    static std::uint64_t evaluations();

  private:
    double effectiveIssue(double occupancy) const;

    DeviceSpec spec_;
    CostParams params_;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_COST_MODEL_H
