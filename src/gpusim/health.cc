#include "src/gpusim/health.h"

#include <algorithm>
#include <string>

#include "src/support/check.h"
#include "src/support/metrics.h"

namespace distmsm::gpusim {

const char *
healthStateName(HealthState state)
{
    switch (state) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Probation:
        return "probation";
    case HealthState::Quarantined:
        return "quarantined";
    }
    return "?";
}

void
DeviceHealth::merge(const DeviceHealth &other)
{
    timeouts += other.timeouts;
    checksumFailures += other.checksumFailures;
    stragglerEvents += other.stragglerEvents;
    hangs += other.hangs;
    cleanWindows += other.cleanWindows;
    probes += other.probes;
    faultScore += other.faultScore;
    cleanStreak = std::min(cleanStreak, other.cleanStreak);
    if (static_cast<std::uint32_t>(other.state) >
        static_cast<std::uint32_t>(state))
        state = other.state;
}

HealthTracker::HealthTracker(int num_devices, HealthPolicy policy)
    : policy_(policy), devices_(static_cast<std::size_t>(
                           num_devices > 0 ? num_devices : 0))
{
    DISTMSM_REQUIRE(num_devices > 0,
                    "HealthTracker wants at least one device");
    DISTMSM_REQUIRE(policy_.probationThreshold > 0 &&
                        policy_.quarantineThreshold >=
                            policy_.probationThreshold,
                    "HealthPolicy thresholds must satisfy "
                    "0 < probation <= quarantine");
    DISTMSM_REQUIRE(policy_.reintegrateCleanWindows > 0,
                    "HealthPolicy reintegrateCleanWindows must be "
                    "positive");
}

const DeviceHealth &
HealthTracker::device(int device) const
{
    DISTMSM_ASSERT(device >= 0 &&
                   device < static_cast<int>(devices_.size()));
    return devices_[static_cast<std::size_t>(device)];
}

std::vector<int>
HealthTracker::schedulableDevices() const
{
    std::vector<int> out;
    out.reserve(devices_.size());
    for (int d = 0; d < numDevices(); ++d)
        if (schedulable(d))
            out.push_back(d);
    return out;
}

int
HealthTracker::numQuarantined() const
{
    int n = 0;
    for (const DeviceHealth &h : devices_)
        n += h.state == HealthState::Quarantined;
    return n;
}

int
HealthTracker::numProbation() const
{
    int n = 0;
    for (const DeviceHealth &h : devices_)
        n += h.state == HealthState::Probation;
    return n;
}

void
HealthTracker::escalate(int device, int weight)
{
    DeviceHealth &h =
        devices_[static_cast<std::size_t>(device)];
    h.faultScore += weight;
    h.cleanStreak = 0;
    HealthState next = h.state;
    if (h.faultScore >= policy_.quarantineThreshold)
        next = HealthState::Quarantined;
    else if (h.faultScore >= policy_.probationThreshold &&
             h.state == HealthState::Healthy)
        next = HealthState::Probation;
    if (next != h.state) {
        h.state = next;
        ++generation_;
    }
}

void
HealthTracker::recordTimeout(int device)
{
    ++devices_[static_cast<std::size_t>(device)].timeouts;
    escalate(device, 1);
}

void
HealthTracker::recordChecksumFailure(int device)
{
    ++devices_[static_cast<std::size_t>(device)].checksumFailures;
    escalate(device, 1);
}

void
HealthTracker::recordStraggler(int device)
{
    ++devices_[static_cast<std::size_t>(device)].stragglerEvents;
    escalate(device, 1);
}

void
HealthTracker::recordHang(int device)
{
    ++devices_[static_cast<std::size_t>(device)].hangs;
    escalate(device, policy_.quarantineThreshold);
}

void
HealthTracker::recordCleanWindow(int device)
{
    DeviceHealth &h =
        devices_[static_cast<std::size_t>(device)];
    if (h.state == HealthState::Quarantined)
        return;
    ++h.cleanWindows;
    ++h.cleanStreak;
    if (h.state == HealthState::Probation &&
        h.cleanStreak >= policy_.reintegrateCleanWindows) {
        h.state = HealthState::Healthy;
        h.faultScore = 0;
        ++generation_;
    }
}

void
HealthTracker::recordCleanProbe(int device)
{
    DeviceHealth &h =
        devices_[static_cast<std::size_t>(device)];
    ++h.probes;
    if (h.state != HealthState::Quarantined)
        return;
    h.state = HealthState::Probation;
    // Parole, not acquittal: the score sits at the probation
    // threshold and the streak restarts, so the device still has to
    // earn reintegrateCleanWindows clean windows to become Healthy.
    h.faultScore = policy_.probationThreshold;
    h.cleanStreak = 0;
    ++generation_;
}

void
HealthTracker::recordMetrics(support::MetricsRegistry &metrics,
                             const char *prefix) const
{
    const std::string p(prefix);
    metrics.set(p + "devices", static_cast<double>(numDevices()));
    metrics.set(p + "quarantined_devices",
                static_cast<double>(numQuarantined()));
    metrics.set(p + "probation_devices",
                static_cast<double>(numProbation()));
    metrics.set(p + "generation",
                static_cast<double>(generation_));
    double timeouts = 0, checksum = 0, stragglers = 0, hangs = 0;
    double clean = 0, probes = 0;
    for (const DeviceHealth &h : devices_) {
        timeouts += static_cast<double>(h.timeouts);
        checksum += static_cast<double>(h.checksumFailures);
        stragglers += static_cast<double>(h.stragglerEvents);
        hangs += static_cast<double>(h.hangs);
        clean += static_cast<double>(h.cleanWindows);
        probes += static_cast<double>(h.probes);
    }
    metrics.set(p + "timeouts", timeouts);
    metrics.set(p + "checksum_failures", checksum);
    metrics.set(p + "straggler_events", stragglers);
    metrics.set(p + "hangs", hangs);
    metrics.set(p + "clean_windows", clean);
    metrics.set(p + "probes", probes);
}

} // namespace distmsm::gpusim
