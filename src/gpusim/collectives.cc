#include "src/gpusim/collectives.h"

#include <algorithm>
#include <cmath>

namespace distmsm::gpusim {

const char *
collectiveAlgoName(CollectiveAlgo algo)
{
    switch (algo) {
    case CollectiveAlgo::Ring:
        return "ring";
    case CollectiveAlgo::Tree:
        return "tree";
    case CollectiveAlgo::ReduceScatter:
        return "reduce-scatter";
    default:
        return "gather";
    }
}

const char *
collectivePolicyName(CollectivePolicy policy)
{
    switch (policy) {
    case CollectivePolicy::Ring:
        return "ring";
    case CollectivePolicy::Tree:
        return "tree";
    case CollectivePolicy::ReduceScatter:
        return "reduce-scatter";
    case CollectivePolicy::Auto:
        return "auto";
    default:
        return "gather";
    }
}

support::StatusOr<CollectivePolicy>
parseCollectivePolicy(const std::string &name)
{
    if (name == "gather")
        return CollectivePolicy::Gather;
    if (name == "ring")
        return CollectivePolicy::Ring;
    if (name == "tree")
        return CollectivePolicy::Tree;
    if (name == "reduce-scatter")
        return CollectivePolicy::ReduceScatter;
    if (name == "auto")
        return CollectivePolicy::Auto;
    return support::Status(
        support::StatusCode::InvalidArgument,
        "unknown collective '" + name +
            "' (gather|ring|tree|reduce-scatter|auto)");
}

CollectiveSchedule
buildCollectiveSchedule(CollectiveAlgo algo, const Topology &topo,
                        const std::vector<int> &members)
{
    CollectiveSchedule sched;
    sched.algo = algo;
    if (algo == CollectiveAlgo::Gather || members.empty())
        return sched;
    sched.root = members.front();
    if (members.size() == 1)
        return sched;

    if (algo == CollectiveAlgo::Ring) {
        // Chain descending: the payload flows toward the lowest
        // member, which sits on (or nearest) the host's node.
        for (std::size_t i = members.size(); i-- > 1;)
            sched.steps.push_back({members[i], members[i - 1]});
        return sched;
    }

    if (algo == CollectiveAlgo::ReduceScatter) {
        // Ring reduce-scatter over the whole member set (ascending
        // order is node-major, so most successor hops stay on
        // NVLink): shard of key k is k % p, member index s owns
        // shard s. Round r (0..p-2) has every member j forward its
        // currently-held shard-((j-1-r) mod p) keys to its ring
        // successor; a key received in round r is exactly the shard
        // its holder forwards in round r+1, so after p-1 rounds
        // member s holds ALL keys of shard s and nothing else.
        // Within a round the forwarded shards of consecutive members
        // differ, so sequential in-round execution never re-forwards
        // a key early. Then the allgather: every non-root member
        // ships its completed shard (whole remaining payload) to the
        // root. No step ever merges two contributors of one key —
        // bit-identity with gather is structural.
        const int p = static_cast<int>(members.size());
        sched.shardCount = p;
        for (int r = 0; r + 1 < p; ++r)
            for (int j = 0; j < p; ++j)
                sched.steps.push_back(
                    {members[static_cast<std::size_t>(j)],
                     members[static_cast<std::size_t>((j + 1) % p)],
                     (j - 1 - r + 2 * p) % p});
        for (std::size_t j = 1; j < members.size(); ++j)
            sched.steps.push_back({members[j], sched.root, -1});
        return sched;
    }

    // Tree: binomial reduce of each list into its first element.
    // Rounds ascending, senders ascending inside a round, so every
    // destination has absorbed its earlier-round payload before it
    // forwards.
    const auto binomial = [&](const std::vector<int> &list) {
        for (std::size_t stride = 1; stride < list.size();
             stride *= 2) {
            for (std::size_t j = stride; j < list.size();
                 j += 2 * stride)
                sched.steps.push_back(
                    {list[j], list[j - stride]});
        }
    };
    std::vector<int> leaders;
    std::vector<int> group;
    for (std::size_t i = 0; i < members.size();) {
        const int node = topo.nodeOf(members[i]);
        group.clear();
        while (i < members.size() &&
               topo.nodeOf(members[i]) == node)
            group.push_back(members[i++]);
        binomial(group);
        leaders.push_back(group.front());
    }
    binomial(leaders);
    return sched;
}

double
concurrentTransferNs(const LinkSpec &link, int lanes, int transfers,
                     double bytes)
{
    // One synchronized wave: latency once (posted receives), the
    // bandwidth terms serialized by occupancy over the link's lanes.
    const double occupancy =
        static_cast<double>(std::max(1, transfers)) /
        static_cast<double>(std::max(1, lanes));
    return link.latencyUs * 1e3 +
           occupancy * bytes / (link.bandwidthGBs * 1e9) * 1e9;
}

double
CollectiveTimeEstimator::hostHopNs(
    int num_gpus, std::uint64_t bytes_per_gpu) const
{
    const std::uint64_t union_bytes =
        static_cast<std::uint64_t>(num_gpus) * bytes_per_gpu;
    return device_.transferLatencyUs * 1e3 +
           static_cast<double>(union_bytes) /
               (device_.transferBandwidthGBs * 1e9) * 1e9;
}

double
CollectiveTimeEstimator::gatherNs(
    int num_gpus, std::uint64_t bytes_per_gpu) const
{
    const int local_gpus = std::min(num_gpus, topo_.gpusPerNode);
    const int remote_gpus = num_gpus - local_gpus;
    if (!topo_.hierarchical) {
        // The original flat formula, bit-exactly: the local node's
        // GPUs serialize over the host complex, every remote GPU
        // contends for the host's NIC, one latency term total.
        const double local_ns =
            local_gpus * bytes_per_gpu /
            (device_.transferBandwidthGBs * 1e9) * 1e9;
        const double remote_ns =
            remote_gpus * bytes_per_gpu /
            (topo_.interLink.bandwidthGBs * 1e9) * 1e9;
        return device_.transferLatencyUs * 1e3 +
               std::max(local_ns, remote_ns);
    }
    // Hierarchical pricing: each device's DMA is a separate message
    // paying its own link latency; remote traffic stripes over the
    // host node's NICs but still funnels into that one node.
    const double local_ns =
        local_gpus *
        (device_.transferLatencyUs * 1e3 +
         static_cast<double>(bytes_per_gpu) /
             (device_.transferBandwidthGBs * 1e9) * 1e9);
    const double nic_gbs = topo_.interLink.bandwidthGBs *
                           std::max(1, topo_.nicsPerNode);
    const double remote_ns =
        remote_gpus *
        (topo_.interLink.latencyUs * 1e3 +
         static_cast<double>(bytes_per_gpu) / (nic_gbs * 1e9) *
             1e9);
    return std::max(local_ns, remote_ns);
}

double
CollectiveTimeEstimator::ringNs(
    int num_gpus, std::uint64_t bytes_per_gpu) const
{
    if (num_gpus <= 1)
        return hostHopNs(num_gpus, bytes_per_gpu);
    // Node-grouped chain of num_gpus - 1 hops moving fixed
    // bytes_per_gpu chunks in a pipeline: with p - 1 chunks over
    // p - 1 stages, the makespan is (2p - 3) slot times of the
    // slowest hop (an inter-node hop whenever the chain spans
    // nodes).
    const double intra_hop =
        topo_.intraLink.latencyUs * 1e3 +
        static_cast<double>(bytes_per_gpu) /
            (topo_.intraLink.bandwidthGBs * 1e9) * 1e9;
    const int nodes =
        (num_gpus + topo_.gpusPerNode - 1) / topo_.gpusPerNode;
    double slot = intra_hop;
    if (nodes > 1) {
        const double nic_gbs = topo_.interLink.bandwidthGBs *
                               std::max(1, topo_.nicsPerNode);
        const double inter_hop =
            topo_.interLink.latencyUs * 1e3 +
            static_cast<double>(bytes_per_gpu) / (nic_gbs * 1e9) *
                1e9;
        slot = std::max(slot, inter_hop);
    }
    return (2.0 * num_gpus - 3.0) * slot +
           hostHopNs(num_gpus, bytes_per_gpu);
}

double
CollectiveTimeEstimator::treeNs(
    int num_gpus, std::uint64_t bytes_per_gpu) const
{
    if (num_gpus <= 1)
        return hostHopNs(num_gpus, bytes_per_gpu);
    const double b = static_cast<double>(bytes_per_gpu);
    // Intra-node binomial reduce: round r moves 2^r-member unions
    // between partners 2^r lanes apart. On a ring fabric the
    // forwarded traffic occupies every intermediate link, so the
    // round is charged its ring distance; NVSwitch pairs are one
    // hop.
    const int g = std::min(num_gpus, topo_.gpusPerNode);
    double intra_ns = 0.0;
    for (int span = 1; span < g; span *= 2) {
        const int dist = topo_.intra == IntraTopo::FullyConnected
                             ? 1
                             : std::min(span, g - span);
        intra_ns += dist * (topo_.intraLink.latencyUs * 1e3 +
                            span * b /
                                (topo_.intraLink.bandwidthGBs *
                                 1e9) *
                                1e9);
    }
    // Leader binomial across nodes: disjoint leader pairs transfer
    // concurrently on their own NICs, so each round costs one
    // message of the round's union size.
    const int nodes =
        (num_gpus + topo_.gpusPerNode - 1) / topo_.gpusPerNode;
    const double nic_gbs = topo_.interLink.bandwidthGBs *
                           std::max(1, topo_.nicsPerNode);
    double inter_ns = 0.0;
    for (int span = 1; span < nodes; span *= 2) {
        const double union_bytes =
            static_cast<double>(span) * g * b;
        inter_ns += topo_.interLink.latencyUs * 1e3 +
                    union_bytes / (nic_gbs * 1e9) * 1e9;
    }
    return intra_ns + inter_ns +
           hostHopNs(num_gpus, bytes_per_gpu);
}

double
CollectiveTimeEstimator::reduceScatterNs(
    int num_gpus, std::uint64_t bytes_per_gpu) const
{
    if (num_gpus <= 1)
        return hostHopNs(num_gpus, bytes_per_gpu);
    const double b = static_cast<double>(bytes_per_gpu);
    const int g = std::min(num_gpus, topo_.gpusPerNode);
    // Phase 1 — intra-node ring reduce-scatter: g - 1 rounds; in
    // round r every member forwards its accumulated fragment (r
    // shards of b/g bytes) to its ring successor. All g links are
    // busy each round, but each transfer occupies a DISTINCT link
    // (occupancy 1), so a round costs one latency plus the growing
    // fragment's bandwidth term.
    double intra_ns = 0.0;
    for (int r = 1; r < g; ++r)
        intra_ns += concurrentTransferNs(
            topo_.intraLink, 1, 1,
            static_cast<double>(r) * (b / g));
    const int nodes =
        (num_gpus + topo_.gpusPerNode - 1) / topo_.gpusPerNode;
    const int nics = std::max(1, topo_.nicsPerNode);
    // Phase 2 — inter-node shard exchange: every node streams the
    // shards owned elsewhere ((nodes-1)/nodes of its g*b bytes) out
    // of its OWN NIC set, all nodes concurrently — occupancy 1 per
    // NIC set, one latency for the synchronized wave.
    double inter_ns = 0.0;
    if (nodes > 1)
        inter_ns = concurrentTransferNs(
            topo_.interLink, nics, 1,
            static_cast<double>(g) * b *
                (static_cast<double>(nodes - 1) /
                 static_cast<double>(nodes)));
    // Phase 3 — allgather fan-in to the reduce owner: the g - 1
    // local peers stream their b-byte shards over NVLink (occupancy
    // g - 1 on the owner's ingress) racing the p - g remote shards
    // through the host node's NIC set (occupancy p - g over `nics`
    // lanes). Unlike gather's unsynchronized per-message-latency
    // funnel, the reduce-scatter left every sender synchronized with
    // its shard ready, so each wave pays latency once.
    double ag_ns = concurrentTransferNs(topo_.intraLink, 1, g - 1, b);
    if (num_gpus > g)
        ag_ns = std::max(ag_ns,
                         concurrentTransferNs(topo_.interLink, nics,
                                              num_gpus - g, b));
    // The equal-sized shards stream to the host as they arrive, so
    // the host hop overlaps the fan-in (tree's bursty doubling
    // unions cannot): charge the max of the two streams plus one
    // host-link fill latency for the first shard.
    const double host_ns = hostHopNs(num_gpus, bytes_per_gpu);
    return intra_ns + inter_ns + std::max(ag_ns, host_ns) +
           device_.transferLatencyUs * 1e3;
}

CollectiveAlgo
CollectiveTimeEstimator::pick(CollectivePolicy policy, int num_gpus,
                              std::uint64_t bytes_per_gpu) const
{
    switch (policy) {
    case CollectivePolicy::Gather:
        return CollectiveAlgo::Gather;
    case CollectivePolicy::Ring:
        return CollectiveAlgo::Ring;
    case CollectivePolicy::Tree:
        return CollectiveAlgo::Tree;
    case CollectivePolicy::ReduceScatter:
        return CollectiveAlgo::ReduceScatter;
    case CollectivePolicy::Auto:
        break;
    }
    return costs(num_gpus, bytes_per_gpu).best();
}

} // namespace distmsm::gpusim
