/**
 * @file
 * Per-device health tracking for straggler-aware degradation.
 *
 * A HealthTracker owns one DeviceHealth record per simulated device
 * and runs the escalation ladder
 *
 *     Healthy  --fault-->  Probation  --fault-->  Quarantined
 *        ^                     |                       |
 *        +--- N clean windows--+      clean probe -----+
 *                                     (back to Probation)
 *
 * Faults are the engine's observations: transfer timeouts, checksum
 * failures, straggler (blown-deadline) windows, and hangs. A hang
 * jumps straight to Quarantined — a device that stopped responding
 * is not worth probation. Quarantined devices are excluded from
 * scheduling and resharding; every state change bumps a generation
 * counter so MsmEngine can invalidate its autoplan and re-search
 * over the shrunken device set.
 *
 * The tracker is NOT thread-safe: every call site is sequential
 * host-side bookkeeping (fault handling and the pre-dispatch
 * watchdog pass run on the coordinating thread), which is also what
 * keeps the ladder deterministic at every hostThreads setting.
 */

#ifndef DISTMSM_GPUSIM_HEALTH_H
#define DISTMSM_GPUSIM_HEALTH_H

#include <cstdint>
#include <vector>

namespace distmsm::support {
class MetricsRegistry;
}

namespace distmsm::gpusim {

/** Rung of the escalation ladder. */
enum class HealthState : std::uint32_t {
    Healthy = 0,
    Probation = 1,
    Quarantined = 2,
};

const char *healthStateName(HealthState state);

/** Ladder thresholds; defaults quarantine after 3 weighted faults
 *  and reintegrate probation after 4 consecutive clean windows. */
struct HealthPolicy
{
    /** Weighted fault score at which Healthy becomes Probation. */
    int probationThreshold = 1;
    /** Weighted fault score at which a device is quarantined.
     *  A hang carries this full weight: immediate quarantine. */
    int quarantineThreshold = 3;
    /** Consecutive clean windows before Probation returns to
     *  Healthy (and the fault score resets). */
    int reintegrateCleanWindows = 4;
};

/** Rolling per-device health record. Every field is 8-byte-aligned
 *  and merge() must fold each one — the static_assert and the
 *  test_health.cc round-trip KAT pin the layout. */
struct DeviceHealth
{
    std::uint64_t timeouts = 0;         ///< transfer attempts timed out
    std::uint64_t checksumFailures = 0; ///< digest mismatches observed
    std::uint64_t stragglerEvents = 0;  ///< blown watchdog deadlines
    std::uint64_t hangs = 0;            ///< stopped-responding events
    std::uint64_t cleanWindows = 0;     ///< windows finished clean
    std::uint64_t probes = 0;           ///< quarantine probes attempted
    /** Weighted fault score driving the ladder (resets on
     *  reintegration). */
    std::int32_t faultScore = 0;
    /** Consecutive clean windows since the last fault. */
    std::int32_t cleanStreak = 0;
    HealthState state = HealthState::Healthy;
    std::uint32_t pad_ = 0; ///< keeps sizeof a multiple of 8

    /** 8-byte slots; bump when adding a field, then extend merge()
     *  and the test_health.cc KAT. */
    static constexpr std::size_t kSlotCount = 8;

    /** Fold @p other into this record: counters add, the streak
     *  takes the pessimistic minimum, the state the more severe
     *  rung. Used when aggregating reports across runs. */
    void merge(const DeviceHealth &other);
};

static_assert(sizeof(DeviceHealth) ==
                  DeviceHealth::kSlotCount * sizeof(std::uint64_t),
              "DeviceHealth gained a field: bump kSlotCount and "
              "extend merge() plus the test_health.cc KAT");

class HealthTracker
{
  public:
    explicit HealthTracker(int num_devices,
                           HealthPolicy policy = HealthPolicy{});

    int numDevices() const
    {
        return static_cast<int>(devices_.size());
    }
    const HealthPolicy &policy() const { return policy_; }

    const DeviceHealth &device(int index) const;
    HealthState state(int index) const
    {
        return device(index).state;
    }

    /** Quarantined devices must not be scheduled or reshard
     *  targets; Probation devices keep working (that is how they
     *  earn clean windows). */
    bool schedulable(int device) const
    {
        return state(device) != HealthState::Quarantined;
    }

    /** Ascending indices of every schedulable device. */
    std::vector<int> schedulableDevices() const;

    int numQuarantined() const;
    int numProbation() const;

    /** Bumped on every state transition; MsmEngine re-plans when
     *  the generation it planned against goes stale. */
    std::uint64_t generation() const { return generation_; }

    void recordTimeout(int device);
    void recordChecksumFailure(int device);
    void recordStraggler(int device);
    /** A hang carries quarantineThreshold weight: the device is
     *  quarantined immediately. */
    void recordHang(int device);

    /** Device finished a window with no faults observed. Probation
     *  devices reintegrate after policy().reintegrateCleanWindows
     *  consecutive clean windows; quarantined devices do NOT redeem
     *  themselves this way (they are not scheduled — a clean window
     *  for them would be vacuous). */
    void recordCleanWindow(int device);

    /** A quarantine probe (out-of-band verified transfer) came back
     *  clean: the device re-enters the ladder at Probation with a
     *  fresh streak, so reintegration still requires
     *  reintegrateCleanWindows real clean windows. */
    void recordCleanProbe(int device);

    /** Export health/<prefix>* gauges (states, counters,
     *  generation) into @p metrics. */
    void recordMetrics(support::MetricsRegistry &metrics,
                       const char *prefix = "health/") const;

  private:
    void escalate(int device, int weight);

    HealthPolicy policy_;
    std::vector<DeviceHealth> devices_;
    std::uint64_t generation_ = 0;
};

} // namespace distmsm::gpusim

#endif // DISTMSM_GPUSIM_HEALTH_H
