/**
 * @file
 * Hexadecimal formatting and parsing for little-endian limb arrays.
 */

#ifndef DISTMSM_SUPPORT_HEX_H
#define DISTMSM_SUPPORT_HEX_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace distmsm {

/**
 * Format @p limbs (little-endian base-2^64) as "0x..." with leading
 * zeros stripped.
 */
std::string hexFromLimbs(const std::uint64_t *limbs, std::size_t n);

/**
 * Parse a hex string ("0x" prefix optional) into @p limbs
 * (little-endian). Excess high limbs are zeroed.
 *
 * @return true on success, false on malformed input or overflow.
 */
bool hexToLimbs(std::string_view text, std::uint64_t *limbs,
                std::size_t n);

} // namespace distmsm

#endif // DISTMSM_SUPPORT_HEX_H
