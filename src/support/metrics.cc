#include "src/support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace distmsm::support {

void
MetricsRegistry::add(const std::string &key, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    values_[key] += v;
}

void
MetricsRegistry::max(const std::string &key, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = values_.emplace(key, v);
    if (!inserted)
        it->second = std::max(it->second, v);
}

void
MetricsRegistry::set(const std::string &key, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    values_[key] = v;
}

double
MetricsRegistry::value(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return values_.empty();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return values_.size();
}

std::string
MetricsRegistry::formatValue(double v)
{
    // Exactly representable integers render as integers so traces
    // and metrics stay stable across compilers' float formatting.
    constexpr double kExact = 9007199254740992.0; // 2^53
    if (std::nearbyint(v) == v && std::fabs(v) <= kExact) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n";
    bool first = true;
    for (const auto &[key, value] : values_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"" << key << "\": " << formatValue(value);
    }
    os << "\n}\n";
}

} // namespace distmsm::support
