/**
 * @file
 * Flat, deterministic metrics registry.
 *
 * Every claim this reproduction makes is a count or a simulated
 * time; MetricsRegistry is the one sink they all flow into. A metric
 * is a named double keyed by a scope string — by convention a
 * "/"-joined path such as "msm/dev0/w12/scatter" so per-(device,
 * window, phase) aggregation is a prefix walk. Values accumulate by
 * addition (or maximum, for gauge-like counters such as peak
 * contention).
 *
 * Determinism contract: storage is an ordered map and export renders
 * with a fixed number format, so two registries fed the same
 * (key, value) multiset in any order serialize byte-identically.
 * Callers that accumulate floating-point values into the *same* key
 * must do so in a deterministic order (the engine feeds the registry
 * from its serial merge loop); integer-valued counters commute
 * exactly.
 *
 * Thread safety: all mutation goes through one mutex. The intended
 * use is coarse (one add per kernel launch / window / phase), so the
 * lock is not on any hot path; when no registry is attached the
 * instrumentation sites skip straight past (zero cost when off).
 */

#ifndef DISTMSM_SUPPORT_METRICS_H
#define DISTMSM_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace distmsm::support {

/** Ordered, thread-safe name -> value accumulator. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** values_[key] += v. */
    void add(const std::string &key, double v);

    /** values_[key] = max(values_[key], v). */
    void max(const std::string &key, double v);

    /** values_[key] = v (last write wins; use for plan facts). */
    void set(const std::string &key, double v);

    /** Value of @p key, or 0.0 when absent. */
    double value(const std::string &key) const;

    bool empty() const;
    std::size_t size() const;

    /**
     * Render every metric as one flat JSON object, keys in lexical
     * order, values formatted via formatValue(). The output is a
     * pure function of the stored (key, value) map.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Deterministic number rendering shared with the trace export:
     * integral values in [-2^53, 2^53] print without a decimal
     * point, everything else with round-trip precision.
     */
    static std::string formatValue(double v);

  private:
    mutable std::mutex mutex_;
    std::map<std::string, double> values_;
};

} // namespace distmsm::support

#endif // DISTMSM_SUPPORT_METRICS_H
