/**
 * @file
 * Structured tracing: a low-overhead, thread-safe event recorder
 * that exports Chrome trace-event JSON (loadable in chrome://tracing
 * and Perfetto) plus a flat metrics JSON.
 *
 * Event model
 * -----------
 * A trace is a set of *events* on (pid, tid) lanes. Perfetto renders
 * each pid as a process group and each tid as a track, so the
 * instrumentation maps simulated hardware onto lanes:
 *
 *   pid 0                host CPU (bucket-reduce, window-reduce)
 *   pid 1 + d            simulated GPU d (tid 0 compute, tid 1
 *                        transfer)
 *   pid 99               functional engine: host bucket-reduce
 *                        (measured stats on the simulated axis)
 *   pid 100 + d          functional engine: device d's window work
 *   pid kKernelsPid      functional kernel launches (logical time:
 *                        one microsecond per bulk-synchronous phase)
 *   pid kPipelinePid     proving-pipeline task lanes (tid 0 GPU
 *                        stage, tid 1 host stage)
 *   pid kProverPid       Groth16 prover stages (host wall-clock)
 *
 * Two time axes coexist, distinguished by lane (DESIGN.md "Tracing &
 * metrics"): *simulated nanoseconds* from the analytic cost model
 * (device/host/pipeline lanes — deterministic), and *host
 * wall-clock* (prover lanes — not deterministic, excluded from the
 * determinism contract). Functional kernel-launch lanes use logical
 * phase counts, which are deterministic.
 *
 * Determinism contract
 * --------------------
 * Export sorts events by (ts, pid, tid, ph, name, dur, args) — i.e.
 * simulated time with a stable total-order tiebreak over every
 * field — and renders numbers through MetricsRegistry::formatValue.
 * Events recorded from concurrent host threads therefore serialize
 * byte-identically for every DISTMSM_HOST_THREADS value, provided
 * each event's *fields* are deterministic (the instrumentation
 * sites' responsibility; asserted by test_determinism).
 *
 * Zero cost when off: every instrumentation site is gated on a
 * nullable TraceRecorder pointer (MsmOptions::trace, or the
 * DISTMSM_TRACE environment toggle via globalTraceFromEnv()).
 */

#ifndef DISTMSM_SUPPORT_TRACE_H
#define DISTMSM_SUPPORT_TRACE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/support/metrics.h"

namespace distmsm::support {

/** Well-known trace lanes (see the file comment). */
namespace tracelane {
inline constexpr int kHostPid = 0;
inline constexpr int kDevicePidBase = 1;
/** Functional-engine lanes: measured stats mapped onto simulated
 *  time, kept apart from the analytic-timeline lanes above. */
inline constexpr int kEngineHostPid = 99;
inline constexpr int kEngineDevicePidBase = 100;
inline constexpr int kKernelsPid = 900;
inline constexpr int kPipelinePid = 950;
inline constexpr int kProverPid = 990;
/** tid of a device's compute track / its transfer track. */
inline constexpr int kComputeTid = 0;
inline constexpr int kTransferTid = 1;

inline int devicePid(int device) { return kDevicePidBase + device; }
inline int
engineDevicePid(int device)
{
    return kEngineDevicePidBase + device;
}
} // namespace tracelane

/**
 * Ordered key/value arguments of one event. Values are stored
 * pre-rendered as JSON fragments so numeric formatting is uniform.
 */
class TraceArgs
{
  public:
    TraceArgs() = default;

    TraceArgs &
    arg(const std::string &key, double value)
    {
        rendered_.emplace_back(key,
                               MetricsRegistry::formatValue(value));
        return *this;
    }

    TraceArgs &
    arg(const std::string &key, const std::string &value)
    {
        rendered_.emplace_back(key, "\"" + value + "\"");
        return *this;
    }

    const std::vector<std::pair<std::string, std::string>> &
    rendered() const
    {
        return rendered_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> rendered_;
};

/** One recorded trace event (Chrome trace-event fields). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X';   ///< X complete, i instant, s/f flow begin/end
    double tsNs = 0; ///< event time, nanoseconds
    double durNs = 0;
    int pid = 0;
    int tid = 0;
    std::uint64_t flowId = 0; ///< binds 's'/'f' pairs
    std::vector<std::pair<std::string, std::string>> args;
};

/** Thread-safe recorder; see the file comment for the contract. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** The metrics registry riding along with this trace. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** A complete ('X') span of @p dur_ns starting at @p ts_ns. */
    void span(const std::string &name, const std::string &cat,
              int pid, int tid, double ts_ns, double dur_ns,
              TraceArgs args = {});

    /** An instant ('i') event. */
    void instant(const std::string &name, const std::string &cat,
                 int pid, int tid, double ts_ns,
                 TraceArgs args = {});

    /**
     * A flow arrow from (from_pid, from_tid, from_ts) to
     * (to_pid, to_tid, to_ts) — e.g. a device-to-host transfer
     * feeding the reduce. @p id must be unique per arrow.
     */
    void flow(const std::string &name, std::uint64_t id,
              int from_pid, int from_tid, double from_ts_ns,
              int to_pid, int to_tid, double to_ts_ns);

    /** Name a pid ("gpu0") / a (pid, tid) track ("transfer"). */
    void labelProcess(int pid, const std::string &name);
    void labelThread(int pid, int tid, const std::string &name);

    std::size_t eventCount() const;

    /** Copy of the recorded events in the export's sorted order. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Export Chrome trace-event JSON: metadata records first, then
     * every event sorted by (ts, pid, tid, ph, name, dur, args).
     * Byte-identical for identical event multisets.
     */
    void writeChromeJson(std::ostream &os) const;

    /** Export the attached metrics registry (flat JSON object). */
    void
    writeMetricsJson(std::ostream &os) const
    {
        metrics_.writeJson(os);
    }

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
    MetricsRegistry metrics_;
};

/**
 * Process-wide recorder controlled by the DISTMSM_TRACE environment
 * variable. Returns nullptr when unset (tracing off). On first use
 * with DISTMSM_TRACE=path.json, registers an exit handler that
 * writes the Chrome trace to `path.json` and the metrics to
 * `path.metrics.json` (".json" suffix stripped before appending, so
 * `trace.json` pairs with `trace.metrics.json`).
 */
TraceRecorder *globalTraceFromEnv();

/** The metrics path paired with a DISTMSM_TRACE path. */
std::string traceMetricsPath(const std::string &trace_path);

} // namespace distmsm::support

#endif // DISTMSM_SUPPORT_TRACE_H
