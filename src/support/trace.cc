#include "src/support/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <tuple>

namespace distmsm::support {

namespace {

/** Rendered-args comparison key (lexicographic over pairs). */
int
compareArgs(const std::vector<std::pair<std::string, std::string>> &a,
            const std::vector<std::pair<std::string, std::string>> &b)
{
    if (a < b)
        return -1;
    return b < a ? 1 : 0;
}

/** The stable total order of the export (see trace.h). */
bool
eventLess(const TraceEvent &a, const TraceEvent &b)
{
    if (a.tsNs != b.tsNs)
        return a.tsNs < b.tsNs;
    const auto key = [](const TraceEvent &e) {
        return std::tie(e.pid, e.tid, e.ph, e.name, e.durNs,
                        e.flowId);
    };
    if (key(a) != key(b))
        return key(a) < key(b);
    return compareArgs(a.args, b.args) < 0;
}

void
writeEscaped(std::ostream &os, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

void
writeArgs(std::ostream &os,
          const std::vector<std::pair<std::string, std::string>> &args)
{
    os << "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        writeEscaped(os, key);
        os << "\":" << value;
    }
    os << "}";
}

} // namespace

void
TraceRecorder::span(const std::string &name, const std::string &cat,
                    int pid, int tid, double ts_ns, double dur_ns,
                    TraceArgs args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.tsNs = ts_ns;
    e.durNs = dur_ns;
    e.pid = pid;
    e.tid = tid;
    e.args = args.rendered();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

void
TraceRecorder::instant(const std::string &name,
                       const std::string &cat, int pid, int tid,
                       double ts_ns, TraceArgs args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.tsNs = ts_ns;
    e.pid = pid;
    e.tid = tid;
    e.args = args.rendered();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
}

void
TraceRecorder::flow(const std::string &name, std::uint64_t id,
                    int from_pid, int from_tid, double from_ts_ns,
                    int to_pid, int to_tid, double to_ts_ns)
{
    TraceEvent s;
    s.name = name;
    s.cat = "transfer";
    s.ph = 's';
    s.tsNs = from_ts_ns;
    s.pid = from_pid;
    s.tid = from_tid;
    s.flowId = id;
    TraceEvent f = s;
    f.ph = 'f';
    f.tsNs = to_ts_ns;
    f.pid = to_pid;
    f.tid = to_tid;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(s));
    events_.push_back(std::move(f));
}

void
TraceRecorder::labelProcess(int pid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    processNames_[pid] = name;
}

void
TraceRecorder::labelThread(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    threadNames_[{pid, tid}] = name;
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> sorted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sorted = events_;
    }
    std::sort(sorted.begin(), sorted.end(), eventLess);
    return sorted;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    std::vector<TraceEvent> sorted;
    std::map<int, std::string> process_names;
    std::map<std::pair<int, int>, std::string> thread_names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sorted = events_;
        process_names = processNames_;
        thread_names = threadNames_;
    }
    std::sort(sorted.begin(), sorted.end(), eventLess);

    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Metadata first: lane names (Perfetto sorts tracks by them).
    for (const auto &[pid, name] : process_names) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
           << pid << ",\"tid\":0,\"args\":{\"name\":\"";
        writeEscaped(os, name);
        os << "\"}}";
    }
    for (const auto &[key, name] : thread_names) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << key.first << ",\"tid\":" << key.second
           << ",\"args\":{\"name\":\"";
        writeEscaped(os, name);
        os << "\"}}";
    }

    // Chrome trace timestamps are microseconds; simulated times are
    // recorded in ns, so ts/dur export as fractional us.
    for (const auto &e : sorted) {
        sep();
        os << "{\"name\":\"";
        writeEscaped(os, e.name);
        os << "\",\"cat\":\"";
        writeEscaped(os, e.cat);
        os << "\",\"ph\":\"" << e.ph << "\",\"ts\":"
           << MetricsRegistry::formatValue(e.tsNs / 1000.0)
           << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (e.ph == 'X')
            os << ",\"dur\":"
               << MetricsRegistry::formatValue(e.durNs / 1000.0);
        if (e.ph == 's' || e.ph == 'f')
            os << ",\"id\":" << e.flowId;
        if (e.ph == 'f')
            os << ",\"bp\":\"e\"";
        if (!e.args.empty()) {
            os << ",\"args\":";
            writeArgs(os, e.args);
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":"
          "{\"tool\":\"distmsm\"}}\n";
}

std::string
traceMetricsPath(const std::string &trace_path)
{
    std::string base = trace_path;
    const std::string suffix = ".json";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        base.resize(base.size() - suffix.size());
    }
    return base + ".metrics.json";
}

namespace {

struct GlobalTrace
{
    TraceRecorder recorder;
    std::string path;

    ~GlobalTrace()
    {
        // Exit-time flush: DISTMSM_TRACE=path.json gets the Chrome
        // trace; the paired metrics land next to it.
        std::ofstream trace_out(path);
        if (trace_out)
            recorder.writeChromeJson(trace_out);
        std::ofstream metrics_out(traceMetricsPath(path));
        if (metrics_out)
            recorder.writeMetricsJson(metrics_out);
    }
};

} // namespace

TraceRecorder *
globalTraceFromEnv()
{
    static TraceRecorder *const recorder = []() -> TraceRecorder * {
        const char *path = std::getenv("DISTMSM_TRACE");
        if (path == nullptr || *path == '\0')
            return nullptr;
        static GlobalTrace global;
        global.path = path;
        return &global.recorder;
    }();
    return recorder;
}

} // namespace distmsm::support
