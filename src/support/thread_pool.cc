#include "src/support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "src/support/check.h"

namespace distmsm::support {

namespace {

/** Pool and worker index of the current thread, if it is a worker. */
thread_local ThreadPool *tl_pool = nullptr;
thread_local int tl_worker = -1;

} // namespace

int
resolveHostThreads(int requested)
{
    if (requested >= 1)
        return requested;
    if (const char *env = std::getenv("DISTMSM_HOST_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : size_(threads)
{
    DISTMSM_REQUIRE(threads >= 1, "thread pool needs width >= 1");
    local_.resize(static_cast<std::size_t>(size_));
    threads_.reserve(static_cast<std::size_t>(size_ - 1));
    // Width w = w - 1 workers plus the submitting/calling thread.
    for (int i = 0; i < size_ - 1; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // A worker submitting to its own pool pushes to its deque
        // (popped LIFO by the owner, stolen FIFO by siblings).
        if (tl_pool == this && tl_worker >= 0)
            local_[static_cast<std::size_t>(tl_worker)].push_back(
                std::move(task));
        else
            injection_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
ThreadPool::takeTask(int self, std::function<void()> &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (self >= 0) {
        auto &own = local_[static_cast<std::size_t>(self)];
        if (!own.empty()) { // own work: newest first
            out = std::move(own.back());
            own.pop_back();
            return true;
        }
    }
    if (!injection_.empty()) {
        out = std::move(injection_.front());
        injection_.pop_front();
        return true;
    }
    for (auto &victim : local_) { // steal: oldest first
        if (!victim.empty()) {
            out = std::move(victim.front());
            victim.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(int index)
{
    tl_pool = this;
    tl_worker = index;
    for (;;) {
        std::function<void()> task;
        if (takeTask(index, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this, index] {
            if (stop_)
                return true;
            if (!injection_.empty())
                return true;
            for (const auto &q : local_)
                if (!q.empty())
                    return true;
            (void)index;
            return false;
        });
        if (stop_) {
            // Drain what is left so queued futures still complete.
            lock.unlock();
            std::function<void()> last;
            while (takeTask(index, last))
                last();
            return;
        }
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::move(fn));
    std::future<void> future = task->get_future();
    if (size_ <= 1) { // width-1 pool: inline execution
        (*task)();
        return future;
    }
    enqueue([task] { (*task)(); });
    return future;
}

namespace {

/** Shared state of one parallelFor call, self-scheduled in chunks. */
struct Batch
{
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::size_t total = 0;
    std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> cancelled{false};
    std::mutex m;
    std::condition_variable cv;
    std::exception_ptr error;

    /**
     * Claim and run chunks until the range is exhausted. Claimed
     * iterations are always counted as completed (skipped once
     * cancelled), so `completed` reliably reaches `total`.
     */
    void
    run()
    {
        for (;;) {
            const std::size_t i0 = next.fetch_add(chunk);
            if (i0 >= end)
                return;
            const std::size_t i1 = std::min(end, i0 + chunk);
            if (!cancelled.load()) {
                for (std::size_t i = i0; i < i1; ++i) {
                    try {
                        fn(i);
                    } catch (...) {
                        {
                            std::lock_guard<std::mutex> lock(m);
                            if (!error)
                                error = std::current_exception();
                        }
                        cancelled.store(true);
                        break;
                    }
                }
            }
            const std::size_t done =
                completed.fetch_add(i1 - i0) + (i1 - i0);
            if (done == total) {
                std::lock_guard<std::mutex> lock(m);
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelForImpl(std::size_t begin, std::size_t end,
                            std::function<void(std::size_t)> fn,
                            int max_threads)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    const int width = std::min(
        size_, max_threads > 0 ? max_threads : size_);
    if (width <= 1 || n == 1) {
        // Exact sequential path: ascending order, caller's thread.
        for (std::size_t i = begin; i < n + begin; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->next.store(begin);
    batch->end = end;
    batch->total = n;
    batch->chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(width) * 8));
    batch->fn = std::move(fn);

    const std::size_t helpers = std::min<std::size_t>(
        static_cast<std::size_t>(width) - 1, n - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue([batch] { batch->run(); });

    batch->run(); // the caller participates (nested-safe)

    std::unique_lock<std::mutex> lock(batch->m);
    batch->cv.wait(lock, [&] {
        return batch->completed.load() == batch->total;
    });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

ThreadPool &
ThreadPool::global()
{
    // At least 8 logical threads so explicit hostThreads requests up
    // to 8 exercise real concurrency even on narrow CI hosts; idle
    // workers sleep on the condition variable.
    static ThreadPool pool(std::max(resolveHostThreads(0), 8));
    return pool;
}

} // namespace distmsm::support
