/**
 * @file
 * Work-stealing host thread pool.
 *
 * The simulator models massively parallel hardware, so the host-side
 * execution of independent simulated units — devices of a Cluster,
 * thread blocks of a KernelLaunch, windows and bucket groups of an
 * MSM — is embarrassingly parallel. This pool runs those units
 * concurrently while the *results stay bit-identical to the
 * sequential path*: callers write into per-task slots and merge them
 * in a fixed index order, never through racy accumulation (see
 * README "Host parallelism & determinism").
 *
 * Structure: each worker owns a deque; it pops its own work LIFO and
 * steals FIFO from the shared injection queue or from siblings when
 * idle. parallelFor() self-schedules chunks of the index range
 * through a shared cursor, with the calling thread participating —
 * this makes nested parallelFor calls from inside pool tasks
 * deadlock-free (the nested caller drains its own chunks instead of
 * blocking on an idle pool).
 *
 * Concurrency policy: every parallel entry point takes a "requested
 * host threads" knob with the convention
 *   0  -> the DISTMSM_HOST_THREADS environment override if set,
 *         otherwise std::thread::hardware_concurrency();
 *   1  -> strictly sequential inline execution (the legacy path);
 *   n  -> at most n threads cooperate on the call.
 */

#ifndef DISTMSM_SUPPORT_THREAD_POOL_H
#define DISTMSM_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace distmsm::support {

/**
 * Resolve a requested host-thread count to an effective one:
 * requested >= 1 wins; 0 defers to DISTMSM_HOST_THREADS, then to
 * std::thread::hardware_concurrency() (at least 1).
 */
int resolveHostThreads(int requested);

/** Work-stealing pool of host threads. */
class ThreadPool
{
  public:
    /**
     * @param threads logical width of the pool (>= 1). A pool of
     * width 1 spawns no workers: everything runs inline in the
     * calling thread.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Logical width (worker threads + the calling thread's share). */
    int size() const { return size_; }

    /** Enqueue one task; the future reports completion/exception. */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Run fn(i) for every i in [begin, end). Blocks until all
     * iterations finished. Iterations may run concurrently and in
     * any order, so fn must only touch state owned by iteration i
     * (typically slot i of a result vector); merge the slots in
     * index order afterwards for deterministic output. The first
     * exception thrown by fn cancels the remaining iterations and is
     * rethrown here. Safe to call from inside pool tasks (nested
     * parallelism): the caller helps execute its own chunks.
     *
     * @param max_threads same convention as resolveHostThreads();
     * the effective width is additionally capped by size().
     */
    template <typename Fn>
    void
    parallelFor(std::size_t begin, std::size_t end, Fn &&fn,
                int max_threads = 0)
    {
        parallelForImpl(begin, end, std::function<void(std::size_t)>(
                                        std::forward<Fn>(fn)),
                        max_threads);
    }

    /**
     * The process-wide pool. Sized generously (at least 8 logical
     * threads even on narrow hosts) so explicit hostThreads requests
     * can be honored; per-call width is still governed by the
     * max_threads argument, so the default behaviour follows
     * resolveHostThreads(0).
     */
    static ThreadPool &global();

  private:
    void parallelForImpl(std::size_t begin, std::size_t end,
                         std::function<void(std::size_t)> fn,
                         int max_threads);
    void enqueue(std::function<void()> task);
    bool takeTask(int self, std::function<void()> &out);
    void workerLoop(int index);

    int size_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::deque<std::function<void()>> injection_;
    std::vector<std::deque<std::function<void()>>> local_;
    std::vector<std::thread> threads_;
};

} // namespace distmsm::support

#endif // DISTMSM_SUPPORT_THREAD_POOL_H
