/**
 * @file
 * Lightweight error channel for the fault-tolerant execution layer.
 *
 * Every gpusim/msm/zksnark API that can fail under the fault model
 * (device loss, corrupted or timed-out transfers, kernels that cannot
 * launch, mismatching results) returns a Status or StatusOr<T>
 * instead of aborting, so the retry/re-shard machinery in MsmEngine
 * can observe the failure and recover. The taxonomy mirrors the
 * fault-injection kinds of src/gpusim/faults.h.
 *
 * Deliberately minimal (no payloads beyond a message, no chaining):
 * the simulator needs a typed, propagatable failure channel, not a
 * full absl::Status clone.
 */

#ifndef DISTMSM_SUPPORT_STATUS_H
#define DISTMSM_SUPPORT_STATUS_H

#include <string>
#include <utility>

#include "src/support/check.h"

namespace distmsm::support {

/** Failure taxonomy of the distributed MSM fault model. */
enum class StatusCode {
    Ok = 0,
    /** A simulated device died; its shard must be redistributed. */
    DeviceLost,
    /** A host<->device payload failed its RLC checksum. */
    TransferCorrupt,
    /** A transfer exceeded MsmOptions::transferTimeoutNs. */
    TransferTimeout,
    /** A kernel could not launch (bad geometry, shared memory). */
    KernelFault,
    /** Host-side re-derivation disagreed with the device digest. */
    ResultMismatch,
    /** Malformed user input (e.g. an unparsable fault spec). */
    InvalidArgument,
};

/** Printable name of a status code ("DEVICE_LOST"). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "OK";
    case StatusCode::DeviceLost:
        return "DEVICE_LOST";
    case StatusCode::TransferCorrupt:
        return "TRANSFER_CORRUPT";
    case StatusCode::TransferTimeout:
        return "TRANSFER_TIMEOUT";
    case StatusCode::KernelFault:
        return "KERNEL_FAULT";
    case StatusCode::ResultMismatch:
        return "RESULT_MISMATCH";
    case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
    }
    return "UNKNOWN";
}

/** A status code plus a human-readable message. */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status{}; }

    bool isOk() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "TRANSFER_CORRUPT: device 2 digest mismatch" (or "OK"). */
    std::string
    toString() const
    {
        if (isOk())
            return "OK";
        if (message_.empty())
            return statusCodeName(code_);
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    bool
    operator==(const Status &other) const
    {
        return code_ == other.code_ && message_ == other.message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** A value or the Status explaining why there is none. */
template <typename T>
class StatusOr
{
  public:
    /** Implicit from a value (the common success return). */
    StatusOr(T value) : value_(std::move(value)) {}

    /** Implicit from a non-ok Status. */
    StatusOr(Status status) : status_(std::move(status))
    {
        DISTMSM_ASSERT(!status_.isOk());
    }

    bool isOk() const { return status_.isOk(); }
    const Status &status() const { return status_; }

    /** The value; the caller must have checked isOk(). */
    T &
    value()
    {
        DISTMSM_ASSERT(status_.isOk());
        return value_;
    }

    const T &
    value() const
    {
        DISTMSM_ASSERT(status_.isOk());
        return value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    T value_{};
};

} // namespace distmsm::support

/** Propagate a non-ok Status out of the enclosing function. */
#define DISTMSM_RETURN_IF_ERROR(expr)                                   \
    do {                                                                \
        ::distmsm::support::Status status__ = (expr);                   \
        if (!status__.isOk())                                           \
            return status__;                                            \
    } while (0)

#endif // DISTMSM_SUPPORT_STATUS_H
