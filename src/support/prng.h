/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs in tests and benchmarks (scalars, points,
 * witnesses) come from this PRNG so every run of the repository is
 * reproducible. The generator is xoshiro256** (Blackman & Vigna),
 * seeded through splitmix64.
 */

#ifndef DISTMSM_SUPPORT_PRNG_H
#define DISTMSM_SUPPORT_PRNG_H

#include <cstdint>

namespace distmsm {

/**
 * xoshiro256** pseudo-random generator with a splitmix64-expanded seed.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be
 * used with standard distributions when needed.
 */
class Prng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Prng(std::uint64_t seed = 0x5EED5EED5EED5EEDull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = max() - max() % bound;
        std::uint64_t v;
        do {
            v = (*this)();
        } while (v >= limit);
        return v % bound;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace distmsm

#endif // DISTMSM_SUPPORT_PRNG_H
