/**
 * @file
 * Wall-clock timing helpers used by benchmarks and calibration.
 */

#ifndef DISTMSM_SUPPORT_TIMER_H
#define DISTMSM_SUPPORT_TIMER_H

#include <chrono>

namespace distmsm {

/** Simple wall-clock stopwatch (steady clock). */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

    /** Nanoseconds elapsed since construction or the last reset(). */
    double nanoseconds() const { return seconds() * 1e9; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace distmsm

#endif // DISTMSM_SUPPORT_TIMER_H
