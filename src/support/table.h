/**
 * @file
 * Plain-text table printer for benchmark harnesses.
 *
 * The experiment binaries print rows in the same layout as the paper's
 * tables; this helper handles alignment so every harness looks uniform.
 */

#ifndef DISTMSM_SUPPORT_TABLE_H
#define DISTMSM_SUPPORT_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace distmsm {

/** Accumulates rows of strings and renders an aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table with column alignment and a separator line. */
    std::string render() const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double value, int decimals = 2);

    /**
     * Format a time in milliseconds the way Table 3 does: four
     * significant digits, switching to "12.3K" above 10000.
     */
    static std::string paperMs(double ms);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace distmsm

#endif // DISTMSM_SUPPORT_TABLE_H
