/**
 * @file
 * Internal invariant checks and user-facing fatal errors.
 *
 * Follows the gem5 panic()/fatal() split: panic() marks a library bug
 * (aborts so a core dump is available); fatal() marks a caller error
 * (bad configuration, invalid arguments) and exits cleanly.
 */

#ifndef DISTMSM_SUPPORT_CHECK_H
#define DISTMSM_SUPPORT_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace distmsm {

/** Abort with a message; use for conditions that indicate a bug. */
[[noreturn]] inline void
panic(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

/** Exit with a message; use for conditions that are the caller's fault. */
[[noreturn]] inline void
fatal(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace distmsm

/** Internal invariant: failure means a distmsm bug. */
#define DISTMSM_ASSERT(cond)                                            \
    do {                                                                \
        if (!(cond))                                                    \
            ::distmsm::panic(__FILE__, __LINE__,                        \
                             "assertion failed: " #cond);               \
    } while (0)

/** Caller-facing precondition: failure means a usage error. */
#define DISTMSM_REQUIRE(cond, msg)                                      \
    do {                                                                \
        if (!(cond))                                                    \
            ::distmsm::fatal(__FILE__, __LINE__, msg);                  \
    } while (0)

#endif // DISTMSM_SUPPORT_CHECK_H
