#include "src/support/hex.h"

#include <cctype>

namespace distmsm {

std::string
hexFromLimbs(const std::uint64_t *limbs, std::size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool significant = false;
    for (std::size_t i = n; i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const unsigned nibble = (limbs[i] >> shift) & 0xF;
            if (nibble != 0)
                significant = true;
            if (significant)
                out.push_back(digits[nibble]);
        }
    }
    return out.empty() ? std::string("0x0") : "0x" + out;
}

bool
hexToLimbs(std::string_view text, std::uint64_t *limbs, std::size_t n)
{
    if (text.size() >= 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
        text.remove_prefix(2);
    }
    if (text.empty())
        return false;
    for (std::size_t i = 0; i < n; ++i)
        limbs[i] = 0;
    std::size_t bit = 0;
    for (std::size_t i = text.size(); i-- > 0;) {
        const char c = text[i];
        unsigned v;
        if (c >= '0' && c <= '9') {
            v = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            v = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            v = c - 'A' + 10;
        } else {
            return false;
        }
        if (v != 0) {
            if (bit >= 64 * n)
                return false;
            const std::size_t avail = 64 * n - bit;
            if (avail < 4 && (v >> avail) != 0)
                return false;
            limbs[bit / 64] |= static_cast<std::uint64_t>(v) << (bit % 64);
            // A nibble may straddle a limb boundary only if bit % 64 > 60.
            if (bit % 64 > 60 && bit / 64 + 1 < n)
                limbs[bit / 64 + 1] |= v >> (64 - bit % 64);
        }
        bit += 4;
    }
    return true;
}

} // namespace distmsm
