#include "src/support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace distmsm {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells,
                    std::string &out) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string();
            out += "  ";
            out += cell;
            out.append(widths[i] - cell.size(), ' ');
        }
        out += '\n';
    };

    std::string out;
    if (!header_.empty()) {
        emit(header_, out);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        out.append(total, '-');
        out += '\n';
    }
    for (const auto &r : rows_)
        emit(r, out);
    return out;
}

std::string
TextTable::num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TextTable::paperMs(double ms)
{
    char buf[64];
    if (ms >= 10000.0) {
        std::snprintf(buf, sizeof(buf), "%.1fK", ms / 1000.0);
    } else if (ms >= 1000.0) {
        std::snprintf(buf, sizeof(buf), "%.0f", ms);
    } else if (ms >= 100.0) {
        std::snprintf(buf, sizeof(buf), "%.1f", ms);
    } else if (ms >= 10.0) {
        std::snprintf(buf, sizeof(buf), "%.2f", ms);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f", ms);
    }
    return buf;
}

} // namespace distmsm
