#include "src/sched/spill.h"

#include <algorithm>
#include <set>

#include "src/support/check.h"

namespace distmsm::sched {
namespace {

/** Next-use positions of every value under a fixed schedule. */
class UseTable
{
  public:
    UseTable(const OpDag &dag, const std::vector<int> &order)
        : dag_(dag)
    {
        const int kEnd = static_cast<int>(order.size());
        uses_.resize(dag.numValues());
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
            for (ValueId s : dag.ops()[order[pos]].srcs)
                uses_[s].push_back(static_cast<int>(pos));
        }
        for (ValueId v : dag.outputs())
            uses_[v].push_back(kEnd);
    }

    /** First use at or after @p pos; INT_MAX when none. */
    int
    nextUse(ValueId v, int pos) const
    {
        for (int u : uses_[v]) {
            if (u >= pos)
                return u;
        }
        return kNever;
    }

    bool
    liveAfter(ValueId v, int pos) const
    {
        return nextUse(v, pos + 1) != kNever;
    }

    static constexpr int kNever = 1 << 28;

  private:
    const OpDag &dag_;
    std::vector<std::vector<int>> uses_;
};

} // namespace

int
minimumFeasibleRegisters(const OpDag &dag, const std::vector<int> &order)
{
    int floor_regs = 0;
    for (int op_idx : order) {
        const Operation &op = dag.ops()[op_idx];
        std::set<ValueId> distinct(op.srcs.begin(), op.srcs.end());
        // Operands plus the scratch/destination register.
        floor_regs = std::max(floor_regs,
                              static_cast<int>(distinct.size()) + 1);
    }
    return floor_regs;
}

SpillPlan
planSpills(const OpDag &dag, const std::vector<int> &order,
           int reg_target)
{
    DISTMSM_REQUIRE(dag.isValidOrder(order), "invalid schedule");
    SpillPlan plan;
    plan.regTarget = reg_target;
    if (reg_target < minimumFeasibleRegisters(dag, order))
        return plan; // infeasible

    UseTable uses(dag, order);
    std::set<ValueId> in_reg;
    std::set<ValueId> in_shm;
    std::set<ValueId> loaded; // inputs already fetched from memory

    // Register-resident inputs start out in registers; excess over
    // the budget is parked in shared memory up front.
    for (ValueId v : dag.inputs()) {
        if (!dag.isMemoryResident(v) &&
            uses.nextUse(v, 0) != UseTable::kNever) {
            in_reg.insert(v);
            loaded.insert(v);
        }
    }

    auto record = [&](int pos, SpillEvent::Kind kind, ValueId v) {
        plan.events.push_back(SpillEvent{pos, kind, v});
        ++plan.transfers;
    };

    // Evict the register value with the furthest next use, excluding
    // @p pinned values (operands of the current op).
    auto evict_one = [&](int pos, const std::set<ValueId> &pinned) {
        ValueId victim = 0;
        int victim_use = -1;
        for (ValueId v : in_reg) {
            if (pinned.count(v))
                continue;
            const int u = uses.nextUse(v, pos);
            if (u > victim_use) {
                victim_use = u;
                victim = v;
            }
        }
        DISTMSM_ASSERT(victim_use >= 0);
        in_reg.erase(victim);
        if (victim_use != UseTable::kNever) {
            in_shm.insert(victim);
            record(pos, SpillEvent::Kind::Store, victim);
        }
    };

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const Operation &op = dag.ops()[order[pos]];
        const int ipos = static_cast<int>(pos);
        std::set<ValueId> pinned(op.srcs.begin(), op.srcs.end());

        // Bring operands into registers: spilled values come back
        // from shared memory (a counted transfer); inputs not yet
        // seen are fetched from device memory (an ordinary load the
        // kernel performs anyway, not a spill transfer).
        for (ValueId s : pinned) {
            const bool from_shm = in_shm.count(s) != 0;
            const bool fresh_input =
                dag.isMemoryResident(s) && !loaded.count(s);
            if (!from_shm && !fresh_input)
                continue;
            while (static_cast<int>(in_reg.size()) >= reg_target)
                evict_one(ipos, pinned);
            in_reg.insert(s);
            if (from_shm) {
                in_shm.erase(s);
                record(ipos, SpillEvent::Kind::Load, s);
            } else {
                loaded.insert(s);
            }
        }
        for (ValueId s : pinned)
            DISTMSM_ASSERT(in_reg.count(s));

        // Reserve the scratch/destination register. An in-place
        // add/sub whose source dies at this op reuses that register.
        bool needs_new_reg = true;
        if (!op.isMul()) {
            for (ValueId s : op.srcs) {
                if (!uses.liveAfter(s, ipos))
                    needs_new_reg = false;
            }
        }
        if (needs_new_reg) {
            while (static_cast<int>(in_reg.size()) + 1 > reg_target)
                evict_one(ipos, pinned);
        }
        plan.peakRegisters =
            std::max(plan.peakRegisters,
                     static_cast<int>(in_reg.size()) +
                         (needs_new_reg ? 1 : 0));

        // Execute: retire dying sources, materialize the result.
        for (ValueId s : op.srcs) {
            if (!uses.liveAfter(s, ipos))
                in_reg.erase(s);
        }
        if (uses.liveAfter(op.dst, ipos))
            in_reg.insert(op.dst);
        DISTMSM_ASSERT(static_cast<int>(in_reg.size()) <= reg_target);

        plan.peakShared = std::max(
            plan.peakShared, static_cast<int>(in_shm.size()));
    }

    plan.feasible = true;
    return plan;
}

} // namespace distmsm::sched
