/**
 * @file
 * Register allocation and kernel listing emission.
 *
 * The scheduler (Section 4.2) decides *when* each big-integer
 * operation runs and *which* values park in shared memory; this
 * module finishes the job a kernel author would: it assigns every
 * value a concrete big-integer register slot (reusing slots as
 * values die, exactly the reuse the liveness convention permits) and
 * emits the annotated kernel listing.
 *
 * The allocation is checked three ways: the slot count equals the
 * schedule's peak live count (the paper's register numbers), no two
 * simultaneously-live values share a slot, and the register-level
 * interpreter executes the allocated program against real field
 * arithmetic and reproduces PADD/PACC/PDBL bitwise.
 */

#ifndef DISTMSM_SCHED_CODEGEN_H
#define DISTMSM_SCHED_CODEGEN_H

#include <string>
#include <vector>

#include "src/sched/dag.h"
#include "src/sched/spill.h"

namespace distmsm::sched {

/** One register-level instruction of the emitted kernel. */
struct KernelInstr
{
    enum class Op
    {
        Load,  ///< reg[dst] <- input  (device memory fetch)
        Store, ///< shm[shmSlot] <- reg[src]  (spill)
        Fill,  ///< reg[dst] <- shm[shmSlot]  (unspill)
        Mul,   ///< reg[dst] <- reg[srcA] * reg[srcB]
        Add,   ///< reg[dst] <- reg[srcA] + reg[srcB]
        Sub,   ///< reg[dst] <- reg[srcA] - reg[srcB]
        Out,   ///< output <- reg[src] (or shm[shmSlot] if spilled)
    };

    Op op;
    int dst = -1;     ///< register slot written (Load/Fill/arith)
    int srcA = -1;    ///< register slot read
    int srcB = -1;    ///< second register slot read (arith)
    int shmSlot = -1; ///< shared-memory slot (Store/Fill)
    ValueId value = 0; ///< the SSA value involved (for annotation)
};

/** A fully register-allocated kernel. */
struct AllocatedKernel
{
    std::vector<KernelInstr> instrs;
    /** Big-integer register slots used. */
    int numRegisters = 0;
    /** Shared-memory big-integer slots used. */
    int numSharedSlots = 0;
    /** The source schedule (op indices of the OpDag). */
    std::vector<int> order;
};

/**
 * Allocate registers for @p order of @p dag, honouring @p plan's
 * spill decisions (pass a no-spill plan for pure allocation). The
 * Montgomery scratch shares the destination slot, matching the
 * liveness convention of dag.h.
 */
AllocatedKernel allocateRegisters(const OpDag &dag,
                                  const std::vector<int> &order,
                                  const SpillPlan &plan);

/** Render the kernel as an annotated text listing. */
std::string renderKernel(const OpDag &dag,
                         const AllocatedKernel &kernel);

/**
 * Execute the allocated kernel over field type @p F: the ultimate
 * check that scheduling + spilling + allocation preserved the
 * computation. @p inputs matches dag.inputs(); returns one value
 * per dag.outputs().
 */
template <typename F>
std::vector<F>
executeAllocated(const OpDag &dag, const AllocatedKernel &kernel,
                 const std::vector<F> &inputs)
{
    DISTMSM_REQUIRE(inputs.size() == dag.inputs().size(),
                    "wrong input count");
    std::vector<F> regs(kernel.numRegisters, F::zero());
    std::vector<F> shm(kernel.numSharedSlots, F::zero());
    std::vector<F> outputs;
    for (const auto &instr : kernel.instrs) {
        switch (instr.op) {
          case KernelInstr::Op::Load:
            regs.at(instr.dst) = inputs.at(instr.value);
            break;
          case KernelInstr::Op::Store:
            shm.at(instr.shmSlot) = regs.at(instr.srcA);
            break;
          case KernelInstr::Op::Fill:
            regs.at(instr.dst) = shm.at(instr.shmSlot);
            break;
          case KernelInstr::Op::Mul:
            regs.at(instr.dst) =
                regs.at(instr.srcA) * regs.at(instr.srcB);
            break;
          case KernelInstr::Op::Add:
            regs.at(instr.dst) =
                regs.at(instr.srcA) + regs.at(instr.srcB);
            break;
          case KernelInstr::Op::Sub:
            regs.at(instr.dst) =
                regs.at(instr.srcA) - regs.at(instr.srcB);
            break;
          case KernelInstr::Op::Out:
            outputs.push_back(instr.srcA >= 0
                                  ? regs.at(instr.srcA)
                                  : shm.at(instr.shmSlot));
            break;
        }
    }
    return outputs;
}

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_CODEGEN_H
