#include "src/sched/schedule_search.h"

#include <algorithm>
#include <unordered_map>

#include "src/support/check.h"

namespace distmsm::sched {
namespace {

/**
 * Precomputed, order-independent liveness machinery.
 *
 * For a subset `mask` of executed ops, a value is live at the boundary
 * iff it is defined (input, or its defining op is in `mask`) and still
 * needed (it is an output, or some op outside `mask` reads it). The
 * cost of running one more op depends only on `mask`, which makes the
 * subset dynamic program exact.
 */
class MaskModel
{
  public:
    explicit MaskModel(const OpDag &dag) : dag_(dag)
    {
        const auto &ops = dag.ops();
        n_ = static_cast<int>(ops.size());
        DISTMSM_REQUIRE(n_ <= 31, "DAG too large for subset search");
        use_mask_.assign(dag.numValues(), 0);
        for (int i = 0; i < n_; ++i) {
            for (ValueId s : ops[i].srcs)
                use_mask_[s] |= 1u << i;
            deps_mask_.push_back(0);
            for (int d : dag.depsOf(i))
                deps_mask_[i] |= 1u << d;
        }
        is_output_.assign(dag.numValues(), false);
        for (ValueId v : dag.outputs())
            is_output_[v] = true;
    }

    int numOps() const { return n_; }

    bool
    ready(std::uint32_t mask, int op) const
    {
        return (mask & (1u << op)) == 0 &&
               (deps_mask_[op] & ~mask) == 0;
    }

    /**
     * Live big integers at the boundary after executing `mask`.
     *
     * A defined value is live while a later op (or the live-out
     * contract) still needs it. An input is live only between its
     * first use inside `mask` (it is loaded from memory on demand)
     * and its last use.
     */
    int
    liveAt(std::uint32_t mask) const
    {
        int live = 0;
        for (std::size_t v = 0; v < use_mask_.size(); ++v) {
            const int def = dag_.definingOp(static_cast<ValueId>(v));
            const bool needed = is_output_[v] ||
                                (use_mask_[v] & ~mask) != 0;
            if (!needed)
                continue;
            if (def >= 0) {
                if ((mask & (1u << def)) != 0)
                    ++live;
            } else if (!dag_.isMemoryResident(
                           static_cast<ValueId>(v)) ||
                       (use_mask_[v] & mask) != 0) {
                // Register-resident input, or a memory-resident one
                // already loaded and still needed.
                ++live;
            }
        }
        return live;
    }

    /** Register demand while executing @p op from boundary @p mask. */
    int
    duringCost(std::uint32_t mask, int op) const
    {
        int live = liveAt(mask);
        const Operation &o = dag_.ops()[op];
        // Inputs making their first appearance are loaded now
        // (each distinct operand counted once).
        for (std::size_t k = 0; k < o.srcs.size(); ++k) {
            const ValueId s = o.srcs[k];
            bool repeat = false;
            for (std::size_t j = 0; j < k; ++j)
                repeat |= o.srcs[j] == s;
            if (!repeat && dag_.isMemoryResident(s) &&
                (use_mask_[s] & mask) == 0) {
                ++live;
            }
        }
        if (o.isMul())
            return live + 1;
        const std::uint32_t after = mask | (1u << op);
        for (ValueId s : o.srcs) {
            const bool dies = !is_output_[s] &&
                              (use_mask_[s] & ~after) == 0;
            if (dies)
                return live;
        }
        return live + 1;
    }

  private:
    const OpDag &dag_;
    int n_ = 0;
    std::vector<std::uint32_t> use_mask_;
    std::vector<std::uint32_t> deps_mask_;
    std::vector<bool> is_output_;
};

/** Subset DP minimizing the max op cost along the remaining suffix. */
class SubsetSearch
{
  public:
    SubsetSearch(const MaskModel &model,
                 const std::vector<Unit> &units)
        : model_(model), units_(units)
    {
    }

    int
    solve(std::uint32_t mask)
    {
        if (mask == full())
            return 0;
        auto it = memo_.find(mask);
        if (it != memo_.end())
            return it->second;
        // One argmin step of the DP, phrased through the shared
        // SearchDriver: units in enumeration order, strict
        // improvement only — first-seen wins ties, exactly the
        // deterministic contract the MSM plan search reuses.
        SearchDriver<std::size_t, int> driver;
        driver.seed(units_.size(), 1 << 20);
        for (std::size_t u = 0; u < units_.size(); ++u) {
            std::uint32_t next = mask;
            int cost = 0;
            if (!unitReady(mask, u, next, cost)) {
                driver.prune();
                continue;
            }
            driver.consider(u, std::max(cost, solve(next)));
        }
        memo_.emplace(mask, driver.bestScore());
        return driver.bestScore();
    }

    /** Greedy reconstruction of one optimal order. */
    std::vector<int>
    reconstruct()
    {
        std::vector<int> order;
        std::uint32_t mask = 0;
        while (mask != full()) {
            const int target = solve(mask);
            bool advanced = false;
            for (std::size_t u = 0; u < units_.size() && !advanced;
                 ++u) {
                std::uint32_t next = mask;
                int cost = 0;
                if (!unitReady(mask, u, next, cost))
                    continue;
                if (std::max(cost, solve(next)) == target) {
                    for (int op : units_[u].ops)
                        order.push_back(op);
                    mask = next;
                    advanced = true;
                }
            }
            DISTMSM_ASSERT(advanced);
        }
        return order;
    }

    std::uint64_t states() const { return memo_.size(); }

  private:
    std::uint32_t
    full() const
    {
        return (model_.numOps() >= 32)
                   ? ~0u
                   : ((1u << model_.numOps()) - 1);
    }

    /**
     * Whether unit @p u can run from @p mask; if so set @p next to
     * the resulting mask and @p cost to the unit's peak during-cost.
     */
    bool
    unitReady(std::uint32_t mask, std::size_t u, std::uint32_t &next,
              int &cost) const
    {
        next = mask;
        cost = 0;
        for (int op : units_[u].ops) {
            if (!model_.ready(next, op))
                return false;
            cost = std::max(cost, model_.duringCost(next, op));
            next |= 1u << op;
        }
        return true;
    }

    const MaskModel &model_;
    const std::vector<Unit> &units_;
    std::unordered_map<std::uint32_t, int> memo_;
};

std::vector<Unit>
singletonUnits(int n)
{
    std::vector<Unit> units(n);
    for (int i = 0; i < n; ++i)
        units[i].ops = {i};
    return units;
}

ScheduleResult
search(const OpDag &dag, const std::vector<Unit> &units)
{
    MaskModel model(dag);
    SubsetSearch dp(model, units);
    ScheduleResult result;
    const int suffix_peak = dp.solve(0);
    result.order = dp.reconstruct();
    // The boundary live count at the start (the used inputs) also
    // bounds the peak.
    result.peak = std::max(suffix_peak, model.liveAt(0));
    result.statesExplored = dp.states();
    DISTMSM_ASSERT(dag.isValidOrder(result.order));
    DISTMSM_ASSERT(dag.peakLive(result.order) == result.peak);
    return result;
}

} // namespace

ScheduleResult
findOptimalOrder(const OpDag &dag)
{
    return search(dag, singletonUnits(static_cast<int>(dag.numOps())));
}

ScheduleResult
findOptimalUnitOrder(const OpDag &dag, const std::vector<Unit> &units)
{
    return search(dag, units);
}

std::vector<Unit>
fuseUnits(const OpDag &dag)
{
    const auto &ops = dag.ops();
    const int n = static_cast<int>(ops.size());

    // Transitive ancestor sets: anc[i] = ops that must precede op i.
    std::vector<std::uint32_t> anc(n, 0);
    for (int i = 0; i < n; ++i) {
        for (int d : dag.depsOf(i))
            anc[i] |= anc[d] | (1u << d);
    }

    // A subtraction s may be fused right after the multiply m that
    // defines its newest operand only when this adds no scheduling
    // constraint: every other dependency of s must already be an
    // ancestor of m (the paper's example is P = U2 - X1 after
    // U2 = X2 * ZZ1, whose other operand is a live-in). Fusing then
    // retires m's result immediately, which never hurts the optimum.
    std::vector<int> unit_of(n);
    std::vector<Unit> units;
    for (int i = 0; i < n; ++i) {
        const Operation &op = ops[i];
        if (op.kind != Operation::Kind::Mul) {
            int newest = -1;
            for (ValueId s : op.srcs)
                newest = std::max(newest, dag.definingOp(s));
            const bool constraint_free =
                newest >= 0 &&
                (anc[i] & ~(anc[newest] | (1u << newest))) == 0;
            if (constraint_free && ops[newest].isMul() &&
                units[unit_of[newest]].ops.size() == 1) {
                unit_of[i] = unit_of[newest];
                units[unit_of[i]].ops.push_back(i);
                continue;
            }
        }
        unit_of[i] = static_cast<int>(units.size());
        units.push_back(Unit{{i}});
    }
    return units;
}

std::uint64_t
countTopologicalOrders(const OpDag &dag)
{
    MaskModel model(dag);
    const int n = model.numOps();
    DISTMSM_REQUIRE(n <= 31, "DAG too large");
    std::unordered_map<std::uint32_t, std::uint64_t> memo;
    memo.reserve(1u << std::min(n, 22));
    const std::uint32_t full = (n == 31) ? 0x7FFFFFFFu
                                         : ((1u << n) - 1);

    // Iterative DFS-free evaluation: process masks in increasing
    // popcount via recursion with memoization.
    struct Counter
    {
        const MaskModel &model;
        std::uint32_t full;
        std::unordered_map<std::uint32_t, std::uint64_t> memo;

        std::uint64_t
        count(std::uint32_t mask)
        {
            if (mask == full)
                return 1;
            auto it = memo.find(mask);
            if (it != memo.end())
                return it->second;
            std::uint64_t total = 0;
            for (int op = 0; op < model.numOps(); ++op) {
                if (model.ready(mask, op))
                    total += count(mask | (1u << op));
            }
            memo.emplace(mask, total);
            return total;
        }
    } counter{model, full, {}};

    return counter.count(0);
}

} // namespace distmsm::sched
