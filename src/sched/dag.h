/**
 * @file
 * Operation DAGs for EC point arithmetic.
 *
 * Section 4.2 of the paper treats a PADD/PACC routine as a small
 * program over big-integer values and asks: in which order should the
 * operations run so that the peak number of concurrently live big
 * integers (and hence the register pressure) is minimal?
 *
 * This module represents those programs in SSA form (every operation
 * defines a fresh value) and provides the liveness accounting that
 * both the exhaustive scheduler (schedule_search.h) and the spill
 * planner (spill.h) build on.
 *
 * Register-pressure convention (matches the paper's counts of 11 for
 * straightforward PADD and 9 for PACC, and the optimal 9 and 7):
 *  - a value occupies a register from its definition to its last use;
 *    live-out values stay to the end;
 *  - memory-resident live-in values (the affine point consumed by
 *    PACC) are loaded on demand: they occupy a register from their
 *    *first use* to their last use; register-resident live-ins (the
 *    partial-result operands) are live from the start;
 *  - a Montgomery multiplication needs one scratch big integer while
 *    it runs (the accumulator), which then becomes the destination;
 *  - additions/subtractions run in place limb-by-limb, so their
 *    destination can reuse a dying source register.
 */

#ifndef DISTMSM_SCHED_DAG_H
#define DISTMSM_SCHED_DAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace distmsm::sched {

/** Value identifier within an OpDag. */
using ValueId = std::uint16_t;

/** One big-integer operation. */
struct Operation
{
    enum class Kind { Mul, Add, Sub };

    Kind kind;
    ValueId dst;
    std::vector<ValueId> srcs;

    bool isMul() const { return kind == Kind::Mul; }
};

/**
 * A small SSA program over big integers together with its interface
 * (live-in and live-out values).
 */
class OpDag
{
  public:
    /**
     * Register a live-in value; returns its id.
     *
     * @param memory_resident when true the value sits in device
     *        memory and is loaded into a register at its first use
     *        (e.g. the affine point fed to PACC); when false it is
     *        register-resident from the start (e.g. a partial-result
     *        operand of PADD).
     */
    ValueId addInput(std::string name, bool memory_resident = false);

    /**
     * Append an operation in reference program order; returns the id
     * of the defined value.
     */
    ValueId addOp(Operation::Kind kind, std::string name,
                  std::vector<ValueId> srcs);

    /** Mark a value as live-out (must survive to the end). */
    void markOutput(ValueId v);

    std::size_t numValues() const { return names_.size(); }
    std::size_t numOps() const { return ops_.size(); }
    const std::vector<Operation> &ops() const { return ops_; }
    const std::vector<ValueId> &inputs() const { return inputs_; }
    const std::vector<ValueId> &outputs() const { return outputs_; }
    const std::string &name(ValueId v) const { return names_[v]; }
    bool isInput(ValueId v) const { return v < inputs_.size(); }
    bool isMemoryResident(ValueId v) const
    {
        return isInput(v) && memory_resident_[v];
    }
    bool isOutput(ValueId v) const;

    /** Index of the op defining @p v; -1 for inputs. */
    int definingOp(ValueId v) const;

    /**
     * Ids of ops that must precede op @p i (its data dependencies on
     * non-input values).
     */
    std::vector<int> depsOf(int i) const;

    /**
     * Peak number of live big integers when ops execute in the given
     * order (a permutation of op indices). Applies the convention in
     * the file comment. @p order must be a valid topological order.
     */
    int peakLive(const std::vector<int> &order) const;

    /** peakLive() of the reference program order. */
    int peakLiveReferenceOrder() const;

    /** true when @p order is a permutation respecting dependencies. */
    bool isValidOrder(const std::vector<int> &order) const;

  private:
    std::vector<std::string> names_;
    std::vector<Operation> ops_;
    std::vector<ValueId> inputs_;
    std::vector<ValueId> outputs_;
    std::vector<bool> memory_resident_;
};

/**
 * The general XYZZ point addition of paper Algorithm 1
 * (live-in: X1 Y1 ZZ1 ZZZ1 X2 Y2 ZZ2 ZZZ2; 14 multiplies).
 */
OpDag makePaddDag();

/**
 * The dedicated accumulation kernel of paper Algorithm 4
 * (live-in: Xacc Yacc ZZacc ZZZacc Xp Yp; 10 multiplies).
 */
OpDag makePaccDag();

/**
 * XYZZ point doubling (EFD dbl-2008-s-1). @p a_is_zero selects the
 * short form (9 multiplies) or the general one with the constant
 * curve coefficient a (11 multiplies).
 */
OpDag makePdblDag(bool a_is_zero);

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_DAG_H
