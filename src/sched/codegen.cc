#include "src/sched/codegen.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/support/check.h"

namespace distmsm::sched {
namespace {

/** Next-use oracle (mirrors the spill planner's). */
class Uses
{
  public:
    Uses(const OpDag &dag, const std::vector<int> &order)
    {
        const int kEnd = static_cast<int>(order.size());
        uses_.resize(dag.numValues());
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
            for (ValueId s : dag.ops()[order[pos]].srcs)
                uses_[s].push_back(static_cast<int>(pos));
        }
        for (ValueId v : dag.outputs())
            uses_[v].push_back(kEnd);
    }

    int
    next(ValueId v, int pos) const
    {
        for (int u : uses_[v]) {
            if (u >= pos)
                return u;
        }
        return kNever;
    }

    bool
    liveAfter(ValueId v, int pos) const
    {
        return next(v, pos + 1) != kNever;
    }

    static constexpr int kNever = 1 << 28;

  private:
    std::vector<std::vector<int>> uses_;
};

/** Concrete slot state during allocation. */
class SlotState
{
  public:
    int
    allocReg(ValueId v)
    {
        int slot;
        if (!free_regs_.empty()) {
            slot = *free_regs_.begin();
            free_regs_.erase(free_regs_.begin());
        } else {
            slot = num_regs_++;
        }
        reg_of_[v] = slot;
        return slot;
    }

    void
    freeReg(ValueId v)
    {
        auto it = reg_of_.find(v);
        DISTMSM_ASSERT(it != reg_of_.end());
        free_regs_.insert(it->second);
        reg_of_.erase(it);
    }

    /** Reassign v's register slot to w (in-place destination). */
    void
    transferReg(ValueId v, ValueId w)
    {
        auto it = reg_of_.find(v);
        DISTMSM_ASSERT(it != reg_of_.end());
        const int slot = it->second;
        reg_of_.erase(it);
        reg_of_[w] = slot;
    }

    int
    regOf(ValueId v) const
    {
        auto it = reg_of_.find(v);
        DISTMSM_ASSERT(it != reg_of_.end());
        return it->second;
    }

    bool inReg(ValueId v) const { return reg_of_.count(v) != 0; }
    int liveRegs() const { return static_cast<int>(reg_of_.size()); }

    int
    allocShm(ValueId v)
    {
        int slot;
        if (!free_shm_.empty()) {
            slot = *free_shm_.begin();
            free_shm_.erase(free_shm_.begin());
        } else {
            slot = num_shm_++;
        }
        shm_of_[v] = slot;
        return slot;
    }

    int
    takeShm(ValueId v)
    {
        auto it = shm_of_.find(v);
        DISTMSM_ASSERT(it != shm_of_.end());
        const int slot = it->second;
        free_shm_.insert(slot);
        shm_of_.erase(it);
        return slot;
    }

    bool inShm(ValueId v) const { return shm_of_.count(v) != 0; }

    const std::map<ValueId, int> &regMap() const { return reg_of_; }
    int numRegs() const { return num_regs_; }
    int numShm() const { return num_shm_; }

  private:
    std::map<ValueId, int> reg_of_;
    std::map<ValueId, int> shm_of_;
    std::set<int> free_regs_;
    std::set<int> free_shm_;
    int num_regs_ = 0;
    int num_shm_ = 0;
};

} // namespace

AllocatedKernel
allocateRegisters(const OpDag &dag, const std::vector<int> &order,
                  const SpillPlan &plan)
{
    DISTMSM_REQUIRE(dag.isValidOrder(order), "invalid schedule");
    DISTMSM_REQUIRE(plan.feasible, "infeasible spill plan");
    const int reg_target = plan.regTarget;

    Uses uses(dag, order);
    SlotState state;
    AllocatedKernel kernel;
    kernel.order = order;
    std::set<ValueId> loaded;

    // Register-resident inputs arrive in registers.
    for (ValueId v : dag.inputs()) {
        if (!dag.isMemoryResident(v) &&
            uses.next(v, 0) != Uses::kNever) {
            const int slot = state.allocReg(v);
            kernel.instrs.push_back(KernelInstr{
                KernelInstr::Op::Load, slot, -1, -1, -1, v});
            loaded.insert(v);
        }
    }

    auto evict_one = [&](int pos, const std::set<ValueId> &pinned) {
        ValueId victim = 0;
        int victim_use = -1;
        for (const auto &[v, slot] : state.regMap()) {
            if (pinned.count(v))
                continue;
            const int u = uses.next(v, pos);
            if (u > victim_use) {
                victim_use = u;
                victim = v;
            }
        }
        DISTMSM_ASSERT(victim_use >= 0);
        const int reg = state.regOf(victim);
        state.freeReg(victim);
        if (victim_use != Uses::kNever) {
            const int shm = state.allocShm(victim);
            kernel.instrs.push_back(KernelInstr{
                KernelInstr::Op::Store, -1, reg, -1, shm, victim});
        }
    };

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const Operation &op = dag.ops()[order[pos]];
        const int ipos = static_cast<int>(pos);
        std::set<ValueId> pinned(op.srcs.begin(), op.srcs.end());

        // Materialize operands: unspill or fetch fresh inputs.
        for (ValueId s : pinned) {
            const bool from_shm = state.inShm(s);
            const bool fresh =
                dag.isMemoryResident(s) && !loaded.count(s);
            if (!from_shm && !fresh)
                continue;
            while (state.liveRegs() >= reg_target)
                evict_one(ipos, pinned);
            const int slot = state.allocReg(s);
            if (from_shm) {
                const int shm = state.takeShm(s);
                kernel.instrs.push_back(KernelInstr{
                    KernelInstr::Op::Fill, slot, -1, -1, shm, s});
            } else {
                kernel.instrs.push_back(KernelInstr{
                    KernelInstr::Op::Load, slot, -1, -1, -1, s});
                loaded.insert(s);
            }
        }
        for (ValueId s : pinned)
            DISTMSM_ASSERT(state.inReg(s));

        // Destination slot: an in-place add/sub reuses a dying
        // source; everything else needs a fresh slot.
        ValueId dying_src = 0;
        bool reuse = false;
        if (!op.isMul()) {
            for (ValueId s : op.srcs) {
                if (!uses.liveAfter(s, ipos)) {
                    dying_src = s;
                    reuse = true;
                }
            }
        }

        const int a = state.regOf(op.srcs.at(0));
        const int b = state.regOf(op.srcs.at(1));
        int dst;
        if (reuse) {
            dst = state.regOf(dying_src);
        } else {
            while (state.liveRegs() + 1 > reg_target)
                evict_one(ipos, pinned);
            dst = state.allocReg(op.dst);
        }

        KernelInstr::Op kind;
        switch (op.kind) {
          case Operation::Kind::Mul:
            kind = KernelInstr::Op::Mul;
            break;
          case Operation::Kind::Add:
            kind = KernelInstr::Op::Add;
            break;
          case Operation::Kind::Sub:
            kind = KernelInstr::Op::Sub;
            break;
          default:
            DISTMSM_ASSERT(false);
            kind = KernelInstr::Op::Mul;
        }
        kernel.instrs.push_back(
            KernelInstr{kind, dst, a, b, -1, op.dst});

        // Retire dying sources (the reused one transfers its slot).
        for (ValueId s : op.srcs) {
            if (!uses.liveAfter(s, ipos) && state.inReg(s)) {
                if (reuse && s == dying_src) {
                    state.transferReg(s, op.dst);
                } else {
                    state.freeReg(s);
                }
            }
        }
        if (!reuse && !uses.liveAfter(op.dst, ipos))
            state.freeReg(op.dst);
        DISTMSM_ASSERT(state.liveRegs() <= reg_target);
    }

    // Emit the outputs; a value parked in shared memory at the end
    // streams to global memory from there.
    for (ValueId v : dag.outputs()) {
        if (state.inReg(v)) {
            kernel.instrs.push_back(KernelInstr{
                KernelInstr::Op::Out, -1, state.regOf(v), -1, -1,
                v});
        } else {
            DISTMSM_ASSERT(state.inShm(v));
            kernel.instrs.push_back(KernelInstr{
                KernelInstr::Op::Out, -1, -1, -1, state.takeShm(v),
                v});
        }
    }

    kernel.numRegisters = state.numRegs();
    kernel.numSharedSlots = state.numShm();
    return kernel;
}

std::string
renderKernel(const OpDag &dag, const AllocatedKernel &kernel)
{
    std::string out;
    out += "; " + std::to_string(kernel.numRegisters) +
           " big-integer registers, " +
           std::to_string(kernel.numSharedSlots) +
           " shared-memory slots\n";
    for (const auto &i : kernel.instrs) {
        const std::string name = dag.name(i.value);
        switch (i.op) {
          case KernelInstr::Op::Load:
            out += "  ld.global  r" + std::to_string(i.dst) +
                   ", [" + name + "]\n";
            break;
          case KernelInstr::Op::Store:
            out += "  st.shared  shm" + std::to_string(i.shmSlot) +
                   ", r" + std::to_string(i.srcA) + "    ; spill " +
                   name + "\n";
            break;
          case KernelInstr::Op::Fill:
            out += "  ld.shared  r" + std::to_string(i.dst) +
                   ", shm" + std::to_string(i.shmSlot) +
                   "    ; reload " + name + "\n";
            break;
          case KernelInstr::Op::Mul:
            out += "  mont.mul   r" + std::to_string(i.dst) + ", r" +
                   std::to_string(i.srcA) + ", r" +
                   std::to_string(i.srcB) + "    ; " + name + "\n";
            break;
          case KernelInstr::Op::Add:
            out += "  mod.add    r" + std::to_string(i.dst) + ", r" +
                   std::to_string(i.srcA) + ", r" +
                   std::to_string(i.srcB) + "    ; " + name + "\n";
            break;
          case KernelInstr::Op::Sub:
            out += "  mod.sub    r" + std::to_string(i.dst) + ", r" +
                   std::to_string(i.srcA) + ", r" +
                   std::to_string(i.srcB) + "    ; " + name + "\n";
            break;
          case KernelInstr::Op::Out:
            if (i.srcA >= 0) {
                out += "  st.global  [" + name + "], r" +
                       std::to_string(i.srcA) + "\n";
            } else {
                out += "  st.global  [" + name + "], shm" +
                       std::to_string(i.shmSlot) + "\n";
            }
            break;
        }
    }
    return out;
}

} // namespace distmsm::sched
