#include "src/sched/dag.h"

#include <algorithm>

#include "src/support/check.h"

namespace distmsm::sched {

ValueId
OpDag::addInput(std::string name, bool memory_resident)
{
    DISTMSM_REQUIRE(ops_.empty(), "inputs must precede operations");
    names_.push_back(std::move(name));
    const ValueId id = static_cast<ValueId>(names_.size() - 1);
    inputs_.push_back(id);
    memory_resident_.push_back(memory_resident);
    return id;
}

ValueId
OpDag::addOp(Operation::Kind kind, std::string name,
             std::vector<ValueId> srcs)
{
    for (ValueId s : srcs)
        DISTMSM_REQUIRE(s < names_.size(), "operand not yet defined");
    names_.push_back(std::move(name));
    const ValueId id = static_cast<ValueId>(names_.size() - 1);
    ops_.push_back(Operation{kind, id, std::move(srcs)});
    return id;
}

void
OpDag::markOutput(ValueId v)
{
    DISTMSM_REQUIRE(v < names_.size(), "unknown value");
    outputs_.push_back(v);
}

bool
OpDag::isOutput(ValueId v) const
{
    return std::find(outputs_.begin(), outputs_.end(), v) !=
           outputs_.end();
}

int
OpDag::definingOp(ValueId v) const
{
    if (isInput(v))
        return -1;
    return static_cast<int>(v) - static_cast<int>(inputs_.size());
}

std::vector<int>
OpDag::depsOf(int i) const
{
    std::vector<int> deps;
    for (ValueId s : ops_[i].srcs) {
        const int d = definingOp(s);
        if (d >= 0)
            deps.push_back(d);
    }
    return deps;
}

bool
OpDag::isValidOrder(const std::vector<int> &order) const
{
    if (order.size() != ops_.size())
        return false;
    std::vector<int> position(ops_.size(), -1);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const int op = order[pos];
        if (op < 0 || op >= static_cast<int>(ops_.size()) ||
            position[op] != -1) {
            return false;
        }
        position[op] = static_cast<int>(pos);
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        for (int d : depsOf(static_cast<int>(i))) {
            if (position[d] > position[i])
                return false;
        }
    }
    return true;
}

int
OpDag::peakLive(const std::vector<int> &order) const
{
    DISTMSM_ASSERT(isValidOrder(order));

    // First/last use position of each value under this order;
    // outputs are pinned to the end.
    const int kEnd = static_cast<int>(order.size());
    std::vector<int> last_use(names_.size(), -1);
    std::vector<int> first_use(names_.size(), kEnd + 1);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        for (ValueId s : ops_[order[pos]].srcs) {
            last_use[s] = static_cast<int>(pos);
            first_use[s] =
                std::min(first_use[s], static_cast<int>(pos));
        }
    }
    for (ValueId v : outputs_)
        last_use[v] = kEnd;

    // Register-resident inputs are live from the start; memory-
    // resident ones are loaded at their first use.
    int live = 0;
    for (ValueId v : inputs_) {
        if (!memory_resident_[v] && last_use[v] >= 0)
            ++live;
    }
    int peak = live;

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const Operation &op = ops_[order[pos]];
        const int ipos = static_cast<int>(pos);

        // Memory-resident inputs making their first appearance are
        // loaded now.
        int newly_loaded = 0;
        for (ValueId s : op.srcs) {
            if (isMemoryResident(s) && first_use[s] == ipos) {
                ++newly_loaded;
                first_use[s] = -1; // guard against double count (P*P)
            }
        }
        live += newly_loaded;

        int during;
        if (op.isMul()) {
            // The Montgomery scratch accumulator occupies one extra
            // register while the multiply runs.
            during = live + 1;
        } else {
            // In-place add/sub: the destination can reuse a source
            // register that dies at this op.
            bool src_dies = false;
            for (ValueId s : op.srcs)
                src_dies |= last_use[s] == ipos;
            during = live + (src_dies ? 0 : 1);
        }
        peak = std::max(peak, during);

        // Retire dying sources, then materialize the destination if
        // it has a later use.
        for (ValueId s : op.srcs) {
            if (last_use[s] == ipos) {
                --live;
                last_use[s] = -2; // guard against double-retire (P*P)
            }
        }
        if (last_use[op.dst] > ipos)
            ++live;
    }
    return peak;
}

int
OpDag::peakLiveReferenceOrder() const
{
    std::vector<int> order(ops_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    return peakLive(order);
}

OpDag
makePaddDag()
{
    OpDag d;
    using K = Operation::Kind;
    const auto x1 = d.addInput("X1");
    const auto y1 = d.addInput("Y1");
    const auto zz1 = d.addInput("ZZ1");
    const auto zzz1 = d.addInput("ZZZ1");
    const auto x2 = d.addInput("X2");
    const auto y2 = d.addInput("Y2");
    const auto zz2 = d.addInput("ZZ2");
    const auto zzz2 = d.addInput("ZZZ2");

    const auto u1 = d.addOp(K::Mul, "U1", {x1, zz2});
    const auto u2 = d.addOp(K::Mul, "U2", {x2, zz1});
    const auto s1 = d.addOp(K::Mul, "S1", {y1, zzz2});
    const auto s2 = d.addOp(K::Mul, "S2", {y2, zzz1});
    const auto p = d.addOp(K::Sub, "P", {u2, u1});
    const auto r = d.addOp(K::Sub, "R", {s2, s1});
    const auto pp = d.addOp(K::Mul, "PP", {p, p});
    const auto ppp = d.addOp(K::Mul, "PPP", {pp, p});
    const auto q = d.addOp(K::Mul, "Q", {u1, pp});
    const auto v1 = d.addOp(K::Mul, "V1", {r, r});
    const auto v2 = d.addOp(K::Sub, "V2", {v1, ppp});
    const auto v3 = d.addOp(K::Sub, "V3", {v2, q});
    const auto x3 = d.addOp(K::Sub, "X3", {v3, q});
    const auto t1 = d.addOp(K::Sub, "T1", {q, x3});
    const auto rt = d.addOp(K::Mul, "RT", {r, t1});
    const auto t2 = d.addOp(K::Mul, "T2", {s1, ppp});
    const auto y3 = d.addOp(K::Sub, "Y3", {rt, t2});
    const auto zzp = d.addOp(K::Mul, "ZZ", {zz1, zz2});
    const auto zz3 = d.addOp(K::Mul, "ZZ3", {zzp, pp});
    const auto zzzp = d.addOp(K::Mul, "ZZZ", {zzz1, zzz2});
    const auto zzz3 = d.addOp(K::Mul, "ZZZ3", {zzzp, ppp});

    d.markOutput(x3);
    d.markOutput(y3);
    d.markOutput(zz3);
    d.markOutput(zzz3);
    return d;
}

OpDag
makePaccDag()
{
    OpDag d;
    using K = Operation::Kind;
    const auto xa = d.addInput("Xacc");
    const auto ya = d.addInput("Yacc");
    const auto zza = d.addInput("ZZacc");
    const auto zzza = d.addInput("ZZZacc");
    const auto xp = d.addInput("Xp", /*memory_resident=*/true);
    const auto yp = d.addInput("Yp", /*memory_resident=*/true);

    const auto u2 = d.addOp(K::Mul, "U2", {xp, zza});
    const auto s2 = d.addOp(K::Mul, "S2", {yp, zzza});
    const auto p = d.addOp(K::Sub, "P", {u2, xa});
    const auto r = d.addOp(K::Sub, "R", {s2, ya});
    const auto pp = d.addOp(K::Mul, "PP", {p, p});
    const auto ppp = d.addOp(K::Mul, "PPP", {pp, p});
    const auto q = d.addOp(K::Mul, "Q", {xa, pp});
    const auto v1 = d.addOp(K::Mul, "V1", {r, r});
    const auto v2 = d.addOp(K::Sub, "V2", {v1, ppp});
    const auto v3 = d.addOp(K::Sub, "V3", {v2, q});
    const auto x3 = d.addOp(K::Sub, "Xout", {v3, q});
    const auto t1 = d.addOp(K::Sub, "T1", {q, x3});
    const auto rt = d.addOp(K::Mul, "RT", {r, t1});
    const auto t2 = d.addOp(K::Mul, "T2", {ya, ppp});
    const auto y3 = d.addOp(K::Sub, "Yout", {rt, t2});
    const auto zz3 = d.addOp(K::Mul, "ZZout", {zza, pp});
    const auto zzz3 = d.addOp(K::Mul, "ZZZout", {zzza, ppp});

    d.markOutput(x3);
    d.markOutput(y3);
    d.markOutput(zz3);
    d.markOutput(zzz3);
    return d;
}

OpDag
makePdblDag(bool a_is_zero)
{
    OpDag d;
    using K = Operation::Kind;
    const auto x1 = d.addInput("X1");
    const auto y1 = d.addInput("Y1");
    const auto zz1 = d.addInput("ZZ1");
    const auto zzz1 = d.addInput("ZZZ1");
    // The curve coefficient is a compiled-in constant; as a
    // memory-resident input it is fetched only when used.
    const ValueId a = a_is_zero
                          ? ValueId{0}
                          : d.addInput("A", /*memory_resident=*/true);

    const auto u = d.addOp(K::Add, "U", {y1, y1});
    const auto v = d.addOp(K::Mul, "V", {u, u});
    const auto w = d.addOp(K::Mul, "W", {u, v});
    const auto s = d.addOp(K::Mul, "S", {x1, v});
    const auto m1 = d.addOp(K::Mul, "M1", {x1, x1});
    const auto m2 = d.addOp(K::Add, "M2", {m1, m1});
    ValueId m = d.addOp(K::Add, "M", {m2, m1});
    if (!a_is_zero) {
        const auto zzsq = d.addOp(K::Mul, "ZZsq", {zz1, zz1});
        const auto azz = d.addOp(K::Mul, "AZZ", {a, zzsq});
        m = d.addOp(K::Add, "Ma", {m, azz});
    }
    const auto msq = d.addOp(K::Mul, "Msq", {m, m});
    const auto s2 = d.addOp(K::Add, "S2", {s, s});
    const auto x3 = d.addOp(K::Sub, "X3", {msq, s2});
    const auto t = d.addOp(K::Sub, "T", {s, x3});
    const auto mt = d.addOp(K::Mul, "MT", {m, t});
    const auto wy = d.addOp(K::Mul, "WY", {w, y1});
    const auto y3 = d.addOp(K::Sub, "Y3", {mt, wy});
    const auto zz3 = d.addOp(K::Mul, "ZZ3", {v, zz1});
    const auto zzz3 = d.addOp(K::Mul, "ZZZ3", {w, zzz1});

    d.markOutput(x3);
    d.markOutput(y3);
    d.markOutput(zz3);
    d.markOutput(zzz3);
    return d;
}

} // namespace distmsm::sched
