/**
 * @file
 * Explicit register spilling to (simulated) shared memory.
 *
 * Section 4.2.2: even the register-optimal PACC order needs 7 live
 * big integers; DistMSM parks selected values in shared memory so
 * only 5 occupy registers, paying a few register<->shared transfers.
 * This module plans those transfers for a given schedule with a
 * Belady (furthest-next-use) eviction policy and reports the costs
 * the paper quotes: peak registers, peak shared-memory residency and
 * the number of big-integer transfers.
 */

#ifndef DISTMSM_SCHED_SPILL_H
#define DISTMSM_SCHED_SPILL_H

#include <vector>

#include "src/sched/dag.h"

namespace distmsm::sched {

/** One register<->shared-memory movement of a big integer. */
struct SpillEvent
{
    enum class Kind { Store, Load };

    /** Position in the schedule before which the move happens. */
    int position;
    Kind kind;
    ValueId value;
};

/** Result of spill planning for a schedule. */
struct SpillPlan
{
    /** Register budget the plan was asked to respect. */
    int regTarget = 0;
    /** Whether the budget is achievable for this schedule. */
    bool feasible = false;
    /** Peak big integers resident in registers (<= regTarget). */
    int peakRegisters = 0;
    /** Peak big integers parked in shared memory at once. */
    int peakShared = 0;
    /** Total big-integer transfers (stores + loads). */
    int transfers = 0;
    std::vector<SpillEvent> events;
};

/**
 * Plan spills so that executing @p order of @p dag never holds more
 * than @p reg_target big integers in registers. Values are evicted
 * by furthest next use. Returns an infeasible plan when an operation
 * intrinsically needs more than @p reg_target registers.
 */
SpillPlan planSpills(const OpDag &dag, const std::vector<int> &order,
                     int reg_target);

/**
 * Smallest register budget for which planSpills() is feasible on this
 * schedule (the per-op floor: operand count plus scratch).
 */
int minimumFeasibleRegisters(const OpDag &dag,
                             const std::vector<int> &order);

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_SPILL_H
