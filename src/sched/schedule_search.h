/**
 * @file
 * Exhaustive search for register-minimal execution orders.
 *
 * Section 4.2.1: instead of heuristic instruction scheduling, DistMSM
 * enumerates topological orders of the PADD/PACC operation DAGs and
 * picks one with the fewest concurrently live big integers. The search
 * here is an exact dynamic program over subsets of executed
 * operations; the paper's "scheduling unit" fusion (pairing each
 * subtraction with the multiply that feeds it) is implemented as well
 * and shown to preserve the optimum while shrinking the search space.
 */

#ifndef DISTMSM_SCHED_SCHEDULE_SEARCH_H
#define DISTMSM_SCHED_SCHEDULE_SEARCH_H

#include <cstdint>
#include <vector>

#include "src/sched/dag.h"

namespace distmsm::sched {

/** Result of a schedule search. */
struct ScheduleResult
{
    /** An optimal topological order (op indices). */
    std::vector<int> order;
    /** Peak number of concurrently live big integers. */
    int peak = 0;
    /** Distinct subset states visited by the dynamic program. */
    std::uint64_t statesExplored = 0;
};

/**
 * Find an execution order of @p dag minimizing the peak number of
 * concurrently live big integers. Exact (dynamic program over
 * executed-op subsets); supports DAGs of up to 31 operations.
 */
ScheduleResult findOptimalOrder(const OpDag &dag);

/** A scheduling unit: ops executed consecutively as a block. */
struct Unit
{
    std::vector<int> ops;
};

/**
 * Fuse operations into scheduling units following the paper's
 * observation: running a subtraction immediately after the multiply
 * that defines its newest operand retires that operand at once, so
 * the pair can be scheduled atomically without losing optimality.
 */
std::vector<Unit> fuseUnits(const OpDag &dag);

/**
 * Schedule search restricted to unit granularity. Returns a full op
 * order (units expanded).
 */
ScheduleResult findOptimalUnitOrder(const OpDag &dag,
                                    const std::vector<Unit> &units);

/**
 * Number of topological orders of @p dag (the paper bounds the PACC
 * search by 12! and notes the true count is far smaller).
 */
std::uint64_t countTopologicalOrders(const OpDag &dag);

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_SCHEDULE_SEARCH_H
