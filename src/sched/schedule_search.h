/**
 * @file
 * Exhaustive search for register-minimal execution orders.
 *
 * Section 4.2.1: instead of heuristic instruction scheduling, DistMSM
 * enumerates topological orders of the PADD/PACC operation DAGs and
 * picks one with the fewest concurrently live big integers. The search
 * here is an exact dynamic program over subsets of executed
 * operations; the paper's "scheduling unit" fusion (pairing each
 * subtraction with the multiply that feeds it) is implemented as well
 * and shown to preserve the optimum while shrinking the search space.
 */

#ifndef DISTMSM_SCHED_SCHEDULE_SEARCH_H
#define DISTMSM_SCHED_SCHEDULE_SEARCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sched/dag.h"

namespace distmsm::sched {

/**
 * Deterministic argmin driver shared by the searchers in this repo:
 * the subset-DP kernel scheduler below and the MSM plan search
 * (msm/autoplan.*). Candidates are fed in a fixed enumeration order;
 * only a *strictly* better score displaces the incumbent, so ties
 * resolve to the first-seen candidate. Seeding the driver with the
 * heuristic baseline therefore guarantees both that the search never
 * loses to the heuristic and that it returns the heuristic's exact
 * answer whenever nothing beats it (bit-compatibility on ties).
 *
 * @tparam Candidate copyable candidate description.
 * @tparam Score totally ordered score (double ns, int registers, ...).
 */
template <typename Candidate, typename Score = double>
class SearchDriver
{
  public:
    /** Counters exported by the search's callers (trace metrics). */
    struct Stats
    {
        /** Candidates scored (seed included). */
        std::uint64_t evaluated = 0;
        /** Candidates discarded without scoring. */
        std::uint64_t pruned = 0;
        /** Times a candidate strictly improved the incumbent. */
        std::uint64_t improved = 0;
    };

    /** Install the baseline candidate; counts as one evaluation. */
    void
    seed(const Candidate &candidate, Score score)
    {
        best_ = candidate;
        best_score_ = score;
        seeded_ = true;
        ++stats_.evaluated;
    }

    /**
     * Offer a scored candidate. Returns true when it strictly beat
     * the incumbent (or no seed existed yet) and became the new best.
     */
    bool
    consider(const Candidate &candidate, Score score)
    {
        ++stats_.evaluated;
        if (seeded_ && !(score < best_score_))
            return false;
        best_ = candidate;
        best_score_ = score;
        seeded_ = true;
        ++stats_.improved;
        return true;
    }

    /** Record a candidate discarded before scoring. */
    void prune(std::uint64_t count = 1) { stats_.pruned += count; }

    bool hasBest() const { return seeded_; }
    const Candidate &best() const { return best_; }
    Score bestScore() const { return best_score_; }
    const Stats &stats() const { return stats_; }

  private:
    Candidate best_{};
    Score best_score_{};
    bool seeded_ = false;
    Stats stats_;
};

/**
 * Bounded best-first pool for staged (beam) searches: keeps the
 * @p width best-scoring candidates seen so far, with first-seen
 * tie-breaks (a later candidate displaces an incumbent only on a
 * *strictly* smaller score, mirroring SearchDriver). width <= 0 means
 * unbounded — the pool degenerates to "keep everything", which makes
 * the staged search equivalent to the exhaustive one.
 *
 * Insertion is O(width) (the pool is kept sorted ascending by score,
 * stable in arrival order among ties); beams are small by design, so
 * no heap is warranted. Deterministic: a fixed offer order yields a
 * fixed pool.
 */
template <typename Candidate, typename Score = double>
class BeamPool
{
  public:
    struct Entry
    {
        Candidate candidate{};
        Score score{};
    };

    explicit BeamPool(int width) : width_(width) {}

    /** Offer a scored candidate; kept iff it makes the beam. */
    void
    offer(const Candidate &candidate, Score score)
    {
        // Insert after every incumbent with score <= the new one:
        // stable among ties, ascending overall.
        std::size_t pos = entries_.size();
        while (pos > 0 && score < entries_[pos - 1].score)
            --pos;
        entries_.insert(entries_.begin() +
                            static_cast<std::ptrdiff_t>(pos),
                        Entry{candidate, score});
        if (width_ > 0 &&
            entries_.size() > static_cast<std::size_t>(width_))
            entries_.pop_back();
    }

    const std::vector<Entry> &entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }

  private:
    int width_;
    std::vector<Entry> entries_;
};

/** Result of a schedule search. */
struct ScheduleResult
{
    /** An optimal topological order (op indices). */
    std::vector<int> order;
    /** Peak number of concurrently live big integers. */
    int peak = 0;
    /** Distinct subset states visited by the dynamic program. */
    std::uint64_t statesExplored = 0;
};

/**
 * Find an execution order of @p dag minimizing the peak number of
 * concurrently live big integers. Exact (dynamic program over
 * executed-op subsets); supports DAGs of up to 31 operations.
 */
ScheduleResult findOptimalOrder(const OpDag &dag);

/** A scheduling unit: ops executed consecutively as a block. */
struct Unit
{
    std::vector<int> ops;
};

/**
 * Fuse operations into scheduling units following the paper's
 * observation: running a subtraction immediately after the multiply
 * that defines its newest operand retires that operand at once, so
 * the pair can be scheduled atomically without losing optimality.
 */
std::vector<Unit> fuseUnits(const OpDag &dag);

/**
 * Schedule search restricted to unit granularity. Returns a full op
 * order (units expanded).
 */
ScheduleResult findOptimalUnitOrder(const OpDag &dag,
                                    const std::vector<Unit> &units);

/**
 * Number of topological orders of @p dag (the paper bounds the PACC
 * search by 12! and notes the true count is far smaller).
 */
std::uint64_t countTopologicalOrders(const OpDag &dag);

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_SCHEDULE_SEARCH_H
