/**
 * @file
 * Executes a scheduled operation DAG against real field arithmetic.
 *
 * This is the semantic safety net for the scheduler: any order the
 * search produces (with or without a spill plan) must compute exactly
 * the same field values as the reference PADD/PACC routines. The
 * interpreter also enforces the structural claims of a spill plan:
 * every operand is register-resident when used and the register
 * budget is never exceeded.
 */

#ifndef DISTMSM_SCHED_INTERPRETER_H
#define DISTMSM_SCHED_INTERPRETER_H

#include <map>
#include <set>
#include <vector>

#include "src/sched/dag.h"
#include "src/sched/spill.h"
#include "src/support/check.h"

namespace distmsm::sched {

/**
 * Execute @p order of @p dag over field type @p Fq.
 *
 * @param inputs one value per dag.inputs(), in order.
 * @param plan   optional spill plan to validate structurally.
 * @return one value per dag.outputs(), in order.
 */
template <typename Fq>
std::vector<Fq>
executeSchedule(const OpDag &dag, const std::vector<int> &order,
                const std::vector<Fq> &inputs,
                const SpillPlan *plan = nullptr)
{
    DISTMSM_REQUIRE(dag.isValidOrder(order), "invalid schedule");
    DISTMSM_REQUIRE(inputs.size() == dag.inputs().size(),
                    "wrong input count");

    std::map<ValueId, Fq> values;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        values[dag.inputs()[i]] = inputs[i];

    // Structural validation state for the spill plan.
    std::set<ValueId> in_reg;
    std::set<ValueId> in_shm;
    std::set<ValueId> loaded; // inputs already fetched from memory
    std::size_t event_idx = 0;
    if (plan) {
        DISTMSM_REQUIRE(plan->feasible, "infeasible spill plan");
        for (ValueId v : dag.inputs()) {
            if (!dag.isMemoryResident(v)) {
                in_reg.insert(v);
                loaded.insert(v);
            }
        }
    }

    auto apply_events = [&](int pos) {
        if (!plan)
            return;
        while (event_idx < plan->events.size() &&
               plan->events[event_idx].position <= pos) {
            const SpillEvent &e = plan->events[event_idx];
            if (e.kind == SpillEvent::Kind::Store) {
                DISTMSM_ASSERT(in_reg.erase(e.value) == 1);
                in_shm.insert(e.value);
            } else {
                DISTMSM_ASSERT(in_shm.erase(e.value) == 1);
                in_reg.insert(e.value);
            }
            ++event_idx;
        }
    };

    // liveAfter(v, pos): used by a later op or is an output.
    auto live_after = [&](ValueId v, std::size_t pos) {
        if (dag.isOutput(v))
            return true;
        for (std::size_t later = pos + 1; later < order.size();
             ++later) {
            for (ValueId s : dag.ops()[order[later]].srcs) {
                if (s == v)
                    return true;
            }
        }
        return false;
    };

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        apply_events(static_cast<int>(pos));
        const Operation &op = dag.ops()[order[pos]];
        if (plan) {
            for (ValueId s : op.srcs) {
                // Memory-resident inputs arrive at first use.
                if (dag.isMemoryResident(s) && !loaded.count(s)) {
                    DISTMSM_ASSERT(!in_shm.count(s));
                    in_reg.insert(s);
                    loaded.insert(s);
                }
                DISTMSM_ASSERT(in_reg.count(s) &&
                               "operand must be register resident");
            }
        }
        const Fq a = values.at(op.srcs.at(0));
        const Fq b = values.at(op.srcs.at(1));
        Fq result;
        switch (op.kind) {
          case Operation::Kind::Mul:
            result = a * b;
            break;
          case Operation::Kind::Add:
            result = a + b;
            break;
          case Operation::Kind::Sub:
            result = a - b;
            break;
        }
        values[op.dst] = result;
        if (plan) {
            for (ValueId s : op.srcs) {
                if (!live_after(s, pos))
                    in_reg.erase(s);
            }
            if (live_after(op.dst, pos))
                in_reg.insert(op.dst);
            DISTMSM_ASSERT(static_cast<int>(in_reg.size()) <=
                           plan->regTarget);
        }
    }

    std::vector<Fq> outputs;
    for (ValueId v : dag.outputs())
        outputs.push_back(values.at(v));
    return outputs;
}

} // namespace distmsm::sched

#endif // DISTMSM_SCHED_INTERPRETER_H
