/**
 * @file
 * Rollup-style batch proving — the paper's motivating deployment
 * ("zkrollup layer 2 for trading and payment", "the fastest
 * participant reaps the rewards").
 *
 * A sequencer proves a batch of state transitions (each a keyed
 * x^5 S-box hash chain built from the gadget library), the chain
 * verifies the whole batch with one random-linear-combination check,
 * and the MSM cost that DistMSM attacks is reported per proof and
 * per batch at paper scale.
 */

#include <cstdio>

#include "src/ec/curves.h"
#include "src/msm/planner.h"
#include "src/zksnark/batch_verify.h"
#include "src/zksnark/gadgets.h"
#include "src/zksnark/groth16.h"

int
main()
{
    using namespace distmsm;
    namespace zk = zksnark;
    using F = Bn254Fr;

    Prng prng(0x2011);
    constexpr int kBatch = 6;
    constexpr std::size_t kRounds = 24;

    // One circuit shape for every transition: shared setup. The
    // round constants are part of the circuit, so they come from a
    // dedicated, replayable stream.
    constexpr std::uint64_t kConstantSeed = 0xC0572A27;
    Prng setup_constants(kConstantSeed);
    auto builder = zk::buildSboxChain<F>(
        kRounds, F::fromU64(1), F::random(prng), setup_constants);
    auto [r1cs, _] = builder.build();
    const auto trapdoor = zk::Trapdoor<F>::random(prng);
    const auto keys = zk::setup<Bn254>(r1cs, trapdoor);
    std::printf("circuit: %zu constraints (x^5 S-box chain), shared "
                "setup for the batch\n",
                r1cs.numConstraints());

    // The sequencer proves each transition: the same circuit
    // (identical constant stream) with its own seed and key.
    std::vector<zk::BatchEntry<Bn254>> entries;
    for (int i = 0; i < kBatch; ++i) {
        Prng constants(kConstantSeed);
        auto b = zk::buildSboxChain<F>(
            kRounds, F::fromU64(1 + i), F::random(prng), constants);
        auto [instance, wires] = b.build();
        zk::BatchEntry<Bn254> entry;
        entry.proof =
            zk::prove<Bn254>(keys.pk, instance, wires, prng);
        entry.publicInputs.assign(wires.begin() + 1,
                                  wires.begin() + 2);
        entries.push_back(std::move(entry));
    }
    std::printf("proved %d transitions\n", kBatch);

    // Batch verification (one aggregate equation).
    const bool ok = zk::batchVerify<Bn254>(keys.vk, entries, prng);
    std::printf("batch verification: %s\n", ok ? "ACCEPT" : "REJECT");

    // A single bad proof must poison the batch.
    auto bad = entries;
    bad[kBatch / 2].proof.cScalar += F::one();
    const bool rejected =
        !zk::batchVerify<Bn254>(keys.vk, bad, prng);
    std::printf("tampered batch rejected: %s\n",
                rejected ? "yes" : "NO");

    // What the sequencer's MSMs would cost at production scale.
    const auto curve = gpusim::CurveProfile::bn254();
    const gpusim::Cluster node(gpusim::DeviceSpec::a100(), 8);
    const auto t =
        msm::estimateDistMsm(curve, 1ull << 24, node, {});
    std::printf("\nat production scale (2^24-point MSMs, 8x A100): "
                "%.2f ms per MSM, ~%.1f ms of MSM per proof "
                "(4 MSMs)\n",
                t.totalMs(), 4 * t.totalMs());
    return ok && rejected ? 0 : 1;
}
