/**
 * @file
 * End-to-end zkSNARK pipeline: build an R1CS circuit, run the
 * trusted setup, generate a Groth16-style proof (NTT + MSMs) and
 * verify it — the workload whose MSM stage DistMSM accelerates
 * (paper Table 4).
 */

#include <cstdio>

#include "src/ec/curves.h"
#include "src/zksnark/groth16_g2.h"
#include "src/zksnark/proof_io.h"
#include "src/zksnark/workloads.h"

int
main()
{
    using namespace distmsm;
    namespace zk = zksnark;
    using F = Bn254Fr;

    // 1. A synthetic multiplication-chain circuit (a stand-in for
    //    the paper's Zcash/Otti/Zen instances, same code path).
    Prng prng(2024);
    const std::size_t constraints = 300;
    auto circuit = zk::buildMulChainCircuit<F>(constraints, 4, prng);
    std::printf("circuit: %zu constraints, %zu wires, %zu public\n",
                circuit.r1cs.numConstraints(),
                circuit.r1cs.numWires(), circuit.r1cs.numPublic());

    // 2. Trusted setup (the trapdoor doubles as the test oracle).
    const auto trapdoor = zk::Trapdoor<F>::random(prng);
    const auto keys = zk::setup<Bn254>(circuit.r1cs, trapdoor);
    std::printf("setup: %zu A-query points, %zu H-query points\n",
                keys.pk.aPoints.size(), keys.pk.hPoints.size());

    // 3. Prove.
    zk::ProverTiming timing;
    const auto proof = zk::prove<Bn254>(keys.pk, circuit.r1cs,
                                        circuit.wires, prng,
                                        &timing);
    std::printf("prove: %.2f ms total (NTT %.2f, MSM %.2f, others "
                "%.2f), %zu MSM points\n",
                timing.totalSeconds() * 1e3,
                timing.nttSeconds * 1e3, timing.msmSeconds * 1e3,
                timing.otherSeconds * 1e3, timing.msmPoints);

    // 4. Verify (trapdoor oracle; see DESIGN.md).
    const std::vector<F> public_inputs(
        circuit.wires.begin() + 1,
        circuit.wires.begin() + 1 + circuit.r1cs.numPublic());
    const bool ok =
        zk::verify<Bn254>(keys.vk, proof, public_inputs);
    std::printf("verify: %s\n", ok ? "ACCEPT" : "REJECT");

    // 5. A tampered public input must be rejected.
    auto bad_inputs = public_inputs;
    bad_inputs[0] += F::one();
    const bool rejected =
        !zk::verify<Bn254>(keys.vk, proof, bad_inputs);
    std::printf("tampered public input rejected: %s\n",
                rejected ? "yes" : "NO");

    // 6. The real-protocol G2 half: B over G2 via a G2 MSM, and the
    //    compressed wire format.
    const auto ext = zk::extendSetupG2<zk::Bn254Pair>(keys.pk);
    const auto b2 =
        zk::proveB2<zk::Bn254Pair>(ext, circuit.wires, proof.sBlind);
    const bool g2_ok = zk::verifyWithG2<zk::Bn254Pair>(
        keys.vk, proof, b2, public_inputs);
    const std::size_t wire_bytes =
        2 * encodedPointSize<Bn254>() + zk::encodedG2PointSize();
    std::printf("G2 element verified: %s; compressed proof wire "
                "size: %zu bytes (paper: ~127)\n",
                g2_ok ? "yes" : "NO", wire_bytes);

    // 7. The Table 4 applications this pipeline stands in for.
    std::printf("\npaper workloads (Table 4):\n");
    for (const auto &spec : zk::table4Workloads()) {
        std::printf("  %-14s %10llu constraints, libsnark %.1f s\n",
                    spec.name,
                    static_cast<unsigned long long>(
                        spec.constraints),
                    spec.libsnarkSeconds);
    }
    return ok && rejected && g2_ok ? 0 : 1;
}
