/**
 * @file
 * Command-line MSM driver.
 *
 * Usage:
 *   msm_cli [curve] [log2_N] [num_gpus] [flags...]
 *
 *   curve:   bn254 | bls377 | bls381 | mnt4753   (default bn254)
 *   log2_N:  input size exponent                  (default 24)
 *   gpus:    simulated A100 count                 (default 8)
 *   flags:   --naive-scatter --gpu-reduce --signed --no-tc
 *            --field-backend=<auto|cuda-core|tensor-core>
 *            --glv --batch-affine --precompute
 *            --planner=<heuristic|search|cached>
 *            --topology=<spec>
 *            --collective=<gather|ring|tree|reduce-scatter|auto>
 *            --pipeline-depth=<d> --partitions=<k>
 *            --window=<s> --functional=<log2 n>
 *            --faults=<spec> --max-retries=<n> --no-checksums
 *            --no-watchdog --watchdog-slack=<f> --health
 *            --fault-report --help
 *
 * Prints the plan, the simulated timeline breakdown at the requested
 * scale and, with --functional, runs the algorithm functionally at a
 * reduced size and checks the result against the serial reference.
 * --faults injects deterministic faults into the functional run (see
 * --help for the spec grammar); recoverable faults still produce a
 * result bit-identical to the fault-free run, unrecoverable ones exit
 * with the typed error instead of a wrong answer.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/workload.h"
#include "src/support/table.h"
#include "src/support/trace.h"

namespace {

using namespace distmsm;

gpusim::CurveProfile
curveByName(const std::string &name)
{
    if (name == "bls377")
        return gpusim::CurveProfile::bls377();
    if (name == "bls381")
        return gpusim::CurveProfile::bls381();
    if (name == "mnt4753")
        return gpusim::CurveProfile::mnt4753();
    return gpusim::CurveProfile::bn254();
}

void
printHelp()
{
    std::printf(
        "msm_cli [curve] [log2_N] [num_gpus] [flags...]\n"
        "\n"
        "  curve:   bn254 | bls377 | bls381 | mnt4753  (default "
        "bn254)\n"
        "  log2_N:  input size exponent                (default 24)\n"
        "  gpus:    simulated A100 count               (default 8)\n"
        "\n"
        "flags:\n"
        "  --naive-scatter      disable the hierarchical scatter\n"
        "  --gpu-reduce         keep bucket-reduce on the GPUs\n"
        "  --signed             signed-digit windows\n"
        "  --glv                GLV endomorphism decomposition\n"
        "  --batch-affine       batched-affine bucket accumulation\n"
        "  --precompute         fixed-base precompute tables\n"
        "  --no-tc              disable tensor-core Montgomery\n"
        "  --field-backend=<b>  field-arithmetic backend for the\n"
        "                       simulated kernels:\n"
        "                         auto         cost-model pick "
        "(default)\n"
        "                         cuda-core    int32 CIOS\n"
        "                         tensor-core  tcmul differential "
        "path\n"
        "                       (functional runs on tensor-core "
        "execute\n"
        "                       every field mul through the TC "
        "model;\n"
        "                       results stay bit-identical)\n"
        "  --planner=<p>        plan selection strategy:\n"
        "                         heuristic  hand-tuned rules "
        "(default)\n"
        "                         search     cost-model plan search\n"
        "                         cached     search behind the "
        "persisted\n"
        "                                    plan cache "
        "(DISTMSM_PLAN_CACHE\n"
        "                                    or "
        "~/.cache/distmsm/plans.tsv)\n"
        "  --topology=<spec>    hierarchical cluster topology;\n"
        "                       comma-separated keys:\n"
        "                         nodes=N      node count\n"
        "                         gpus=G       GPUs per node\n"
        "                         intra=ring|fc  NVLink wiring\n"
        "                         nvlink=GBs nvlink_us=US  NVLink "
        "link\n"
        "                         ib=GBs ib_us=US  inter-node link\n"
        "                         nics=K       NICs per node\n"
        "                       example: "
        "--topology='nodes=4,gpus=8,intra=ring'\n"
        "                       (overrides the positional gpu "
        "count)\n"
        "  --collective=<c>     bucket/window merge strategy:\n"
        "                       gather | ring | tree | "
        "reduce-scatter |\n"
        "                       auto (tuner re-resolves per merge "
        "payload)\n"
        "  --pipeline-depth=<d> MSMs kept in flight per partition "
        "when\n"
        "                       pricing the proving pipeline "
        "(default 1;\n"
        "                       0 lets --planner=search choose)\n"
        "  --partitions=<k>     split the cluster into k independent\n"
        "                       device groups for pricing (default "
        "1;\n"
        "                       0 lets --planner=search choose; must\n"
        "                       divide the GPU count)\n"
        "  --window=<s>         pin the window size\n"
        "  --functional=<ln>    run functionally at N = 2^ln and\n"
        "                       check against serial Pippenger\n"
        "\n"
        "fault injection (functional runs; also honoured via the\n"
        "DISTMSM_FAULT_SPEC environment variable):\n"
        "  --faults=<spec>      deterministic fault plan; clauses\n"
        "                       separated by ';':\n"
        "                         kill:dev=K[@win=J]  device K dies "
        "at its\n"
        "                                             J-th window "
        "(default 0)\n"
        "                         corrupt:xfer=N      flip a bit in "
        "global\n"
        "                                             transfer index "
        "N\n"
        "                         corrupt:dev=K       corrupt every "
        "transfer\n"
        "                                             from device K\n"
        "                         delay:dev=K,ns=X[@attempt=A]\n"
        "                                             delay device "
        "K's A-th\n"
        "                                             transfer "
        "attempt by X ns\n"
        "                                             (default "
        "attempt 0)\n"
        "                         degrade:dev=K,factor=F[@win=J]\n"
        "                                             device K runs "
        "F x slower\n"
        "                                             from its J-th "
        "window on\n"
        "                         flaky:dev=K,p=P     corrupt each "
        "transfer from\n"
        "                                             device K with "
        "probability P\n"
        "                                             (seeded, "
        "deterministic)\n"
        "                         hang:dev=K[@win=J]  device K stops "
        "responding\n"
        "                                             at its J-th "
        "window\n"
        "                         seed:S              seed the "
        "corruption PRNG\n"
        "                       example: "
        "--faults='kill:dev=1;corrupt:xfer=3'\n"
        "  --max-retries=<n>    transfer retry budget (default 2)\n"
        "  --no-checksums       disable RLC transfer checksums "
        "(corruption\n"
        "                       goes undetected; faster)\n"
        "  --no-watchdog        disable straggler speculation; a "
        "degrade\n"
        "                       stalls the run, a hang fails it\n"
        "  --watchdog-slack=<f> blow the per-window deadline at f x "
        "the\n"
        "                       calibrated estimate (default 2.0)\n"
        "  --health             attach a device-health tracker "
        "(probation /\n"
        "                       quarantine ladder) to the "
        "functional run\n"
        "                       and print its summary\n"
        "  --fault-report       print the fault/recovery counters "
        "after a\n"
        "                       functional run\n");
}

void
printFaultReport(const gpusim::FaultReport &r)
{
    std::printf(
        "\nfault report:\n"
        "  injected: %llu total (%llu corruptions, %llu timeouts, "
        "%llu devices lost, %llu hangs)\n"
        "  detected: %llu corruptions, %llu retries, %llu windows "
        "resharded, %llu transfer failovers\n"
        "  watchdog: %llu stragglers detected, %llu respawns "
        "(%llu speculative wins, %llu losses)\n"
        "  waits:    %.0f ns backoff, %.0f ns straggler wait "
        "(vs %.0f ns un-watched stall)\n"
        "  verify:   %llu transfers, %llu points checksummed, %llu "
        "EC ops (off the determinism books)\n",
        static_cast<unsigned long long>(r.faultsInjected),
        static_cast<unsigned long long>(r.corruptInjected),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.devicesLost),
        static_cast<unsigned long long>(r.hangs),
        static_cast<unsigned long long>(r.corruptDetected),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.windowsResharded),
        static_cast<unsigned long long>(r.transferFailovers),
        static_cast<unsigned long long>(r.stragglersDetected),
        static_cast<unsigned long long>(r.stragglerRespawns),
        static_cast<unsigned long long>(r.speculativeWins),
        static_cast<unsigned long long>(r.speculativeLosses),
        r.backoffNs, r.stragglerWaitNs, r.stragglerStallNs,
        static_cast<unsigned long long>(r.transfers),
        static_cast<unsigned long long>(r.checksummed),
        static_cast<unsigned long long>(r.verifyEcOps));
}

void
printHealthSummary(const gpusim::HealthTracker &tracker)
{
    std::printf("\ndevice health (generation %llu):\n",
                static_cast<unsigned long long>(
                    tracker.generation()));
    for (int d = 0; d < tracker.numDevices(); ++d) {
        const auto &h = tracker.device(d);
        std::printf(
            "  dev%d: %-11s score %d, %llu clean window(s), "
            "%llu timeout(s), %llu checksum failure(s), "
            "%llu straggler(s), %llu hang(s)\n",
            d, gpusim::healthStateName(h.state), h.faultScore,
            static_cast<unsigned long long>(h.cleanWindows),
            static_cast<unsigned long long>(h.timeouts),
            static_cast<unsigned long long>(h.checksumFailures),
            static_cast<unsigned long long>(h.stragglerEvents),
            static_cast<unsigned long long>(h.hangs));
    }
}

template <typename Curve>
int
functionalCheck(unsigned log_n, const gpusim::Cluster &cluster,
                msm::MsmOptions options, bool fault_report,
                bool track_health)
{
    Prng prng(0xC11);
    const std::size_t n = std::size_t{1} << log_n;
    std::printf("\nfunctional check at N = 2^%u (%zu points)...\n",
                log_n, n);
    const auto points = msm::generatePoints<Curve>(n, prng);
    const auto scalars = msm::generateScalars<Curve>(n, prng);
    if (options.windowBitsOverride == 0)
        options.windowBitsOverride = 8;
    gpusim::HealthTracker tracker(cluster.numGpus());
    if (track_health)
        options.health = &tracker;
    const auto result_or = msm::tryComputeDistMsm<Curve>(
        points, scalars, cluster, options);
    if (!result_or.isOk()) {
        std::printf("UNRECOVERABLE FAULT: %s\n",
                    result_or.status().toString().c_str());
        return 2;
    }
    const auto &result = *result_or;
    const auto expect =
        msm::msmSerialPippenger<Curve>(points, scalars, 8);
    if (!(result.value == expect)) {
        std::printf("FUNCTIONAL MISMATCH\n");
        return 1;
    }
    std::printf("matches the serial Pippenger reference; "
                "%llu PACC, %llu global atomics, %llu host ops.\n",
                static_cast<unsigned long long>(result.stats.paccOps),
                static_cast<unsigned long long>(
                    result.stats.globalAtomics),
                static_cast<unsigned long long>(result.hostOps));
    if (fault_report)
        printFaultReport(result.fault);
    if (track_health)
        printHealthSummary(tracker);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string curve_name = "bn254";
    unsigned log_n = 24;
    int gpus = 8;
    unsigned functional = 0;
    bool fault_report = false;
    bool track_health = false;
    bool have_topology = false;
    gpusim::Topology topology;
    msm::MsmOptions options;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else if (arg == "--naive-scatter") {
            options.hierarchicalScatter = false;
        } else if (arg == "--gpu-reduce") {
            options.cpuBucketReduce = false;
        } else if (arg == "--signed") {
            options.signedDigits = true;
        } else if (arg == "--glv") {
            options.glv = true;
        } else if (arg == "--batch-affine") {
            options.batchAffine = true;
        } else if (arg == "--precompute") {
            options.precompute = true;
        } else if (arg == "--no-tc") {
            options.kernel.tensorCoreMont = false;
            options.kernel.onTheFlyCompact = false;
        } else if (arg.rfind("--field-backend=", 0) == 0) {
            if (!gpusim::parseFieldBackend(arg.substr(16),
                                           &options.fieldBackend)) {
                std::fprintf(
                    stderr,
                    "bad --field-backend '%s' (want auto, "
                    "cuda-core or tensor-core)\n",
                    arg.substr(16).c_str());
                return 2;
            }
        } else if (arg.rfind("--planner=", 0) == 0) {
            if (!msm::parsePlannerMode(arg.substr(10),
                                       &options.planner)) {
                std::fprintf(
                    stderr,
                    "bad --planner '%s' (want heuristic, search "
                    "or cached)\n",
                    arg.substr(10).c_str());
                return 2;
            }
        } else if (arg == "--no-checksums") {
            options.verifyChecksums = false;
        } else if (arg == "--no-watchdog") {
            options.watchdog = false;
        } else if (arg.rfind("--watchdog-slack=", 0) == 0) {
            options.watchdogSlack = std::atof(arg.c_str() + 17);
            if (options.watchdogSlack <= 1.0) {
                std::fprintf(stderr,
                             "bad --watchdog-slack '%s' (want a "
                             "factor > 1)\n",
                             arg.c_str() + 17);
                return 2;
            }
        } else if (arg == "--health") {
            track_health = true;
        } else if (arg == "--fault-report") {
            fault_report = true;
        } else if (arg.rfind("--faults=", 0) == 0) {
            const auto plan_or =
                gpusim::FaultPlan::parse(arg.substr(9));
            if (!plan_or.isOk()) {
                std::fprintf(stderr, "bad --faults spec: %s\n",
                             plan_or.status().toString().c_str());
                return 2;
            }
            options.faults = *plan_or;
        } else if (arg.rfind("--topology=", 0) == 0) {
            const auto topo_or =
                gpusim::Topology::parse(arg.substr(11));
            if (!topo_or.isOk()) {
                std::fprintf(stderr, "bad --topology spec: %s\n",
                             topo_or.status().toString().c_str());
                return 2;
            }
            topology = *topo_or;
            have_topology = true;
        } else if (arg.rfind("--collective=", 0) == 0) {
            const auto policy_or =
                gpusim::parseCollectivePolicy(arg.substr(13));
            if (!policy_or.isOk()) {
                std::fprintf(stderr, "bad --collective: %s\n",
                             policy_or.status().toString().c_str());
                return 2;
            }
            options.collective = *policy_or;
        } else if (arg.rfind("--pipeline-depth=", 0) == 0) {
            options.pipelineDepth = std::atoi(arg.c_str() + 17);
        } else if (arg.rfind("--partitions=", 0) == 0) {
            options.devicePartitions = std::atoi(arg.c_str() + 13);
        } else if (arg.rfind("--max-retries=", 0) == 0) {
            options.maxRetries = std::atoi(arg.c_str() + 14);
        } else if (arg.rfind("--window=", 0) == 0) {
            options.windowBitsOverride =
                static_cast<unsigned>(std::atoi(arg.c_str() + 9));
        } else if (arg.rfind("--functional=", 0) == 0) {
            functional =
                static_cast<unsigned>(std::atoi(arg.c_str() + 13));
        } else if (positional == 0) {
            curve_name = arg;
            ++positional;
        } else if (positional == 1) {
            log_n = static_cast<unsigned>(std::atoi(arg.c_str()));
            ++positional;
        } else {
            gpus = std::atoi(arg.c_str());
        }
    }

    // A malformed DISTMSM_FAULT_SPEC is a typed parse error, not a
    // crash: surface it up front, before any work runs against a
    // plan the user didn't ask for.
    {
        const auto env_or = gpusim::globalFaultPlanFromEnv();
        if (!env_or.isOk()) {
            std::fprintf(stderr, "%s\n",
                         env_or.status().toString().c_str());
            return 2;
        }
    }

    // DISTMSM_TRACE=path.json records the simulated timeline (and,
    // with --functional, the engine's per-window spans) and flushes
    // the Chrome trace plus metrics JSON at exit.
    options.trace = support::globalTraceFromEnv();

    const auto curve = curveByName(curve_name);
    if (!have_topology)
        topology = gpusim::Topology::flat(gpus);
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(),
                                  topology);
    std::printf("DistMSM: %s, N = 2^%u, %d simulated A100(s)\n",
                curve.name, log_n, cluster.numGpus());
    std::printf("topology: %s\n\n",
                cluster.topology().describe().c_str());

    const auto plan =
        msm::planMsm(curve, 1ull << log_n, cluster, options);
    std::printf("plan: s = %u, %u windows (%llu buckets%s), %u "
                "window(s)/GPU%s, %d thread(s)/bucket\n",
                plan.windowBits, plan.numWindows,
                static_cast<unsigned long long>(plan.numBuckets),
                plan.signedDigits ? ", signed" : "",
                plan.windowsPerGpu,
                plan.bucketsSplitAcrossGpus ? ", buckets split" : "",
                plan.threadsPerBucket);
    std::printf("      field backend: %s%s\n",
                gpusim::fieldBackendName(plan.fieldBackend),
                plan.fieldBackendAuto ? " (auto-selected)" : "");
    std::printf("      planner: %s\n",
                msm::plannerModeName(options.planner));
    if (plan.precompute) {
        std::printf("      fixed-base precompute: %.1f MiB of "
                    "tables, windows merge into one bucket pass\n",
                    plan.tableBytes / (1024.0 * 1024.0));
    } else if (options.precompute) {
        std::printf("      fixed-base precompute declined by the "
                    "planner (table exceeds the memory budget)\n");
    }
    {
        const gpusim::CollectiveTimeEstimator est(
            cluster.topology(), cluster.device());
        const auto merge_costs =
            est.costs(cluster.numGpus(), plan.mergeBytesPerGpu);
        std::printf(
            "      merge: %s (policy %s); predicted gather %.3f / "
            "ring %.3f / tree %.3f / reduce-scatter %.3f ms\n",
            gpusim::collectiveAlgoName(plan.collective),
            gpusim::collectivePolicyName(options.collective),
            merge_costs.gatherNs / 1e6, merge_costs.ringNs / 1e6,
            merge_costs.treeNs / 1e6,
            merge_costs.reduceScatterNs / 1e6);
    }
    if (plan.pipelineDepth > 1 || plan.devicePartitions > 1) {
        std::printf("      pipeline: depth %d, %d device "
                    "partition(s)\n",
                    plan.pipelineDepth, plan.devicePartitions);
    }

    const auto t =
        msm::estimateDistMsm(curve, 1ull << log_n, cluster, options);
    TextTable table;
    table.header({"stage", "simulated ms"});
    table.row({"bucket scatter", TextTable::num(t.scatterNs / 1e6, 3)});
    table.row({"bucket sum", TextTable::num(t.bucketSumNs / 1e6, 3)});
    table.row({t.cpuReduce ? "bucket reduce (CPU)"
                           : "bucket reduce (GPU)",
               TextTable::num(t.bucketReduceNs / 1e6, 3)});
    table.row({"window reduce", TextTable::num(t.windowReduceNs / 1e6,
                                               3)});
    table.row({"transfers", TextTable::num(t.transferNs / 1e6, 3)});
    if (t.verifyNs > 0.0) {
        table.row({"checksum verify",
                   TextTable::num(t.verifyNs / 1e6, 3)});
    }
    if (t.tableBuildNs > 0.0) {
        table.row({"table build (one-time)",
                   TextTable::num(t.tableBuildNs / 1e6, 3)});
    }
    table.row({"total (with overlap)", TextTable::num(t.totalMs(), 3)});
    std::printf("\n%s", table.render().c_str());

    if (functional != 0) {
        if (curve_name == "bls377") {
            return functionalCheck<distmsm::Bls377>(
                functional, cluster, options, fault_report,
                track_health);
        }
        if (curve_name == "bls381") {
            return functionalCheck<distmsm::Bls381>(
                functional, cluster, options, fault_report,
                track_health);
        }
        if (curve_name == "mnt4753") {
            return functionalCheck<distmsm::Mnt4753>(
                functional, cluster, options, fault_report,
                track_health);
        }
        return functionalCheck<distmsm::Bn254>(
            functional, cluster, options, fault_report,
            track_health);
    }
    return 0;
}
