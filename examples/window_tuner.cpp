/**
 * @file
 * Window-size tuner: explore the Section 3.1 per-thread workload
 * model for your own (N, curve, cluster) configuration and see which
 * window size the planner would choose, how the kernels would be
 * configured, and where the hierarchical scatter stops fitting in
 * shared memory.
 *
 * Usage: window_tuner [log2_N] [num_gpus]
 */

#include <cstdio>
#include <cstdlib>

#include "src/msm/planner.h"
#include "src/msm/scatter.h"
#include "src/support/table.h"

int
main(int argc, char **argv)
{
    using namespace distmsm;
    const unsigned log_n =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 26;
    const int gpus = argc > 2 ? std::atoi(argv[2]) : 8;
    const auto curve = gpusim::CurveProfile::bls381();
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), gpus);

    std::printf("window tuner: %s, N = 2^%u, %d x %s\n\n", curve.name,
                log_n, gpus, cluster.device().name.c_str());

    msm::WorkloadConfig wc;
    wc.numPoints = 1ull << log_n;
    wc.scalarBits = curve.scalarBits;
    wc.numGpus = gpus;
    wc.threadsPerGpu = cluster.device().maxConcurrentThreads();

    msm::ScatterConfig scatter;
    TextTable t;
    t.header({"s", "windows", "per-thread EC ops",
              "hierarchical scatter", "simulated ms"});
    for (unsigned s = 6; s <= 22; ++s) {
        msm::MsmOptions options;
        options.windowBitsOverride = s;
        const bool hier_ok =
            msm::hierarchicalSharedBytes(s, scatter, 1) <=
            scatter.sharedBytesPerBlock;
        const auto est = msm::estimateDistMsm(curve, wc.numPoints,
                                              cluster, options);
        t.row({std::to_string(s),
               std::to_string(msm::windowCount(curve.scalarBits, s)),
               TextTable::num(msm::perThreadWorkload(wc, s), 0),
               hier_ok ? "fits" : "falls back to naive",
               TextTable::num(est.totalMs(), 2)});
    }
    std::printf("%s\n", t.render().c_str());

    const unsigned best = msm::optimalWindowSize(wc);
    msm::MsmOptions options;
    const auto plan =
        msm::planMsm(curve, wc.numPoints, cluster, options);
    std::printf("workload-model optimum: s = %u\n", best);
    std::printf("planner choice: s = %u, %u window(s)/GPU, %s, %d "
                "thread(s)/bucket\n",
                plan.windowBits, plan.windowsPerGpu,
                plan.bucketsSplitAcrossGpus
                    ? "buckets split across GPUs"
                    : "whole windows per GPU",
                plan.threadsPerBucket);
    return 0;
}
