/**
 * @file
 * Prints the register-allocated PACC kernel — the concrete output of
 * the paper's Section 4.2 pipeline: exhaustive schedule search
 * (9 -> 7 live big integers), explicit spilling to shared memory
 * (7 -> 5 registers), then register assignment and emission. The
 * listing is what a kernel author would transcribe into CUDA.
 *
 * Usage: kernel_listing [pacc|padd|pdbl] [register_budget]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sched/codegen.h"
#include "src/sched/schedule_search.h"

int
main(int argc, char **argv)
{
    using namespace distmsm::sched;

    const char *which = argc > 1 ? argv[1] : "pacc";
    OpDag dag = makePaccDag();
    if (std::strcmp(which, "padd") == 0)
        dag = makePaddDag();
    else if (std::strcmp(which, "pdbl") == 0)
        dag = makePdblDag(true);

    const auto reference_peak = dag.peakLiveReferenceOrder();
    const auto opt = findOptimalOrder(dag);
    const int budget = argc > 2 ? std::atoi(argv[2])
                                : std::max(3, opt.peak - 2);

    std::printf("%s kernel: reference order needs %d live big "
                "integers; optimal order %d; budget %d\n\n",
                which, reference_peak, opt.peak, budget);

    const SpillPlan plan = planSpills(dag, opt.order, budget);
    if (!plan.feasible) {
        std::printf("register budget %d is infeasible (floor %d)\n",
                    budget, minimumFeasibleRegisters(dag, opt.order));
        return 1;
    }
    std::printf("spill plan: %d transfers, <= %d big integers in "
                "shared memory\n\n",
                plan.transfers, plan.peakShared);

    const auto kernel = allocateRegisters(dag, opt.order, plan);
    std::printf("%s\n", renderKernel(dag, kernel).c_str());
    std::printf("(with 12 x 32-bit words per 377-bit big integer: "
                "%d registers per thread plus addressing state)\n",
                kernel.numRegisters * 12);
    return 0;
}
