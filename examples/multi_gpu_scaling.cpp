/**
 * @file
 * Multi-GPU scaling study: how the DistMSM plan and the simulated
 * execution time evolve from 1 to 64 GPUs, and how that compares to
 * naively scaling a single-GPU design — the core claim of the paper.
 *
 * Also demonstrates running the same functional computation on every
 * cluster shape and checking all results agree bit-exactly.
 */

#include <cstdio>

#include "src/ec/curves.h"
#include "src/msm/baseline_profiles.h"
#include "src/msm/distmsm.h"
#include "src/msm/workload.h"
#include "src/support/table.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;

    const auto curve = gpusim::CurveProfile::bls377();
    constexpr std::uint64_t kN = 1ull << 26;

    std::printf("DistMSM scaling study: %s, N = 2^26, A100 "
                "cluster\n\n",
                curve.name);
    TextTable t;
    t.header({"GPUs", "s", "windows/GPU", "split?", "DistMSM (ms)",
              "N-dim baseline (ms)", "advantage"});
    for (int gpus : {1, 2, 4, 8, 16, 32, 64}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        const msm::MsmOptions options;
        const auto plan = msm::planMsm(curve, kN, cluster, options);
        const auto dist =
            msm::estimateDistMsm(curve, kN, cluster, options);
        const auto ndim = msm::estimateNdimBaseline(
            curve, kN, cluster, gpusim::EcKernelVariant::full());
        t.row({std::to_string(gpus),
               std::to_string(plan.windowBits),
               std::to_string(plan.windowsPerGpu),
               plan.bucketsSplitAcrossGpus ? "yes" : "no",
               TextTable::num(dist.totalMs(), 2),
               TextTable::num(ndim.totalMs(), 2),
               TextTable::num(ndim.totalNs() / dist.totalNs(), 2) +
                   "x"});
    }
    std::printf("%s\n", t.render().c_str());

    // Functional agreement across cluster shapes (small instance).
    Prng prng(7);
    const std::size_t n = 600;
    const auto points = msm::generatePoints<Bls377>(n, prng);
    const auto scalars = msm::generateScalars<Bls377>(n, prng);
    const auto expect = msm::msmNaive<Bls377>(points, scalars);
    msm::MsmOptions options;
    options.windowBitsOverride = 7;
    options.scatter.blockDim = 128;
    options.scatter.gridDim = 4;
    for (int gpus : {1, 8, 64}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        const auto result = msm::computeDistMsm<Bls377>(
            points, scalars, cluster, options);
        if (!(result.value == expect)) {
            std::printf("functional mismatch at %d GPUs!\n", gpus);
            return 1;
        }
    }
    std::printf("functional results identical on 1 / 8 / 64 "
                "simulated GPUs.\n");
    return 0;
}
