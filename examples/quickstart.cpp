/**
 * @file
 * Quickstart: compute a multi-scalar multiplication with DistMSM.
 *
 * Generates a small random MSM instance on BN254, runs it through
 * the distributed algorithm on a simulated 8x A100 cluster, checks
 * the result against the naive definition, and prints the plan the
 * library chose together with the simulated execution time at a
 * paper-scale input.
 */

#include <cstdio>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/workload.h"

int
main()
{
    using namespace distmsm;

    // 1. Build a workload: fixed points, per-proof scalars.
    Prng prng(42);
    const std::size_t n = 1024;
    const auto points = msm::generatePoints<Bn254>(n, prng);
    const auto scalars = msm::generateScalars<Bn254>(n, prng);
    std::printf("workload: %zu points on %s, %u-bit scalars\n", n,
                Bn254::kName, Bn254::kScalarBits);

    // 2. Describe the cluster and run the distributed MSM
    //    functionally on the simulator.
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 8);
    msm::MsmOptions options;
    options.windowBitsOverride = 8; // small input: keep buckets few
    const auto result =
        msm::computeDistMsm<Bn254>(points, scalars, cluster, options);

    std::printf("plan: s = %u, %u windows, %u window(s)/GPU, %d "
                "thread(s)/bucket\n",
                result.plan.windowBits, result.plan.numWindows,
                result.plan.windowsPerGpu,
                result.plan.threadsPerBucket);
    std::printf("simulator: %llu PACC, %llu PADD, %llu shared "
                "atomics, %llu global atomics\n",
                static_cast<unsigned long long>(result.stats.paccOps),
                static_cast<unsigned long long>(result.stats.paddOps),
                static_cast<unsigned long long>(
                    result.stats.sharedAtomics),
                static_cast<unsigned long long>(
                    result.stats.globalAtomics));

    // 3. Verify against the mathematical definition.
    const auto expect = msm::msmNaive<Bn254>(points, scalars);
    if (!(result.value == expect)) {
        std::printf("MISMATCH against the naive MSM!\n");
        return 1;
    }
    const auto affine = result.value.toAffine();
    std::printf("result:  x = %s...\n",
                affine.x.toHex().substr(0, 26).c_str());
    std::printf("verified against the naive MSM definition.\n\n");

    // 4. What would this cost at paper scale?
    const auto curve = gpusim::CurveProfile::bn254();
    for (unsigned logn : {22u, 26u}) {
        const auto t = msm::estimateDistMsm(curve, 1ull << logn,
                                            cluster, {});
        std::printf("simulated 8x A100 time at N = 2^%u: %.2f ms\n",
                    logn, t.totalMs());
    }
    return 0;
}
