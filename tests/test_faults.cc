/**
 * @file
 * Fault injection and fault-tolerant recovery tests.
 *
 * The contract under test (DESIGN.md Section 6): the engine NEVER
 * returns a wrong answer. A recoverable fault (device loss with
 * survivors, transient corruption, transfer timeout within the retry
 * budget) is absorbed and the result is bit-identical to the
 * fault-free run — value, simulator statistics and host-op count.
 * An unrecoverable fault (persistent corruption past maxRetries, all
 * devices lost) surfaces as a typed support::Status from tryCompute /
 * tryProve, not as an abort. The whole fault pipeline is
 * deterministic across hostThreads, traces included.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/ec/curves.h"
#include "src/msm/checksum.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"
#include "src/support/trace.h"
#include "src/zksnark/groth16.h"
#include "src/zksnark/workloads.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;
using gpusim::FaultKind;
using gpusim::FaultPlan;
using support::StatusCode;

MsmOptions
faultTestOptions(unsigned s = 8)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

template <typename Curve>
struct Workload
{
    std::vector<AffinePoint<Curve>> points;
    std::vector<BigInt<Curve::Fr::kLimbs>> scalars;
};

template <typename Curve>
Workload<Curve>
makeWorkload(std::size_t n, std::uint64_t seed)
{
    Prng prng(seed);
    Workload<Curve> w;
    w.points = generatePoints<Curve>(n, prng);
    w.scalars = generateScalars<Curve>(n, prng);
    return w;
}

// --- FaultPlan::parse ------------------------------------------------

TEST(FaultPlanParse, AcceptsFullGrammar)
{
    const auto plan_or = FaultPlan::parse(
        "kill:dev=2@win=1;corrupt:xfer=3;corrupt:dev=0;"
        "delay:dev=1,ns=5e8;seed:77");
    ASSERT_TRUE(plan_or.isOk()) << plan_or.status().toString();
    const FaultPlan &plan = *plan_or;
    ASSERT_EQ(plan.events.size(), 4u);
    EXPECT_EQ(plan.seed, 77u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::KillDevice);
    EXPECT_EQ(plan.events[0].device, 2);
    EXPECT_EQ(plan.events[0].window, 1);
    EXPECT_EQ(plan.killWindow(2), 1);
    EXPECT_EQ(plan.killWindow(0), -1);

    EXPECT_EQ(plan.events[1].kind, FaultKind::CorruptTransfer);
    EXPECT_TRUE(plan.corruptsTransfer(3, 5));
    EXPECT_FALSE(plan.corruptsTransfer(4, 5));

    EXPECT_EQ(plan.events[2].kind,
              FaultKind::CorruptDeviceTransfers);
    EXPECT_TRUE(plan.corruptsTransfer(99, 0)); // every xfer of dev 0

    EXPECT_EQ(plan.events[3].kind, FaultKind::DelayTransfer);
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(1, 0), 5e8);
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(1, 1), 0.0); // retry clean
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(0, 0), 0.0);
}

TEST(FaultPlanParse, EarliestKillWindowWins)
{
    const auto plan_or =
        FaultPlan::parse("kill:dev=1@win=3;kill:dev=1@win=1");
    ASSERT_TRUE(plan_or.isOk());
    EXPECT_EQ(plan_or->killWindow(1), 1);
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "bogus:clause",        // unknown clause
        "kill:win=1",          // kill without dev
        "kill:dev=x",          // non-numeric
        "corrupt:ns=3",        // corrupt without xfer/dev
        "delay:dev=1",         // delay without ns
        "delay:ns=5e8",        // delay without dev
        "seed:",               // empty seed
    };
    for (const char *spec : bad) {
        const auto plan_or = FaultPlan::parse(spec);
        EXPECT_FALSE(plan_or.isOk()) << "accepted: " << spec;
        if (!plan_or.isOk()) {
            EXPECT_EQ(plan_or.status().code(),
                      StatusCode::InvalidArgument)
                << spec;
        }
    }
}

TEST(FaultPlanParse, EmptySpecIsEmptyPlan)
{
    const auto plan_or = FaultPlan::parse("");
    ASSERT_TRUE(plan_or.isOk());
    EXPECT_TRUE(plan_or->empty());
    // Stray separators are benign (trailing ';' from shell quoting).
    const auto trailing = FaultPlan::parse("kill:dev=1;;");
    ASSERT_TRUE(trailing.isOk());
    EXPECT_EQ(trailing->events.size(), 1u);
}

// --- Checksum primitives ---------------------------------------------

TEST(Checksum, DigestDetectsEveryInjectedByteFlip)
{
    Prng prng(0xC5);
    const auto affine = generatePoints<Bn254>(24, prng);
    std::vector<XYZZPoint<Bn254>> points;
    points.reserve(affine.size());
    for (const auto &p : affine)
        points.push_back(XYZZPoint<Bn254>::fromAffine(p));

    const std::uint64_t seed = 0xC0FFEE;
    const auto digest = rlcDigest<Bn254>(points, seed, 0);

    for (std::uint64_t xfer = 0; xfer < 32; ++xfer) {
        auto bytes = serializePoints<Bn254>(points);
        gpusim::corruptBytes(bytes, /*seed=*/0xFA177 + xfer, xfer);
        const auto got = deserializePoints<Bn254>(bytes);
        const auto rederived = rlcDigest<Bn254>(got, seed, 0);
        EXPECT_FALSE(bitEqual(rederived, digest))
            << "byte flip of transfer " << xfer << " went undetected";
    }
    // Clean round trip must agree.
    const auto clean = deserializePoints<Bn254>(
        serializePoints<Bn254>(points));
    EXPECT_TRUE(bitEqual(rlcDigest<Bn254>(clean, seed, 0), digest));
}

TEST(Checksum, CorruptBytesIsDeterministic)
{
    std::vector<std::uint8_t> a(256, 0xAA), b(256, 0xAA);
    gpusim::corruptBytes(a, 7, 3);
    gpusim::corruptBytes(b, 7, 3);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, std::vector<std::uint8_t>(256, 0xAA));
    std::vector<std::uint8_t> c(256, 0xAA);
    gpusim::corruptBytes(c, 7, 4); // different transfer index
    EXPECT_NE(a, c);
}

// --- Device-loss kill matrix -----------------------------------------

class KillMatrixTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kN = std::size_t{1} << 14;

    void
    SetUp() override
    {
        workload_ = makeWorkload<Bn254>(kN, 0xFA01);
        const auto clean_or = tryComputeDistMsm<Bn254>(
            workload_.points, workload_.scalars, cluster_,
            faultTestOptions());
        ASSERT_TRUE(clean_or.isOk());
        clean_ = *clean_or;
        ASSERT_EQ(clean_.fault.devicesLost, 0u);
    }

    Cluster cluster_{DeviceSpec::a100(), 4};
    Workload<Bn254> workload_;
    MsmResult<Bn254> clean_;
};

TEST_F(KillMatrixTest, EachDeviceLossRecoversBitIdentically)
{
    // Kill every device in turn, at its first window and at its
    // second: survivors recompute the lost windows and the final
    // point, the simulator statistics and the host-op count are all
    // bit-identical to the fault-free run.
    for (int dev = 0; dev < 4; ++dev) {
        for (int win = 0; win < 2; ++win) {
            auto options = faultTestOptions();
            options.faults.events.push_back(
                {FaultKind::KillDevice, dev, win, 0, 0.0});
            const auto result_or = tryComputeDistMsm<Bn254>(
                workload_.points, workload_.scalars, cluster_,
                options);
            ASSERT_TRUE(result_or.isOk())
                << "dev=" << dev << " win=" << win << ": "
                << result_or.status().toString();
            const auto &r = *result_or;
            EXPECT_TRUE(bitEqual(r.value, clean_.value))
                << "dev=" << dev << " win=" << win;
            EXPECT_EQ(r.stats, clean_.stats)
                << "dev=" << dev << " win=" << win;
            EXPECT_EQ(r.hostOps, clean_.hostOps)
                << "dev=" << dev << " win=" << win;
            EXPECT_EQ(r.fault.devicesLost, 1u);
            EXPECT_GE(r.fault.windowsResharded, 1u);
            // Killing at window 1 spares the ordinal-0 window.
            if (win == 1) {
                EXPECT_LT(r.fault.windowsResharded,
                          r.plan.numWindows / 4 + 1);
            }
        }
    }
}

TEST_F(KillMatrixTest, TwoSimultaneousLossesStillRecover)
{
    auto options = faultTestOptions();
    options.faults.events.push_back(
        {FaultKind::KillDevice, 0, 0, 0, 0.0});
    options.faults.events.push_back(
        {FaultKind::KillDevice, 3, 1, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_TRUE(result_or.isOk()) << result_or.status().toString();
    EXPECT_TRUE(bitEqual(result_or->value, clean_.value));
    EXPECT_EQ(result_or->stats, clean_.stats);
    EXPECT_EQ(result_or->fault.devicesLost, 2u);
}

TEST(DeviceLoss, AllDevicesLostReturnsTypedError)
{
    const auto w = makeWorkload<Bn254>(256, 0xFA02);
    const Cluster cluster(DeviceSpec::a100(), 2);
    auto options = faultTestOptions();
    options.faults.events.push_back(
        {FaultKind::KillDevice, 0, 0, 0, 0.0});
    options.faults.events.push_back(
        {FaultKind::KillDevice, 1, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(), StatusCode::DeviceLost);
}

TEST(DeviceLoss, CombinedPrecomputePathRecovers)
{
    // The fixed-base precompute path shards bucket slices instead of
    // windows; a kill clause must reshard the dead device's whole
    // slice onto a survivor with a bit-identical result.
    const auto w = makeWorkload<Bn254>(1 << 10, 0xFA03);
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = faultTestOptions(0);
    options.precompute = true;

    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_TRUE(clean_or.isOk());
    ASSERT_TRUE(clean_or->plan.precompute)
        << "planner declined precompute; test needs the combined path";

    for (int dev = 0; dev < 4; ++dev) {
        auto faulty = options;
        faulty.faults.events.push_back(
            {FaultKind::KillDevice, dev, 0, 0, 0.0});
        const auto result_or = tryComputeDistMsm<Bn254>(
            w.points, w.scalars, cluster, faulty);
        ASSERT_TRUE(result_or.isOk())
            << "dev=" << dev << ": " << result_or.status().toString();
        EXPECT_TRUE(bitEqual(result_or->value, clean_or->value))
            << "dev=" << dev;
        EXPECT_EQ(result_or->stats, clean_or->stats) << "dev=" << dev;
        EXPECT_EQ(result_or->fault.devicesLost, 1u);
        EXPECT_GE(result_or->fault.windowsResharded, 1u);
    }
}

// --- Transfer corruption ---------------------------------------------

TEST(Corruption, SeededSweepAllDetectedAndRecovered)
{
    // 32 cases: corrupt each transfer index under a per-case seed.
    // Indices past the run's transfer count inject nothing; every
    // injected corruption must be detected by the RLC checksum and
    // healed by a retry, with a bit-identical final result.
    const auto w = makeWorkload<Bn254>(1 << 10, 0xFA04);
    const Cluster cluster(DeviceSpec::a100(), 4);

    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, faultTestOptions());
    ASSERT_TRUE(clean_or.isOk());
    const std::uint64_t live_transfers = clean_or->fault.transfers;
    ASSERT_GE(live_transfers, 4u);

    std::uint64_t injected_cases = 0;
    for (std::uint64_t i = 0; i < 32; ++i) {
        auto options = faultTestOptions();
        options.faults.seed = 0xFA177 + i * 0x9E37;
        options.faults.events.push_back(
            {FaultKind::CorruptTransfer, -1, 0, i, 0.0});
        const auto result_or = tryComputeDistMsm<Bn254>(
            w.points, w.scalars, cluster, options);
        ASSERT_TRUE(result_or.isOk())
            << "xfer=" << i << ": " << result_or.status().toString();
        const auto &r = *result_or;
        EXPECT_TRUE(bitEqual(r.value, clean_or->value)) << "xfer=" << i;
        EXPECT_EQ(r.stats, clean_or->stats) << "xfer=" << i;
        if (i < live_transfers) {
            EXPECT_EQ(r.fault.corruptInjected, 1u) << "xfer=" << i;
            EXPECT_EQ(r.fault.corruptDetected, 1u)
                << "undetected corruption at xfer=" << i;
            EXPECT_GE(r.fault.retries, 1u) << "xfer=" << i;
            ++injected_cases;
        } else {
            EXPECT_EQ(r.fault.corruptInjected, 0u) << "xfer=" << i;
        }
    }
    EXPECT_EQ(injected_cases, live_transfers);
}

TEST(Corruption, PersistentCorruptionExhaustsRetries)
{
    const auto w = makeWorkload<Bn254>(512, 0xFA05);
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = faultTestOptions();
    options.faults.events.push_back(
        {FaultKind::CorruptDeviceTransfers, 1, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(), StatusCode::TransferCorrupt);
}

TEST(Corruption, UndetectableWithoutChecksumsButStillInjected)
{
    // With checksums off the engine cannot detect corruption: the
    // run completes, the result differs from the clean run, and the
    // report shows injected > detected. (trace_summary --check flags
    // exactly this imbalance.)
    const auto w = makeWorkload<Bn254>(512, 0xFA06);
    const Cluster cluster(DeviceSpec::a100(), 4);

    auto clean_options = faultTestOptions();
    clean_options.verifyChecksums = false;
    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, clean_options);
    ASSERT_TRUE(clean_or.isOk());

    auto options = clean_options;
    options.faults.events.push_back(
        {FaultKind::CorruptTransfer, -1, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_TRUE(result_or.isOk());
    EXPECT_EQ(result_or->fault.corruptInjected, 1u);
    EXPECT_EQ(result_or->fault.corruptDetected, 0u);
    EXPECT_FALSE(bitEqual(result_or->value, clean_or->value))
        << "the corrupted payload happened to round-trip cleanly; "
           "pick a different seed";
}

TEST(Corruption, ZeroRetriesTurnsTransientIntoFatal)
{
    const auto w = makeWorkload<Bn254>(512, 0xFA07);
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = faultTestOptions();
    options.maxRetries = 0;
    options.faults.events.push_back(
        {FaultKind::CorruptTransfer, -1, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(), StatusCode::TransferCorrupt);
}

// --- Transfer delay / timeout ----------------------------------------

TEST(Timeout, DelayedTransferTimesOutThenRetriesClean)
{
    const auto w = makeWorkload<Bn254>(512, 0xFA08);
    const Cluster cluster(DeviceSpec::a100(), 4);

    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, faultTestOptions());
    ASSERT_TRUE(clean_or.isOk());

    auto options = faultTestOptions();
    options.transferTimeoutNs = 1e6;
    options.faults.events.push_back(
        {FaultKind::DelayTransfer, 2, 0, 0, /*delayNs=*/1e9});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_TRUE(result_or.isOk()) << result_or.status().toString();
    EXPECT_TRUE(bitEqual(result_or->value, clean_or->value));
    EXPECT_GE(result_or->fault.timeouts, 1u);
    EXPECT_GE(result_or->fault.retries, 1u);
}

TEST(Timeout, SlowButWithinBudgetJustAccumulatesDelay)
{
    const auto w = makeWorkload<Bn254>(512, 0xFA09);
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = faultTestOptions();
    options.transferTimeoutNs = 1e8;
    options.faults.events.push_back(
        {FaultKind::DelayTransfer, 0, 0, 0, /*delayNs=*/1e6});
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_TRUE(result_or.isOk());
    EXPECT_EQ(result_or->fault.timeouts, 0u);
    EXPECT_DOUBLE_EQ(result_or->fault.delayNs, 1e6);
}

// --- Faults under hierarchical topologies / collectives --------------

class TopologyFaultTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kN = std::size_t{1} << 12;

    void
    SetUp() override
    {
        workload_ = makeWorkload<Bn254>(kN, 0xFA10);
        const auto clean_or = tryComputeDistMsm<Bn254>(
            workload_.points, workload_.scalars, cluster_,
            faultTestOptions());
        ASSERT_TRUE(clean_or.isOk());
        clean_ = *clean_or;
    }

    gpusim::Topology topo_ = gpusim::Topology::dgx(2, 4);
    Cluster cluster_{DeviceSpec::a100(), topo_};
    Workload<Bn254> workload_;
    MsmResult<Bn254> clean_;
};

TEST_F(TopologyFaultTest, DeviceKillMidCollectiveReshards)
{
    // Kill every device in turn under a forced ring, tree and
    // reduce-scatter merge: the dead device drops out of the
    // collective schedule entirely (ALL its windows reshard onto
    // survivors) and the result stays bit-identical to the
    // fault-free gather run.
    for (const auto policy :
         {gpusim::CollectivePolicy::Ring,
          gpusim::CollectivePolicy::Tree,
          gpusim::CollectivePolicy::ReduceScatter}) {
        for (int dev = 0; dev < 8; ++dev) {
            auto options = faultTestOptions();
            options.collective = policy;
            options.faults.events.push_back(
                {FaultKind::KillDevice, dev, 0, 0, 0.0});
            const auto result_or = tryComputeDistMsm<Bn254>(
                workload_.points, workload_.scalars, cluster_,
                options);
            ASSERT_TRUE(result_or.isOk())
                << gpusim::collectivePolicyName(policy)
                << " dev=" << dev << ": "
                << result_or.status().toString();
            const auto &r = *result_or;
            EXPECT_TRUE(bitEqual(r.value, clean_.value))
                << gpusim::collectivePolicyName(policy)
                << " dev=" << dev;
            EXPECT_EQ(r.stats, clean_.stats) << "dev=" << dev;
            EXPECT_EQ(r.hostOps, clean_.hostOps) << "dev=" << dev;
            EXPECT_EQ(r.fault.devicesLost, 1u);
            // Under a collective the whole per-device share moves.
            EXPECT_EQ(r.fault.windowsResharded,
                      static_cast<std::uint64_t>(
                          r.plan.numWindows / 8));
            // The topology-aware policy found same-node survivors.
            EXPECT_GE(r.fault.reshardsIntraNode, 1u)
                << "dev=" << dev;
        }
    }
}

TEST_F(TopologyFaultTest, WholeNodeKillReshardsCrossNode)
{
    // Lose all of node 1 (devices 4..7) mid-collective: no same-node
    // survivor exists, so every reshard must cross the inter-node
    // fabric, and the result is still bit-identical.
    auto options = faultTestOptions();
    options.collective = gpusim::CollectivePolicy::Tree;
    for (int dev = 4; dev < 8; ++dev)
        options.faults.events.push_back(
            {FaultKind::KillDevice, dev, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_TRUE(result_or.isOk()) << result_or.status().toString();
    EXPECT_TRUE(bitEqual(result_or->value, clean_.value));
    EXPECT_EQ(result_or->stats, clean_.stats);
    EXPECT_EQ(result_or->fault.devicesLost, 4u);
    EXPECT_GE(result_or->fault.windowsResharded, 4u);
    EXPECT_EQ(result_or->fault.reshardsIntraNode, 0u);
    EXPECT_EQ(result_or->fault.reshardsCrossNode,
              result_or->fault.windowsResharded);
}

TEST_F(TopologyFaultTest, TransientCorruptionMidCollectiveHeals)
{
    // A one-shot corruption of an early device-to-device hop is
    // detected by the keyed RLC digest at the receiving device and
    // healed by a retry of that hop alone — on the pipelined ring
    // and on a sharded reduce-scatter round alike.
    for (const auto policy :
         {gpusim::CollectivePolicy::Ring,
          gpusim::CollectivePolicy::ReduceScatter}) {
        auto options = faultTestOptions();
        options.collective = policy;
        options.faults.events.push_back(
            {FaultKind::CorruptTransfer, -1, 0, /*transfer=*/1, 0.0});
        const auto result_or = tryComputeDistMsm<Bn254>(
            workload_.points, workload_.scalars, cluster_, options);
        ASSERT_TRUE(result_or.isOk())
            << gpusim::collectivePolicyName(policy) << ": "
            << result_or.status().toString();
        EXPECT_TRUE(bitEqual(result_or->value, clean_.value))
            << gpusim::collectivePolicyName(policy);
        EXPECT_EQ(result_or->stats, clean_.stats);
        EXPECT_EQ(result_or->fault.corruptInjected, 1u);
        EXPECT_EQ(result_or->fault.corruptDetected, 1u);
        EXPECT_GE(result_or->fault.retries, 1u);
    }
}

TEST_F(TopologyFaultTest, PersistentCorruptionMidCollectiveIsTyped)
{
    // A device that corrupts every payload it forwards exhausts the
    // retry budget; the engine surfaces the typed Status instead of
    // merging poisoned partial sums.
    auto options = faultTestOptions();
    options.collective = gpusim::CollectivePolicy::Tree;
    options.faults.events.push_back(
        {FaultKind::CorruptDeviceTransfers, 5, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(),
              StatusCode::TransferCorrupt);
}

TEST_F(TopologyFaultTest, AllDevicesLostUnderCollectiveIsTyped)
{
    auto options = faultTestOptions();
    options.collective = gpusim::CollectivePolicy::Ring;
    for (int dev = 0; dev < 8; ++dev)
        options.faults.events.push_back(
            {FaultKind::KillDevice, dev, 0, 0, 0.0});
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(), StatusCode::DeviceLost);
}

// --- Prover integration ----------------------------------------------

TEST(ProverFaults, ExhaustedRetriesSurfaceFromTryProve)
{
    using F = Bn254Fr;
    Prng circuit_prng(0x21);
    const auto built =
        zksnark::buildMulChainCircuit<F>(20, 3, circuit_prng);
    Prng trapdoor_prng(0x6789);
    const auto trapdoor = zksnark::Trapdoor<F>::random(trapdoor_prng);
    const auto keys = zksnark::setup<Bn254>(built.r1cs, trapdoor);
    const Cluster cluster(DeviceSpec::a100(), 2);

    // Clean engines first: tryProve succeeds and verifies.
    Prng prng_ok(0x1111);
    const zksnark::ProverEngines<Bn254> engines(
        keys.pk, cluster, faultTestOptions());
    const auto proof_or = zksnark::tryProve<Bn254>(
        keys.pk, built.r1cs, built.wires, prng_ok, nullptr, nullptr,
        &engines);
    ASSERT_TRUE(proof_or.isOk()) << proof_or.status().toString();
    const std::vector<F> public_inputs(
        built.wires.begin() + 1,
        built.wires.begin() + 1 + built.r1cs.numPublic());
    EXPECT_TRUE(
        zksnark::verify<Bn254>(keys.vk, *proof_or, public_inputs));

    // Persistent corruption on every device: the first MSM exhausts
    // its retries and tryProve returns the typed Status — no abort,
    // no wrong proof.
    auto faulty_options = faultTestOptions();
    faulty_options.faults.events.push_back(
        {FaultKind::CorruptDeviceTransfers, 0, 0, 0, 0.0});
    faulty_options.faults.events.push_back(
        {FaultKind::CorruptDeviceTransfers, 1, 0, 0, 0.0});
    const zksnark::ProverEngines<Bn254> faulty_engines(
        keys.pk, cluster, faulty_options);
    Prng prng_bad(0x1111);
    const auto bad_or = zksnark::tryProve<Bn254>(
        keys.pk, built.r1cs, built.wires, prng_bad, nullptr, nullptr,
        &faulty_engines);
    ASSERT_FALSE(bad_or.isOk());
    EXPECT_EQ(bad_or.status().code(), StatusCode::TransferCorrupt);
}

TEST(ProverFaults, RecoverableFaultsLeaveProofVerifiable)
{
    using F = Bn254Fr;
    Prng circuit_prng(0x22);
    const auto built =
        zksnark::buildMulChainCircuit<F>(16, 3, circuit_prng);
    Prng trapdoor_prng(0x6790);
    const auto trapdoor = zksnark::Trapdoor<F>::random(trapdoor_prng);
    const auto keys = zksnark::setup<Bn254>(built.r1cs, trapdoor);
    const Cluster cluster(DeviceSpec::a100(), 4);

    auto options = faultTestOptions();
    options.faults.events.push_back(
        {FaultKind::KillDevice, 1, 0, 0, 0.0});
    options.faults.events.push_back(
        {FaultKind::CorruptTransfer, -1, 0, 1, 0.0});
    const zksnark::ProverEngines<Bn254> engines(keys.pk, cluster,
                                                options);
    Prng prng(0x3333);
    const auto proof_or = zksnark::tryProve<Bn254>(
        keys.pk, built.r1cs, built.wires, prng, nullptr, nullptr,
        &engines);
    ASSERT_TRUE(proof_or.isOk()) << proof_or.status().toString();
    const std::vector<F> public_inputs(
        built.wires.begin() + 1,
        built.wires.begin() + 1 + built.r1cs.numPublic());
    EXPECT_TRUE(
        zksnark::verify<Bn254>(keys.vk, *proof_or, public_inputs));
}

// --- Determinism of the fault pipeline -------------------------------

TEST(FaultDeterminism, TraceBytesIdenticalAcrossHostThreads)
{
    // The full degraded-mode pipeline — kill, reshard, corruption,
    // detection, retry — must emit byte-identical traces and metrics
    // at every hostThreads setting, exactly like the fault-free path
    // (trace.h's determinism contract).
    const auto w = makeWorkload<Bn254>(1 << 10, 0xFA0A);
    const Cluster cluster(DeviceSpec::a100(), 4);

    std::string reference_trace, reference_metrics;
    XYZZPoint<Bn254> reference_value;
    for (const int threads : {1, 2, 8}) {
        support::TraceRecorder trace;
        auto options = faultTestOptions();
        options.hostThreads = threads;
        options.trace = &trace;
        options.faults.events.push_back(
            {FaultKind::KillDevice, 2, 1, 0, 0.0});
        options.faults.events.push_back(
            {FaultKind::CorruptTransfer, -1, 0, 1, 0.0});
        options.faults.events.push_back(
            {FaultKind::DelayTransfer, 0, 0, 0, /*delayNs=*/1e9});
        options.transferTimeoutNs = 1e6;
        const auto result_or = tryComputeDistMsm<Bn254>(
            w.points, w.scalars, cluster, options);
        ASSERT_TRUE(result_or.isOk())
            << result_or.status().toString();

        std::ostringstream trace_os, metrics_os;
        trace.writeChromeJson(trace_os);
        trace.writeMetricsJson(metrics_os);
        if (threads == 1) {
            reference_trace = trace_os.str();
            reference_metrics = metrics_os.str();
            reference_value = result_or->value;
            EXPECT_GT(reference_trace.size(), 2u);
            EXPECT_NE(reference_trace.find("fault/"),
                      std::string::npos);
            EXPECT_NE(reference_metrics.find("fault/retries"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(bitEqual(result_or->value, reference_value));
            EXPECT_EQ(trace_os.str(), reference_trace)
                << "fault trace drifted at hostThreads=" << threads;
            EXPECT_EQ(metrics_os.str(), reference_metrics)
                << "fault metrics drifted at hostThreads=" << threads;
        }
    }
}

TEST(FaultDeterminism, ReportIdenticalAcrossHostThreads)
{
    const auto w = makeWorkload<Bn254>(512, 0xFA0B);
    const Cluster cluster(DeviceSpec::a100(), 4);

    gpusim::FaultReport reference;
    for (const int threads : {1, 4}) {
        auto options = faultTestOptions();
        options.hostThreads = threads;
        options.faults.events.push_back(
            {FaultKind::KillDevice, 0, 0, 0, 0.0});
        options.faults.events.push_back(
            {FaultKind::CorruptTransfer, -1, 0, 2, 0.0});
        const auto result_or = tryComputeDistMsm<Bn254>(
            w.points, w.scalars, cluster, options);
        ASSERT_TRUE(result_or.isOk());
        if (threads == 1) {
            reference = result_or->fault;
            EXPECT_EQ(reference.devicesLost, 1u);
        } else {
            const auto &r = result_or->fault;
            EXPECT_EQ(r.faultsInjected, reference.faultsInjected);
            EXPECT_EQ(r.corruptInjected, reference.corruptInjected);
            EXPECT_EQ(r.corruptDetected, reference.corruptDetected);
            EXPECT_EQ(r.retries, reference.retries);
            EXPECT_EQ(r.windowsResharded,
                      reference.windowsResharded);
            EXPECT_EQ(r.transfers, reference.transfers);
            EXPECT_EQ(r.checksummed, reference.checksummed);
            EXPECT_EQ(r.verifyEcOps, reference.verifyEcOps);
        }
    }
}

// --- Zero-fault overhead ---------------------------------------------

TEST(FaultOverhead, ChecksumsOffReproducesPreFaultStatistics)
{
    // verifyChecksums must not leak into the determinism books:
    // stats, hostOps and the result are identical with and without
    // the verification layer (its EC work lives in FaultReport).
    const auto w = makeWorkload<Bn254>(1 << 10, 0xFA0C);
    const Cluster cluster(DeviceSpec::a100(), 4);

    auto with = faultTestOptions();
    const auto with_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, with);
    ASSERT_TRUE(with_or.isOk());

    auto without = faultTestOptions();
    without.verifyChecksums = false;
    const auto without_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, without);
    ASSERT_TRUE(without_or.isOk());

    EXPECT_TRUE(bitEqual(with_or->value, without_or->value));
    EXPECT_EQ(with_or->stats, without_or->stats);
    EXPECT_EQ(with_or->hostOps, without_or->hostOps);
    EXPECT_GT(with_or->fault.verifyEcOps, 0u);
    EXPECT_EQ(without_or->fault.verifyEcOps, 0u);
}

TEST(FaultOverhead, ChecksumOverheadUnderThreePercentAt2e18)
{
    // The acceptance gate: enabling transfer checksums must move the
    // fault-free end-to-end estimate at 2^18 by less than 3%. The
    // raw digest work (verifyNs) is nonzero, but it overlaps the GPU
    // stage exactly like the CPU bucket-reduce, so almost none of it
    // reaches the critical path.
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options; // defaults: checksums on
    const auto t =
        estimateDistMsm(curve, 1ull << 18, cluster, options);
    ASSERT_GT(t.verifyNs, 0.0);

    MsmOptions off;
    off.verifyChecksums = false;
    const auto t_off =
        estimateDistMsm(curve, 1ull << 18, cluster, off);
    EXPECT_DOUBLE_EQ(t_off.verifyNs, 0.0);
    const double overhead = t.totalNs() - t_off.totalNs();
    EXPECT_GE(overhead, 0.0);
    EXPECT_LT(overhead, 0.03 * t_off.totalNs())
        << "checksum overhead " << overhead << " ns on a "
        << t_off.totalNs() << " ns baseline";
    // The exposed overhead can never exceed the raw digest work.
    EXPECT_LE(overhead, t.verifyNs);
}

} // namespace
} // namespace distmsm::msm
