/**
 * @file
 * Tests for the bucket-scatter kernels (Section 3.2.1) and the
 * per-thread workload model (Section 3.1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/msm/planner.h"
#include "src/msm/scatter.h"
#include "src/msm/workload_model.h"
#include "src/support/prng.h"

namespace distmsm::msm {
namespace {

std::vector<std::uint32_t>
randomBucketIds(std::size_t n, unsigned s, Prng &prng)
{
    std::vector<std::uint32_t> ids(n);
    for (auto &id : ids)
        id = static_cast<std::uint32_t>(prng.below(1u << s));
    return ids;
}

/** Sorted per-bucket contents for comparing scatter outputs. */
std::vector<std::vector<std::uint32_t>>
normalized(ScatterResult r)
{
    for (auto &b : r.buckets)
        std::sort(b.begin(), b.end());
    return r.buckets;
}

ScatterConfig
smallConfig()
{
    ScatterConfig c;
    c.blockDim = 64;
    c.gridDim = 8;
    c.sharedBytesPerBlock = 32 * 1024;
    return c;
}

TEST(Scatter, NaiveCoversEveryElementOnce)
{
    Prng prng(0x5CA7);
    const unsigned s = 6;
    const auto ids = randomBucketIds(2000, s, prng);
    const auto result = naiveScatter(ids, s, smallConfig());
    ASSERT_TRUE(result.ok);
    std::size_t total = 0;
    for (std::size_t b = 0; b < result.buckets.size(); ++b) {
        for (auto point : result.buckets[b]) {
            ASSERT_LT(point, ids.size());
            EXPECT_EQ(ids[point], b);
        }
        total += result.buckets[b].size();
    }
    const std::size_t nonzero =
        ids.size() - std::count(ids.begin(), ids.end(), 0u);
    EXPECT_EQ(total, nonzero);
    EXPECT_TRUE(result.buckets[0].empty());
}

TEST(Scatter, HierarchicalMatchesNaive)
{
    Prng prng(0x5CA8);
    for (unsigned s : {4u, 6u, 9u}) {
        const auto ids = randomBucketIds(3000, s, prng);
        const auto naive = naiveScatter(ids, s, smallConfig());
        const auto hier = hierarchicalScatter(ids, s, smallConfig());
        ASSERT_TRUE(naive.ok);
        ASSERT_TRUE(hier.ok);
        EXPECT_EQ(normalized(naive), normalized(hier)) << "s=" << s;
    }
}

TEST(Scatter, HierarchicalHandlesMultipleTiles)
{
    // Force several tile rounds: tiny shared memory.
    Prng prng(0x5CA9);
    ScatterConfig cfg = smallConfig();
    cfg.sharedBytesPerBlock = 3 * 1024;
    const unsigned s = 5;
    const auto ids = randomBucketIds(20000, s, prng);
    const auto naive = naiveScatter(ids, s, cfg);
    const auto hier = hierarchicalScatter(ids, s, cfg);
    ASSERT_TRUE(hier.ok);
    EXPECT_EQ(normalized(naive), normalized(hier));
}

TEST(Scatter, SharedMemoryFailureAboveS14)
{
    // Figure 11: "when s > 14, shared memory is insufficient to hold
    // the size of each bucket, leading to execution failures" (with
    // the A100's 164KB budget).
    ScatterConfig cfg; // defaults: 1024 threads, 160KB
    const std::vector<std::uint32_t> ids(1024, 1);
    EXPECT_TRUE(hierarchicalScatter(ids, 14, cfg).ok);
    EXPECT_FALSE(hierarchicalScatter(ids, 15, cfg).ok);
    EXPECT_FALSE(hierarchicalScatter(ids, 18, cfg).ok);
    // The naive kernel has no such limit.
    EXPECT_TRUE(naiveScatter(ids, 18, cfg).ok);
}

TEST(Scatter, HierarchicalCutsGlobalAtomics)
{
    Prng prng(0x5CAA);
    const unsigned s = 6;
    const auto ids = randomBucketIds(32768, s, prng);
    const auto naive = naiveScatter(ids, s, smallConfig());
    const auto hier = hierarchicalScatter(ids, s, smallConfig());
    ASSERT_TRUE(naive.ok && hier.ok);
    // One atomic per element vs one per (block, tile, bucket).
    EXPECT_GT(naive.stats.globalAtomics,
              8 * hier.stats.globalAtomics);
    // The contention collapses too.
    EXPECT_GT(naive.stats.globalMaxConflict,
              hier.stats.globalMaxConflict);
    // The price: shared-memory atomics.
    EXPECT_GT(hier.stats.sharedAtomics, naive.stats.sharedAtomics);
}

TEST(Scatter, NaiveContentionScalesWithConcurrency)
{
    // Section 3.2: fewer buckets => more concurrent writes per
    // address.
    Prng prng(0x5CAB);
    const auto cfg = smallConfig();
    const auto wide = naiveScatter(randomBucketIds(16384, 10, prng),
                                   10, cfg);
    const auto narrow = naiveScatter(randomBucketIds(16384, 4, prng),
                                     4, cfg);
    EXPECT_GT(narrow.stats.globalMaxConflict,
              4 * wide.stats.globalMaxConflict);
}

TEST(Scatter, PaperRegisterEstimate)
{
    // "The corresponding register usage per thread is 32" for K=64.
    EXPECT_EQ(hierarchicalRegistersPerThread(64), 32);
}

TEST(Scatter, SynthesizedStatsTrackMeasured)
{
    Prng prng(0x5CAC);
    const auto cfg = smallConfig();
    for (unsigned s : {4u, 8u}) {
        const std::size_t n = 32768;
        const auto ids = randomBucketIds(n, s, prng);
        for (bool hier : {false, true}) {
            const auto measured =
                hier ? hierarchicalScatter(ids, s, cfg)
                     : naiveScatter(ids, s, cfg);
            const auto synth =
                synthesizeScatterStats(hier, n, s, cfg);
            ASSERT_TRUE(measured.ok);
            auto close = [&](double a, double b) {
                if (a == 0 && b == 0)
                    return true;
                return a < 3 * b + 64 && b < 3 * a + 64;
            };
            EXPECT_TRUE(close(measured.stats.globalAtomics,
                              synth.globalAtomics))
                << "s=" << s << " hier=" << hier << " measured="
                << measured.stats.globalAtomics << " synth="
                << synth.globalAtomics;
            EXPECT_TRUE(close(measured.stats.sharedAtomics,
                              synth.sharedAtomics))
                << "s=" << s << " hier=" << hier;
            EXPECT_TRUE(close(measured.stats.globalConflictWeight,
                              synth.globalConflictWeight))
                << "s=" << s << " hier=" << hier << " measured="
                << measured.stats.globalConflictWeight << " synth="
                << synth.globalConflictWeight;
        }
    }
}

TEST(WorkloadModel, WindowCount)
{
    EXPECT_EQ(windowCount(253, 11), 23u);
    EXPECT_EQ(windowCount(253, 16), 16u);
    EXPECT_EQ(windowCount(254, 16), 16u);
    EXPECT_EQ(windowCount(753, 16), 48u);
    EXPECT_EQ(windowCount(16, 16), 1u);
}

TEST(WorkloadModel, SingleGpuOptimumMatchesPaperFigure3)
{
    // Figure 3 (N = 2^26, N_T = 2^16, lambda = 253): "for a single
    // GPU, s is best set at 20."
    WorkloadConfig wc{1ull << 26, 253, 1, 1ull << 16};
    EXPECT_EQ(optimalWindowSize(wc), 20u);
}

TEST(WorkloadModel, OptimumShrinksWithMoreGpus)
{
    // Figure 3's qualitative claim: the optimal window size is
    // platform-dependent and decreases as GPUs are added.
    WorkloadConfig wc{1ull << 26, 253, 1, 1ull << 16};
    unsigned prev = optimalWindowSize(wc);
    for (int gpus : {2, 4, 8, 16}) {
        wc.numGpus = gpus;
        const unsigned s = optimalWindowSize(wc);
        EXPECT_LE(s, prev) << gpus << " GPUs";
        prev = s;
    }
    EXPECT_LT(prev, 20u);
}

TEST(WorkloadModel, PerThreadWorkloadDropsWithGpus)
{
    WorkloadConfig wc{1ull << 26, 253, 1, 1ull << 16};
    double prev = perThreadWorkload(wc, 16);
    for (int gpus : {2, 4, 8, 16, 32}) {
        wc.numGpus = gpus;
        const double cost = perThreadWorkload(wc, 16);
        EXPECT_LT(cost, prev);
        prev = cost;
    }
}

TEST(WorkloadModel, SplitFormulaEngagesWhenGpusExceedWindows)
{
    // 32 GPUs, s = 16 -> 16 windows: buckets split across 2 GPUs.
    WorkloadConfig wc{1ull << 26, 253, 32, 1ull << 16};
    const double split = perThreadWorkload(wc, 16);
    wc.numGpus = 16;
    const double whole = perThreadWorkload(wc, 16);
    EXPECT_LT(split, whole);
}

TEST(WorkloadModel, BucketReduceTermGrowsWithS)
{
    // At fixed GPU count the 2s * 2^s / N_T term eventually
    // dominates: the cost must turn upward for very large windows.
    WorkloadConfig wc{1ull << 26, 253, 16, 1ull << 16};
    EXPECT_GT(perThreadWorkload(wc, 24), perThreadWorkload(wc, 18));
}

} // namespace
} // namespace distmsm::msm
