/**
 * @file
 * Tests for the fixed-base precomputation subsystem: the combined
 * single-bucket-pass engine path, the cross-proof BaseTableCache,
 * the planner's memory-budget decision, and the Groth16 prover
 * plumbed through engine-backed MSMs.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/precompute.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"
#include "src/support/trace.h"
#include "src/zksnark/groth16.h"
#include "src/zksnark/workloads.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;

MsmOptions
testOptions(unsigned s)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

template <typename Curve>
gpusim::CurveProfile
profileOf()
{
    return gpusim::CurveProfile{
        Curve::kName, Curve::Fq::Params::kBits, Curve::kScalarBits,
        Curve::kAIsZero,
        glv::CurveGlv<Curve>::kSupported ? glv::kHalfScalarBits : 0};
}

/** All 8 {glv, batchAffine, precompute} combos against msmNaive. */
template <typename Curve>
void
runAllFlagCombos(std::uint64_t seed)
{
    Prng prng(seed);
    const std::size_t n = 150;
    const auto points = generatePoints<Curve>(n, prng);
    const auto scalars = generateScalars<Curve>(n, prng);
    const auto naive = msmNaive<Curve>(points, scalars);
    const Cluster cluster(DeviceSpec::a100(), 4);
    for (const bool glv : {false, true}) {
        for (const bool batch_affine : {false, true}) {
            for (const bool precompute : {false, true}) {
                MsmOptions options = testOptions(5);
                options.glv = glv;
                options.batchAffine = batch_affine;
                options.precompute = precompute;
                const auto result = computeDistMsm<Curve>(
                    points, scalars, cluster, options);
                EXPECT_EQ(result.value, naive)
                    << Curve::kName << " glv=" << glv
                    << " batchAffine=" << batch_affine
                    << " precompute=" << precompute;
                if (precompute) {
                    EXPECT_TRUE(result.plan.precompute);
                    EXPECT_GT(result.plan.tableBytes, 0u);
                    EXPECT_GT(result.hostOps, 0u);
                }
            }
        }
    }
}

TEST(PrecomputeKat, AllFlagCombosBn254)
{
    runAllFlagCombos<Bn254>(0xC0DE);
}

TEST(PrecomputeKat, AllFlagCombosBls381)
{
    runAllFlagCombos<Bls381>(0xC1DE);
}

TEST(PrecomputeKat, SignedDigitCombosMatchNaive)
{
    Prng prng(0xC2DE);
    const std::size_t n = 120;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const auto naive = msmNaive<Bn254>(points, scalars);
    const Cluster cluster(DeviceSpec::a100(), 4);
    for (const bool glv : {false, true}) {
        for (const bool batch_affine : {false, true}) {
            MsmOptions options = testOptions(5);
            options.signedDigits = true;
            options.glv = glv;
            options.batchAffine = batch_affine;
            options.precompute = true;
            const auto result = computeDistMsm<Bn254>(
                points, scalars, cluster, options);
            EXPECT_EQ(result.value, naive)
                << "glv=" << glv
                << " batchAffine=" << batch_affine;
        }
    }
}

TEST(PrecomputeDeterminism, BitIdenticalAcrossHostThreads)
{
    Prng prng(0xD0D0);
    const std::size_t n = 170;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), 4);

    auto run = [&](int host_threads) {
        MsmOptions options = testOptions(6);
        options.precompute = true;
        options.glv = true;
        options.batchAffine = true;
        options.signedDigits = true;
        options.hostThreads = host_threads;
        // Fresh tables each run: the parallel table build itself is
        // part of the determinism contract.
        BaseTableCache<Bn254>::global().clear();
        const MsmEngine<Bn254> engine(points, cluster, options);
        return engine.compute(scalars);
    };

    const auto base = run(1);
    for (const int threads : {2, 4}) {
        const auto other = run(threads);
        EXPECT_EQ(other.value, base.value) << threads;
        EXPECT_EQ(other.hostOps, base.hostOps) << threads;
        EXPECT_EQ(other.stats.paccOps, base.stats.paccOps);
        EXPECT_EQ(other.stats.paddOps, base.stats.paddOps);
        EXPECT_EQ(other.stats.affineAddOps,
                  base.stats.affineAddOps);
        EXPECT_EQ(other.stats.globalAtomics,
                  base.stats.globalAtomics);
    }
}

TEST(BaseTableCacheTest, SecondEngineSkipsTableBuild)
{
    Prng prng(0xCAC4E);
    const std::size_t n = 100;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const auto naive = msmNaive<Bn254>(points, scalars);
    const Cluster cluster(DeviceSpec::a100(), 2);
    MsmOptions options = testOptions(5);
    options.precompute = true;

    auto &cache = BaseTableCache<Bn254>::global();
    cache.clear();
    const auto before = cache.stats();

    support::TraceRecorder trace;
    options.trace = &trace;

    const MsmEngine<Bn254> cold(points, cluster, options);
    EXPECT_FALSE(cold.tableCacheHit());
    EXPECT_EQ(cold.compute(scalars).value, naive);
    EXPECT_EQ(cache.stats().misses, before.misses + 1);
    EXPECT_EQ(cache.stats().hits, before.hits);

    // Same bases + same geometry: the second engine must reuse the
    // table instead of rebuilding (the cross-proof cache contract).
    const MsmEngine<Bn254> warm(points, cluster, options);
    EXPECT_TRUE(warm.tableCacheHit());
    EXPECT_EQ(warm.compute(scalars).value, naive);
    EXPECT_EQ(cache.stats().misses, before.misses + 1);
    EXPECT_EQ(cache.stats().hits, before.hits + 1);

    // The metrics lanes record the build-vs-hit split.
    EXPECT_EQ(trace.metrics().value("engine/precompute/cache_misses"),
              1.0);
    EXPECT_EQ(trace.metrics().value("engine/precompute/cache_hits"),
              1.0);
    EXPECT_GT(trace.metrics().value("engine/precompute/table_bytes"),
              0.0);

    // Different geometry misses again (the key includes the window).
    MsmOptions other = options;
    other.windowBitsOverride = 6;
    const MsmEngine<Bn254> regeo(points, cluster, other);
    EXPECT_FALSE(regeo.tableCacheHit());
    EXPECT_EQ(regeo.compute(scalars).value, naive);
}

TEST(BaseTableCacheTest, FingerprintIsOrderAndValueSensitive)
{
    Prng prng(0xF1F1);
    auto points = generatePoints<Bn254>(16, prng);
    const auto base = fingerprintBases<Bn254>(points);
    std::swap(points[0], points[1]);
    EXPECT_NE(fingerprintBases<Bn254>(points), base);
    std::swap(points[0], points[1]);
    EXPECT_EQ(fingerprintBases<Bn254>(points), base);
    points.pop_back();
    EXPECT_NE(fingerprintBases<Bn254>(points), base);
}

TEST(BaseTableCacheTest, LruEvictsOldestEntry)
{
    BaseTableCache<Bn254> cache; // local instance, not global()
    cache.setCapacity(2);
    auto build = [] {
        return std::make_shared<PrecomputeTable<Bn254>>();
    };
    const auto key = [](std::uint64_t fp) {
        TableCacheKey k;
        k.fingerprint = fp;
        return k;
    };
    cache.findOrBuild(key(1), build);
    cache.findOrBuild(key(2), build);
    cache.findOrBuild(key(1), build); // refresh 1: now 2 is LRU
    cache.findOrBuild(key(3), build); // evicts 2
    EXPECT_EQ(cache.size(), 2u);
    bool hit = false;
    cache.findOrBuild(key(1), build, &hit);
    EXPECT_TRUE(hit);
    cache.findOrBuild(key(2), build, &hit);
    EXPECT_FALSE(hit); // was evicted
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PrecomputePlanner, DeclinesWhenTableExceedsMemoryBudget)
{
    // 200 bases * 51 windows * 64 B = 652 KiB of tables against a
    // 1 MiB device (budget: half). The window is pinned, so the
    // planner cannot shrink the table and must decline.
    DeviceSpec tiny = DeviceSpec::a100();
    tiny.globalMemBytes = 1ull << 20;
    const Cluster cluster(tiny, 4);
    MsmOptions options = testOptions(5);
    options.precompute = true;
    const auto plan =
        planMsm(profileOf<Bn254>(), 200, cluster, options);
    EXPECT_FALSE(plan.precompute);
    EXPECT_EQ(plan.tableBytes, 0u);
    EXPECT_EQ(plan.windowBits, 5u);

    // The engine honors the declined plan and still computes the
    // right answer through the per-window path.
    Prng prng(0xDEC1);
    const auto points = generatePoints<Bn254>(200, prng);
    const auto scalars = generateScalars<Bn254>(200, prng);
    const auto result =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    EXPECT_FALSE(result.plan.precompute);
    EXPECT_EQ(result.value, msmNaive<Bn254>(points, scalars));
}

TEST(PrecomputePlanner, GrowsWindowUntilTableFits)
{
    // With the window choice left to the planner, a tight budget
    // shrinks the table by growing the window (fewer rows) instead
    // of declining.
    DeviceSpec tight = DeviceSpec::a100();
    tight.globalMemBytes = 3ull << 20; // budget 1.5 MiB
    const Cluster cluster(tight, 4);
    MsmOptions options;
    options.precompute = true;
    const std::uint64_t n = 1000;
    const auto plan =
        planMsm(profileOf<Bn254>(), n, cluster, options);
    ASSERT_TRUE(plan.precompute);
    EXPECT_LE(plan.tableBytes, tight.globalMemBytes / 2);
    EXPECT_EQ(plan.tableBytes,
              precomputeTableBytes(n, plan.numWindows, 32));

    MsmOptions unbounded = options;
    const Cluster big(DeviceSpec::a100(), 4);
    const auto roomy =
        planMsm(profileOf<Bn254>(), n, big, unbounded);
    ASSERT_TRUE(roomy.precompute);
    EXPECT_GE(plan.windowBits, roomy.windowBits);
    EXPECT_GT(plan.windowBits, 0u);
}

TEST(PrecomputePlanner, UnmodeledMemoryIsUnbounded)
{
    DeviceSpec nomem = DeviceSpec::a100();
    nomem.globalMemBytes = 0;
    const Cluster cluster(nomem, 4);
    MsmOptions options = testOptions(5);
    options.precompute = true;
    const auto plan =
        planMsm(profileOf<Bn254>(), 1 << 12, cluster, options);
    EXPECT_TRUE(plan.precompute);
}

TEST(PrecomputeTimeline, EstimateDropsDoublingChainAndPricesBuild)
{
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options;
    options.hierarchicalScatter = false;
    const auto base = estimateDistMsm(profileOf<Bn254>(), 1 << 20,
                                      cluster, options);
    options.precompute = true;
    const auto pre = estimateDistMsm(profileOf<Bn254>(), 1 << 20,
                                     cluster, options);
    EXPECT_EQ(base.tableBuildNs, 0.0);
    EXPECT_GT(pre.tableBuildNs, 0.0);
    // The one-time build is amortized, not part of the steady state.
    const double pre_total = pre.totalNs();
    EXPECT_LT(pre_total, pre_total + pre.tableBuildNs);
    // No per-window host chain: the combined shape's window reduce
    // is strictly cheaper.
    EXPECT_LT(pre.windowReduceNs, base.windowReduceNs);
}

TEST(Groth16Engines, EngineBackedProofVerifiesAndReusesCache)
{
    using F = Bn254::Fr;
    Prng circuit_prng(0x6E61);
    const auto built =
        zksnark::buildMulChainCircuit<F>(24, 2, circuit_prng);
    const auto trapdoor = zksnark::Trapdoor<F>::random(circuit_prng);
    const auto keys = zksnark::setup<Bn254>(built.r1cs, trapdoor);
    const std::vector<F> public_inputs(
        built.wires.begin() + 1,
        built.wires.begin() + 1 + built.r1cs.numPublic());

    const Cluster cluster(DeviceSpec::a100(), 2);
    MsmOptions options = testOptions(5);
    options.precompute = true;
    options.glv = true;
    options.batchAffine = true;

    BaseTableCache<Bn254>::global().clear();
    const auto before = BaseTableCache<Bn254>::global().stats();

    const zksnark::ProverEngines<Bn254> engines(keys.pk, cluster,
                                                options);
    const auto after_build = BaseTableCache<Bn254>::global().stats();
    EXPECT_GT(after_build.misses, before.misses);

    Prng prng(0x6E62);
    const auto proof =
        zksnark::prove<Bn254>(keys.pk, built.r1cs, built.wires, prng,
                              nullptr, nullptr, &engines);
    EXPECT_TRUE(zksnark::verify<Bn254>(keys.vk, proof,
                                       public_inputs));

    // The engine-backed proof is the same group element family as
    // the serial reference (randomness aside, both must verify; the
    // MSM values are pinned by proverMsm's bit-identical contract).
    Prng prng2(0x6E62);
    const auto serial = zksnark::prove<Bn254>(keys.pk, built.r1cs,
                                              built.wires, prng2);
    EXPECT_TRUE(proof.a == serial.a);
    EXPECT_TRUE(proof.c == serial.c);

    // A second proving session over the same proving key builds no
    // new tables: every per-table lookup hits.
    const zksnark::ProverEngines<Bn254> again(keys.pk, cluster,
                                              options);
    const auto after_again = BaseTableCache<Bn254>::global().stats();
    EXPECT_EQ(after_again.misses, after_build.misses);
    EXPECT_GT(after_again.hits, after_build.hits);
}

} // namespace
} // namespace distmsm::msm
