/**
 * @file
 * Tests for the zkSNARK pipeline: R1CS satisfaction, the QAP
 * reduction and quotient polynomial, Groth16 setup / prove / verify
 * with the trapdoor oracle, and the synthetic workload circuits.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/zksnark/groth16.h"
#include "src/zksnark/workloads.h"

namespace distmsm::zksnark {
namespace {

using F = Bn254Fr;

BuiltCircuit<F>
smallCircuit(std::size_t constraints = 30, std::uint64_t seed = 0x21)
{
    Prng prng(seed);
    return buildMulChainCircuit<F>(constraints, 3, prng);
}

TEST(R1csTest, SatisfactionDetectsTampering)
{
    auto built = smallCircuit();
    EXPECT_TRUE(built.r1cs.isSatisfied(built.wires));
    auto bad = built.wires;
    bad[5] += F::one();
    EXPECT_FALSE(built.r1cs.isSatisfied(bad));
    // The constant-one wire is mandatory.
    auto no_one = built.wires;
    no_one[0] = F::fromU64(2);
    EXPECT_FALSE(built.r1cs.isSatisfied(no_one));
}

TEST(R1csTest, LinearCombinationEvaluates)
{
    LinearCombination<F> lc;
    lc.add(0, F::fromU64(7));
    lc.add(2, F::fromU64(3));
    const std::vector<F> wires = {F::one(), F::fromU64(100),
                                  F::fromU64(5)};
    EXPECT_EQ(lc.evaluate(wires), F::fromU64(22));
}

TEST(Qap, DomainSizeIsNextPowerOfTwo)
{
    auto c30 = smallCircuit(30);
    EXPECT_EQ(qapDomainSize(c30.r1cs), 32u);
    auto c32 = smallCircuit(32);
    EXPECT_EQ(qapDomainSize(c32.r1cs), 32u);
    auto c33 = smallCircuit(33);
    EXPECT_EQ(qapDomainSize(c33.r1cs), 64u);
}

TEST(Qap, QuotientIdentityHoldsAtRandomPoints)
{
    // A_w(t) * B_w(t) - C_w(t) == h(t) * Z(t) for satisfied
    // witnesses — the QAP identity the quotient computation must
    // realize exactly.
    const auto built = smallCircuit(25);
    const auto h = computeQuotientH(built.r1cs, built.wires);
    Prng prng(0x9A9);
    for (int iter = 0; iter < 4; ++iter) {
        const F t = F::random(prng);
        const auto ev = evaluateQapAt(built.r1cs, t);
        F aw = F::zero(), bw = F::zero(), cw = F::zero();
        for (std::size_t j = 0; j < built.wires.size(); ++j) {
            aw += built.wires[j] * ev.a[j];
            bw += built.wires[j] * ev.b[j];
            cw += built.wires[j] * ev.c[j];
        }
        EXPECT_EQ(aw * bw - cw,
                  ntt::evaluatePoly(h, t) * ev.zt);
    }
}

TEST(Qap, WirePolynomialsInterpolateRows)
{
    // A_j(w^i) must equal the coefficient of wire j in row i; check
    // via the QAP evaluation at a domain-adjacent... random point by
    // comparing against direct Lagrange interpolation of one wire.
    const auto built = smallCircuit(8);
    const std::size_t n = qapDomainSize(built.r1cs);
    const ntt::EvaluationDomain<F> domain(n);
    Prng prng(0x9AA);
    const F t = F::random(prng);
    const auto ev = evaluateQapAt(built.r1cs, t);

    // Wire z0 (index 4 = 1 + 3 public) appears in constraint 0 of
    // the chain circuit with coefficient 1 in A.
    // Reconstruct A_j(t) for that wire by direct interpolation.
    const std::uint32_t wire = 4;
    std::vector<F> evals(n, F::zero());
    const auto &cs = built.r1cs.constraints();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        for (const auto &[w, coeff] : cs[i].a.terms) {
            if (w == wire)
                evals[i] += coeff;
        }
    }
    auto coeffs = evals;
    domain.inverse(coeffs);
    EXPECT_EQ(ntt::evaluatePoly(coeffs, t), ev.a[wire]);
}

class Groth16Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        built_ = smallCircuit(20);
        Prng prng(0x6789);
        trapdoor_ = Trapdoor<F>::random(prng);
        keys_ = setup<Bn254>(built_.r1cs, trapdoor_);
    }

    std::vector<F>
    publicInputs() const
    {
        return {built_.wires.begin() + 1,
                built_.wires.begin() + 1 + built_.r1cs.numPublic()};
    }

    BuiltCircuit<F> built_{R1cs<F>(2, 1), {}};
    Trapdoor<F> trapdoor_;
    KeyPair<Bn254> keys_;
};

TEST_F(Groth16Test, HonestProofVerifies)
{
    Prng prng(0x1111);
    ProverTiming timing;
    const auto proof = prove<Bn254>(keys_.pk, built_.r1cs,
                                    built_.wires, prng, &timing);
    EXPECT_TRUE(verify<Bn254>(keys_.vk, proof, publicInputs()));
    EXPECT_GT(timing.msmPoints, 0u);
    EXPECT_EQ(timing.domainSize, 32u);
}

TEST_F(Groth16Test, ProofsAreRandomizedButBothVerify)
{
    Prng prng_a(1), prng_b(2);
    const auto pa = prove<Bn254>(keys_.pk, built_.r1cs, built_.wires,
                                 prng_a);
    const auto pb = prove<Bn254>(keys_.pk, built_.r1cs, built_.wires,
                                 prng_b);
    EXPECT_FALSE(pa.a == pb.a); // zero-knowledge blinding differs
    EXPECT_TRUE(verify<Bn254>(keys_.vk, pa, publicInputs()));
    EXPECT_TRUE(verify<Bn254>(keys_.vk, pb, publicInputs()));
}

TEST_F(Groth16Test, TamperedProofRejected)
{
    Prng prng(0x2222);
    auto proof = prove<Bn254>(keys_.pk, built_.r1cs, built_.wires,
                              prng);
    auto bad = proof;
    bad.cScalar += F::one();
    EXPECT_FALSE(verify<Bn254>(keys_.vk, bad, publicInputs()));
    bad = proof;
    bad.a = pdbl(bad.a); // point no longer matches its shadow
    EXPECT_FALSE(verify<Bn254>(keys_.vk, bad, publicInputs()));
}

TEST_F(Groth16Test, WrongPublicInputRejected)
{
    Prng prng(0x3333);
    const auto proof = prove<Bn254>(keys_.pk, built_.r1cs,
                                    built_.wires, prng);
    auto inputs = publicInputs();
    inputs[0] += F::one();
    EXPECT_FALSE(verify<Bn254>(keys_.vk, proof, inputs));
    inputs = publicInputs();
    inputs.pop_back();
    EXPECT_FALSE(verify<Bn254>(keys_.vk, proof, inputs));
}

TEST_F(Groth16Test, ProofSizeIsConstant)
{
    // Succinctness: the proof is three group elements regardless of
    // circuit size (the paper quotes 127 bytes / O(1)).
    const auto big = smallCircuit(60, 0x44);
    Prng prng(0x4444);
    const auto keys2 = setup<Bn254>(big.r1cs, trapdoor_);
    const auto p2 = prove<Bn254>(keys2.pk, big.r1cs, big.wires, prng);
    EXPECT_EQ(sizeof(p2.a) + sizeof(p2.b) + sizeof(p2.c),
              3 * sizeof(XYZZPoint<Bn254>));
    EXPECT_TRUE(verify<Bn254>(
        keys2.vk, p2,
        {big.wires.begin() + 1,
         big.wires.begin() + 1 + big.r1cs.numPublic()}));
}

TEST(Workloads, Table4Descriptors)
{
    const auto &specs = table4Workloads();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_STREQ(specs[0].name, "Zcash-Sprout");
    EXPECT_EQ(specs[0].constraints, 2585747u);
    EXPECT_DOUBLE_EQ(specs[2].libsnarkSeconds, 5036.7);
    // Paper speedups are ~25x.
    for (const auto &s : specs) {
        const double speedup =
            s.libsnarkSeconds / s.paperDistMsmSeconds;
        EXPECT_GT(speedup, 24.0);
        EXPECT_LT(speedup, 27.0);
    }
}

TEST(Workloads, StageFractionsSumToOne)
{
    const StageFractions f;
    EXPECT_NEAR(f.msm + f.ntt + f.others, 1.0, 1e-9);
}

TEST(Workloads, CircuitSizesScale)
{
    Prng prng(0x55);
    const auto c = buildMulChainCircuit<F>(100, 5, prng);
    EXPECT_EQ(c.r1cs.numConstraints(), 100u);
    EXPECT_EQ(c.r1cs.numPublic(), 5u);
    EXPECT_TRUE(c.r1cs.isSatisfied(c.wires));
}

} // namespace
} // namespace distmsm::zksnark
