/**
 * @file
 * Tests for the NTT: round trips, agreement with the naive DFT,
 * polynomial multiplication, coset transforms and vanishing
 * polynomials, across the NTT-friendly scalar fields.
 */

#include <gtest/gtest.h>

#include "src/field/field_params.h"
#include "src/ntt/ntt.h"
#include "src/support/prng.h"

namespace distmsm::ntt {
namespace {

template <typename P>
class NttTest : public ::testing::Test
{
  protected:
    using F = Fp<P>;
    Prng prng_{0x77};

    std::vector<F>
    randomPoly(std::size_t n)
    {
        std::vector<F> v(n);
        for (auto &x : v)
            x = F::random(prng_);
        return v;
    }
};

using NttFields =
    ::testing::Types<Bn254FrParams, Bls377FrParams, Bls381FrParams,
                     Mnt4753FrParams>;
TYPED_TEST_SUITE(NttTest, NttFields);

TYPED_TEST(NttTest, RoundTrip)
{
    using F = typename NttTest<TypeParam>::F;
    for (std::size_t n : {1u, 2u, 8u, 64u, 256u}) {
        const EvaluationDomain<F> domain(n);
        const auto original = this->randomPoly(n);
        auto work = original;
        domain.forward(work);
        domain.inverse(work);
        EXPECT_EQ(work, original) << "n=" << n;
    }
}

TYPED_TEST(NttTest, MatchesNaiveDft)
{
    using F = typename NttTest<TypeParam>::F;
    const std::size_t n = 16;
    const EvaluationDomain<F> domain(n);
    const auto coeffs = this->randomPoly(n);
    auto evals = coeffs;
    domain.forward(evals);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(evals[i], evaluatePoly(coeffs, domain.element(i)))
            << "i=" << i;
    }
}

TYPED_TEST(NttTest, RootHasExactOrder)
{
    using F = typename NttTest<TypeParam>::F;
    const std::size_t n = 64;
    const EvaluationDomain<F> domain(n);
    F p = domain.root();
    for (int i = 0; i < 5; ++i)
        p = p.sqr(); // root^32
    EXPECT_FALSE(p == F::one());
    EXPECT_EQ(p.sqr(), F::one());
}

TYPED_TEST(NttTest, PolynomialMultiply)
{
    using F = typename NttTest<TypeParam>::F;
    const auto a = this->randomPoly(13);
    const auto b = this->randomPoly(7);
    const auto product = multiplyPolys(a, b);
    ASSERT_EQ(product.size(), 19u);
    // Schoolbook reference.
    std::vector<F> want(19, F::zero());
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j)
            want[i + j] += a[i] * b[j];
    }
    EXPECT_EQ(product, want);
}

TYPED_TEST(NttTest, CosetRoundTrip)
{
    using F = typename NttTest<TypeParam>::F;
    const std::size_t n = 32;
    const EvaluationDomain<F> domain(n);
    const F g = F::fromU64(TypeParam::kQnrSmall);
    const auto original = this->randomPoly(n);
    auto work = original;
    domain.toCoset(work, g);
    domain.forward(work);
    domain.inverse(work);
    domain.fromCoset(work, g);
    EXPECT_EQ(work, original);
}

TYPED_TEST(NttTest, CosetEvaluatesOffDomain)
{
    // After toCoset + forward, slot i holds p(g * w^i).
    using F = typename NttTest<TypeParam>::F;
    const std::size_t n = 8;
    const EvaluationDomain<F> domain(n);
    const F g = F::fromU64(TypeParam::kQnrSmall);
    const auto coeffs = this->randomPoly(n);
    auto work = coeffs;
    domain.toCoset(work, g);
    domain.forward(work);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(work[i],
                  evaluatePoly(coeffs, g * domain.element(i)));
    }
}

TYPED_TEST(NttTest, VanishingPolynomial)
{
    using F = typename NttTest<TypeParam>::F;
    const std::size_t n = 16;
    const EvaluationDomain<F> domain(n);
    // Zero on the domain...
    for (std::size_t i : {0u, 3u, 15u})
        EXPECT_TRUE(domain.vanishing(domain.element(i)).isZero());
    // ... non-zero on the coset.
    const F g = F::fromU64(TypeParam::kQnrSmall);
    EXPECT_FALSE(domain.vanishing(g * domain.element(2)).isZero());
}

TYPED_TEST(NttTest, RejectsBadSizes)
{
    using F = typename NttTest<TypeParam>::F;
    const EvaluationDomain<F> domain(8);
    auto wrong = this->randomPoly(4);
    EXPECT_EXIT(domain.forward(wrong),
                ::testing::ExitedWithCode(1), "mismatch");
}

} // namespace
} // namespace distmsm::ntt
