/**
 * @file
 * Parameterized property sweeps: the distributed MSM agrees with the
 * serial references across the cross-product of window sizes,
 * cluster shapes, scatter kernels and digit encodings; field and NTT
 * laws hold across sizes and seeds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/ntt/ntt.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;

// ---------------------------------------------------------------
// DistMSM configuration sweep: (window bits, gpus, hierarchical,
// signed digits).
// ---------------------------------------------------------------
using MsmConfig = std::tuple<unsigned, int, bool, bool>;

class DistMsmSweep : public ::testing::TestWithParam<MsmConfig>
{
  protected:
    static const std::vector<AffinePoint<Bn254>> &
    points()
    {
        static const auto pts = [] {
            Prng prng(0xABCD);
            return msm::generatePoints<Bn254>(160, prng);
        }();
        return pts;
    }

    static const std::vector<BigInt<4>> &
    scalars()
    {
        static const auto ks = [] {
            Prng prng(0xDCBA);
            return msm::generateScalars<Bn254>(160, prng);
        }();
        return ks;
    }

    static const XYZZPoint<Bn254> &
    expected()
    {
        static const auto e = msm::msmNaive<Bn254>(points(),
                                                   scalars());
        return e;
    }
};

TEST_P(DistMsmSweep, MatchesNaive)
{
    const auto [s, gpus, hierarchical, use_signed] = GetParam();
    msm::MsmOptions options;
    options.windowBitsOverride = s;
    options.hierarchicalScatter = hierarchical;
    options.signedDigits = use_signed;
    options.scatter.blockDim = 64;
    options.scatter.gridDim = 4;
    options.scatter.sharedBytesPerBlock = 64 * 1024;
    const Cluster cluster(DeviceSpec::a100(), gpus);
    const auto result = msm::computeDistMsm<Bn254>(
        points(), scalars(), cluster, options);
    EXPECT_EQ(result.value, expected());
}

INSTANTIATE_TEST_SUITE_P(
    WindowAndClusterGrid, DistMsmSweep,
    ::testing::Combine(::testing::Values(3u, 6u, 10u),
                       ::testing::Values(1, 8, 32),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MsmConfig> &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_g" +
               std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_hier" : "_naive") +
               (std::get<3>(info.param) ? "_signed" : "_plain");
    });

// ---------------------------------------------------------------
// Serial Pippenger window sweep on every curve-width class.
// ---------------------------------------------------------------
class PippengerWindowSweep
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PippengerWindowSweep, AllWindowsAgree)
{
    const unsigned s = GetParam();
    Prng prng(0x1234 + s);
    const auto points = msm::generatePoints<Bls381>(30, prng);
    const auto scalars = msm::generateScalars<Bls381>(30, prng);
    const auto naive = msm::msmNaive<Bls381>(points, scalars);
    EXPECT_EQ(msm::msmSerialPippenger<Bls381>(points, scalars, s),
              naive);
    if (s >= 2) {
        EXPECT_EQ(msm::msmSerialPippengerSigned<Bls381>(points,
                                                        scalars, s),
                  naive);
    }
}

INSTANTIATE_TEST_SUITE_P(WindowRange, PippengerWindowSweep,
                         ::testing::Range(1u, 15u, 2u));

// ---------------------------------------------------------------
// NTT round trips across the size/field grid.
// ---------------------------------------------------------------
using NttConfig = std::tuple<unsigned, std::uint64_t>;

class NttSweep : public ::testing::TestWithParam<NttConfig>
{
};

TEST_P(NttSweep, RoundTripAndConvolution)
{
    const auto [log_n, seed] = GetParam();
    const std::size_t n = std::size_t{1} << log_n;
    Prng prng(seed);
    const ntt::EvaluationDomain<Bn254Fr> domain(n);
    std::vector<Bn254Fr> poly(n);
    for (auto &x : poly)
        x = Bn254Fr::random(prng);
    auto work = poly;
    domain.forward(work);
    domain.inverse(work);
    EXPECT_EQ(work, poly);
    // Convolution theorem spot check at a random evaluation point.
    std::vector<Bn254Fr> q(n / 2 + 1);
    for (auto &x : q)
        x = Bn254Fr::random(prng);
    const auto prod = ntt::multiplyPolys(poly, q);
    const Bn254Fr x = Bn254Fr::random(prng);
    EXPECT_EQ(ntt::evaluatePoly(prod, x),
              ntt::evaluatePoly(poly, x) * ntt::evaluatePoly(q, x));
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, NttSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 7u, 10u),
                       ::testing::Values(11ull, 222ull)));

// ---------------------------------------------------------------
// Field law sweep across seeds (all four base fields).
// ---------------------------------------------------------------
class FieldLawSweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    template <typename F>
    static void
    check(std::uint64_t seed)
    {
        Prng prng(seed);
        const F a = F::random(prng), b = F::random(prng),
                c = F::random(prng);
        EXPECT_EQ((a + b) * c, a * c + b * c);
        EXPECT_EQ(a.sqr() - b.sqr(), (a + b) * (a - b));
        if (!a.isZero())
            EXPECT_EQ(a * b * a.inverse(), b);
        EXPECT_EQ((a * b).sqr(), a.sqr() * b.sqr());
    }
};

TEST_P(FieldLawSweep, AllBaseFields)
{
    check<Bn254Fq>(GetParam());
    check<Bls377Fq>(GetParam() + 1);
    check<Bls381Fq>(GetParam() + 2);
    check<Mnt4753Fq>(GetParam() + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldLawSweep,
                         ::testing::Range(std::uint64_t{900},
                                          std::uint64_t{910}));

} // namespace
} // namespace distmsm
