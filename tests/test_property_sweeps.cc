/**
 * @file
 * Parameterized property sweeps: the distributed MSM agrees with the
 * serial references across the cross-product of window sizes,
 * cluster shapes, scatter kernels and digit encodings; field and NTT
 * laws hold across sizes and seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "src/ec/curves.h"
#include "src/gpusim/collectives.h"
#include "src/gpusim/topology.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/scatter.h"
#include "src/msm/workload.h"
#include "src/ntt/ntt.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;

// ---------------------------------------------------------------
// DistMSM configuration sweep: (window bits, gpus, hierarchical,
// signed digits).
// ---------------------------------------------------------------
using MsmConfig = std::tuple<unsigned, int, bool, bool>;

class DistMsmSweep : public ::testing::TestWithParam<MsmConfig>
{
  protected:
    static const std::vector<AffinePoint<Bn254>> &
    points()
    {
        static const auto pts = [] {
            Prng prng(0xABCD);
            return msm::generatePoints<Bn254>(160, prng);
        }();
        return pts;
    }

    static const std::vector<BigInt<4>> &
    scalars()
    {
        static const auto ks = [] {
            Prng prng(0xDCBA);
            return msm::generateScalars<Bn254>(160, prng);
        }();
        return ks;
    }

    static const XYZZPoint<Bn254> &
    expected()
    {
        static const auto e = msm::msmNaive<Bn254>(points(),
                                                   scalars());
        return e;
    }
};

TEST_P(DistMsmSweep, MatchesNaive)
{
    const auto [s, gpus, hierarchical, use_signed] = GetParam();
    msm::MsmOptions options;
    options.windowBitsOverride = s;
    options.hierarchicalScatter = hierarchical;
    options.signedDigits = use_signed;
    options.scatter.blockDim = 64;
    options.scatter.gridDim = 4;
    options.scatter.sharedBytesPerBlock = 64 * 1024;
    const Cluster cluster(DeviceSpec::a100(), gpus);
    const auto result = msm::computeDistMsm<Bn254>(
        points(), scalars(), cluster, options);
    EXPECT_EQ(result.value, expected());
}

INSTANTIATE_TEST_SUITE_P(
    WindowAndClusterGrid, DistMsmSweep,
    ::testing::Combine(::testing::Values(3u, 6u, 10u),
                       ::testing::Values(1, 8, 32),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<MsmConfig> &info) {
        // Built with appends: chained operator+ trips a GCC 12
        // -Wrestrict false positive at -O3 (PR 105329).
        std::string name = "s";
        name += std::to_string(std::get<0>(info.param));
        name += "_g";
        name += std::to_string(std::get<1>(info.param));
        name += std::get<2>(info.param) ? "_hier" : "_naive";
        name += std::get<3>(info.param) ? "_signed" : "_plain";
        return name;
    });

// ---------------------------------------------------------------
// Seeded randomized differential sweep: random problem sizes,
// window widths, cluster shapes, kernels, digit encodings and host
// thread counts, each checked against the serial Pippenger
// reference. The seed is fixed so the tier-1 corpus is stable;
// DISTMSM_SWEEP_CASES overrides the case count for deeper soak runs.
// ---------------------------------------------------------------
TEST(RandomDifferentialSweep, MatchesSerialReference)
{
    int cases = 32;
    if (const char *env = std::getenv("DISTMSM_SWEEP_CASES")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            cases = static_cast<int>(v);
    }
    Prng prng(0xF00D);
    for (int c = 0; c < cases; ++c) {
        std::size_t n =
            1 + static_cast<std::size_t>(prng.below(4096));
        const unsigned s =
            2 + static_cast<unsigned>(prng.below(12)); // [2, 13]
        const int gpus = 1 + static_cast<int>(prng.below(8));
        const bool use_signed = prng.below(2) != 0;
        bool hierarchical = prng.below(2) != 0;
        const bool use_glv = prng.below(2) != 0;
        const bool batch_affine = prng.below(2) != 0;
        constexpr int kThreadChoices[] = {0, 1, 2, 8};
        const int host_threads = kThreadChoices[prng.below(4)];
        // Topology shape: the legacy flat cluster, or a
        // hierarchical nodes x gpus split of the same device count
        // (possibly ragged) on an NVSwitch or ring NVLink fabric.
        const int topo_kind = static_cast<int>(prng.below(3));
        const int gpn = 1 + static_cast<int>(prng.below(4));
        // Merge strategy: forced gather/ring/tree or the tuner.
        constexpr gpusim::CollectivePolicy kPolicies[] = {
            gpusim::CollectivePolicy::Gather,
            gpusim::CollectivePolicy::Ring,
            gpusim::CollectivePolicy::Tree,
            gpusim::CollectivePolicy::Auto,
        };
        const gpusim::CollectivePolicy policy =
            kPolicies[prng.below(4)];
        // Field backend: Auto (cost-model pick, CIOS execution),
        // forced CUDA cores, or forced tensor cores. A forced
        // TensorCore run executes every field mul through the tcmul
        // differential model — 1-2 orders of magnitude slower — so
        // those draws cap n to keep the sweep fast.
        constexpr gpusim::FieldBackend kBackends[] = {
            gpusim::FieldBackend::Auto,
            gpusim::FieldBackend::CudaCore,
            gpusim::FieldBackend::TensorCore,
        };
        const gpusim::FieldBackend backend =
            kBackends[prng.below(3)];
        if (backend == gpusim::FieldBackend::TensorCore)
            n = std::min<std::size_t>(n, 512);

        gpusim::Topology topo = gpusim::Topology::flat(gpus);
        if (topo_kind != 0) {
            topo = gpusim::Topology::dgx((gpus + gpn - 1) / gpn,
                                         gpn);
            topo.totalGpus = gpus; // ragged last node allowed
            if (topo_kind == 2)
                topo.intra = gpusim::IntraTopo::Ring;
        }

        msm::MsmOptions options;
        options.collective = policy;
        options.fieldBackend = backend;
        options.windowBitsOverride = s;
        options.signedDigits = use_signed;
        options.glv = use_glv;
        options.batchAffine = batch_affine;
        options.hostThreads = host_threads;
        options.scatter.blockDim = 64;
        options.scatter.gridDim = 4;
        options.scatter.sharedBytesPerBlock = 64 * 1024;
        // The hierarchical kernel needs 2^s counters + offsets and a
        // one-element tile in shared memory; infeasible draws fall
        // back to the naive kernel (the engine treats infeasible
        // scatter as fatal, mirroring Figure 11's s > 14 cutoff).
        const std::size_t fixed_bytes = (std::size_t{1} << s) * 8;
        if (hierarchical &&
            fixed_bytes +
                    static_cast<std::size_t>(
                        options.scatter.blockDim) *
                        options.scatter.localIdBytes >
                options.scatter.sharedBytesPerBlock) {
            hierarchical = false;
        }
        options.hierarchicalScatter = hierarchical;

        SCOPED_TRACE("case " + std::to_string(c) + ": n=" +
                     std::to_string(n) + " s=" + std::to_string(s) +
                     " gpus=" + std::to_string(gpus) +
                     (hierarchical ? " hier" : " naive") +
                     (use_signed ? " signed" : " plain") +
                     (use_glv ? " glv" : "") +
                     (batch_affine ? " batch" : "") +
                     " hostThreads=" + std::to_string(host_threads) +
                     " topo=" + topo.describe() + " collective=" +
                     gpusim::collectivePolicyName(policy) +
                     " backend=" +
                     gpusim::fieldBackendName(backend));

        const auto points = msm::generatePoints<Bn254>(n, prng);
        const auto scalars = msm::generateScalars<Bn254>(n, prng);
        const Cluster cluster(DeviceSpec::a100(), topo);
        const auto result = msm::computeDistMsm<Bn254>(
            points, scalars, cluster, options);
        EXPECT_EQ(result.value,
                  msm::msmSerialPippenger<Bn254>(points, scalars, s));
    }
}

// ---------------------------------------------------------------
// Serial Pippenger window sweep on every curve-width class.
// ---------------------------------------------------------------
class PippengerWindowSweep
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PippengerWindowSweep, AllWindowsAgree)
{
    const unsigned s = GetParam();
    Prng prng(0x1234 + s);
    const auto points = msm::generatePoints<Bls381>(30, prng);
    const auto scalars = msm::generateScalars<Bls381>(30, prng);
    const auto naive = msm::msmNaive<Bls381>(points, scalars);
    EXPECT_EQ(msm::msmSerialPippenger<Bls381>(points, scalars, s),
              naive);
    if (s >= 2) {
        EXPECT_EQ(msm::msmSerialPippengerSigned<Bls381>(points,
                                                        scalars, s),
                  naive);
    }
}

INSTANTIATE_TEST_SUITE_P(WindowRange, PippengerWindowSweep,
                         ::testing::Range(1u, 15u, 2u));

// ---------------------------------------------------------------
// NTT round trips across the size/field grid.
// ---------------------------------------------------------------
using NttConfig = std::tuple<unsigned, std::uint64_t>;

class NttSweep : public ::testing::TestWithParam<NttConfig>
{
};

TEST_P(NttSweep, RoundTripAndConvolution)
{
    const auto [log_n, seed] = GetParam();
    const std::size_t n = std::size_t{1} << log_n;
    Prng prng(seed);
    const ntt::EvaluationDomain<Bn254Fr> domain(n);
    std::vector<Bn254Fr> poly(n);
    for (auto &x : poly)
        x = Bn254Fr::random(prng);
    auto work = poly;
    domain.forward(work);
    domain.inverse(work);
    EXPECT_EQ(work, poly);
    // Convolution theorem spot check at a random evaluation point.
    std::vector<Bn254Fr> q(n / 2 + 1);
    for (auto &x : q)
        x = Bn254Fr::random(prng);
    const auto prod = ntt::multiplyPolys(poly, q);
    const Bn254Fr x = Bn254Fr::random(prng);
    EXPECT_EQ(ntt::evaluatePoly(prod, x),
              ntt::evaluatePoly(poly, x) * ntt::evaluatePoly(q, x));
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, NttSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 7u, 10u),
                       ::testing::Values(11ull, 222ull)));

// ---------------------------------------------------------------
// Field law sweep across seeds (all four base fields).
// ---------------------------------------------------------------
class FieldLawSweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    template <typename F>
    static void
    check(std::uint64_t seed)
    {
        Prng prng(seed);
        const F a = F::random(prng), b = F::random(prng),
                c = F::random(prng);
        EXPECT_EQ((a + b) * c, a * c + b * c);
        EXPECT_EQ(a.sqr() - b.sqr(), (a + b) * (a - b));
        if (!a.isZero()) {
            EXPECT_EQ(a * b * a.inverse(), b);
        }
        EXPECT_EQ((a * b).sqr(), a.sqr() * b.sqr());
    }
};

TEST_P(FieldLawSweep, AllBaseFields)
{
    check<Bn254Fq>(GetParam());
    check<Bls377Fq>(GetParam() + 1);
    check<Bls381Fq>(GetParam() + 2);
    check<Mnt4753Fq>(GetParam() + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldLawSweep,
                         ::testing::Range(std::uint64_t{900},
                                          std::uint64_t{910}));

} // namespace
} // namespace distmsm
