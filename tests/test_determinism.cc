/**
 * @file
 * Host-parallelism determinism harness.
 *
 * The contract of MsmOptions::hostThreads is that every observable
 * output — the MSM point (bit-for-bit, not just as a group element),
 * the aggregated KernelStats, hostOps, the scattered buckets and the
 * simulated memory words — is identical for every thread count.
 * These tests run the same computation with hostThreads in {1, 2, 8}
 * and compare at the representation level: XYZZ coordinates are
 * checked limb-by-limb via Fq::operator== (XYZZPoint::operator== is
 * only group equality and would hide a divergent-but-equivalent
 * representation).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/ec/curves.h"
#include "src/gpusim/cluster.h"
#include "src/gpusim/executor.h"
#include "src/msm/engine.h"
#include "src/msm/reference.h"
#include "src/msm/scatter.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;
using gpusim::KernelLaunch;
using gpusim::KernelStats;
using gpusim::ThreadCtx;
using gpusim::WordArray;

constexpr int kThreadCounts[] = {1, 2, 8};

/** Representation-level equality: every coordinate, every limb. */
template <typename Curve>
::testing::AssertionResult
bitIdentical(const XYZZPoint<Curve> &a, const XYZZPoint<Curve> &b)
{
    if (a.x == b.x && a.y == b.y && a.zz == b.zz && a.zzz == b.zzz)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "XYZZ representations differ (group-equal: "
           << (a == b ? "yes" : "no") << ")";
}

// ---------------------------------------------------------------
// End-to-end MsmEngine::compute across thread counts and curves.
// ---------------------------------------------------------------

struct EngineVariant
{
    const char *name;
    bool hierarchical;
    bool signedDigits;
    bool precompute;
    bool glv = false;
    bool batchAffine = false;
};

constexpr EngineVariant kVariants[] = {
    {"naive_plain", false, false, false},
    {"hier_signed", true, true, false},
    {"hier_signed_precompute", true, true, true},
    {"hier_batch_affine", true, false, false, false, true},
    {"hier_glv", true, false, false, true, false},
    {"hier_signed_glv_batch", true, true, false, true, true},
    {"hier_signed_pre_glv_batch", true, true, true, true, true},
};

template <typename Curve>
void
checkEngineDeterminism(std::uint64_t seed, int gpus)
{
    Prng prng(seed);
    const auto points = msm::generatePoints<Curve>(220, prng);
    const auto scalars = msm::generateScalars<Curve>(220, prng);
    const Cluster cluster(DeviceSpec::a100(), gpus);
    const auto reference = msm::msmNaive<Curve>(points, scalars);

    for (const auto &variant : kVariants) {
        SCOPED_TRACE(variant.name);
        msm::MsmOptions options;
        options.windowBitsOverride = 5;
        options.hierarchicalScatter = variant.hierarchical;
        options.signedDigits = variant.signedDigits;
        options.precompute = variant.precompute;
        options.glv = variant.glv;
        options.batchAffine = variant.batchAffine;
        options.scatter.blockDim = 64;
        options.scatter.gridDim = 4;
        options.scatter.sharedBytesPerBlock = 64 * 1024;

        options.hostThreads = 1;
        const msm::MsmEngine<Curve> sequential(points, cluster,
                                               options);
        const auto base = sequential.compute(scalars);
        // The sequential path is also *correct*, not just a fixed
        // point of the comparison.
        EXPECT_EQ(base.value, reference);

        for (const int threads : kThreadCounts) {
            SCOPED_TRACE("hostThreads=" + std::to_string(threads));
            options.hostThreads = threads;
            const msm::MsmEngine<Curve> engine(points, cluster,
                                               options);
            const auto got = engine.compute(scalars);
            EXPECT_TRUE(bitIdentical(got.value, base.value));
            EXPECT_EQ(got.stats, base.stats);
            EXPECT_EQ(got.hostOps, base.hostOps);
        }
    }
}

TEST(Determinism, MsmEngineBn254AcrossHostThreads)
{
    checkEngineDeterminism<Bn254>(0x5EED0254, /*gpus=*/8);
}

TEST(Determinism, MsmEngineBls381AcrossHostThreads)
{
    checkEngineDeterminism<Bls381>(0x5EED0381, /*gpus=*/4);
}

TEST(Determinism, MsmEngineSingleGpuAcrossHostThreads)
{
    checkEngineDeterminism<Bn254>(0x5EED0001, /*gpus=*/1);
}

// ---------------------------------------------------------------
// Scatter kernels: exact bucket contents and stats.
// ---------------------------------------------------------------

std::vector<std::uint32_t>
randomBucketIds(std::size_t n, unsigned window_bits,
                std::uint64_t seed)
{
    Prng prng(seed);
    std::vector<std::uint32_t> ids(n);
    for (auto &id : ids)
        id = static_cast<std::uint32_t>(
            prng.below(std::uint64_t{1} << window_bits));
    return ids;
}

TEST(Determinism, ScatterBucketsIdenticalAcrossHostThreads)
{
    const unsigned s = 6;
    const auto ids = randomBucketIds(5000, s, 0xB0CCE7);
    msm::ScatterConfig config;
    config.blockDim = 128;
    config.gridDim = 8;
    config.sharedBytesPerBlock = 64 * 1024;

    for (const bool hierarchical : {false, true}) {
        SCOPED_TRACE(hierarchical ? "hierarchical" : "naive");
        config.hostThreads = 1;
        const auto base = hierarchical
                              ? msm::hierarchicalScatter(ids, s,
                                                         config)
                              : msm::naiveScatter(ids, s, config);
        ASSERT_TRUE(base.ok);
        for (const int threads : kThreadCounts) {
            SCOPED_TRACE("hostThreads=" + std::to_string(threads));
            config.hostThreads = threads;
            const auto got =
                hierarchical
                    ? msm::hierarchicalScatter(ids, s, config)
                    : msm::naiveScatter(ids, s, config);
            ASSERT_TRUE(got.ok);
            // Exact per-bucket id sequences, not just multisets:
            // per-block staging must reproduce the sequential
            // (block-major, tid-minor) push order.
            EXPECT_EQ(got.buckets, base.buckets);
            EXPECT_EQ(got.stats, base.stats);
        }
    }
}

// ---------------------------------------------------------------
// Executor: simulated memory and contention accounting.
// ---------------------------------------------------------------

struct ExecutorRun
{
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> perThread;
    KernelStats stats;
};

/**
 * A two-phase kernel exercising everything the executor counts:
 * contended global atomics (with the old-value reservations consumed
 * block-locally), shared-memory traffic and gmem byte accounting.
 */
ExecutorRun
runContendedKernel(int host_threads)
{
    constexpr int kGrid = 8;
    constexpr int kBlock = 32;
    constexpr std::size_t kWords = 24;
    KernelLaunch launch(kGrid, kBlock, /*shared_words=*/64,
                        host_threads);
    WordArray global(kWords, WordArray::Space::Global);
    ExecutorRun run;
    run.perThread.assign(
        static_cast<std::size_t>(kGrid) * kBlock, 0);

    launch.phase([&](ThreadCtx &ctx) {
        // Hot addresses: ~11 writers per word per phase.
        const std::size_t slot =
            static_cast<std::size_t>(ctx.gid()) % kWords;
        launch.atomicAdd(global, slot, 1 + ctx.tid, ctx);
        launch.atomicAdd(launch.shared(ctx.bid),
                         static_cast<std::size_t>(ctx.tid) % 8, 1,
                         ctx);
        launch.countSharedAccess(ctx, 2);
        launch.countGmemBytes(ctx, 16);
    });
    launch.phase([&](ThreadCtx &ctx) {
        // Reservation counters: one word per block, so the returned
        // old values are block-local and deterministic.
        const auto old = launch.atomicAdd(
            global, kWords - 1 - ctx.bid % kWords, 0, ctx);
        run.perThread[static_cast<std::size_t>(ctx.gid())] = old;
    });

    run.words.reserve(kWords);
    for (std::size_t i = 0; i < kWords; ++i)
        run.words.push_back(global.read(i));
    run.stats = launch.stats();
    return run;
}

TEST(Determinism, ExecutorMemoryAndStatsAcrossHostThreads)
{
    const auto base = runContendedKernel(1);
    EXPECT_EQ(base.stats.phases, 2u);
    EXPECT_GT(base.stats.globalConflictWeight,
              base.stats.globalAtomics); // contention was measured
    for (const int threads : kThreadCounts) {
        SCOPED_TRACE("hostThreads=" + std::to_string(threads));
        const auto got = runContendedKernel(threads);
        EXPECT_EQ(got.words, base.words);
        EXPECT_EQ(got.perThread, base.perThread);
        EXPECT_EQ(got.stats, base.stats);
    }
}

// ---------------------------------------------------------------
// Cluster device fan-out: per-slot writes land exactly once.
// ---------------------------------------------------------------

TEST(Determinism, ClusterForEachGpuSlotWrites)
{
    const Cluster cluster(DeviceSpec::a100(), 8);
    auto run = [&](int threads) {
        std::vector<std::uint64_t> slots(
            static_cast<std::size_t>(cluster.numGpus()), 0);
        cluster.forEachGpu(
            [&](int g) {
                slots[static_cast<std::size_t>(g)] =
                    0xC0FFEEull * (g + 1);
            },
            threads);
        return slots;
    };
    const auto base = run(1);
    for (const int threads : kThreadCounts)
        EXPECT_EQ(run(threads), base)
            << "hostThreads=" << threads;
}

} // namespace
} // namespace distmsm
