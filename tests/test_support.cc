/**
 * @file
 * Tests for the support utilities: PRNG, hex codec, table printer.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/support/hex.h"
#include "src/support/prng.h"
#include "src/support/table.h"

namespace distmsm {
namespace {

TEST(Prng, Deterministic)
{
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Prng, SeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Prng, BelowStaysInRange)
{
    Prng prng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(prng.below(17), 17u);
}

TEST(Prng, BelowCoversRange)
{
    Prng prng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(prng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Hex, RoundTripSmall)
{
    std::uint64_t limbs[2] = {0x1234abcd, 0};
    EXPECT_EQ(hexFromLimbs(limbs, 2), "0x1234abcd");
    std::uint64_t parsed[2];
    ASSERT_TRUE(hexToLimbs("0x1234abcd", parsed, 2));
    EXPECT_EQ(parsed[0], 0x1234abcdu);
    EXPECT_EQ(parsed[1], 0u);
}

TEST(Hex, RoundTripMultiLimb)
{
    Prng prng(3);
    for (int i = 0; i < 50; ++i) {
        std::uint64_t limbs[4];
        for (auto &l : limbs)
            l = prng();
        std::uint64_t parsed[4];
        ASSERT_TRUE(hexToLimbs(hexFromLimbs(limbs, 4), parsed, 4));
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(parsed[j], limbs[j]);
    }
}

TEST(Hex, Zero)
{
    std::uint64_t limbs[3] = {0, 0, 0};
    EXPECT_EQ(hexFromLimbs(limbs, 3), "0x0");
    std::uint64_t parsed[3] = {1, 2, 3};
    ASSERT_TRUE(hexToLimbs("0x0", parsed, 3));
    for (auto l : parsed)
        EXPECT_EQ(l, 0u);
}

TEST(Hex, RejectsMalformed)
{
    std::uint64_t limbs[1];
    EXPECT_FALSE(hexToLimbs("", limbs, 1));
    EXPECT_FALSE(hexToLimbs("0x", limbs, 1));
    EXPECT_FALSE(hexToLimbs("xyz", limbs, 1));
    EXPECT_FALSE(hexToLimbs("12 34", limbs, 1));
}

TEST(Hex, RejectsOverflow)
{
    std::uint64_t limbs[1];
    EXPECT_FALSE(hexToLimbs("0x10000000000000000", limbs, 1));
    EXPECT_TRUE(hexToLimbs("0x0ffffffffffffffff", limbs, 1));
    EXPECT_EQ(limbs[0], ~0ull);
}

TEST(Hex, UpperCaseAccepted)
{
    std::uint64_t limbs[1];
    ASSERT_TRUE(hexToLimbs("0XDEADBEEF", limbs, 1));
    EXPECT_EQ(limbs[0], 0xdeadbeefull);
}

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"cccc", "d"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a   "), std::string::npos);
    EXPECT_NE(out.find("cccc"), std::string::npos);
}

TEST(Table, PaperMsFormat)
{
    EXPECT_EQ(TextTable::paperMs(2.04), "2.040");
    EXPECT_EQ(TextTable::paperMs(29.04), "29.04");
    EXPECT_EQ(TextTable::paperMs(115.1), "115.1");
    EXPECT_EQ(TextTable::paperMs(1578.0), "1578");
    EXPECT_EQ(TextTable::paperMs(11700.0), "11.7K");
}

} // namespace
} // namespace distmsm
