/**
 * @file
 * Tests for the register-pressure scheduler (paper Section 4.2):
 * liveness accounting, exhaustive schedule search, scheduling-unit
 * fusion, spill planning and semantic preservation of the scheduled
 * kernels.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/sched/dag.h"
#include "src/sched/interpreter.h"
#include "src/sched/schedule_search.h"
#include "src/sched/spill.h"
#include "src/support/prng.h"

namespace distmsm::sched {
namespace {

std::vector<int>
referenceOrder(const OpDag &dag)
{
    std::vector<int> order(dag.numOps());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    return order;
}

/** A random valid topological order. */
std::vector<int>
randomOrder(const OpDag &dag, Prng &prng)
{
    const int n = static_cast<int>(dag.numOps());
    std::vector<int> order;
    std::vector<bool> done(n, false);
    while (static_cast<int>(order.size()) < n) {
        std::vector<int> ready;
        for (int i = 0; i < n; ++i) {
            if (done[i])
                continue;
            bool ok = true;
            for (int d : dag.depsOf(i))
                ok &= done[d];
            if (ok)
                ready.push_back(i);
        }
        const int pick = ready[prng.below(ready.size())];
        done[pick] = true;
        order.push_back(pick);
    }
    return order;
}

TEST(Dag, PaddShape)
{
    const OpDag dag = makePaddDag();
    EXPECT_EQ(dag.inputs().size(), 8u);
    EXPECT_EQ(dag.outputs().size(), 4u);
    int muls = 0;
    for (const auto &op : dag.ops())
        muls += op.isMul();
    EXPECT_EQ(muls, 14) << "Algorithm 1 uses 14 modular multiplies";
}

TEST(Dag, PaccShape)
{
    const OpDag dag = makePaccDag();
    EXPECT_EQ(dag.inputs().size(), 6u);
    EXPECT_EQ(dag.outputs().size(), 4u);
    int muls = 0;
    for (const auto &op : dag.ops())
        muls += op.isMul();
    EXPECT_EQ(muls, 10) << "Algorithm 4 uses 10 modular multiplies";
}

TEST(Dag, StraightforwardPeaksMatchPaper)
{
    // Section 4.2: "the peak register pressures for straightforward
    // PADD and PACC implementations are 11 and 9 big integers".
    EXPECT_EQ(makePaddDag().peakLiveReferenceOrder(), 11);
    EXPECT_EQ(makePaccDag().peakLiveReferenceOrder(), 9);
}

TEST(Dag, ValidOrderChecks)
{
    const OpDag dag = makePaccDag();
    auto order = referenceOrder(dag);
    EXPECT_TRUE(dag.isValidOrder(order));
    std::swap(order[0], order[4]); // PP before P: dependency broken
    EXPECT_FALSE(dag.isValidOrder(order));
    order = referenceOrder(dag);
    order.pop_back();
    EXPECT_FALSE(dag.isValidOrder(order));
    order = referenceOrder(dag);
    order[0] = order[1]; // duplicate
    EXPECT_FALSE(dag.isValidOrder(order));
}

TEST(Search, OptimalPaccPeakMatchesPaper)
{
    // Section 4.2.1: optimal order reduces PACC from 9 to 7.
    const OpDag dag = makePaccDag();
    const ScheduleResult result = findOptimalOrder(dag);
    EXPECT_EQ(result.peak, 7);
    EXPECT_TRUE(dag.isValidOrder(result.order));
    EXPECT_EQ(dag.peakLive(result.order), result.peak);
}

TEST(Search, OptimalPaddPeakMatchesPaper)
{
    // Section 4.2.1: optimal order reduces PADD from 11 to 9.
    const OpDag dag = makePaddDag();
    const ScheduleResult result = findOptimalOrder(dag);
    EXPECT_EQ(result.peak, 9);
    EXPECT_TRUE(dag.isValidOrder(result.order));
}

TEST(Search, NoOrderBeatsTheOptimum)
{
    // Property check: many random topological orders never go below
    // the exhaustive optimum.
    const OpDag dag = makePaccDag();
    const int best = findOptimalOrder(dag).peak;
    Prng prng(0x5EA3C4);
    for (int i = 0; i < 200; ++i) {
        const auto order = randomOrder(dag, prng);
        ASSERT_TRUE(dag.isValidOrder(order));
        EXPECT_GE(dag.peakLive(order), best);
    }
}

TEST(Search, FusedUnitsPreserveOptimum)
{
    // The paper's fusion insight: scheduling (mul, dependent sub)
    // pairs atomically keeps the optimum reachable while shrinking
    // the search space.
    for (const OpDag &dag : {makePaccDag(), makePaddDag()}) {
        const auto units = fuseUnits(dag);
        EXPECT_LE(units.size(), dag.numOps());
        const ScheduleResult full = findOptimalOrder(dag);
        const ScheduleResult fused = findOptimalUnitOrder(dag, units);
        EXPECT_EQ(fused.peak, full.peak);
        EXPECT_LE(fused.statesExplored, full.statesExplored);
        EXPECT_TRUE(dag.isValidOrder(fused.order));
    }
}

TEST(Search, PaccFusionFindsThePaperPairs)
{
    // The paper's example pairs (U2 -> P and S2 -> R) are exactly the
    // constraint-free fusions available in PACC.
    const OpDag dag = makePaccDag();
    const auto units = fuseUnits(dag);
    EXPECT_EQ(units.size(), dag.numOps() - 2);
    int pairs = 0;
    for (const auto &u : units)
        pairs += u.ops.size() == 2;
    EXPECT_EQ(pairs, 2);
}

TEST(Search, TopologicalOrderCountBelowFactorialBound)
{
    // The paper caps the search at 12! and notes the actual count is
    // far smaller due to data dependencies.
    const std::uint64_t pacc_orders =
        countTopologicalOrders(makePaccDag());
    EXPECT_GT(pacc_orders, 0u);
    constexpr std::uint64_t kTwelveFactorial = 479001600;
    EXPECT_LT(pacc_orders, kTwelveFactorial);
}

TEST(Spill, MinimumFeasibleFloor)
{
    const OpDag dag = makePaccDag();
    const auto order = findOptimalOrder(dag).order;
    // A multiply needs its two operands plus the scratch register.
    EXPECT_EQ(minimumFeasibleRegisters(dag, order), 3);
}

TEST(Spill, PaccToFiveRegistersMatchesPaper)
{
    // Section 4.2.2: spilling brings PACC from 7 to 5 registers at
    // the cost of 4 big-integer transfers, with at most 3 big
    // integers in shared memory at any point.
    const OpDag dag = makePaccDag();
    const auto order = findOptimalOrder(dag).order;
    const SpillPlan plan = planSpills(dag, order, 5);
    ASSERT_TRUE(plan.feasible);
    EXPECT_LE(plan.peakRegisters, 5);
    EXPECT_LE(plan.peakShared, 3);
    EXPECT_LE(plan.transfers, 8);
    EXPECT_GT(plan.transfers, 0);
}

TEST(Spill, NoSpillsWhenBudgetSuffices)
{
    const OpDag dag = makePaccDag();
    const auto order = findOptimalOrder(dag).order;
    const SpillPlan plan = planSpills(dag, order, 7);
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.transfers, 0);
}

TEST(Spill, InfeasibleBelowFloor)
{
    const OpDag dag = makePaccDag();
    const auto order = referenceOrder(dag);
    EXPECT_FALSE(planSpills(dag, order, 2).feasible);
}

TEST(Spill, TransfersGrowAsBudgetShrinks)
{
    const OpDag dag = makePaddDag();
    const auto order = findOptimalOrder(dag).order;
    int prev = 0;
    for (int target = 9; target >= 4; --target) {
        const SpillPlan plan = planSpills(dag, order, target);
        ASSERT_TRUE(plan.feasible) << target;
        EXPECT_GE(plan.transfers, prev);
        prev = plan.transfers;
    }
}

TEST(Dag, PdblShapes)
{
    const OpDag short_form = makePdblDag(true);
    const OpDag general = makePdblDag(false);
    int muls_short = 0, muls_general = 0;
    for (const auto &op : short_form.ops())
        muls_short += op.isMul();
    for (const auto &op : general.ops())
        muls_general += op.isMul();
    EXPECT_EQ(muls_short, 9);
    EXPECT_EQ(muls_general, 11);
    EXPECT_EQ(short_form.outputs().size(), 4u);
}

TEST(Search, PdblOptimalNoWorseThanReference)
{
    for (bool a_zero : {true, false}) {
        const OpDag dag = makePdblDag(a_zero);
        const auto opt = findOptimalOrder(dag);
        EXPECT_LE(opt.peak, dag.peakLiveReferenceOrder());
        EXPECT_TRUE(dag.isValidOrder(opt.order));
        // Doubling touches fewer values than PADD: it must need
        // fewer live big integers than PADD's 9.
        EXPECT_LT(opt.peak, 9);
    }
}

TEST(Spill, PdblSpillsFeasibly)
{
    const OpDag dag = makePdblDag(true);
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan =
        planSpills(dag, opt.order,
                   std::max(3, opt.peak - 2));
    EXPECT_TRUE(plan.feasible);
}

template <typename Curve>
class SchedSemanticsTest : public ::testing::Test
{
  protected:
    using Fq = typename Curve::Fq;
    using Xyzz = XYZZPoint<Curve>;

    Prng prng_{0x5C4ED};

    Xyzz
    randPoint()
    {
        const auto k = BigInt<1>::fromU64(2 + prng_.below(1 << 18));
        return pmul(Xyzz::fromAffine(Curve::generator()), k);
    }
};

using SemanticsCurves = ::testing::Types<Bn254, Mnt4753>;
TYPED_TEST_SUITE(SchedSemanticsTest, SemanticsCurves);

TYPED_TEST(SchedSemanticsTest, ScheduledPaddMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePaddDag();
    const auto optimal = findOptimalOrder(dag);
    for (int iter = 0; iter < 3; ++iter) {
        const auto p1 = this->randPoint();
        const auto p2 = this->randPoint();
        const std::vector<Fq> inputs = {p1.x,  p1.y, p1.zz, p1.zzz,
                                        p2.x,  p2.y, p2.zz, p2.zzz};
        const auto outs =
            executeSchedule<Fq>(dag, optimal.order, inputs);
        const auto want = padd(p1, p2);
        ASSERT_EQ(outs.size(), 4u);
        EXPECT_EQ(outs[0], want.x);
        EXPECT_EQ(outs[1], want.y);
        EXPECT_EQ(outs[2], want.zz);
        EXPECT_EQ(outs[3], want.zzz);
    }
}

TYPED_TEST(SchedSemanticsTest, ScheduledPaccWithSpillsMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePaccDag();
    const auto optimal = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, optimal.order, 5);
    ASSERT_TRUE(plan.feasible);
    for (int iter = 0; iter < 3; ++iter) {
        const auto acc = this->randPoint();
        const auto p = this->randPoint().toAffine();
        const std::vector<Fq> inputs = {acc.x, acc.y, acc.zz,
                                        acc.zzz, p.x, p.y};
        const auto outs =
            executeSchedule<Fq>(dag, optimal.order, inputs, &plan);
        const auto want = pacc(acc, p);
        ASSERT_EQ(outs.size(), 4u);
        EXPECT_EQ(outs[0], want.x);
        EXPECT_EQ(outs[1], want.y);
        EXPECT_EQ(outs[2], want.zz);
        EXPECT_EQ(outs[3], want.zzz);
    }
}

TYPED_TEST(SchedSemanticsTest, ScheduledPdblMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePdblDag(TypeParam::kAIsZero);
    const auto optimal = findOptimalOrder(dag);
    for (int iter = 0; iter < 3; ++iter) {
        const auto p = this->randPoint();
        std::vector<Fq> inputs = {p.x, p.y, p.zz, p.zzz};
        if (!TypeParam::kAIsZero)
            inputs.push_back(TypeParam::a());
        const auto outs =
            executeSchedule<Fq>(dag, optimal.order, inputs);
        const auto want = pdbl(p);
        ASSERT_EQ(outs.size(), 4u);
        EXPECT_EQ(outs[0], want.x);
        EXPECT_EQ(outs[1], want.y);
        EXPECT_EQ(outs[2], want.zz);
        EXPECT_EQ(outs[3], want.zzz);
    }
}

TYPED_TEST(SchedSemanticsTest, ReferenceOrderAlsoExecutesCorrectly)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePaccDag();
    std::vector<int> order(dag.numOps());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    const auto acc = this->randPoint();
    const auto p = this->randPoint().toAffine();
    const std::vector<Fq> inputs = {acc.x, acc.y, acc.zz,
                                    acc.zzz, p.x, p.y};
    const auto outs = executeSchedule<Fq>(dag, order, inputs);
    const auto want = pacc(acc, p);
    EXPECT_EQ(outs[0], want.x);
    EXPECT_EQ(outs[1], want.y);
}

} // namespace
} // namespace distmsm::sched
