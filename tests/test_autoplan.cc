/**
 * @file
 * Autoscheduling planner tests (msm/autoplan.h).
 *
 * The contracts under test:
 *  - Search never loses: the searched plan's analytic totalNs is <=
 *    the heuristic plan's across a randomized (curve, N, topology,
 *    option-mask) sweep — guaranteed by seeding the SearchDriver
 *    with the heuristic candidate and displacing it only on a
 *    strictly better score. Ties return the heuristic's exact plan.
 *  - The plan cache: a hit returns a bit-identical plan, records
 *    plan_cache/{hits,misses}, and performs ZERO cost-model
 *    evaluations (CostModel::evaluations() delta) — both from the
 *    in-process map and from the persisted file after a reload.
 *  - Engine differential: an engine driven by the searched plan
 *    computes the same MSM value as the heuristic engine and the
 *    serial Pippenger reference.
 *  - The satellite bugfixes: the threadsPerBucket override respects
 *    the 1024-thread cap and the idle guard, and the N-dim baseline
 *    charges the ceiling slice (the slowest GPU's share).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/ec/curves.h"
#include "src/msm/autoplan.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"
#include "src/support/trace.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::CollectivePolicy;
using gpusim::CostModel;
using gpusim::CurveProfile;
using gpusim::DeviceSpec;
using gpusim::FieldBackend;
using gpusim::Topology;

bool
samePlan(const MsmPlan &a, const MsmPlan &b)
{
    return a.windowBits == b.windowBits &&
           a.numWindows == b.numWindows &&
           a.scalarBits == b.scalarBits && a.glv == b.glv &&
           a.numBuckets == b.numBuckets &&
           a.signedDigits == b.signedDigits &&
           a.gpusPerWindow == b.gpusPerWindow &&
           a.windowsPerGpu == b.windowsPerGpu &&
           a.threadsPerBucket == b.threadsPerBucket &&
           a.bucketsSplitAcrossGpus == b.bucketsSplitAcrossGpus &&
           a.precompute == b.precompute &&
           a.tableBytes == b.tableBytes &&
           a.collective == b.collective &&
           a.mergeBytesPerGpu == b.mergeBytesPerGpu &&
           a.fieldBackend == b.fieldBackend &&
           a.fieldBackendAuto == b.fieldBackendAuto &&
           a.pipelineDepth == b.pipelineDepth &&
           a.devicePartitions == b.devicePartitions;
}

CurveProfile
curveByIndex(unsigned i)
{
    switch (i % 4) {
      case 0:
        return CurveProfile::bn254();
      case 1:
        return CurveProfile::bls377();
      case 2:
        return CurveProfile::bls381();
      default:
        return CurveProfile::mnt4753();
    }
}

// ---------------------------------------------------------------
// Search-never-loses sweep: randomized (curve, N, topology, option
// mask) cases, fixed seed for a stable tier-1 corpus;
// DISTMSM_SWEEP_CASES deepens the sweep in CI soak runs.
// ---------------------------------------------------------------
TEST(AutoplanSweep, SearchNeverLosesToHeuristic)
{
    int cases = 16;
    if (const char *env = std::getenv("DISTMSM_SWEEP_CASES")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            cases = static_cast<int>(v);
    }
    Prng prng(0xA070);
    for (int c = 0; c < cases; ++c) {
        const CurveProfile curve =
            curveByIndex(static_cast<unsigned>(prng.below(4)));
        const unsigned log_n =
            14 + static_cast<unsigned>(prng.below(11)); // [14, 24]
        Topology topology;
        switch (prng.below(3)) {
          case 0:
            topology = Topology::flat(
                1 + static_cast<int>(prng.below(16)));
            break;
          case 1:
            topology =
                Topology::dgx(1 + static_cast<int>(prng.below(4)),
                              1 + static_cast<int>(prng.below(8)));
            break;
          default: {
            const auto topo_or = Topology::parse(
                "nodes=2,gpus=4,intra=ring,nics=2");
            ASSERT_TRUE(topo_or.isOk());
            topology = *topo_or;
          }
        }
        const Cluster cluster(DeviceSpec::a100(), topology);

        MsmOptions base;
        base.signedDigits = prng.below(2) != 0;
        base.glv = prng.below(2) != 0;
        base.batchAffine = prng.below(2) != 0;
        base.precompute = prng.below(2) != 0;
        base.cpuBucketReduce = prng.below(2) != 0;
        base.overlapReduce = prng.below(2) != 0;
        if (prng.below(4) == 0)
            base.windowBitsOverride =
                8 + static_cast<unsigned>(prng.below(10));
        constexpr CollectivePolicy kPolicies[] = {
            CollectivePolicy::Gather, CollectivePolicy::Ring,
            CollectivePolicy::Tree, CollectivePolicy::ReduceScatter,
            CollectivePolicy::Auto};
        base.collective = kPolicies[prng.below(5)];
        constexpr FieldBackend kBackends[] = {
            FieldBackend::Auto, FieldBackend::CudaCore,
            FieldBackend::TensorCore};
        base.fieldBackend = kBackends[prng.below(3)];

        const std::uint64_t n = std::uint64_t{1} << log_n;
        MsmOptions heur = base;
        heur.planner = PlannerMode::Heuristic;
        MsmOptions search = base;
        search.planner = PlannerMode::Search;

        const double heur_ns =
            estimateDistMsm(curve, n, cluster, heur).totalNs();
        const double search_ns =
            estimateDistMsm(curve, n, cluster, search).totalNs();
        EXPECT_LE(search_ns, heur_ns)
            << "case " << c << ": " << curve.name << " N=2^"
            << log_n << " on " << topology.describe();

        // The search is deterministic: re-planning returns the
        // same plan bit-identically.
        EXPECT_TRUE(samePlan(planMsm(curve, n, cluster, search),
                             planMsm(curve, n, cluster, search)));
    }
}

// On a tie (every candidate >= the seed) the search returns the
// heuristic's exact plan; in general the searched plan matches
// searchedNs and the heuristic plan heuristicNs.
TEST(AutoplanSweep, SeedIsHeuristicPlan)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    const std::uint64_t n = 1ull << 20;
    MsmOptions base;

    const AutoPlanResult r = autoplanMsm(curve, n, cluster, base);
    EXPECT_DOUBLE_EQ(
        r.heuristicNs,
        estimateDistMsm(curve, n, cluster, base).totalNs());
    MsmOptions realized = r.options;
    EXPECT_EQ(realized.planner, PlannerMode::Heuristic);
    EXPECT_DOUBLE_EQ(
        r.searchedNs,
        estimateDistMsm(curve, n, cluster, realized).totalNs());
    // The returned plan is the realized winner's heuristic plan,
    // with fieldBackendAuto post-stamped to the caller's contract
    // (base asked Auto, so the provenance bit stays true even when
    // the search pinned a backend for pricing).
    MsmPlan rederived = planMsmHeuristic(curve, n, cluster, realized);
    rederived.fieldBackendAuto = r.plan.fieldBackendAuto;
    EXPECT_TRUE(samePlan(r.plan, rederived));
    EXPECT_TRUE(r.plan.fieldBackendAuto);
    EXPECT_LE(r.searchedNs, r.heuristicNs);
    EXPECT_GE(r.evaluated, 1u);
}

// ---------------------------------------------------------------
// Beam search (DISTMSM_AUTOPLAN_BEAM): even the narrowest beam is
// seeded with the heuristic plan and so never loses to it; an
// unbounded beam enumerates exactly the exhaustive candidate set
// and reproduces the exhaustive argmin score.
// ---------------------------------------------------------------
TEST(AutoplanBeam, NarrowBeamNeverLosesWideBeamMatchesExhaustive)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), Topology::dgx(2, 4));
    const std::uint64_t n = 1ull << 18;
    MsmOptions base;
    base.planner = PlannerMode::Search;

    unsetenv("DISTMSM_AUTOPLAN_BEAM");
    const AutoPlanResult exhaustive =
        autoplanMsm(curve, n, cluster, base);

    ASSERT_EQ(setenv("DISTMSM_AUTOPLAN_BEAM", "1", 1), 0);
    const AutoPlanResult narrow =
        autoplanMsm(curve, n, cluster, base);
    EXPECT_LE(narrow.searchedNs, narrow.heuristicNs);
    EXPECT_DOUBLE_EQ(narrow.heuristicNs, exhaustive.heuristicNs);
    EXPECT_LT(narrow.evaluated, exhaustive.evaluated);
    EXPECT_GT(narrow.pruned, 0u);

    // Width far beyond every stage's fan-out: the staged expansion
    // covers the full Cartesian product, so the argmin score is the
    // exhaustive one.
    ASSERT_EQ(setenv("DISTMSM_AUTOPLAN_BEAM", "65536", 1), 0);
    const AutoPlanResult wide = autoplanMsm(curve, n, cluster, base);
    EXPECT_DOUBLE_EQ(wide.searchedNs, exhaustive.searchedNs);

    // Determinism under a fixed width.
    ASSERT_EQ(setenv("DISTMSM_AUTOPLAN_BEAM", "2", 1), 0);
    const AutoPlanResult a = autoplanMsm(curve, n, cluster, base);
    const AutoPlanResult b = autoplanMsm(curve, n, cluster, base);
    EXPECT_TRUE(samePlan(a.plan, b.plan));
    EXPECT_DOUBLE_EQ(a.searchedNs, b.searchedNs);

    unsetenv("DISTMSM_AUTOPLAN_BEAM");
}

// ---------------------------------------------------------------
// Pipeline depth and device partitions as search dimensions.
// ---------------------------------------------------------------
TEST(AutoplanPipeline, SearchableDepthNeverLosesAndHidesHostTail)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    const std::uint64_t n = 1ull << 20;
    MsmOptions base;
    base.pipelineDepth = 0;    // let the search choose
    base.devicePartitions = 0; // let the search choose
    base.planner = PlannerMode::Search;

    const AutoPlanResult r = autoplanMsm(curve, n, cluster, base);
    EXPECT_LE(r.searchedNs, r.heuristicNs);
    // The default plan has a real host tail (the window reduce at
    // minimum), so keeping more MSMs in flight strictly lowers the
    // amortized per-MSM makespan: the search must engage the depth.
    EXPECT_GT(r.plan.pipelineDepth, 1);
    EXPECT_TRUE(r.plan.pipelineDepth == 2 ||
                r.plan.pipelineDepth == 4);
    EXPECT_GE(r.plan.devicePartitions, 1);
    EXPECT_EQ(cluster.numGpus() % r.plan.devicePartitions, 0);
    EXPECT_LT(r.searchedNs, r.heuristicNs);
}

TEST(AutoplanPipeline, ExplicitKnobsPassThroughAndValidate)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions o;
    o.windowBitsOverride = 8;
    o.pipelineDepth = 2;
    o.devicePartitions = 4;
    MsmPlan plan = planMsm(curve, 1ull << 18, cluster, o);
    EXPECT_EQ(plan.pipelineDepth, 2);
    EXPECT_EQ(plan.devicePartitions, 4);

    // A partition count that does not divide the cluster falls back
    // to 1 rather than fabricating ragged device groups.
    o.devicePartitions = 3;
    plan = planMsm(curve, 1ull << 18, cluster, o);
    EXPECT_EQ(plan.devicePartitions, 1);

    // Defaults keep the legacy single-MSM objective bit-exactly.
    MsmOptions plain;
    plain.windowBitsOverride = 8;
    plan = planMsm(curve, 1ull << 18, cluster, plain);
    EXPECT_EQ(plan.pipelineDepth, 1);
    EXPECT_EQ(plan.devicePartitions, 1);
}

// ---------------------------------------------------------------
// Plan cache: hit/miss metrics, bit-identical plans, and the
// zero-cost-model-evaluations guarantee on warm hits — through the
// in-process map and through the persisted file.
// ---------------------------------------------------------------
TEST(PlanCache, WarmHitIsBitIdenticalAndFree)
{
    const std::string path =
        ::testing::TempDir() + "distmsm_plan_cache_test.tsv";
    std::remove(path.c_str());
    ASSERT_EQ(setenv("DISTMSM_PLAN_CACHE", path.c_str(), 1), 0);
    resetPlanCacheForTesting();

    const CurveProfile curve = CurveProfile::bls381();
    const Cluster cluster(DeviceSpec::a100(), 8);
    const std::uint64_t n = 1ull << 18;

    support::TraceRecorder trace;
    MsmOptions options;
    options.planner = PlannerMode::Cached;
    options.trace = &trace;

    // Cold: miss, search runs, entry persisted.
    const MsmPlan cold = planMsm(curve, n, cluster, options);
    EXPECT_EQ(trace.metrics().value("plan_cache/misses"), 1.0);
    EXPECT_EQ(trace.metrics().value("plan_cache/hits"), 0.0);
    EXPECT_EQ(trace.metrics().value("autoplan/cache_hit"), 0.0);
    EXPECT_GT(trace.metrics().value("autoplan/cost_model_evals"),
              0.0);

    // Warm (in-process map): bit-identical plan, zero cost-model
    // evaluations — the acceptance gate.
    const std::uint64_t evals_before = CostModel::evaluations();
    const MsmPlan warm = planMsm(curve, n, cluster, options);
    EXPECT_EQ(CostModel::evaluations(), evals_before);
    EXPECT_TRUE(samePlan(cold, warm));
    EXPECT_EQ(trace.metrics().value("plan_cache/hits"), 1.0);
    EXPECT_EQ(trace.metrics().value("plan_cache/misses"), 1.0);
    EXPECT_EQ(trace.metrics().value("autoplan/cache_hit"), 1.0);
    EXPECT_EQ(trace.metrics().value("autoplan/cost_model_evals"),
              0.0);

    // Reload from disk: drop the in-process map, hit the persisted
    // file, still bit-identical and still free.
    resetPlanCacheForTesting();
    const std::uint64_t evals_before2 = CostModel::evaluations();
    const MsmPlan reloaded = planMsm(curve, n, cluster, options);
    EXPECT_EQ(CostModel::evaluations(), evals_before2);
    EXPECT_TRUE(samePlan(cold, reloaded));
    EXPECT_EQ(trace.metrics().value("plan_cache/hits"), 2.0);
    EXPECT_EQ(trace.metrics().value("plan_cache/misses"), 1.0);

    // A different problem misses (the key covers N).
    const MsmPlan other =
        planMsm(curve, n * 2, cluster, options);
    EXPECT_EQ(trace.metrics().value("plan_cache/misses"), 2.0);
    (void)other;

    std::remove(path.c_str());
    unsetenv("DISTMSM_PLAN_CACHE");
    resetPlanCacheForTesting();
}

// The v2 cache records round-trip the pipeline knobs: a searched
// depth/partition choice must come back bit-identical from the
// persisted file, not silently reset to 1.
TEST(PlanCache, PipelineKnobsRoundTripThroughPersistedFile)
{
    const std::string path =
        ::testing::TempDir() + "distmsm_plan_cache_pipeline.tsv";
    std::remove(path.c_str());
    ASSERT_EQ(setenv("DISTMSM_PLAN_CACHE", path.c_str(), 1), 0);
    resetPlanCacheForTesting();

    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    const std::uint64_t n = 1ull << 18;
    MsmOptions options;
    options.planner = PlannerMode::Cached;
    options.pipelineDepth = 0;
    options.devicePartitions = 0;

    const MsmPlan cold = planMsm(curve, n, cluster, options);
    EXPECT_GT(cold.pipelineDepth, 1);

    resetPlanCacheForTesting(); // force the disk round-trip
    const std::uint64_t evals_before = CostModel::evaluations();
    const MsmPlan reloaded = planMsm(curve, n, cluster, options);
    EXPECT_EQ(CostModel::evaluations(), evals_before);
    EXPECT_TRUE(samePlan(cold, reloaded));

    std::remove(path.c_str());
    unsetenv("DISTMSM_PLAN_CACHE");
    resetPlanCacheForTesting();
}

// ---------------------------------------------------------------
// Engine differential: searched plans compute the same MSM value
// as heuristic plans (XYZZ projective equality, which is the
// cross-plan contract — different window/digit choices produce
// different representatives of the same point).
// ---------------------------------------------------------------
TEST(AutoplanEngine, SearchedPlanMatchesHeuristicResult)
{
    using Curve = Bn254;
    Prng prng(0xBEEF);
    const std::size_t n = 1u << 10;
    const auto points = generatePoints<Curve>(n, prng);
    const auto scalars = generateScalars<Curve>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), 4);

    MsmOptions base;
    base.windowBitsOverride = 8;
    base.scatter.blockDim = 64;
    base.scatter.gridDim = 4;
    base.scatter.sharedBytesPerBlock = 128 * 1024;
    base.hostThreads = 1;

    MsmOptions heur = base;
    heur.planner = PlannerMode::Heuristic;
    MsmOptions search = base;
    search.planner = PlannerMode::Search;

    const auto expect = msmSerialPippenger<Curve>(points, scalars, 8);
    const auto heur_result =
        computeDistMsm<Curve>(points, scalars, cluster, heur);
    const auto search_result =
        computeDistMsm<Curve>(points, scalars, cluster, search);
    EXPECT_TRUE(heur_result.value == expect);
    EXPECT_TRUE(search_result.value == expect);
    EXPECT_TRUE(search_result.value == heur_result.value);
}

// The engine adopts the searched candidate's functional knobs but
// must not engage the slow tcmul differential execution unless the
// *user* forced the tensor-core backend.
TEST(AutoplanEngine, SearchWithFreeWindowMatchesReference)
{
    using Curve = Bls381;
    Prng prng(0xCAFE);
    const std::size_t n = 1u << 9;
    const auto points = generatePoints<Curve>(n, prng);
    const auto scalars = generateScalars<Curve>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), 2);

    MsmOptions search;
    search.planner = PlannerMode::Search;
    search.scatter.blockDim = 64;
    search.scatter.gridDim = 4;
    search.scatter.sharedBytesPerBlock = 128 * 1024;
    search.hostThreads = 1;

    const auto result =
        computeDistMsm<Curve>(points, scalars, cluster, search);
    const auto expect = msmSerialPippenger<Curve>(points, scalars, 8);
    EXPECT_TRUE(result.value == expect);
}

// ---------------------------------------------------------------
// Satellite bugfixes.
// ---------------------------------------------------------------

// A forced threadsPerBucket=4096 must come back capped: the 1024
// block cap when buckets are dense, the 2x-points-per-bucket idle
// guard when they are not.
TEST(PlannerFixes, ThreadsPerBucketOverrideIsCapped)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);

    MsmOptions options;
    options.windowBitsOverride = 8; // 255 buckets, ppb ~ 4k
    options.threadsPerBucket = 4096;
    const MsmPlan plan =
        planMsm(curve, 1ull << 20, cluster, options);
    EXPECT_EQ(plan.threadsPerBucket, 1024);

    // Sparse buckets: the idle guard (2 * points_per_bucket) wins
    // over the override — the forced 4096 cannot conjure work.
    MsmOptions sparse;
    sparse.windowBitsOverride = 8;
    sparse.threadsPerBucket = 4096;
    const MsmPlan sparse_plan =
        planMsm(curve, 1ull << 8, cluster, sparse);
    EXPECT_LE(sparse_plan.threadsPerBucket, 8);

    // No override: the legacy grow loop is untouched.
    MsmOptions plain;
    plain.windowBitsOverride = 8;
    const MsmPlan plain_plan =
        planMsm(curve, 1ull << 20, cluster, plain);
    EXPECT_LE(plain_plan.threadsPerBucket, 1024);
    EXPECT_GE(plain_plan.threadsPerBucket, 1);
}

// The N-dim baseline charges ceil(N / numGpus) — the slowest GPU's
// share. With the window pinned, N = 8k+1 must cost exactly what
// N = 8k+8 costs (same per-GPU slice) and strictly more than
// N = 8k (a larger slice), which the old truncating division got
// backwards (8k+1 priced as 8k).
TEST(PlannerFixes, NdimBaselineUsesCeilingSlice)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto kernel = gpusim::EcKernelVariant::full();
    const std::uint64_t n = 1ull << 20; // divisible by 8

    const double at_n =
        estimateNdimBaseline(curve, n, cluster, kernel, 16)
            .totalNs();
    const double just_over =
        estimateNdimBaseline(curve, n + 1, cluster, kernel, 16)
            .totalNs();
    const double next_full =
        estimateNdimBaseline(curve, n + 8, cluster, kernel, 16)
            .totalNs();
    EXPECT_GT(just_over, at_n);
    EXPECT_DOUBLE_EQ(just_over, next_full);
}

} // namespace
} // namespace distmsm::msm
