/**
 * @file
 * Tests for the G2 half of Groth16: the G2 setup tables, the B
 * element computed by a genuine G2 MSM, the shadow verification,
 * and the 131-byte compressed wire format (the paper's "proof sizes
 * under 1KB" / ~127-byte artifacts).
 */

#include <gtest/gtest.h>

#include "src/zksnark/groth16_g2.h"
#include "src/zksnark/proof_io.h"
#include "src/zksnark/workloads.h"

namespace distmsm::zksnark {
namespace {

using F = Bn254Fr;

class Groth16G2Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Prng prng(0x626);
        built_ = buildMulChainCircuit<F>(18, 2, prng);
        trapdoor_ = Trapdoor<F>::random(prng);
        keys_ = setup<Bn254>(built_.r1cs, trapdoor_);
        ext_ = extendSetupG2<Bn254Pair>(keys_.pk);
        proof_ = prove<Bn254>(keys_.pk, built_.r1cs, built_.wires,
                              prng);
        b2_ = proveB2<Bn254Pair>(ext_, built_.wires, proof_.sBlind);
    }

    std::vector<F>
    publicInputs() const
    {
        return {built_.wires.begin() + 1,
                built_.wires.begin() + 1 + built_.r1cs.numPublic()};
    }

    BuiltCircuit<F> built_{R1cs<F>(2, 1), {}};
    Trapdoor<F> trapdoor_;
    KeyPair<Bn254> keys_;
    ProvingKeyG2<Bn254Pair> ext_;
    Proof<Bn254> proof_;
    XYZZPoint<Bn254G2> b2_;
};

TEST_F(Groth16G2Test, SetupTablesMatchScalars)
{
    // [beta]G2 and every [B_j(t)]G2 must be the G2 images of the
    // scalar tables the G1 setup produced.
    using Xyzz = XYZZPoint<Bn254G2>;
    const Xyzz g2 = Xyzz::fromAffine(Bn254G2::generator());
    EXPECT_EQ(Xyzz::fromAffine(ext_.betaG2),
              pmul(g2, keys_.pk.beta.toRaw()));
    ASSERT_EQ(ext_.bPoints.size(), keys_.pk.bQuery.size());
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(Xyzz::fromAffine(ext_.bPoints[j]),
                  pmul(g2, keys_.pk.bQuery[j].toRaw()))
            << "wire " << j;
    }
}

TEST_F(Groth16G2Test, B2MatchesItsShadow)
{
    // The G2 MSM must land exactly on [bScalar]G2 — the same dlog
    // as the G1 element B.
    using Xyzz = XYZZPoint<Bn254G2>;
    const Xyzz g2 = Xyzz::fromAffine(Bn254G2::generator());
    EXPECT_TRUE(b2_ == pmul(g2, proof_.bScalar.toRaw()));
}

TEST_F(Groth16G2Test, VerifyWithG2Accepts)
{
    EXPECT_TRUE(verifyWithG2<Bn254Pair>(keys_.vk, proof_, b2_,
                                        publicInputs()));
}

TEST_F(Groth16G2Test, TamperedB2Rejected)
{
    const auto bad = pdbl(b2_);
    EXPECT_FALSE(verifyWithG2<Bn254Pair>(keys_.vk, proof_, bad,
                                         publicInputs()));
}

TEST_F(Groth16G2Test, MismatchedRandomizationRejected)
{
    // B2 built with a different s than the G1 proof must not verify.
    Prng prng(0x627);
    const auto wrong_s = F::random(prng);
    const auto bad =
        proveB2<Bn254Pair>(ext_, built_.wires, wrong_s);
    EXPECT_FALSE(verifyWithG2<Bn254Pair>(keys_.vk, proof_, bad,
                                         publicInputs()));
}

TEST_F(Groth16G2Test, WireFormatIs131Bytes)
{
    // Two compressed G1 points + one compressed G2 point: the
    // real-protocol wire size class (paper: ~127 bytes; the last
    // few bytes differ because the reference packs flags into the
    // coordinates' spare bits).
    const std::size_t wire_bytes =
        2 * encodedPointSize<Bn254>() + encodedG2PointSize();
    EXPECT_EQ(wire_bytes, 131u);
}

TEST_F(Groth16G2Test, G2PointCodecRoundTrip)
{
    const auto p = b2_.toAffine();
    const auto bytes = encodeG2Point(p);
    ASSERT_EQ(bytes.size(), encodedG2PointSize());
    const auto decoded = decodeG2Point(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
    // Negation flips only the flag byte.
    const auto neg_bytes = encodeG2Point(p.negated());
    EXPECT_NE(neg_bytes[0], bytes[0]);
    for (std::size_t i = 1; i < bytes.size(); ++i)
        EXPECT_EQ(neg_bytes[i], bytes[i]);
    // Identity and malformed cases.
    const auto id_bytes =
        encodeG2Point(AffinePoint<Bn254G2>::identity());
    ASSERT_TRUE(decodeG2Point(id_bytes).has_value());
    EXPECT_TRUE(decodeG2Point(id_bytes)->infinity);
    auto bad = bytes;
    bad[0] = 9;
    EXPECT_FALSE(decodeG2Point(bad).has_value());
    bad = bytes;
    bad.pop_back();
    EXPECT_FALSE(decodeG2Point(bad).has_value());
}

TEST_F(Groth16G2Test, GeneratorEncodesCanonically)
{
    const auto g = Bn254G2::generator();
    const auto bytes = encodeG2Point(g);
    const auto decoded = decodeG2Point(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, g);
    EXPECT_TRUE(decoded->isOnCurve());
}

} // namespace
} // namespace distmsm::zksnark
