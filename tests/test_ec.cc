/**
 * @file
 * Elliptic-curve group-law tests over all four curves: XYZZ addition
 * (paper Algorithm 1), dedicated accumulation (Algorithm 4), doubling,
 * scalar multiplication and the modular-multiplication counts the
 * paper's analysis relies on.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

template <typename C>
class EcTest : public ::testing::Test
{
  protected:
    using Curve = C;
    using Affine = AffinePoint<C>;
    using Xyzz = XYZZPoint<C>;
    using Scalar = BigInt<C::Fr::kLimbs>;

    Prng prng_{0xEC};

    Scalar
    randScalar()
    {
        auto k = Scalar::random(prng_);
        k.truncateToBits(C::kScalarBits);
        return k;
    }

    /** A pseudo-random curve point: small multiple of the generator. */
    Xyzz
    randPoint()
    {
        const auto k = BigInt<1>::fromU64(1 + prng_.below(1 << 20));
        return pmul(Xyzz::fromAffine(C::generator()), k);
    }
};

using AllCurves = ::testing::Types<Bn254, Bls377, Bls381, Mnt4753>;
TYPED_TEST_SUITE(EcTest, AllCurves);

TYPED_TEST(EcTest, GeneratorIsOnCurve)
{
    EXPECT_TRUE(TypeParam::generator().isOnCurve());
    EXPECT_FALSE(TypeParam::generator().infinity);
}

TYPED_TEST(EcTest, ScalarBitsMatchPaperTable1)
{
    EXPECT_EQ(TypeParam::Fr::modulus().bitLength(),
              TypeParam::kScalarBits);
}

TYPED_TEST(EcTest, IdentityBehaviour)
{
    using Xyzz = typename EcTest<TypeParam>::Xyzz;
    const Xyzz id = Xyzz::identity();
    EXPECT_TRUE(id.isIdentity());
    const Xyzz g = Xyzz::fromAffine(TypeParam::generator());
    EXPECT_EQ(padd(id, g), g);
    EXPECT_EQ(padd(g, id), g);
    EXPECT_EQ(padd(id, id), id);
    EXPECT_EQ(pdbl(id), id);
    EXPECT_TRUE(id.toAffine().infinity);
}

TYPED_TEST(EcTest, AdditionCommutes)
{
    for (int i = 0; i < 5; ++i) {
        const auto p = this->randPoint();
        const auto q = this->randPoint();
        EXPECT_EQ(padd(p, q), padd(q, p));
    }
}

TYPED_TEST(EcTest, AdditionAssociates)
{
    for (int i = 0; i < 3; ++i) {
        const auto p = this->randPoint();
        const auto q = this->randPoint();
        const auto r = this->randPoint();
        EXPECT_EQ(padd(padd(p, q), r), padd(p, padd(q, r)));
    }
}

TYPED_TEST(EcTest, DoublingMatchesSelfAddition)
{
    for (int i = 0; i < 5; ++i) {
        const auto p = this->randPoint();
        EXPECT_EQ(padd(p, p), pdbl(p));
    }
}

TYPED_TEST(EcTest, NegationCancels)
{
    const auto p = this->randPoint();
    EXPECT_TRUE(padd(p, p.negated()).isIdentity());
}

TYPED_TEST(EcTest, PaccMatchesPadd)
{
    // The dedicated PACC kernel must agree with the general PADD
    // whenever the added point is affine (ZZ = ZZZ = 1).
    using Xyzz = typename EcTest<TypeParam>::Xyzz;
    for (int i = 0; i < 5; ++i) {
        const auto acc = this->randPoint();
        const auto p = this->randPoint().toAffine();
        EXPECT_EQ(pacc(acc, p), padd(acc, Xyzz::fromAffine(p)));
    }
    // Special cases: accumulating onto the identity, doubling and
    // cancellation.
    const auto p = this->randPoint().toAffine();
    EXPECT_EQ(pacc(Xyzz::identity(), p), Xyzz::fromAffine(p));
    EXPECT_EQ(pacc(Xyzz::fromAffine(p), p),
              pdbl(Xyzz::fromAffine(p)));
    EXPECT_TRUE(
        pacc(Xyzz::fromAffine(p), p.negated()).isIdentity());
    const auto acc = this->randPoint();
    EXPECT_EQ(pacc(acc, AffinePoint<TypeParam>::identity()), acc);
}

TYPED_TEST(EcTest, ResultsStayOnCurve)
{
    const auto p = this->randPoint();
    const auto q = this->randPoint();
    EXPECT_TRUE(padd(p, q).toAffine().isOnCurve());
    EXPECT_TRUE(pdbl(p).toAffine().isOnCurve());
    EXPECT_TRUE(pacc(p, q.toAffine()).toAffine().isOnCurve());
}

TYPED_TEST(EcTest, ScalarMulDistributes)
{
    // (k1 + k2) * G == k1 * G + k2 * G, with scalars full width.
    using Xyzz = typename EcTest<TypeParam>::Xyzz;
    const Xyzz g = Xyzz::fromAffine(TypeParam::generator());
    const auto k1 = this->randScalar();
    const auto k2 = this->randScalar();
    auto sum = k1;
    sum.addInPlace(k2); // may exceed kScalarBits; still a valid scalar
    EXPECT_EQ(pmul(g, sum), padd(pmul(g, k1), pmul(g, k2)));
}

TYPED_TEST(EcTest, ScalarMulSmallCases)
{
    using Xyzz = typename EcTest<TypeParam>::Xyzz;
    const Xyzz g = Xyzz::fromAffine(TypeParam::generator());
    EXPECT_TRUE(pmul(g, BigInt<1>::fromU64(0)).isIdentity());
    EXPECT_EQ(pmul(g, BigInt<1>::fromU64(1)), g);
    EXPECT_EQ(pmul(g, BigInt<1>::fromU64(2)), pdbl(g));
    EXPECT_EQ(pmul(g, BigInt<1>::fromU64(5)),
              padd(pdbl(pdbl(g)), g));
}

TYPED_TEST(EcTest, AffineRoundTrip)
{
    const auto p = this->randPoint();
    using Xyzz = typename EcTest<TypeParam>::Xyzz;
    EXPECT_EQ(Xyzz::fromAffine(p.toAffine()), p);
}

TYPED_TEST(EcTest, XyzzEqualityIgnoresRepresentation)
{
    // Scaling (X, Y, ZZ, ZZZ) by (u^2, u^3, u^2, u^3) keeps the point.
    using Fq = typename TypeParam::Fq;
    auto p = this->randPoint();
    auto q = p;
    const Fq u = Fq::fromU64(12345);
    const Fq u2 = u.sqr(), u3 = u2 * u;
    q.x *= u2;
    q.y *= u3;
    q.zz *= u2;
    q.zzz *= u3;
    EXPECT_EQ(p, q);
    EXPECT_EQ(p.toAffine(), q.toAffine());
}

TYPED_TEST(EcTest, OpCountsMatchPaper)
{
    // Section 4.1: PADD costs 14 modular multiplications, the
    // dedicated PACC kernel 10.
    const auto p = this->randPoint();
    const auto q = this->randPoint();
    const auto q_affine = q.toAffine();
    auto &ops = ec::opCounters();

    ops.reset();
    (void)padd(p, q);
    EXPECT_EQ(ops.mul, 14u);

    ops.reset();
    (void)pacc(p, q_affine);
    EXPECT_EQ(ops.mul, 10u);

    ops.reset();
    (void)pdbl(p);
    EXPECT_EQ(ops.mul, TypeParam::kAIsZero ? 9u : 11u);
}

TYPED_TEST(EcTest, Mnt4753CurveHasNonZeroA)
{
    // Regression guard: the MNT4753 stand-in keeps the a != 0 shape
    // of the real MNT4 curve family.
    if constexpr (std::is_same_v<TypeParam, Mnt4753>) {
        EXPECT_FALSE(TypeParam::kAIsZero);
        EXPECT_FALSE(TypeParam::a().isZero());
    }
}

} // namespace
} // namespace distmsm
