/**
 * @file
 * Tests for Montgomery multiplication: the SOS / CIOS / FIOS variants
 * agree with each other and with an independently-verified slow
 * modular multiplication, across all eight fields.
 */

#include <gtest/gtest.h>

#include "src/bigint/bigint.h"
#include "src/bigint/montgomery.h"
#include "src/field/field_params.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

/** Slow, obviously-correct reduction of a 2N-limb value modulo p. */
template <std::size_t N>
BigInt<N>
slowMod(const std::array<std::uint64_t, 2 * N> &wide, const BigInt<N> &p)
{
    BigInt<2 * N> v{};
    for (std::size_t i = 0; i < 2 * N; ++i)
        v.limb[i] = wide[i];
    BigInt<2 * N> m{};
    for (std::size_t i = 0; i < N; ++i)
        m.limb[i] = p.limb[i];
    const std::size_t shift_max = 2 * N * 64 - p.bitLength();
    for (std::size_t k = shift_max + 1; k-- > 0;) {
        const BigInt<2 * N> shifted = m.shl(k);
        if (v >= shifted)
            v.subInPlace(shifted);
    }
    BigInt<N> r{};
    for (std::size_t i = 0; i < N; ++i)
        r.limb[i] = v.limb[i];
    return r;
}

/** Slow modular multiply built only from mulFull + slowMod. */
template <std::size_t N>
BigInt<N>
slowMulMod(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    return slowMod<N>(mulFull(a, b), p);
}

template <typename P>
class MontgomeryTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t N = P::kLimbs;
    using B = BigInt<N>;

    B mod_ = B::fromLimbs(P::kModulus);
    B r_ = B::fromLimbs(P::kR);
    B r2_ = B::fromLimbs(P::kR2);
    Prng prng_{0xF1E1D};

    B randElem() { return B::randomBelow(prng_, mod_); }
};

using AllFieldParams =
    ::testing::Types<Bn254FqParams, Bn254FrParams, Bls377FqParams,
                     Bls377FrParams, Bls381FqParams, Bls381FrParams,
                     Mnt4753FqParams, Mnt4753FrParams>;
TYPED_TEST_SUITE(MontgomeryTest, AllFieldParams);

TYPED_TEST(MontgomeryTest, GeneratedConstantsConsistent)
{
    // R = 2^(64N) mod p: R * 1 (montgomery-multiplied) == 1 scaled
    // back; verify via slow arithmetic: R == slowMod(2^(64N)).
    constexpr std::size_t N = TypeParam::kLimbs;
    std::array<std::uint64_t, 2 * N> wide{};
    wide[N] = 1; // 2^(64N)
    EXPECT_EQ(slowMod<N>(wide, this->mod_), this->r_);
    // R2 == R * R mod p.
    EXPECT_EQ(slowMulMod(this->r_, this->r_, this->mod_), this->r2_);
    // inv64 * p == -1 mod 2^64.
    EXPECT_EQ(TypeParam::kInv64 * this->mod_.limb[0], ~0ull);
}

TYPED_TEST(MontgomeryTest, VariantsAgree)
{
    for (int iter = 0; iter < 60; ++iter) {
        const auto a = this->randElem();
        const auto b = this->randElem();
        const auto sos =
            montMulSOS(a, b, this->mod_, TypeParam::kInv64);
        const auto cios =
            montMulCIOS(a, b, this->mod_, TypeParam::kInv64);
        const auto fios =
            montMulFIOS(a, b, this->mod_, TypeParam::kInv64);
        EXPECT_EQ(sos, cios);
        EXPECT_EQ(sos, fios);
        EXPECT_LT(sos, this->mod_);
    }
}

TYPED_TEST(MontgomeryTest, MatchesSlowArithmetic)
{
    // montMul(a, b) * R == a * b (mod p), with both sides evaluated
    // by the independently tested slow path.
    for (int iter = 0; iter < 25; ++iter) {
        const auto a = this->randElem();
        const auto b = this->randElem();
        const auto mont =
            montMulCIOS(a, b, this->mod_, TypeParam::kInv64);
        const auto lhs = slowMulMod(mont, this->r_, this->mod_);
        const auto rhs = slowMulMod(a, b, this->mod_);
        EXPECT_EQ(lhs, rhs);
    }
}

TYPED_TEST(MontgomeryTest, MulByRIsIdentity)
{
    for (int iter = 0; iter < 25; ++iter) {
        const auto a = this->randElem();
        EXPECT_EQ(montMulCIOS(a, this->r_, this->mod_,
                              TypeParam::kInv64),
                  a);
    }
}

TYPED_TEST(MontgomeryTest, EdgeOperands)
{
    using B = BigInt<TypeParam::kLimbs>;
    const B zero = B::zero();
    B pm1 = this->mod_;
    pm1.subInPlace(B::fromU64(1));
    const B one = B::fromU64(1);
    for (const auto &a : {zero, one, pm1}) {
        for (const auto &b : {zero, one, pm1}) {
            const auto cios =
                montMulCIOS(a, b, this->mod_, TypeParam::kInv64);
            const auto sos =
                montMulSOS(a, b, this->mod_, TypeParam::kInv64);
            const auto fios =
                montMulFIOS(a, b, this->mod_, TypeParam::kInv64);
            EXPECT_EQ(cios, sos);
            EXPECT_EQ(cios, fios);
            EXPECT_LT(cios, this->mod_);
        }
    }
}

TYPED_TEST(MontgomeryTest, PowFermat)
{
    // a^(p-1) == 1 for a != 0 (Fermat's little theorem); exercises
    // montPow and, transitively, hundreds of multiplications.
    using B = BigInt<TypeParam::kLimbs>;
    const MontgomeryParams<TypeParam::kLimbs> params{
        this->mod_, TypeParam::kInv64, this->r_, this->r2_};
    B e = this->mod_;
    e.subInPlace(B::fromU64(1));
    for (int iter = 0; iter < 3; ++iter) {
        B a = this->randElem();
        if (a.isZero())
            a = B::fromU64(5);
        // Convert to Montgomery form first.
        const B am = montMulCIOS(a, this->r2_, this->mod_,
                                 TypeParam::kInv64);
        EXPECT_EQ(montPow(am, e, params), this->r_);
    }
}

TYPED_TEST(MontgomeryTest, ModInverse)
{
    using B = BigInt<TypeParam::kLimbs>;
    for (int iter = 0; iter < 10; ++iter) {
        B a = this->randElem();
        if (a.isZero())
            a = B::fromU64(7);
        const B inv = modInverse(a, this->mod_);
        EXPECT_TRUE(slowMulMod(a, inv, this->mod_).isU64(1));
    }
    // Inverse of one is one.
    EXPECT_TRUE(modInverse(B::fromU64(1), this->mod_).isU64(1));
}

TYPED_TEST(MontgomeryTest, MontReduceOfWideValue)
{
    // montReduce(t) == t * R^-1 mod p, verified as
    // montReduce(t) * R == t (mod p).
    constexpr std::size_t N = TypeParam::kLimbs;
    for (int iter = 0; iter < 20; ++iter) {
        // t = a * b with a, b < p keeps t < p * R as required.
        const auto a = this->randElem();
        const auto b = this->randElem();
        const auto t = mulFull(a, b);
        const auto red =
            montReduce<N>(t, this->mod_, TypeParam::kInv64);
        EXPECT_EQ(slowMulMod(red, this->r_, this->mod_),
                  slowMod<N>(t, this->mod_));
    }
}

} // namespace
} // namespace distmsm
