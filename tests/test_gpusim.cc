/**
 * @file
 * Tests for the GPU simulator: device occupancy, the functional SIMT
 * executor with contention accounting, the analytic cost model and
 * the cluster helpers.
 */

#include <gtest/gtest.h>

#include "src/gpusim/cluster.h"
#include "src/gpusim/cost_model.h"
#include "src/gpusim/device.h"
#include "src/gpusim/executor.h"

namespace distmsm::gpusim {
namespace {

TEST(Device, PresetsAreSane)
{
    for (const auto &d : {DeviceSpec::a100(), DeviceSpec::rtx4090(),
                          DeviceSpec::rx6900xt()}) {
        EXPECT_GT(d.smCount, 0) << d.name;
        EXPECT_GT(d.int32Tops, 0.0) << d.name;
        EXPECT_GT(d.maxConcurrentThreads(), 1 << 16) << d.name;
    }
    // Section 4.3: A100 tensor int8 is 8x the int32-equivalent of
    // CUDA cores (624 int8 TOPS vs 19.5 int32 TOPS = 156 * 4).
    const auto a100 = DeviceSpec::a100();
    EXPECT_NEAR(a100.tensorInt8Tops / 4.0 / a100.int32Tops, 8.0, 0.1);
    // Section 5.2: RTX 4090 has 2.12x the A100's int32 throughput.
    EXPECT_NEAR(DeviceSpec::rtx4090().int32Tops / a100.int32Tops,
                2.12, 0.03);
}

TEST(Device, PaperThreadCapacity)
{
    // Section 3.2.2: "mainstream GPUs can support approximately 2^16
    // concurrent threads."
    const auto a100 = DeviceSpec::a100();
    EXPECT_GE(a100.maxConcurrentThreads(), 1 << 16);
    EXPECT_LT(a100.maxConcurrentThreads(), 1 << 19);
}

TEST(Device, OccupancyMonotoneInRegisters)
{
    const auto d = DeviceSpec::a100();
    double prev = 1.0;
    for (int regs = 16; regs <= 256; regs += 16) {
        const double occ = d.occupancy(regs, 0, 256);
        EXPECT_LE(occ, prev);
        EXPECT_GT(occ, 0.0);
        prev = occ;
    }
}

TEST(Device, OccupancyLimitedBySharedMemory)
{
    const auto d = DeviceSpec::a100();
    const double no_shm = d.occupancy(32, 0, 256);
    const double big_shm = d.occupancy(32, d.sharedMemPerSm, 256);
    EXPECT_LT(big_shm, no_shm);
}

TEST(Executor, PhaseRunsEveryThread)
{
    KernelLaunch launch(4, 32, 0);
    std::vector<int> hits(launch.gridThreads(), 0);
    launch.phase([&](ThreadCtx &ctx) { ++hits[ctx.gid()]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
    EXPECT_EQ(launch.stats().phases, 1u);
}

TEST(Executor, AtomicAddReturnsOldValue)
{
    KernelLaunch launch(1, 8, 0);
    WordArray counter(1, WordArray::Space::Global);
    std::vector<std::uint64_t> olds(8);
    launch.phase([&](ThreadCtx &ctx) {
        olds[ctx.gid()] = launch.atomicAdd(counter, 0, 1, ctx);
    });
    EXPECT_EQ(counter.read(0), 8u);
    // Each thread saw a distinct reservation slot — the property the
    // scatter kernels rely on.
    std::vector<bool> seen(8, false);
    for (auto o : olds) {
        ASSERT_LT(o, 8u);
        EXPECT_FALSE(seen[o]);
        seen[o] = true;
    }
}

TEST(Executor, HotAddressContentionIsRecorded)
{
    KernelLaunch launch(2, 64, 0);
    WordArray counter(4, WordArray::Space::Global);
    launch.phase([&](ThreadCtx &ctx) {
        launch.atomicAdd(counter, 0, 1, ctx); // all 128 collide
    });
    EXPECT_EQ(launch.stats().globalAtomics, 128u);
    EXPECT_EQ(launch.stats().globalMaxConflict, 128u);
    EXPECT_EQ(launch.stats().globalConflictWeight, 128u * 128u);
}

TEST(Executor, SpreadAddressesDoNotContend)
{
    KernelLaunch launch(2, 64, 0);
    WordArray counters(128, WordArray::Space::Global);
    launch.phase([&](ThreadCtx &ctx) {
        launch.atomicAdd(counters, ctx.gid(), 1, ctx);
    });
    EXPECT_EQ(launch.stats().globalMaxConflict, 1u);
    EXPECT_EQ(launch.stats().globalConflictWeight, 128u);
}

TEST(Executor, ContentionIsPerPhase)
{
    // The same address hit in two different phases is not concurrent.
    KernelLaunch launch(1, 16, 0);
    WordArray counter(1, WordArray::Space::Global);
    for (int round = 0; round < 2; ++round) {
        launch.phase([&](ThreadCtx &ctx) {
            launch.atomicAdd(counter, 0, 1, ctx);
        });
    }
    EXPECT_EQ(launch.stats().globalMaxConflict, 16u);
    EXPECT_EQ(launch.stats().globalConflictWeight, 2u * 16u * 16u);
}

TEST(Executor, SharedAtomicsScopedPerBlock)
{
    // Shared memory is per block: the same index used by different
    // blocks does not contend.
    KernelLaunch launch(4, 32, 8);
    launch.phase([&](ThreadCtx &ctx) {
        launch.atomicAdd(launch.shared(ctx.bid), 0, 1, ctx);
    });
    EXPECT_EQ(launch.stats().sharedAtomics, 128u);
    EXPECT_EQ(launch.stats().sharedMaxConflict, 32u);
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(launch.shared(b).read(0), 32u);
}

TEST(CostModel, RegisterCountsMatchPaper)
{
    const CostModel model(DeviceSpec::a100());
    // "the straightforward PADD implementation requires 132
    // registers per thread for BLS12-377 and 264 for MNT4753"
    // (big-integer registers, before aux state).
    const auto baseline = EcKernelVariant::baseline();
    const auto bls = CurveProfile::bls377();
    const auto mnt = CurveProfile::mnt4753();
    EXPECT_EQ(model.peakLiveBigints(baseline, EcOp::Padd) *
                  static_cast<int>(bls.regsPerBigint()),
              132);
    EXPECT_EQ(model.peakLiveBigints(baseline, EcOp::Padd) *
                  static_cast<int>(mnt.regsPerBigint()),
              264);
    // "At its peak, it demands 9 concurrent live big integers, using
    // up to 216 registers per thread" (PACC on MNT4753).
    EXPECT_EQ(model.peakLiveBigints(baseline, EcOp::Pacc) *
                  static_cast<int>(mnt.regsPerBigint()),
              216);
}

TEST(CostModel, OptimizationsReduceThroughputTime)
{
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::bls377();
    constexpr std::uint64_t kOps = 1 << 20;

    EcKernelVariant v = EcKernelVariant::baseline();
    const double base =
        model.ecThroughputNs(curve, v, EcOp::Pacc, kOps);
    v.dedicatedPacc = true;
    const double pacc = model.ecThroughputNs(curve, v, EcOp::Pacc, kOps);
    EXPECT_LT(pacc, base);
    v.optimalOrder = true;
    const double sched = model.ecThroughputNs(curve, v, EcOp::Pacc, kOps);
    EXPECT_LE(sched, pacc);
    v.explicitSpill = true;
    const double spill = model.ecThroughputNs(curve, v, EcOp::Pacc, kOps);
    EXPECT_LE(spill, sched * 1.05); // small traffic cost allowed
    v.tensorCoreMont = true;
    v.onTheFlyCompact = true;
    const double full = model.ecThroughputNs(curve, v, EcOp::Pacc, kOps);
    EXPECT_LT(full, base);
}

TEST(CostModel, PaccSavesFourModmuls)
{
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::bn254();
    EcKernelVariant none = EcKernelVariant::baseline();
    EcKernelVariant pacc_only;
    pacc_only.dedicatedPacc = true;
    const double ratio =
        model.ecOpCudaOps(curve, none, EcOp::Pacc) /
        model.ecOpCudaOps(curve, pacc_only, EcOp::Pacc);
    // 14 vs 10 modular multiplications ~ 1.4x arithmetic.
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 1.45);
}

TEST(CostModel, TensorCoreTrafficPenaltyWithoutCompaction)
{
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::bls381();
    constexpr std::uint64_t kOps = 1 << 20;
    EcKernelVariant with_tc{true, true, true, true, false};
    EcKernelVariant with_compact{true, true, true, true, true};
    EcKernelVariant no_tc{true, true, true, false, false};
    const double raw =
        model.ecThroughputNs(curve, with_tc, EcOp::Pacc, kOps);
    const double compact =
        model.ecThroughputNs(curve, with_compact, EcOp::Pacc, kOps);
    const double without =
        model.ecThroughputNs(curve, no_tc, EcOp::Pacc, kOps);
    // Section 5.3.3: direct TC deployment is a slowdown; compaction
    // turns it into a win for the 25x-bit curves.
    EXPECT_GT(raw, without);
    EXPECT_LT(compact, without);
}

TEST(CostModel, CompactionHurtsMnt4753)
{
    // Section 5.3.3: "for MNT4753, there remains a 8.2% slowdown"
    // from the register pressure of the zero lanes.
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::mnt4753();
    constexpr std::uint64_t kOps = 1 << 18;
    EcKernelVariant with_compact{true, true, true, true, true};
    EcKernelVariant no_tc{true, true, true, false, false};
    const double compact =
        model.ecThroughputNs(curve, with_compact, EcOp::Pacc, kOps);
    const double without =
        model.ecThroughputNs(curve, no_tc, EcOp::Pacc, kOps);
    EXPECT_GT(compact, without);
    EXPECT_LT(compact, without * 1.3);
}

TEST(CostModel, MntToBls377KernelRatioNearPaper)
{
    // Section 5.3.3: the PADD kernel on MNT4753 takes ~5.2x the
    // BLS12-377 time although it needs only ~4x the arithmetic.
    const CostModel model(DeviceSpec::a100());
    constexpr std::uint64_t kOps = 1 << 20;
    const auto v = EcKernelVariant::full();
    const double mnt = model.ecThroughputNs(CurveProfile::mnt4753(), v,
                                            EcOp::Pacc, kOps);
    const double bls = model.ecThroughputNs(CurveProfile::bls377(), v,
                                            EcOp::Pacc, kOps);
    const double ratio = mnt / bls;
    EXPECT_GT(ratio, 4.0) << "register pressure must cost extra";
    EXPECT_LT(ratio, 9.0);
}

TEST(CostModel, AtomicCostScalesWithContention)
{
    const CostModel model(DeviceSpec::a100());
    KernelStats calm;
    calm.globalAtomics = 1000;
    calm.globalConflictWeight = 1000; // conflict-free
    KernelStats hot = calm;
    hot.globalConflictWeight = 64 * 1000; // 64 writers per address
    EXPECT_GT(model.atomicNs(hot, 1 << 16),
              4 * model.atomicNs(calm, 1 << 16));
}

TEST(CostModel, SerialChainSlowerPerOpThanThroughput)
{
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::bls381();
    const auto v = EcKernelVariant::full();
    const double serial_per_op =
        model.ecSerialNs(curve, v, EcOp::Padd, 1000) / 1000;
    const double throughput_per_op =
        model.ecThroughputNs(curve, v, EcOp::Padd, 1 << 20) /
        (1 << 20);
    // This gap is why bucket-reduce belongs on the CPU (Sec. 3.2.3).
    EXPECT_GT(serial_per_op, 100 * throughput_per_op);
}

TEST(CostModel, HostIs128xSlowerThanDevice)
{
    const CostModel model(DeviceSpec::a100());
    const auto curve = CurveProfile::bls381();
    const HostSpec host;
    const double host_ns = model.hostEcNs(curve, 1 << 20, host);
    const double gpu_ns = model.ecThroughputNs(
        curve, EcKernelVariant::full(), EcOp::Pacc, 1 << 20);
    EXPECT_NEAR(host_ns / gpu_ns, 128.0, 1.0);
}

TEST(Cluster, MakespanIsMax)
{
    EXPECT_DOUBLE_EQ(Cluster::makespanNs({1.0, 5.0, 3.0}), 5.0);
    EXPECT_DOUBLE_EQ(Cluster::makespanNs({}), 0.0);
}

TEST(KernelStats, MergeSumsPhasesAcrossSerialLaunches)
{
    KernelStats a, b;
    a.phases = 3;
    a.globalAtomics = 10;
    a.globalMaxConflict = 4;
    b.phases = 5;
    b.globalAtomics = 7;
    b.globalMaxConflict = 9;
    a.merge(b);
    EXPECT_EQ(a.phases, 8u) << "serial launches stack their phases";
    EXPECT_EQ(a.globalAtomics, 17u);
    EXPECT_EQ(a.globalMaxConflict, 9u);
}

TEST(KernelStats, MergeLockstepMaxesPhasesAcrossDevices)
{
    // Four devices running the same launch in lockstep: the work
    // counts sum, but the launch's phase structure must not
    // multiply by the device count (the double-count this PR's
    // bugfix removes from the engine's bucket-group merge).
    KernelStats one_device;
    one_device.phases = 6;
    one_device.paccOps = 100;
    one_device.sharedMaxConflict = 2;

    KernelStats four_devices;
    for (int d = 0; d < 4; ++d)
        four_devices.mergeLockstep(one_device);
    EXPECT_EQ(four_devices.phases, one_device.phases)
        << "lockstep devices share one launch's phases";
    EXPECT_EQ(four_devices.paccOps, 4 * one_device.paccOps);
    EXPECT_EQ(four_devices.sharedMaxConflict, 2u);

    // Serial merge of the same parts would have counted 24 phases.
    KernelStats serial;
    for (int d = 0; d < 4; ++d)
        serial.merge(one_device);
    EXPECT_EQ(serial.phases, 24u);
}

TEST(KernelStats, RecordMetricsFeedsEveryCounter)
{
    KernelStats s;
    s.phases = 2;
    s.globalAtomics = 11;
    s.globalMaxConflict = 5;
    s.paccOps = 40;
    support::MetricsRegistry metrics;
    s.recordMetrics(metrics, "k/");
    EXPECT_DOUBLE_EQ(metrics.value("k/phases"), 2.0);
    EXPECT_DOUBLE_EQ(metrics.value("k/global_atomics"), 11.0);
    EXPECT_DOUBLE_EQ(metrics.value("k/pacc_ops"), 40.0);
    // add() accumulates; max() keeps the maximum.
    s.globalMaxConflict = 3;
    s.recordMetrics(metrics, "k/");
    EXPECT_DOUBLE_EQ(metrics.value("k/global_atomics"), 22.0);
    EXPECT_DOUBLE_EQ(metrics.value("k/global_max_conflict"), 5.0);
}

TEST(Cluster, GatherFollowsTwoLevelTopology)
{
    const Cluster small(DeviceSpec::a100(), 2);
    const Cluster node(DeviceSpec::a100(), 8);
    const Cluster two_nodes(DeviceSpec::a100(), 16);
    const Cluster four_nodes(DeviceSpec::a100(), 32);
    const std::uint64_t bytes = 1 << 20;
    EXPECT_LT(small.gatherNs(bytes), node.gatherNs(bytes));
    // Crossing the node boundary pays the inter-node fabric, which
    // is far narrower than NVLink.
    EXPECT_GT(two_nodes.gatherNs(bytes), node.gatherNs(bytes));
    EXPECT_GT(four_nodes.gatherNs(bytes),
              two_nodes.gatherNs(bytes));
    EXPECT_EQ(node.numNodes(), 1);
    EXPECT_EQ(four_nodes.numNodes(), 4);
}

} // namespace
} // namespace distmsm::gpusim
