/**
 * @file
 * Unit tests for support::ThreadPool: task completion, parallelFor
 * coverage and determinism contracts, exception propagation, nested
 * submission, the pool-size-1 degeneracy and a tiny-task stress run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/support/thread_pool.h"

namespace distmsm::support {
namespace {

TEST(ThreadPool, SubmittedTasksComplete)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversExactRange)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
    // Non-zero begin.
    std::vector<int> tail(100, 0);
    pool.parallelFor(40, 100, [&](std::size_t i) { ++tail[i]; });
    for (std::size_t i = 0; i < 40; ++i)
        ASSERT_EQ(tail[i], 0);
    for (std::size_t i = 40; i < 100; ++i)
        ASSERT_EQ(tail[i], 1);
    // Empty and reversed ranges are no-ops.
    pool.parallelFor(5, 5, [&](std::size_t) { FAIL(); });
    pool.parallelFor(7, 3, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 1000,
                         [&](std::size_t i) {
                             if (i == 377)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives and remains usable afterwards.
    std::atomic<int> counter{0};
    pool.parallelFor(0, 100, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlockAndCovers)
{
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 8;
    constexpr std::size_t kInner = 64;
    std::vector<std::vector<int>> hits(
        kOuter, std::vector<int>(kInner, 0));
    pool.parallelFor(0, kOuter, [&](std::size_t o) {
        pool.parallelFor(0, kInner,
                         [&](std::size_t i) { ++hits[o][i]; });
    });
    for (const auto &row : hits)
        for (int h : row)
            ASSERT_EQ(h, 1);
}

TEST(ThreadPool, NestedSubmissionFromWorkerCompletes)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    auto outer = pool.submit([&] {
        std::vector<std::future<void>> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back(pool.submit([&] { ++counter; }));
        // Waiting inside a worker is safe: siblings (or the drain on
        // shutdown) execute the inner tasks.
        for (auto &f : inner)
            f.get();
        ++counter;
    });
    outer.get();
    EXPECT_EQ(counter.load(), 9);
}

TEST(ThreadPool, PoolSizeOneRunsInlineInCallingThread)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(16);
    pool.parallelFor(0, seen.size(), [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
    // submit() is inline too — the future is ready on return.
    bool ran = false;
    auto f = pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran);
    f.get();
}

TEST(ThreadPool, MaxThreadsOneForcesSequentialInlineOrder)
{
    ThreadPool pool(8);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(
        0, 32,
        [&](std::size_t i) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(i); // no race: single thread
        },
        /*max_threads=*/1);
    ASSERT_EQ(order.size(), 32u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i) << "sequential mode must be in-order";
}

TEST(ThreadPool, StressThousandsOfTinyTasks)
{
    ThreadPool pool(8);
    constexpr std::size_t kTasks = 100000;
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(0, kTasks,
                     [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);

    std::atomic<int> submitted{0};
    std::vector<std::future<void>> futures;
    futures.reserve(2000);
    for (int i = 0; i < 2000; ++i)
        futures.push_back(pool.submit([&] { ++submitted; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(submitted.load(), 2000);
}

TEST(ThreadPool, ParallelForResultsAreDeterministic)
{
    // Slot-per-index writes merged in index order: the documented
    // usage contract. Identical output for any width.
    auto run = [](int width) {
        ThreadPool pool(width);
        std::vector<std::uint64_t> out(4096);
        pool.parallelFor(0, out.size(), [&](std::size_t i) {
            std::uint64_t x = i * 0x9E3779B97F4A7C15ull + 1;
            x ^= x >> 27;
            out[i] = x * 0x2545F4914F6CDD1Dull;
        });
        return out;
    };
    const auto w1 = run(1);
    EXPECT_EQ(w1, run(2));
    EXPECT_EQ(w1, run(8));
}

TEST(ThreadPool, ResolveHostThreadsConvention)
{
    EXPECT_EQ(resolveHostThreads(1), 1);
    EXPECT_EQ(resolveHostThreads(7), 7);
    // 0 resolves to the environment override or the hardware width,
    // never below 1.
    EXPECT_GE(resolveHostThreads(0), 1);
    if (const char *env = std::getenv("DISTMSM_HOST_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1) {
            EXPECT_EQ(resolveHostThreads(0), static_cast<int>(v));
        }
    }
    EXPECT_GE(ThreadPool::global().size(), 8);
}

} // namespace
} // namespace distmsm::support
