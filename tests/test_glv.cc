/**
 * @file
 * GLV endomorphism known-answer and property tests: the eigenvalue
 * relation lambda * P == phi(P) on both supported curves, the
 * decomposition round trip k1 + lambda * k2 == k (mod r) over
 * randomized and boundary scalars with the |k_i| < 2^128 bound, and
 * end-to-end MSM agreement of the GLV engine path with the naive
 * reference.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/glv.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using msm::glv::CurveGlv;
using msm::glv::decompose;
using msm::glv::endomorphism;
using msm::glv::kHalfScalarBits;

template <typename Curve>
class GlvTest : public ::testing::Test
{
  protected:
    using Fr = typename Curve::Fr;
    using Scalar = BigInt<Fr::kLimbs>;

    static Scalar
    order()
    {
        return Fr::modulus();
    }

    static Fr
    lambdaFr()
    {
        return Fr::fromRaw(msm::glv::lambda<Curve>());
    }

    /** Check k == s1*|k1| + s2*|k2|*lambda in Fr and the bound. */
    static void
    checkDecomposition(const Scalar &k)
    {
        const auto split = decompose<Curve>(k);
        EXPECT_LE(split.k1.bitLength(), kHalfScalarBits)
            << k.toHex();
        EXPECT_LE(split.k2.bitLength(), kHalfScalarBits)
            << k.toHex();
        // Fr::fromRaw needs reduced input; k may exceed r (the
        // magnitudes are < 2^128 < r already).
        BigInt<Fr::kLimbs> k_red = k;
        while (k_red >= Fr::modulus())
            k_red.subInPlace(Fr::modulus());
        const Fr k1 = Fr::fromRaw(split.k1);
        const Fr k2 = Fr::fromRaw(split.k2);
        const Fr lhs = Fr::fromRaw(k_red);
        const Fr rhs = (split.neg1 ? -k1 : k1) +
                       lambdaFr() * (split.neg2 ? -k2 : k2);
        EXPECT_EQ(lhs, rhs) << k.toHex();
    }
};

using GlvCurves = ::testing::Types<Bn254, Bls381>;
TYPED_TEST_SUITE(GlvTest, GlvCurves);

TYPED_TEST(GlvTest, LambdaTimesPointIsEndomorphism)
{
    // lambda * P == phi(P) = (beta * x, y): the known-answer pairing
    // of the generated (beta, lambda) constants, on the generator
    // and on a spread of random subgroup points.
    using Xyzz = XYZZPoint<TypeParam>;
    Prng prng(0x61B5001);
    std::vector<AffinePoint<TypeParam>> pts = {
        TypeParam::generator()};
    const auto walk = msm::generatePoints<TypeParam>(8, prng);
    pts.insert(pts.end(), walk.begin(), walk.end());
    for (const auto &p : pts) {
        const auto lhs =
            pmul(Xyzz::fromAffine(p), msm::glv::lambda<TypeParam>());
        const auto phi = endomorphism<TypeParam>(p);
        EXPECT_TRUE(phi.isOnCurve());
        EXPECT_EQ(lhs, Xyzz::fromAffine(phi));
    }
}

TYPED_TEST(GlvTest, BetaAndLambdaAreNontrivialCubeRoots)
{
    using Fq = typename TypeParam::Fq;
    using Fr = typename TypeParam::Fr;
    const Fq beta = msm::glv::beta<TypeParam>();
    EXPECT_NE(beta, Fq::one());
    EXPECT_EQ(beta * beta * beta, Fq::one());
    const Fr lam = this->lambdaFr();
    EXPECT_NE(lam, Fr::one());
    EXPECT_EQ(lam * lam * lam, Fr::one());
}

TYPED_TEST(GlvTest, DecomposeBoundaryScalars)
{
    using Scalar = typename TestFixture::Scalar;
    const Scalar r = this->order();
    Scalar r_minus_1 = r;
    r_minus_1.subInPlace(Scalar::fromU64(1));
    Scalar r_minus_lambda = r;
    r_minus_lambda.subInPlace(msm::glv::lambda<TypeParam>());
    // Unreduced values the engine's truncated scalars can produce.
    Scalar top{};
    for (auto &l : top.limb)
        l = ~std::uint64_t{0};
    top.truncateToBits(TypeParam::kScalarBits);
    for (const Scalar &k :
         {Scalar::zero(), Scalar::fromU64(1), r_minus_1,
          r_minus_lambda, msm::glv::lambda<TypeParam>(), r, top}) {
        this->checkDecomposition(k);
    }
}

TYPED_TEST(GlvTest, DecomposeRandomScalars)
{
    using Scalar = typename TestFixture::Scalar;
    Prng prng(0x61B5002);
    for (int i = 0; i < 500; ++i) {
        Scalar k = Scalar::random(prng);
        k.truncateToBits(TypeParam::kScalarBits);
        this->checkDecomposition(k);
    }
}

TYPED_TEST(GlvTest, SplitScalarMultiplicationMatches)
{
    // k * P == s1*|k1| * P + s2*|k2| * phi(P) as curve points.
    using Xyzz = XYZZPoint<TypeParam>;
    using Scalar = typename TestFixture::Scalar;
    Prng prng(0x61B5003);
    const auto pts = msm::generatePoints<TypeParam>(4, prng);
    for (const auto &p : pts) {
        Scalar k = Scalar::random(prng);
        k.truncateToBits(TypeParam::kScalarBits);
        const auto split = decompose<TypeParam>(k);
        const auto base = Xyzz::fromAffine(p);
        const auto phi =
            Xyzz::fromAffine(endomorphism<TypeParam>(p));
        auto t1 = pmul(base, split.k1);
        if (split.neg1)
            t1 = t1.negated();
        auto t2 = pmul(phi, split.k2);
        if (split.neg2)
            t2 = t2.negated();
        EXPECT_EQ(padd(t1, t2), pmul(base, k));
    }
}

TYPED_TEST(GlvTest, EngineGlvMatchesNaive)
{
    // End-to-end: every engine configuration with glv on agrees with
    // the naive reference (signed and unsigned digits, with and
    // without precompute and batched-affine accumulation).
    Prng prng(0x61B5004);
    const std::size_t n = 150;
    const auto points = msm::generatePoints<TypeParam>(n, prng);
    const auto scalars = msm::generateScalars<TypeParam>(n, prng);
    const auto expected = msm::msmNaive<TypeParam>(points, scalars);
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 4);

    for (const bool use_signed : {false, true}) {
        for (const bool precompute : {false, true}) {
            for (const bool batch_affine : {false, true}) {
                SCOPED_TRACE((use_signed ? "signed" : "plain") +
                             std::string(precompute ? "+pre" : "") +
                             (batch_affine ? "+batch" : ""));
                msm::MsmOptions options;
                options.windowBitsOverride = 7;
                options.glv = true;
                options.signedDigits = use_signed;
                options.precompute = precompute;
                options.batchAffine = batch_affine;
                options.scatter.blockDim = 64;
                options.scatter.gridDim = 4;
                options.scatter.sharedBytesPerBlock = 64 * 1024;
                const auto result = msm::computeDistMsm<TypeParam>(
                    points, scalars, cluster, options);
                EXPECT_TRUE(result.plan.glv);
                EXPECT_EQ(result.plan.scalarBits, kHalfScalarBits);
                EXPECT_EQ(result.value, expected);
            }
        }
    }
}

TEST(GlvPlan, HalvesWindowPasses)
{
    // Same window size: GLV halves the number of window passes.
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 1);
    msm::MsmOptions options;
    options.windowBitsOverride = 16;
    const auto plain = msm::planMsm(gpusim::CurveProfile::bn254(),
                                    1 << 18, cluster, options);
    options.glv = true;
    const auto with_glv = msm::planMsm(
        gpusim::CurveProfile::bn254(), 1 << 18, cluster, options);
    EXPECT_EQ(plain.numWindows, 16u);  // ceil(254 / 16)
    EXPECT_EQ(with_glv.numWindows, 8u); // ceil(128 / 16)
    EXPECT_FALSE(plain.glv);
    EXPECT_TRUE(with_glv.glv);
}

TEST(GlvPlan, UnsupportedCurveFallsBack)
{
    // BLS12-377 has no generated GLV constants: the flag is a
    // silent no-op and the plan keeps the full scalar width.
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 1);
    msm::MsmOptions options;
    options.glv = true;
    const auto plan = msm::planMsm(gpusim::CurveProfile::bls377(),
                                   1 << 10, cluster, options);
    EXPECT_FALSE(plan.glv);
    EXPECT_EQ(plan.scalarBits, 253u);

    // And the functional engine still computes the right answer.
    Prng prng(0x61B5005);
    const auto points = msm::generatePoints<Bls377>(40, prng);
    const auto scalars = msm::generateScalars<Bls377>(40, prng);
    const auto result = msm::computeDistMsm<Bls377>(
        points, scalars, cluster, options);
    EXPECT_EQ(result.value, msm::msmNaive<Bls377>(points, scalars));
}

} // namespace
} // namespace distmsm
